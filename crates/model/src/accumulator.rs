//! O(1) incremental evaluation of the Eq. 10 objective.
//!
//! Every annealing proposal and Migration-stage candidate needs the
//! population standard deviation of per-host residual CPU. Recomputing it
//! from the residual vector is O(hosts) per probe (and allocates); the
//! search loops probe thousands of times per mapping, so the objective is
//! the inner-kernel cost. [`ObjectiveAccumulator`] maintains running sums
//! of the residuals so that
//!
//! * `stddev()` is O(1),
//! * a single residual change (`apply`) is O(1), and
//! * a *hypothetical* set of changes (`stddev_after`) is O(changes)
//!   without mutating anything — the delta-evaluation primitive.
//!
//! # Numerical policy
//!
//! Raw Σx / Σx² sums cancel catastrophically when the mean is large
//! relative to the spread (residuals sit near host capacity, ~10³, while
//! the interesting stddevs go to 0), so the sums are kept over deviations
//! from a fixed *shift* (the mean at the last rebuild). Each O(1) update
//! still rounds at the scale of the *squared* deviations, so the drift
//! budget is relative to the data magnitude, not to the (possibly tiny)
//! stddev: `|accumulated − exact| ≤ 1e-9 · (1 + |exact| + |shift|)`. Two
//! guards keep long apply streams inside that budget:
//!
//! * a periodic exact rebuild every [`REFRESH_INTERVAL`] applies (callers
//!   poll [`needs_refresh`](ObjectiveAccumulator::needs_refresh) and hand
//!   back the exact residual vector), which also re-centers the shift;
//! * in debug builds, every rebuild asserts the accumulated stddev agrees
//!   with the exact recompute, so drift can never silently exceed the
//!   refresh policy's budget.

use crate::objective::population_stddev;

/// Exact rebuilds are requested after this many O(1) updates — frequent
/// enough that float drift stays orders of magnitude below the 1e-9
/// equivalence tolerance, rare enough to amortize to nothing.
pub const REFRESH_INTERVAL: u64 = 4096;

/// Running Σ/Σ² view of a residual-CPU vector with O(1) stddev.
///
/// The accumulator never owns the residuals; it shadows whatever vector
/// the caller maintains. The caller must report every change via
/// [`apply`](Self::apply) (or [`rebuild`](Self::rebuild) wholesale) or the
/// view goes stale — `emumap-core`'s `PlacementState` funnels all CPU
/// mutations through its assign/unassign pair for exactly this reason.
#[derive(Clone, Debug)]
pub struct ObjectiveAccumulator {
    /// Number of tracked values (hosts).
    n: usize,
    /// Fixed shift point; sums are over deviations `x − shift`.
    shift: f64,
    /// Σ (x − shift).
    sum: f64,
    /// Σ (x − shift)².
    sum_sq: f64,
    /// O(1) updates since the last exact rebuild.
    updates: u64,
    /// Exact rebuilds performed (the "full evaluation" counter surfaced
    /// in traces; includes the initial build).
    rebuilds: u64,
}

impl ObjectiveAccumulator {
    /// Builds the accumulator over `values` (one entry per host).
    pub fn new(values: &[f64]) -> Self {
        let mut acc = ObjectiveAccumulator {
            n: values.len(),
            shift: 0.0,
            sum: 0.0,
            sum_sq: 0.0,
            updates: 0,
            rebuilds: 0,
        };
        acc.rebuild(values);
        acc
    }

    /// Number of tracked values.
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when no values are tracked.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Exact rebuilds performed so far (includes the initial build).
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// `true` once enough O(1) updates have accumulated that the caller
    /// should hand back the exact vector via [`rebuild`](Self::rebuild).
    pub fn needs_refresh(&self) -> bool {
        self.updates >= REFRESH_INTERVAL
    }

    /// Periodic exact refresh: `values` must be the vector the accumulator
    /// currently shadows. In debug builds, asserts the accumulated stddev
    /// had not drifted past [`drift_budget`](Self::drift_budget) from the
    /// exact recompute (the invariant the refresh policy maintains), then
    /// rebuilds.
    pub fn refresh(&mut self, values: &[f64]) {
        debug_assert_eq!(self.n, values.len(), "tracked value count changed");
        debug_assert!(
            {
                let exact = population_stddev(values);
                (self.stddev() - exact).abs() <= self.drift_budget(exact)
            },
            "accumulator drifted beyond the refresh policy's budget"
        );
        self.rebuild(values);
    }

    /// Maximum absolute stddev drift the refresh policy tolerates against
    /// an exact recompute of `exact`. Relative to the data scale (the
    /// shift, i.e. the mean at the last rebuild): per-apply rounding is
    /// proportional to the squared deviations, and near-zero variance
    /// amplifies any absolute Σ² error through the cancellation, so a
    /// bound relative only to `exact` would be unsatisfiable.
    pub fn drift_budget(&self, exact: f64) -> f64 {
        1e-9 * (1.0 + exact.abs() + self.shift.abs())
    }

    /// Recomputes the sums exactly from `values`, re-centering the shift
    /// on the current mean. Unlike [`refresh`](Self::refresh) this makes
    /// no claim that `values` matches the previously tracked state — it is
    /// the re-sync point after a wholesale state replacement (`reset`).
    pub fn rebuild(&mut self, values: &[f64]) {
        self.n = values.len();
        self.shift = if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        };
        self.sum = values.iter().map(|&x| x - self.shift).sum();
        self.sum_sq = values.iter().map(|&x| (x - self.shift).powi(2)).sum();
        self.updates = 0;
        self.rebuilds += 1;
    }

    /// Reports that one tracked value changed from `old` to `new`. O(1).
    #[inline]
    pub fn apply(&mut self, old: f64, new: f64) {
        let (d_old, d_new) = (old - self.shift, new - self.shift);
        self.sum += d_new - d_old;
        self.sum_sq += d_new * d_new - d_old * d_old;
        self.updates += 1;
    }

    /// Population standard deviation of the tracked values. O(1).
    #[inline]
    pub fn stddev(&self) -> f64 {
        self.variance_of(self.sum, self.sum_sq).sqrt()
    }

    /// Standard deviation *if* each `(old, new)` change in `changes` were
    /// applied, without mutating the accumulator. O(changes) — the
    /// delta-evaluation primitive behind `objective_if_migrated`.
    #[inline]
    pub fn stddev_after<I>(&self, changes: I) -> f64
    where
        I: IntoIterator<Item = (f64, f64)>,
    {
        let (mut sum, mut sum_sq) = (self.sum, self.sum_sq);
        for (old, new) in changes {
            let (d_old, d_new) = (old - self.shift, new - self.shift);
            sum += d_new - d_old;
            sum_sq += d_new * d_new - d_old * d_old;
        }
        self.variance_of(sum, sum_sq).sqrt()
    }

    /// `Var = Σd²/n − (Σd/n)²`, clamped against the tiny negative values
    /// float cancellation can produce near zero variance.
    #[inline]
    fn variance_of(&self, sum: f64, sum_sq: f64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let n = self.n as f64;
        let mean = sum / n;
        (sum_sq / n - mean * mean).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
    }

    #[test]
    fn matches_exact_stddev_on_build() {
        let v = [1000.0, 750.0, 1000.0, 420.0];
        assert_close(
            ObjectiveAccumulator::new(&v).stddev(),
            population_stddev(&v),
        );
    }

    #[test]
    fn empty_is_zero() {
        let acc = ObjectiveAccumulator::new(&[]);
        assert!(acc.is_empty());
        assert_eq!(acc.stddev(), 0.0);
        assert_eq!(acc.stddev_after([]), 0.0);
    }

    #[test]
    fn apply_tracks_mutations_exactly_enough() {
        let mut v = vec![2000.0, 2000.0, 2000.0, 2000.0];
        let mut acc = ObjectiveAccumulator::new(&v);
        // Walk through a few hundred placements/removals.
        for i in 0..400usize {
            let idx = (i * 7) % v.len();
            let delta = if i % 3 == 0 { -137.5 } else { 61.25 };
            let old = v[idx];
            v[idx] += delta;
            acc.apply(old, v[idx]);
            assert_close(acc.stddev(), population_stddev(&v));
        }
    }

    #[test]
    fn perfectly_balanced_is_exactly_zero() {
        // Integer-valued doubles: the shifted sums cancel exactly, so a
        // balanced state reports 0.0 (the Migration tests rely on this).
        let mut acc = ObjectiveAccumulator::new(&[1000.0, 1000.0, 600.0, 1400.0]);
        acc.apply(600.0, 1000.0);
        acc.apply(1400.0, 1000.0);
        assert_eq!(acc.stddev(), 0.0);
    }

    #[test]
    fn stddev_after_is_hypothetical() {
        let v = [900.0, 1100.0, 1000.0];
        let acc = ObjectiveAccumulator::new(&v);
        let moved = [1000.0, 1000.0, 1000.0];
        assert_close(
            acc.stddev_after([(900.0, 1000.0), (1100.0, 1000.0)]),
            population_stddev(&moved),
        );
        // The accumulator itself is untouched.
        assert_close(acc.stddev(), population_stddev(&v));
    }

    #[test]
    fn negative_residuals_are_fine() {
        let v = [-100.0, 100.0];
        let acc = ObjectiveAccumulator::new(&v);
        assert_close(acc.stddev(), 100.0);
    }

    #[test]
    fn refresh_cycle_resets_update_counter() {
        let mut v = vec![1000.0; 8];
        let mut acc = ObjectiveAccumulator::new(&v);
        assert_eq!(acc.rebuilds(), 1);
        for i in 0..REFRESH_INTERVAL {
            let idx = (i as usize) % v.len();
            let old = v[idx];
            v[idx] = old + if i % 2 == 0 { 50.0 } else { -50.0 };
            acc.apply(old, v[idx]);
        }
        assert!(acc.needs_refresh());
        acc.refresh(&v);
        assert!(!acc.needs_refresh());
        assert_eq!(acc.rebuilds(), 2);
        assert_close(acc.stddev(), population_stddev(&v));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "drifted")]
    fn refresh_debug_asserts_against_drift() {
        let mut acc = ObjectiveAccumulator::new(&[1.0, 2.0, 3.0]);
        // Lie about a change; the next refresh must catch the divergence.
        acc.apply(1.0, 500.0);
        acc.refresh(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn rebuild_resyncs_to_replaced_state() {
        // `rebuild` (unlike `refresh`) accepts a wholesale replacement —
        // the reset path — without claiming continuity.
        let mut acc = ObjectiveAccumulator::new(&[1.0, 2.0, 3.0]);
        acc.apply(3.0, 10.0);
        acc.rebuild(&[5.0, 5.0]);
        assert_eq!(acc.len(), 2);
        assert_eq!(acc.stddev(), 0.0);
    }
}
