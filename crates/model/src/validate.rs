//! Independent verification of a finished mapping against the paper's
//! constraint system (Eqs. 1–9).
//!
//! The validator recomputes everything from the raw topology and virtual
//! environment — it shares no code with [`ResidualState`](crate::ResidualState)
//! on purpose, so mapper bookkeeping bugs cannot hide behind the same
//! arithmetic. Property tests assert that every mapping returned by every
//! mapper validates cleanly.

use crate::mapping::Mapping;
use crate::physical::PhysicalTopology;
use crate::virtualenv::{VLinkId, VirtualEnvironment};
use emumap_graph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One violated constraint.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// The mapping's placement table does not cover every guest exactly
    /// once (Eq. 1). Carries the expected and actual table lengths.
    PlacementSizeMismatch {
        /// Number of guests in the virtual environment.
        expected: usize,
        /// Length of the mapping's placement table.
        actual: usize,
    },
    /// A guest was placed on a switch or unknown node.
    MappedToNonHost {
        /// The offending guest index.
        guest: usize,
        /// The node it was mapped to.
        node: NodeId,
    },
    /// Eq. 2: the guests on a host demand more memory than it has.
    MemoryExceeded {
        /// The overloaded host.
        host: NodeId,
        /// Total memory demanded (MB).
        demanded: u64,
        /// Effective capacity (MB).
        capacity: u64,
    },
    /// Eq. 3: the guests on a host demand more storage than it has.
    StorageExceeded {
        /// The overloaded host.
        host: NodeId,
        /// Total storage demanded (GB).
        demanded: f64,
        /// Effective capacity (GB).
        capacity: f64,
    },
    /// The mapping's route table does not cover every virtual link.
    RouteTableSizeMismatch {
        /// Number of virtual links.
        expected: usize,
        /// Length of the route table.
        actual: usize,
    },
    /// A virtual link between co-hosted guests must use the empty
    /// intra-host route, and a link between differently-hosted guests must
    /// not be empty (Eqs. 4–5 degenerate case).
    IntraHostMismatch {
        /// The offending virtual link.
        link: VLinkId,
    },
    /// Eq. 6: consecutive route edges do not share a node, or Eq. 4: the
    /// route does not start at the source guest's host.
    RouteDiscontinuous {
        /// The offending virtual link.
        link: VLinkId,
    },
    /// Eq. 5: the route does not end at the destination guest's host.
    RouteWrongDestination {
        /// The offending virtual link.
        link: VLinkId,
        /// Where the route actually ended.
        ended_at: NodeId,
        /// The destination guest's host.
        expected: NodeId,
    },
    /// Eq. 7: the route visits a node twice.
    RouteHasLoop {
        /// The offending virtual link.
        link: VLinkId,
    },
    /// Eq. 8: cumulative route latency exceeds the virtual link's bound.
    LatencyExceeded {
        /// The offending virtual link.
        link: VLinkId,
        /// Total latency along the route (ms).
        total: f64,
        /// The link's bound (ms).
        bound: f64,
    },
    /// Eq. 9: the virtual links routed over a physical edge demand more
    /// bandwidth than it has.
    BandwidthExceeded {
        /// The oversubscribed physical edge.
        edge: EdgeId,
        /// Total bandwidth demanded (kbps).
        demanded: f64,
        /// The edge's capacity (kbps).
        capacity: f64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::PlacementSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "Eq. 1 violated: placement covers {actual} guests, environment has {expected}"
                )
            }
            Violation::MappedToNonHost { guest, node } => {
                write!(
                    f,
                    "Eq. 1 violated: guest {guest} mapped to non-host node {node}"
                )
            }
            Violation::MemoryExceeded {
                host,
                demanded,
                capacity,
            } => {
                write!(
                    f,
                    "Eq. 2 violated: host {host}: memory {demanded} MB demanded > {capacity} MB capacity"
                )
            }
            Violation::StorageExceeded {
                host,
                demanded,
                capacity,
            } => {
                write!(
                    f,
                    "Eq. 3 violated: host {host}: storage {demanded} GB demanded > {capacity} GB capacity"
                )
            }
            Violation::RouteTableSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "Eqs. 4-5 violated: route table covers {actual} links, environment has {expected}"
                )
            }
            Violation::IntraHostMismatch { link } => {
                write!(
                    f,
                    "Eqs. 4-5 violated: link {link}: intra-host route shape mismatch"
                )
            }
            Violation::RouteDiscontinuous { link } => {
                write!(
                    f,
                    "Eqs. 4/6 violated: link {link}: route edges do not chain from the source host"
                )
            }
            Violation::RouteWrongDestination {
                link,
                ended_at,
                expected,
            } => {
                write!(
                    f,
                    "Eq. 5 violated: link {link}: route ends at {ended_at}, expected {expected}"
                )
            }
            Violation::RouteHasLoop { link } => {
                write!(f, "Eq. 7 violated: link {link}: route revisits a node")
            }
            Violation::LatencyExceeded { link, total, bound } => {
                write!(
                    f,
                    "Eq. 8 violated: link {link}: latency {total} ms > bound {bound} ms"
                )
            }
            Violation::BandwidthExceeded {
                edge,
                demanded,
                capacity,
            } => {
                write!(
                    f,
                    "Eq. 9 violated: edge {edge}: bandwidth {demanded} kbps demanded > {capacity} kbps"
                )
            }
        }
    }
}

impl std::error::Error for Violation {}

/// Checks a mapping against Eqs. 1–9. Returns every violation found (an
/// empty `Ok(())` means the mapping is valid).
pub fn validate_mapping(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    mapping: &Mapping,
) -> Result<(), Vec<Violation>> {
    let mut violations = Vec::new();

    // --- Eq. 1: every guest mapped exactly once (dense table => presence
    // check is a length check; "once" is structural).
    if mapping.placement().len() != venv.guest_count() {
        violations.push(Violation::PlacementSizeMismatch {
            expected: venv.guest_count(),
            actual: mapping.placement().len(),
        });
        // Placement is unusable; later checks would index out of bounds.
        return Err(violations);
    }

    for (guest_idx, &node) in mapping.placement().iter().enumerate() {
        if !phys.graph().contains_node(node) || !phys.is_host(node) {
            violations.push(Violation::MappedToNonHost {
                guest: guest_idx,
                node,
            });
        }
    }
    if !violations.is_empty() {
        return Err(violations);
    }

    // --- Eqs. 2–3: per-host memory and storage.
    let mut mem_demand: HashMap<NodeId, u64> = HashMap::new();
    let mut stor_demand: HashMap<NodeId, f64> = HashMap::new();
    for g in venv.guest_ids() {
        let host = mapping.host_of(g);
        *mem_demand.entry(host).or_default() += venv.guest(g).mem.value();
        *stor_demand.entry(host).or_default() += venv.guest(g).stor.value();
    }
    for (&host, &demanded) in &mem_demand {
        let capacity = phys.effective_mem(host).value();
        if demanded > capacity {
            violations.push(Violation::MemoryExceeded {
                host,
                demanded,
                capacity,
            });
        }
    }
    for (&host, &demanded) in &stor_demand {
        let capacity = phys.effective_stor(host).value();
        if demanded > capacity + 1e-9 {
            violations.push(Violation::StorageExceeded {
                host,
                demanded,
                capacity,
            });
        }
    }

    // --- Route table shape.
    if mapping.routes().len() != venv.link_count() {
        violations.push(Violation::RouteTableSizeMismatch {
            expected: venv.link_count(),
            actual: mapping.routes().len(),
        });
        return Err(violations);
    }

    // --- Eqs. 4–8 per link; accumulate Eq. 9 usage.
    let mut bw_usage: HashMap<EdgeId, f64> = HashMap::new();
    for l in venv.link_ids() {
        let (src, dst) = venv.link_endpoints(l);
        let (hs, hd) = (mapping.host_of(src), mapping.host_of(dst));
        let route = mapping.route_of(l);
        let spec = venv.link(l);

        if hs == hd {
            // §3.2: same-host links have infinite bandwidth and zero
            // latency; the only valid route is the empty one.
            if !route.is_intra_host() {
                violations.push(Violation::IntraHostMismatch { link: l });
            }
            continue;
        }
        if route.is_intra_host() {
            violations.push(Violation::IntraHostMismatch { link: l });
            continue;
        }

        // Eq. 4 + Eq. 6: chain edges starting at the source host.
        let Some(seq) = route.node_sequence(phys, hs) else {
            violations.push(Violation::RouteDiscontinuous { link: l });
            continue;
        };
        // Eq. 5: end at the destination host.
        let last = *seq.last().expect("sequence contains at least the start");
        if last != hd {
            violations.push(Violation::RouteWrongDestination {
                link: l,
                ended_at: last,
                expected: hd,
            });
        }
        // Eq. 7: no loops.
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != seq.len() {
            violations.push(Violation::RouteHasLoop { link: l });
        }
        // Eq. 8: latency bound.
        let total_lat: f64 = route
            .edges()
            .iter()
            .map(|&e| phys.link(e).lat.value())
            .sum();
        if total_lat > spec.lat.value() + 1e-9 {
            violations.push(Violation::LatencyExceeded {
                link: l,
                total: total_lat,
                bound: spec.lat.value(),
            });
        }
        // Eq. 9 accumulation.
        for &e in route.edges() {
            *bw_usage.entry(e).or_default() += spec.bw.value();
        }
    }

    for (&edge, &demanded) in &bw_usage {
        let capacity = phys.link(edge).bw.value();
        if demanded > capacity + 1e-9 {
            violations.push(Violation::BandwidthExceeded {
                edge,
                demanded,
                capacity,
            });
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{HostSpec, LinkSpec, VmmOverhead};
    use crate::resources::{Kbps, MemMb, Millis, Mips, StorGb};
    use crate::virtualenv::{GuestSpec, VLinkSpec};
    use crate::Route;
    use emumap_graph::generators;

    fn phys_line(n: usize, bw: f64) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::line(n),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(bw), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn venv_pair(bw: f64, lat: f64) -> VirtualEnvironment {
        let mut v = VirtualEnvironment::new();
        let a = v.add_guest(GuestSpec::new(Mips(10.0), MemMb(128), StorGb(10.0)));
        let b = v.add_guest(GuestSpec::new(Mips(10.0), MemMb(128), StorGb(10.0)));
        v.add_link(a, b, VLinkSpec::new(Kbps(bw), Millis(lat)));
        v
    }

    #[test]
    fn valid_inter_host_mapping_passes() {
        let p = phys_line(2, 1000.0);
        let v = venv_pair(100.0, 10.0);
        let e: Vec<_> = p.graph().edge_ids().collect();
        let m = Mapping::new(
            vec![p.hosts()[0], p.hosts()[1]],
            vec![Route::new(vec![e[0]])],
        );
        assert_eq!(validate_mapping(&p, &v, &m), Ok(()));
    }

    #[test]
    fn valid_intra_host_mapping_passes() {
        let p = phys_line(2, 1000.0);
        // Even a virtual link demanding more than any physical link is fine
        // intra-host (infinite bandwidth, zero latency).
        let v = venv_pair(1e9, 0.0);
        let m = Mapping::new(vec![p.hosts()[0], p.hosts()[0]], vec![Route::intra_host()]);
        assert_eq!(validate_mapping(&p, &v, &m), Ok(()));
    }

    #[test]
    fn placement_size_mismatch_detected() {
        let p = phys_line(2, 1000.0);
        let v = venv_pair(1.0, 100.0);
        let m = Mapping::new(vec![p.hosts()[0]], vec![]);
        let errs = validate_mapping(&p, &v, &m).unwrap_err();
        assert!(matches!(
            errs[0],
            Violation::PlacementSizeMismatch {
                expected: 2,
                actual: 1
            }
        ));
    }

    #[test]
    fn mapped_to_switch_detected() {
        let shape = generators::switched_cascade(2, 4);
        let p = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let v = venv_pair(1.0, 100.0);
        let switch = p
            .graph()
            .nodes()
            .find(|(_, n)| !n.is_host())
            .map(|(id, _)| id)
            .unwrap();
        let m = Mapping::new(vec![p.hosts()[0], switch], vec![Route::intra_host()]);
        let errs = validate_mapping(&p, &v, &m).unwrap_err();
        assert!(matches!(
            errs[0],
            Violation::MappedToNonHost { guest: 1, .. }
        ));
    }

    #[test]
    fn memory_overflow_detected() {
        let p = phys_line(2, 1000.0);
        let mut v = VirtualEnvironment::new();
        let a = v.add_guest(GuestSpec::new(Mips(1.0), MemMb(600), StorGb(1.0)));
        let b = v.add_guest(GuestSpec::new(Mips(1.0), MemMb(600), StorGb(1.0)));
        v.add_link(a, b, VLinkSpec::new(Kbps(1.0), Millis(100.0)));
        let m = Mapping::new(vec![p.hosts()[0], p.hosts()[0]], vec![Route::intra_host()]);
        let errs = validate_mapping(&p, &v, &m).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            Violation::MemoryExceeded {
                demanded: 1200,
                capacity: 1024,
                ..
            }
        )));
    }

    #[test]
    fn storage_overflow_detected() {
        let p = phys_line(2, 1000.0);
        let mut v = VirtualEnvironment::new();
        let a = v.add_guest(GuestSpec::new(Mips(1.0), MemMb(1), StorGb(80.0)));
        let b = v.add_guest(GuestSpec::new(Mips(1.0), MemMb(1), StorGb(80.0)));
        v.add_link(a, b, VLinkSpec::new(Kbps(1.0), Millis(100.0)));
        let m = Mapping::new(vec![p.hosts()[1], p.hosts()[1]], vec![Route::intra_host()]);
        let errs = validate_mapping(&p, &v, &m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, Violation::StorageExceeded { .. })));
    }

    #[test]
    fn route_table_size_mismatch_detected() {
        let p = phys_line(2, 1000.0);
        let v = venv_pair(1.0, 100.0);
        let m = Mapping::new(vec![p.hosts()[0], p.hosts()[1]], vec![]);
        let errs = validate_mapping(&p, &v, &m).unwrap_err();
        assert!(errs.iter().any(|e| matches!(
            e,
            Violation::RouteTableSizeMismatch {
                expected: 1,
                actual: 0
            }
        )));
    }

    #[test]
    fn intra_host_mismatches_detected_both_ways() {
        let p = phys_line(2, 1000.0);
        let v = venv_pair(1.0, 100.0);
        let e: Vec<_> = p.graph().edge_ids().collect();
        // Co-hosted guests with a non-empty route.
        let m = Mapping::new(
            vec![p.hosts()[0], p.hosts()[0]],
            vec![Route::new(vec![e[0]])],
        );
        let errs = validate_mapping(&p, &v, &m).unwrap_err();
        assert!(matches!(errs[0], Violation::IntraHostMismatch { .. }));
        // Differently-hosted guests with an empty route.
        let m = Mapping::new(vec![p.hosts()[0], p.hosts()[1]], vec![Route::intra_host()]);
        let errs = validate_mapping(&p, &v, &m).unwrap_err();
        assert!(matches!(errs[0], Violation::IntraHostMismatch { .. }));
    }

    #[test]
    fn discontinuous_route_detected() {
        let p = phys_line(4, 1000.0);
        let v = venv_pair(1.0, 100.0);
        let e: Vec<_> = p.graph().edge_ids().collect();
        // Host 0 -> host 3 but skipping the middle edge.
        let m = Mapping::new(
            vec![p.hosts()[0], p.hosts()[3]],
            vec![Route::new(vec![e[0], e[2]])],
        );
        let errs = validate_mapping(&p, &v, &m).unwrap_err();
        assert!(matches!(errs[0], Violation::RouteDiscontinuous { .. }));
    }

    #[test]
    fn wrong_destination_detected() {
        let p = phys_line(3, 1000.0);
        let v = venv_pair(1.0, 100.0);
        let e: Vec<_> = p.graph().edge_ids().collect();
        // Route stops one hop short.
        let m = Mapping::new(
            vec![p.hosts()[0], p.hosts()[2]],
            vec![Route::new(vec![e[0]])],
        );
        let errs = validate_mapping(&p, &v, &m).unwrap_err();
        assert!(matches!(errs[0], Violation::RouteWrongDestination { .. }));
    }

    #[test]
    fn looping_route_detected() {
        // Ring of 3: go the long way around AND come back to start first.
        let shape = generators::ring(3);
        let p = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let v = venv_pair(1.0, 1000.0);
        // Edges of ring(3): (0,1), (1,2), (2,0). Route 0->1->2->0->1 loops.
        let e: Vec<_> = p.graph().edge_ids().collect();
        let m = Mapping::new(
            vec![p.hosts()[0], p.hosts()[1]],
            vec![Route::new(vec![e[0], e[1], e[2], e[0]])],
        );
        let errs = validate_mapping(&p, &v, &m).unwrap_err();
        assert!(errs
            .iter()
            .any(|err| matches!(err, Violation::RouteHasLoop { .. })));
    }

    #[test]
    fn latency_bound_enforced() {
        let p = phys_line(3, 1000.0); // each hop 5 ms
        let v = venv_pair(1.0, 9.0); // bound below the 10 ms two-hop path
        let e: Vec<_> = p.graph().edge_ids().collect();
        let m = Mapping::new(
            vec![p.hosts()[0], p.hosts()[2]],
            vec![Route::new(vec![e[0], e[1]])],
        );
        let errs = validate_mapping(&p, &v, &m).unwrap_err();
        assert!(matches!(
            errs[0],
            Violation::LatencyExceeded { total, bound, .. } if total == 10.0 && bound == 9.0
        ));
    }

    #[test]
    fn bandwidth_aggregation_across_links_enforced() {
        let p = phys_line(2, 100.0);
        let mut v = VirtualEnvironment::new();
        let a = v.add_guest(GuestSpec::new(Mips(1.0), MemMb(1), StorGb(1.0)));
        let b = v.add_guest(GuestSpec::new(Mips(1.0), MemMb(1), StorGb(1.0)));
        // Two 60 kbps virtual links over the same 100 kbps physical edge.
        v.add_link(a, b, VLinkSpec::new(Kbps(60.0), Millis(100.0)));
        v.add_link(a, b, VLinkSpec::new(Kbps(60.0), Millis(100.0)));
        let e: Vec<_> = p.graph().edge_ids().collect();
        let m = Mapping::new(
            vec![p.hosts()[0], p.hosts()[1]],
            vec![Route::new(vec![e[0]]), Route::new(vec![e[0]])],
        );
        let errs = validate_mapping(&p, &v, &m).unwrap_err();
        assert!(errs.iter().any(|err| matches!(
            err,
            Violation::BandwidthExceeded { demanded, capacity, .. }
                if *demanded == 120.0 && *capacity == 100.0
        )));
    }

    #[test]
    fn exact_bandwidth_fit_passes() {
        let p = phys_line(2, 120.0);
        let mut v = VirtualEnvironment::new();
        let a = v.add_guest(GuestSpec::new(Mips(1.0), MemMb(1), StorGb(1.0)));
        let b = v.add_guest(GuestSpec::new(Mips(1.0), MemMb(1), StorGb(1.0)));
        v.add_link(a, b, VLinkSpec::new(Kbps(60.0), Millis(100.0)));
        v.add_link(a, b, VLinkSpec::new(Kbps(60.0), Millis(100.0)));
        let e: Vec<_> = p.graph().edge_ids().collect();
        let m = Mapping::new(
            vec![p.hosts()[0], p.hosts()[1]],
            vec![Route::new(vec![e[0]]), Route::new(vec![e[0]])],
        );
        assert_eq!(validate_mapping(&p, &v, &m), Ok(()));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::MemoryExceeded {
            host: NodeId::from_index(3),
            demanded: 2048,
            capacity: 1024,
        };
        let s = format!("{v}");
        assert!(s.contains("n3") && s.contains("2048") && s.contains("1024"));
        assert!(s.contains("Eq. 2"), "names the violated equation: {s}");
    }

    #[test]
    fn violation_is_a_std_error_naming_the_equation() {
        let v = Violation::LatencyExceeded {
            link: VLinkId::from_index(1),
            total: 15.0,
            bound: 10.0,
        };
        let err: &dyn std::error::Error = &v;
        assert!(err.to_string().contains("Eq. 8"));
    }
}
