//! Objective functions.
//!
//! The paper's primary objective (Eq. 10) minimizes the population standard
//! deviation of residual CPU across hosts — load balance that is robust to
//! heterogeneous processing power. The future-work section (§6) sketches a
//! consolidation objective (minimize hosts used); both are provided so the
//! Migration stage can be parameterized (see `emumap-core`).

use crate::mapping::Mapping;
use crate::physical::PhysicalTopology;
use crate::residual::ResidualState;
use crate::virtualenv::VirtualEnvironment;

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation (`√(Σ(x−x̄)²/n)`, the exact form of
/// Eq. 10). Returns 0 for an empty slice.
pub fn population_stddev(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|&x| (x - m).powi(2)).sum::<f64>() / values.len() as f64;
    var.sqrt()
}

/// The load-balance factor of a residual state: Eq. 10 evaluated on the
/// per-host residual CPU (Eqs. 11–12). Lower is better; 0 means perfectly
/// balanced residuals.
pub fn load_balance_factor(phys: &PhysicalTopology, residual: &ResidualState) -> f64 {
    population_stddev(&residual.host_proc_residuals(phys))
}

/// Eq. 10 evaluated on a finished [`Mapping`]: rebuilds the residual CPU of
/// each host from the placement (`rproc(c_i) = proc(c_i) − Σ vproc(g)`,
/// Eq. 11) and returns the population standard deviation.
pub fn mapping_objective(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    mapping: &Mapping,
) -> f64 {
    let mut rproc: Vec<f64> = phys
        .hosts()
        .iter()
        .map(|&h| phys.effective_proc(h).value())
        .collect();
    // Host node-id -> dense host index.
    let mut host_index = vec![usize::MAX; phys.graph().node_count()];
    for (i, &h) in phys.hosts().iter().enumerate() {
        host_index[h.index()] = i;
    }
    for g in venv.guest_ids() {
        let host = mapping.host_of(g);
        let idx = host_index[host.index()];
        assert!(
            idx != usize::MAX,
            "guest {g} mapped to non-host node {host}"
        );
        rproc[idx] -= venv.guest(g).proc.value();
    }
    population_stddev(&rproc)
}

/// The §6 consolidation objective: how many hosts the mapping touches.
/// Lower is better (more hosts left completely free for other testers).
pub fn hosts_used_objective(mapping: &Mapping) -> usize {
    mapping.hosts_used()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{HostSpec, LinkSpec, VmmOverhead};
    use crate::resources::{Kbps, MemMb, Millis, Mips, StorGb};
    use crate::virtualenv::GuestSpec;
    use crate::Route;
    use emumap_graph::generators;

    #[test]
    fn mean_and_stddev_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(population_stddev(&[]), 0.0);
        assert_eq!(population_stddev(&[5.0, 5.0, 5.0]), 0.0);
        // Population (not sample) stddev: √(((2-3)²+(4-3)²)/2) = 1.
        assert_eq!(population_stddev(&[2.0, 4.0]), 1.0);
    }

    #[test]
    fn stddev_handles_negative_residuals() {
        // CPU residuals may be negative; the objective must still be
        // well-defined.
        let v = [-100.0, 100.0];
        assert_eq!(population_stddev(&v), 100.0);
    }

    fn tiny_setup() -> (PhysicalTopology, VirtualEnvironment) {
        let phys = PhysicalTopology::from_shape(
            &generators::line(2),
            [
                HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0)),
                HostSpec::new(Mips(2000.0), MemMb(1024), StorGb(100.0)),
            ]
            .into_iter(),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        venv.add_guest(GuestSpec::new(Mips(500.0), MemMb(128), StorGb(10.0)));
        venv.add_guest(GuestSpec::new(Mips(500.0), MemMb(128), StorGb(10.0)));
        (phys, venv)
    }

    #[test]
    fn mapping_objective_rewards_balancing_heterogeneous_hosts() {
        let (phys, venv) = tiny_setup();
        let h = phys.hosts();
        // Both guests on the big host: residuals (1000, 1000) -> stddev 0.
        let balanced = Mapping::new(vec![h[1], h[1]], vec![]);
        assert_eq!(mapping_objective(&phys, &venv, &balanced), 0.0);
        // One each: residuals (500, 1500) -> stddev 500.
        let split = Mapping::new(vec![h[0], h[1]], vec![]);
        assert_eq!(mapping_objective(&phys, &venv, &split), 500.0);
        // Both on the small host: residuals (0, 2000) -> stddev 1000.
        let worst = Mapping::new(vec![h[0], h[0]], vec![]);
        assert_eq!(mapping_objective(&phys, &venv, &worst), 1000.0);
    }

    #[test]
    fn residual_and_mapping_objectives_agree() {
        let (phys, venv) = tiny_setup();
        let h = phys.hosts();
        let mut residual = crate::ResidualState::new(&phys);
        residual
            .place(&phys, venv.guest(emumap_graph::NodeId::from_index(0)), h[0])
            .unwrap();
        residual
            .place(&phys, venv.guest(emumap_graph::NodeId::from_index(1)), h[1])
            .unwrap();
        let via_residual = load_balance_factor(&phys, &residual);
        let via_mapping = mapping_objective(&phys, &venv, &Mapping::new(vec![h[0], h[1]], vec![]));
        assert!((via_residual - via_mapping).abs() < 1e-12);
    }

    #[test]
    fn hosts_used_counts_distinct() {
        let (phys, _) = tiny_setup();
        let h = phys.hosts();
        let m = Mapping::new(vec![h[0], h[0]], vec![Route::intra_host()]);
        assert_eq!(hosts_used_objective(&m), 1);
        let m2 = Mapping::new(vec![h[0], h[1]], vec![Route::intra_host()]);
        assert_eq!(hosts_used_objective(&m2), 2);
    }
}
