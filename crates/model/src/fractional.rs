//! Fractional-solution accumulators for LP-relaxation mappers.
//!
//! The randomized-rounding pipeline (Rost & Schmid's VNEP approximation,
//! adapted to the paper's Eqs. 1–9) first computes a *fractional*
//! embedding: every guest carries a probability distribution over
//! candidate hosts instead of a single assignment. This module holds the
//! two dense accumulators that represent such a solution —
//! [`FractionalPlacement`] (the guests × hosts distribution matrix) and
//! [`ExpectedLoads`] (the per-host expected resource usage it induces) —
//! kept in `emumap-model` so both the solver (`emumap-core`) and any
//! analysis tooling share one representation.
//!
//! Both types are allocation-disciplined: `reset` reshapes in place and
//! buffers keep their capacity across runs, so a mapper can park them in
//! its `MapCache` scratch.

use crate::virtualenv::GuestSpec;

/// A dense guests × hosts matrix of non-negative weights; each row,
/// once normalized, is one guest's placement distribution.
///
/// Rows are stored contiguously (`row(g)` is a slice), hosts are
/// addressed by their dense *host index* (position in
/// `PhysicalTopology::hosts()`), not by graph `NodeId` — callers keep the
/// translation table.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FractionalPlacement {
    guests: usize,
    hosts: usize,
    weights: Vec<f64>,
}

impl FractionalPlacement {
    /// An empty matrix; call [`reset`](Self::reset) before use.
    pub fn new() -> Self {
        FractionalPlacement::default()
    }

    /// Reshapes to `guests` × `hosts` and fills every entry with
    /// `initial`. Keeps the buffer's capacity.
    pub fn reset(&mut self, guests: usize, hosts: usize, initial: f64) {
        self.guests = guests;
        self.hosts = hosts;
        self.weights.clear();
        self.weights.resize(guests * hosts, initial);
    }

    /// Number of guest rows.
    pub fn guest_count(&self) -> usize {
        self.guests
    }

    /// Number of host columns.
    pub fn host_count(&self) -> usize {
        self.hosts
    }

    /// Guest `g`'s weight row.
    pub fn row(&self, g: usize) -> &[f64] {
        &self.weights[g * self.hosts..(g + 1) * self.hosts]
    }

    /// Guest `g`'s weight row, mutable.
    pub fn row_mut(&mut self, g: usize) -> &mut [f64] {
        &mut self.weights[g * self.hosts..(g + 1) * self.hosts]
    }

    /// Rescales row `g` to sum to 1. Returns `false` (leaving the row
    /// untouched) when the row's mass is too small to normalize — the
    /// caller decides whether that means "no candidate host".
    pub fn normalize_row(&mut self, g: usize) -> bool {
        let row = self.row_mut(g);
        let sum: f64 = row.iter().sum();
        if !(sum.is_finite() && sum > f64::MIN_POSITIVE) {
            return false;
        }
        for w in row {
            *w /= sum;
        }
        true
    }

    /// The host index with the largest weight in row `g` (smallest index
    /// wins ties, so the choice is deterministic). `None` for an empty
    /// matrix.
    pub fn argmax_row(&self, g: usize) -> Option<usize> {
        let row = self.row(g);
        let mut best: Option<(usize, f64)> = None;
        for (h, &w) in row.iter().enumerate() {
            if best.is_none_or(|(_, bw)| w > bw) {
                best = Some((h, w));
            }
        }
        best.map(|(h, _)| h)
    }

    /// Samples a host from row `g` by inverting the cumulative
    /// distribution at `unit` (a uniform draw in `[0, 1)` supplied by the
    /// caller, so the RNG stays outside the model crate). Degenerate rows
    /// (zero or non-finite mass) fall back to [`argmax_row`](Self::argmax_row).
    pub fn sample_row(&self, g: usize, unit: f64) -> Option<usize> {
        let row = self.row(g);
        let sum: f64 = row.iter().sum();
        if !(sum.is_finite() && sum > f64::MIN_POSITIVE) {
            return self.argmax_row(g);
        }
        let target = unit.clamp(0.0, 1.0) * sum;
        let mut acc = 0.0;
        let mut last_positive = None;
        for (h, &w) in row.iter().enumerate() {
            if w > 0.0 {
                acc += w;
                last_positive = Some(h);
                if target < acc {
                    return Some(h);
                }
            }
        }
        // Rounding left `target` at or past the final cumulative sum;
        // the last host with positive mass is the correct preimage.
        last_positive
    }
}

/// Expected per-host resource usage induced by a [`FractionalPlacement`]:
/// `E[load(h)] = Σ_g x[g][h] · demand(g)` for each of the three host
/// resources. Units follow `GuestSpec` (MIPS / MB / GB) as raw `f64`s —
/// expectations are fractional even for the integer-backed memory.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExpectedLoads {
    proc: Vec<f64>,
    mem: Vec<f64>,
    stor: Vec<f64>,
}

impl ExpectedLoads {
    /// Empty accumulator; call [`reset`](Self::reset) before use.
    pub fn new() -> Self {
        ExpectedLoads::default()
    }

    /// Clears and resizes to `hosts` columns of zero load.
    pub fn reset(&mut self, hosts: usize) {
        for col in [&mut self.proc, &mut self.mem, &mut self.stor] {
            col.clear();
            col.resize(hosts, 0.0);
        }
    }

    /// Number of host columns.
    pub fn host_count(&self) -> usize {
        self.proc.len()
    }

    /// Adds `weight` (a row entry `x[g][h]`) of `guest`'s demand to host
    /// index `h`.
    pub fn add(&mut self, h: usize, weight: f64, guest: &GuestSpec) {
        self.proc[h] += weight * guest.proc.value();
        self.mem[h] += weight * guest.mem.value() as f64;
        self.stor[h] += weight * guest.stor.value();
    }

    /// Accumulates every guest row of `frac` weighted by the guest specs
    /// (given in row order). Resets first, so the result is a pure
    /// function of the arguments.
    pub fn accumulate<'a>(
        &mut self,
        frac: &FractionalPlacement,
        guests: impl IntoIterator<Item = &'a GuestSpec>,
    ) {
        self.reset(frac.host_count());
        for (g, spec) in guests.into_iter().enumerate() {
            for (h, &w) in frac.row(g).iter().enumerate() {
                if w > 0.0 {
                    self.add(h, w, spec);
                }
            }
        }
    }

    /// Expected CPU load on host index `h`, MIPS.
    pub fn proc(&self, h: usize) -> f64 {
        self.proc[h]
    }

    /// Expected memory load on host index `h`, MB.
    pub fn mem(&self, h: usize) -> f64 {
        self.mem[h]
    }

    /// Expected storage load on host index `h`, GB.
    pub fn stor(&self, h: usize) -> f64 {
        self.stor[h]
    }

    /// The largest of the three utilizations on host `h` against the
    /// given capacities — the congestion measure a packing-LP solver
    /// prices. Zero-capacity resources count as fully congested only
    /// when load is placed on them.
    pub fn max_utilization(&self, h: usize, cap_proc: f64, cap_mem: f64, cap_stor: f64) -> f64 {
        let util = |load: f64, cap: f64| {
            if load <= 0.0 {
                0.0
            } else if cap > 0.0 {
                load / cap
            } else {
                f64::INFINITY
            }
        };
        util(self.proc[h], cap_proc)
            .max(util(self.mem[h], cap_mem))
            .max(util(self.stor[h], cap_stor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::{MemMb, Mips, StorGb};

    fn frac_2x3(rows: [[f64; 3]; 2]) -> FractionalPlacement {
        let mut f = FractionalPlacement::new();
        f.reset(2, 3, 0.0);
        for (g, row) in rows.iter().enumerate() {
            f.row_mut(g).copy_from_slice(row);
        }
        f
    }

    #[test]
    fn reset_reshapes_and_fills() {
        let mut f = FractionalPlacement::new();
        f.reset(2, 3, 1.0);
        assert_eq!((f.guest_count(), f.host_count()), (2, 3));
        assert_eq!(f.row(1), &[1.0, 1.0, 1.0]);
        f.reset(1, 2, 0.5);
        assert_eq!((f.guest_count(), f.host_count()), (1, 2));
        assert_eq!(f.row(0), &[0.5, 0.5]);
    }

    #[test]
    fn normalize_row_scales_to_unit_mass() {
        let mut f = frac_2x3([[2.0, 6.0, 0.0], [0.0, 0.0, 0.0]]);
        assert!(f.normalize_row(0));
        assert_eq!(f.row(0), &[0.25, 0.75, 0.0]);
        assert!(!f.normalize_row(1), "zero row cannot normalize");
        assert_eq!(f.row(1), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn argmax_breaks_ties_toward_smaller_index() {
        let f = frac_2x3([[0.3, 0.4, 0.3], [0.5, 0.5, 0.0]]);
        assert_eq!(f.argmax_row(0), Some(1));
        assert_eq!(f.argmax_row(1), Some(0));
    }

    #[test]
    fn sample_row_inverts_the_cumulative_distribution() {
        let f = frac_2x3([[0.2, 0.5, 0.3], [0.0, 1.0, 0.0]]);
        assert_eq!(f.sample_row(0, 0.0), Some(0));
        assert_eq!(f.sample_row(0, 0.19), Some(0));
        assert_eq!(f.sample_row(0, 0.21), Some(1));
        assert_eq!(f.sample_row(0, 0.69), Some(1));
        assert_eq!(f.sample_row(0, 0.71), Some(2));
        assert_eq!(f.sample_row(0, 0.999), Some(2));
        // unit == 1.0 still lands on the last positive-mass host.
        assert_eq!(f.sample_row(0, 1.0), Some(2));
        for unit in [0.0, 0.5, 1.0] {
            assert_eq!(f.sample_row(1, unit), Some(1));
        }
    }

    #[test]
    fn sample_row_degenerate_falls_back_to_argmax() {
        let f = frac_2x3([[0.0, 0.0, 0.0], [1.0, 2.0, 3.0]]);
        // Zero mass: argmax of an all-zero row is the first host.
        assert_eq!(f.sample_row(0, 0.7), Some(0));
    }

    #[test]
    fn sample_row_skips_zero_mass_hosts() {
        let f = frac_2x3([[0.5, 0.0, 0.5], [1.0, 0.0, 0.0]]);
        assert_eq!(f.sample_row(0, 0.49), Some(0));
        assert_eq!(f.sample_row(0, 0.51), Some(2));
    }

    #[test]
    fn expected_loads_accumulate_demand_weighted_rows() {
        let f = frac_2x3([[1.0, 0.0, 0.0], [0.25, 0.75, 0.0]]);
        let guests = [
            GuestSpec::new(Mips(100.0), MemMb(200), StorGb(10.0)),
            GuestSpec::new(Mips(40.0), MemMb(80), StorGb(4.0)),
        ];
        let mut loads = ExpectedLoads::new();
        loads.accumulate(&f, guests.iter());
        assert_eq!(loads.host_count(), 3);
        assert!((loads.proc(0) - 110.0).abs() < 1e-12);
        assert!((loads.mem(0) - 220.0).abs() < 1e-12);
        assert!((loads.stor(0) - 11.0).abs() < 1e-12);
        assert!((loads.proc(1) - 30.0).abs() < 1e-12);
        assert_eq!(loads.proc(2), 0.0);
    }

    #[test]
    fn max_utilization_takes_the_binding_resource() {
        let f = frac_2x3([[1.0, 0.0, 0.0], [0.0, 0.0, 0.0]]);
        let guests = [
            GuestSpec::new(Mips(50.0), MemMb(900), StorGb(1.0)),
            GuestSpec::new(Mips(1.0), MemMb(1), StorGb(1.0)),
        ];
        let mut loads = ExpectedLoads::new();
        loads.accumulate(&f, guests.iter());
        // mem is the binding resource: 900/1000 > 50/100 > 1/100.
        let u = loads.max_utilization(0, 100.0, 1000.0, 100.0);
        assert!((u - 0.9).abs() < 1e-12);
        assert_eq!(loads.max_utilization(1, 100.0, 1000.0, 100.0), 0.0);
        // Zero capacity with positive load is infinitely congested.
        assert_eq!(loads.max_utilization(0, 0.0, 1000.0, 100.0), f64::INFINITY);
    }
}
