//! Resource quantity newtypes.
//!
//! The paper's formal model (§3.2) types host capacities as
//! `proc : C → ℝ` (MIPS), `mem : C → ℕ` (we use megabytes), and
//! `stor : C → ℝ` (gigabytes), and link capacities as `bw : E_c → ℝ`
//! (kilobits per second here — fine-grained enough for the 87 kbps
//! low-level virtual links while representing the 1 Gbps physical links
//! exactly) and `lat : E_c → ℝ` (milliseconds).
//!
//! Newtypes keep the five quantities from being mixed up in the mapping
//! code, where nearly everything is "some f64".

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

macro_rules! f64_quantity {
    ($(#[$meta:meta])* $name:ident, $unit:literal) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd, Serialize, Deserialize)]
        pub struct $name(pub f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: $name = $name(0.0);

            /// Raw magnitude.
            #[inline]
            pub fn value(self) -> f64 {
                self.0
            }

            /// `true` when the magnitude is finite (guards against
            /// propagating the `∞` bandwidth of intra-host links into
            /// arithmetic that expects real capacities).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Component-wise minimum; used for bottleneck bandwidth.
            #[inline]
            pub fn min(self, other: $name) -> $name {
                $name(self.0.min(other.0))
            }

            /// Component-wise maximum.
            #[inline]
            pub fn max(self, other: $name) -> $name {
                $name(self.0.max(other.0))
            }
        }

        impl Add for $name {
            type Output = $name;
            #[inline]
            fn add(self, rhs: $name) -> $name {
                $name(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = $name;
            #[inline]
            fn sub(self, rhs: $name) -> $name {
                $name(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: $name) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: $name) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = $name;
            #[inline]
            fn neg(self) -> $name {
                $name(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: f64) -> $name {
                $name(self.0 * rhs)
            }
        }

        impl Div<f64> for $name {
            type Output = $name;
            #[inline]
            fn div(self, rhs: f64) -> $name {
                $name(self.0 / rhs)
            }
        }

        /// Ratio of two like quantities (dimensionless).
        impl Div for $name {
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = $name>>(iter: I) -> $name {
                $name(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:.3} {}", self.0, $unit)
            }
        }
    };
}

f64_quantity!(
    /// Processing capacity / demand in MIPS (million instructions per second).
    Mips,
    "MIPS"
);
f64_quantity!(
    /// Storage capacity / demand in gigabytes.
    StorGb,
    "GB"
);
f64_quantity!(
    /// Bandwidth in kilobits per second. 1 Gbps = `Kbps(1_000_000.0)`.
    Kbps,
    "kbps"
);
f64_quantity!(
    /// Latency / time in milliseconds.
    Millis,
    "ms"
);

impl Kbps {
    /// Construct from megabits per second.
    #[inline]
    pub fn from_mbps(mbps: f64) -> Kbps {
        Kbps(mbps * 1_000.0)
    }

    /// Construct from gigabits per second.
    #[inline]
    pub fn from_gbps(gbps: f64) -> Kbps {
        Kbps(gbps * 1_000_000.0)
    }

    /// The infinite bandwidth of intra-host communication (§3.2: for all
    /// `c_i`, `bw((c_i, c_i)) = ∞`).
    pub const INFINITE: Kbps = Kbps(f64::INFINITY);
}

/// Memory in megabytes. The paper types memory as a natural number, so this
/// is integer-backed; 1 MB granularity covers Table 1's 19 MB–3 GB range.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct MemMb(pub u64);

impl MemMb {
    /// The zero quantity.
    pub const ZERO: MemMb = MemMb(0);

    /// Raw magnitude in MB.
    #[inline]
    pub fn value(self) -> u64 {
        self.0
    }

    /// Construct from gigabytes.
    #[inline]
    pub fn from_gb(gb: u64) -> MemMb {
        MemMb(gb * 1024)
    }

    /// Saturating subtraction (memory residuals never go negative because
    /// memory is a hard constraint — Eq. 2).
    #[inline]
    pub fn saturating_sub(self, rhs: MemMb) -> MemMb {
        MemMb(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction: `None` when `rhs` exceeds `self`.
    #[inline]
    pub fn checked_sub(self, rhs: MemMb) -> Option<MemMb> {
        self.0.checked_sub(rhs.0).map(MemMb)
    }
}

impl Add for MemMb {
    type Output = MemMb;
    #[inline]
    fn add(self, rhs: MemMb) -> MemMb {
        MemMb(self.0 + rhs.0)
    }
}

impl AddAssign for MemMb {
    #[inline]
    fn add_assign(&mut self, rhs: MemMb) {
        self.0 += rhs.0;
    }
}

impl SubAssign for MemMb {
    #[inline]
    fn sub_assign(&mut self, rhs: MemMb) {
        self.0 = self
            .0
            .checked_sub(rhs.0)
            .expect("memory residual underflow: placement exceeded capacity");
    }
}

impl Sub for MemMb {
    type Output = MemMb;
    #[inline]
    fn sub(self, rhs: MemMb) -> MemMb {
        MemMb(
            self.0
                .checked_sub(rhs.0)
                .expect("memory residual underflow: placement exceeded capacity"),
        )
    }
}

impl Sum for MemMb {
    fn sum<I: Iterator<Item = MemMb>>(iter: I) -> MemMb {
        MemMb(iter.map(|q| q.0).sum())
    }
}

impl fmt::Display for MemMb {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} MB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mips_arithmetic() {
        let a = Mips(100.0);
        let b = Mips(40.0);
        assert_eq!((a + b).value(), 140.0);
        assert_eq!((a - b).value(), 60.0);
        assert_eq!((a * 2.0).value(), 200.0);
        assert_eq!((a / 2.0).value(), 50.0);
        assert_eq!(a / b, 2.5);
        assert_eq!((-b).value(), -40.0);
        let mut c = a;
        c += b;
        c -= Mips(10.0);
        assert_eq!(c.value(), 130.0);
    }

    #[test]
    fn mips_sum_and_minmax() {
        let total: Mips = [Mips(1.0), Mips(2.0), Mips(3.0)].into_iter().sum();
        assert_eq!(total.value(), 6.0);
        assert_eq!(Mips(5.0).min(Mips(2.0)).value(), 2.0);
        assert_eq!(Mips(5.0).max(Mips(2.0)).value(), 5.0);
    }

    #[test]
    fn bandwidth_conversions() {
        assert_eq!(Kbps::from_mbps(1.0).value(), 1_000.0);
        assert_eq!(Kbps::from_gbps(1.0).value(), 1_000_000.0);
        assert!(!Kbps::INFINITE.is_finite());
        assert!(Kbps(5.0).is_finite());
        // Bottleneck of any finite link against the intra-host link is the
        // finite one.
        assert_eq!(Kbps::INFINITE.min(Kbps(42.0)).value(), 42.0);
    }

    #[test]
    fn memory_is_integer_backed() {
        assert_eq!(MemMb::from_gb(3).value(), 3072);
        assert_eq!((MemMb(100) + MemMb(28)).value(), 128);
        assert_eq!(MemMb(100).saturating_sub(MemMb(200)), MemMb::ZERO);
        assert_eq!(MemMb(100).checked_sub(MemMb(200)), None);
        assert_eq!(MemMb(300).checked_sub(MemMb(200)), Some(MemMb(100)));
        let total: MemMb = [MemMb(1), MemMb(2)].into_iter().sum();
        assert_eq!(total, MemMb(3));
    }

    #[test]
    #[should_panic(expected = "memory residual underflow")]
    fn memory_sub_panics_on_underflow() {
        let _ = MemMb(1) - MemMb(2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Mips(1.5)), "1.500 MIPS");
        assert_eq!(format!("{}", MemMb(256)), "256 MB");
        assert_eq!(format!("{}", Millis(30.0)), "30.000 ms");
        assert_eq!(format!("{}", StorGb(100.0)), "100.000 GB");
        assert_eq!(format!("{}", Kbps(87.0)), "87.000 kbps");
    }

    #[test]
    fn ordering_works_for_sorting() {
        let mut v = vec![Mips(3.0), Mips(1.0), Mips(2.0)];
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(v, vec![Mips(1.0), Mips(2.0), Mips(3.0)]);
    }
}
