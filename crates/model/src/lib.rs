//! # emumap-model
//!
//! Domain model for the emulation-testbed mapping problem of Calheiros,
//! Buyya & De Rose (ICPP 2009):
//!
//! * [`PhysicalTopology`] — the cluster `c = (C, E_c)`: hosts with
//!   CPU/memory/storage capacities and links with bandwidth/latency, plus
//!   capacity-less switch nodes for switched topologies,
//! * [`VirtualEnvironment`] — the emulated system `v = (V, E_v)`: guests and
//!   virtual links with resource demands,
//! * [`Mapping`] / [`Route`] — a solution: the guest→host assignment `G_i`
//!   and the per-link physical paths `P_j`,
//! * [`ResidualState`] — incremental residual-capacity bookkeeping used by
//!   the mappers,
//! * [`validate::validate_mapping`] — an independent checker for the paper's
//!   constraints (Eqs. 1–9),
//! * [`objective`] — the load-balance objective (Eq. 10) and the
//!   consolidation objective from the paper's future work.
//!
//! ```
//! use emumap_model::{
//!     HostSpec, LinkSpec, PhysicalTopology, VirtualEnvironment, GuestSpec, VLinkSpec,
//!     Mips, MemMb, StorGb, Kbps, Millis, VmmOverhead,
//! };
//! use emumap_graph::generators;
//!
//! // A 2x2 torus of identical hosts with gigabit links.
//! let phys = PhysicalTopology::from_shape(
//!     &generators::torus2d(2, 2),
//!     std::iter::repeat(HostSpec::new(Mips(2000.0), MemMb::from_gb(2), StorGb(2000.0))),
//!     LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
//!     VmmOverhead::NONE,
//! );
//!
//! // Two guests joined by a 1 Mbps virtual link.
//! let mut venv = VirtualEnvironment::new();
//! let a = venv.add_guest(GuestSpec::new(Mips(75.0), MemMb(192), StorGb(150.0)));
//! let b = venv.add_guest(GuestSpec::new(Mips(75.0), MemMb(192), StorGb(150.0)));
//! venv.add_link(a, b, VLinkSpec::new(Kbps::from_mbps(1.0), Millis(45.0)));
//!
//! assert_eq!(phys.host_count(), 4);
//! assert_eq!(venv.guest_count(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accumulator;
pub mod fractional;
mod mapping;
pub mod objective;
mod physical;
mod residual;
mod resources;
pub mod validate;
mod virtualenv;

pub use accumulator::{ObjectiveAccumulator, REFRESH_INTERVAL};
pub use fractional::{ExpectedLoads, FractionalPlacement};
pub use mapping::{Mapping, Route};
pub use physical::{HostSpec, LinkSpec, PhysNode, PhysicalTopology, VmmOverhead};
pub use residual::{FeasBitset, PlaceError, ResidualState};
pub use resources::{Kbps, MemMb, Millis, Mips, StorGb};
pub use validate::{validate_mapping, Violation};
pub use virtualenv::{GuestId, GuestSpec, VLinkId, VLinkSpec, VirtualEnvironment};
