//! The virtual environment: the distributed system the tester wants to
//! emulate (paper §3.1–3.2, graph `v = (V, E_v)`).

use crate::resources::{Kbps, MemMb, Millis, Mips};
use crate::StorGb;
use emumap_graph::{CsrAdjacency, EdgeId, Graph, NeighborRef, NodeId};
use serde::{DeError, Deserialize, Serialize, Value};
use std::sync::OnceLock;

/// Resource demands of one guest (virtual machine).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GuestSpec {
    /// CPU demand (`vproc`). Not a hard constraint — it is the quantity the
    /// objective function balances.
    pub proc: Mips,
    /// Memory demand (`vmem`) — hard constraint (Eq. 2).
    pub mem: MemMb,
    /// Storage demand (`vstor`) — hard constraint (Eq. 3).
    pub stor: StorGb,
}

impl GuestSpec {
    /// A guest with the given demands.
    pub fn new(proc: Mips, mem: MemMb, stor: StorGb) -> Self {
        GuestSpec { proc, mem, stor }
    }
}

/// Demands of one virtual link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VLinkSpec {
    /// Bandwidth demand (`vbw`) — hard constraint per physical link (Eq. 9).
    pub bw: Kbps,
    /// Latency bound (`vlat`) — hard constraint per path (Eq. 8).
    pub lat: Millis,
}

impl VLinkSpec {
    /// A virtual link with the given demands.
    pub fn new(bw: Kbps, lat: Millis) -> Self {
        VLinkSpec { bw, lat }
    }
}

/// Handle to a guest. Guests are nodes of the virtual-environment graph;
/// the alias documents which graph an id belongs to.
pub type GuestId = NodeId;

/// Handle to a virtual link.
pub type VLinkId = EdgeId;

/// The virtual environment `v = (V, E_v)`: guests and the virtual links
/// between them.
#[derive(Debug)]
pub struct VirtualEnvironment {
    graph: Graph<GuestSpec, VLinkSpec>,
    /// Lazily built CSR snapshot of the guest adjacency, consumed by the
    /// per-move O(degree) bandwidth deltas of the search loops
    /// ([`links_of`](Self::links_of)). Invalidated by every mutation;
    /// deliberately excluded from `Clone`/serde (it is derived state).
    csr: OnceLock<CsrAdjacency>,
}

/// Structural equality on the guest/link graph; the lazily built CSR
/// snapshot is derived state and deliberately not compared.
impl PartialEq for VirtualEnvironment {
    fn eq(&self, other: &Self) -> bool {
        self.graph == other.graph
    }
}

impl VirtualEnvironment {
    /// An empty virtual environment.
    pub fn new() -> Self {
        VirtualEnvironment {
            graph: Graph::new(),
            csr: OnceLock::new(),
        }
    }

    /// Wraps an already-built guest/link graph.
    pub fn from_graph(graph: Graph<GuestSpec, VLinkSpec>) -> Self {
        VirtualEnvironment {
            graph,
            csr: OnceLock::new(),
        }
    }

    /// Adds a guest; returns its id.
    pub fn add_guest(&mut self, spec: GuestSpec) -> GuestId {
        self.csr.take();
        self.graph.add_node(spec)
    }

    /// Adds a virtual link between two guests; returns its id.
    pub fn add_link(&mut self, a: GuestId, b: GuestId, spec: VLinkSpec) -> VLinkId {
        self.csr.take();
        self.graph.add_edge(a, b, spec)
    }

    /// The virtual links incident to `guest` as a contiguous slice
    /// (neighbor + link id), served from a lazily built, cached CSR
    /// snapshot — the O(degree) adjacency walk of the delta-evaluation
    /// paths. Self-loops appear once.
    pub fn links_of(&self, guest: GuestId) -> &[NeighborRef] {
        self.csr
            .get_or_init(|| self.graph.to_csr())
            .neighbors(guest)
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph<GuestSpec, VLinkSpec> {
        &self.graph
    }

    /// Number of guests (`m` in the paper).
    pub fn guest_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Number of virtual links.
    pub fn link_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// Demands of a guest.
    pub fn guest(&self, id: GuestId) -> &GuestSpec {
        self.graph.node(id)
    }

    /// Demands of a virtual link.
    pub fn link(&self, id: VLinkId) -> &VLinkSpec {
        self.graph.edge(id)
    }

    /// The two guests joined by a virtual link.
    pub fn link_endpoints(&self, id: VLinkId) -> (GuestId, GuestId) {
        self.graph.endpoints(id)
    }

    /// Iterator over guest ids.
    pub fn guest_ids(&self) -> impl ExactSizeIterator<Item = GuestId> + Clone {
        self.graph.node_ids()
    }

    /// Iterator over virtual-link ids.
    pub fn link_ids(&self) -> impl ExactSizeIterator<Item = VLinkId> + Clone {
        self.graph.edge_ids()
    }

    /// Total bandwidth a guest demands toward a specific set of co-located
    /// peers is computed in the mapping layer; this helper gives the total
    /// bandwidth on all links incident to `guest` (used to order migration
    /// candidates and in tests).
    pub fn incident_bandwidth(&self, guest: GuestId) -> Kbps {
        self.graph
            .neighbors(guest)
            .map(|nb| self.graph.edge(nb.edge).bw)
            .sum()
    }

    /// Aggregate CPU demand of all guests; harness sanity checks.
    pub fn total_proc_demand(&self) -> Mips {
        self.graph.nodes().map(|(_, g)| g.proc).sum()
    }

    /// Aggregate memory demand of all guests.
    pub fn total_mem_demand(&self) -> MemMb {
        self.graph.nodes().map(|(_, g)| g.mem).sum()
    }
}

impl Default for VirtualEnvironment {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for VirtualEnvironment {
    fn clone(&self) -> Self {
        // The CSR cache is derived state; the clone rebuilds it lazily.
        VirtualEnvironment::from_graph(self.graph.clone())
    }
}

// Manual serde impls (the derive would try to serialize the CSR cache):
// same wire format the previous `#[derive]` produced — an object with the
// one "graph" field — so existing files keep round-tripping.
impl Serialize for VirtualEnvironment {
    fn to_value(&self) -> Value {
        Value::Object(vec![("graph".to_string(), self.graph.to_value())])
    }
}

impl Deserialize for VirtualEnvironment {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let pairs = value.expect_object("VirtualEnvironment")?;
        Ok(VirtualEnvironment::from_graph(serde::__field(
            pairs,
            "graph",
            "VirtualEnvironment",
        )?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_guest() -> GuestSpec {
        GuestSpec::new(Mips(75.0), MemMb(192), StorGb(150.0))
    }

    fn small_link() -> VLinkSpec {
        VLinkSpec::new(Kbps(750.0), Millis(45.0))
    }

    #[test]
    fn build_and_query() {
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(small_guest());
        let b = venv.add_guest(small_guest());
        let l = venv.add_link(a, b, small_link());
        assert_eq!(venv.guest_count(), 2);
        assert_eq!(venv.link_count(), 1);
        assert_eq!(venv.guest(a).mem, MemMb(192));
        assert_eq!(venv.link(l).bw, Kbps(750.0));
        assert_eq!(venv.link_endpoints(l), (a, b));
    }

    #[test]
    fn incident_bandwidth_sums_all_links() {
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(small_guest());
        let b = venv.add_guest(small_guest());
        let c = venv.add_guest(small_guest());
        venv.add_link(a, b, VLinkSpec::new(Kbps(100.0), Millis(40.0)));
        venv.add_link(a, c, VLinkSpec::new(Kbps(250.0), Millis(40.0)));
        venv.add_link(b, c, VLinkSpec::new(Kbps(999.0), Millis(40.0)));
        assert_eq!(venv.incident_bandwidth(a), Kbps(350.0));
        assert_eq!(venv.incident_bandwidth(b), Kbps(1099.0));
    }

    #[test]
    fn totals() {
        let mut venv = VirtualEnvironment::new();
        venv.add_guest(GuestSpec::new(Mips(50.0), MemMb(128), StorGb(100.0)));
        venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(256), StorGb(200.0)));
        assert_eq!(venv.total_proc_demand(), Mips(150.0));
        assert_eq!(venv.total_mem_demand(), MemMb(384));
    }

    #[test]
    fn default_is_empty() {
        let venv = VirtualEnvironment::default();
        assert_eq!(venv.guest_count(), 0);
        assert_eq!(venv.link_count(), 0);
    }

    #[test]
    fn links_of_matches_graph_neighbors() {
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(small_guest());
        let b = venv.add_guest(small_guest());
        let c = venv.add_guest(small_guest());
        venv.add_link(a, b, small_link());
        venv.add_link(a, c, small_link());
        let self_loop = venv.add_link(b, b, small_link());
        for g in venv.guest_ids() {
            let via_csr: Vec<_> = venv
                .links_of(g)
                .iter()
                .map(|nb| (nb.node, nb.edge))
                .collect();
            let via_graph: Vec<_> = venv
                .graph()
                .neighbors(g)
                .map(|nb| (nb.node, nb.edge))
                .collect();
            assert_eq!(via_csr, via_graph);
        }
        // A self-loop appears exactly once in its endpoint's list.
        let loops = venv
            .links_of(b)
            .iter()
            .filter(|nb| nb.edge == self_loop)
            .count();
        assert_eq!(loops, 1);
    }

    #[test]
    fn links_of_sees_mutations_after_cache_was_built() {
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(small_guest());
        let b = venv.add_guest(small_guest());
        venv.add_link(a, b, small_link());
        assert_eq!(venv.links_of(a).len(), 1); // builds the CSR cache
        let c = venv.add_guest(small_guest()); // must invalidate it
        venv.add_link(a, c, small_link());
        assert_eq!(venv.links_of(a).len(), 2);
        assert_eq!(venv.links_of(c).len(), 1);
    }

    #[test]
    fn clone_rebuilds_csr_lazily() {
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(small_guest());
        let b = venv.add_guest(small_guest());
        venv.add_link(a, b, small_link());
        let _ = venv.links_of(a); // warm the original's cache
        let cloned = venv.clone();
        assert_eq!(cloned.links_of(a).len(), 1);
        assert_eq!(cloned.guest_count(), venv.guest_count());
    }
}
