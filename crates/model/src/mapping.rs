//! The output of a mapper: guest placements plus one physical route per
//! virtual link (paper §3.2, the sets `G_i` and sequences `P_j`).

use crate::physical::PhysicalTopology;
use crate::virtualenv::{GuestId, VLinkId};
use emumap_graph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A physical route for one virtual link: the ordered physical edges from
/// the host of the link's source guest to the host of its destination guest
/// (the sequence `P_j` of Eq. 4–7).
///
/// The empty route is meaningful: both endpoints live on the same host, the
/// traffic never touches the network, and §3.2 grants it infinite bandwidth
/// and zero latency.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Route {
    edges: Vec<EdgeId>,
}

impl Route {
    /// An intra-host route (no physical edges).
    pub const fn intra_host() -> Self {
        Route { edges: Vec::new() }
    }

    /// A route over the given physical edges (source-host side first).
    pub fn new(edges: Vec<EdgeId>) -> Self {
        Route { edges }
    }

    /// The physical edges of the route.
    pub fn edges(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of physical hops.
    pub fn hop_count(&self) -> usize {
        self.edges.len()
    }

    /// `true` if both guests share a host.
    pub fn is_intra_host(&self) -> bool {
        self.edges.is_empty()
    }

    /// Expands the route into the node sequence it traverses, starting at
    /// `start`. Returns `None` if the edges do not chain (a malformed
    /// route); validation reports that as `Violation::RouteDiscontinuous`
    /// (see [`crate::validate`]).
    pub fn node_sequence(&self, phys: &PhysicalTopology, start: NodeId) -> Option<Vec<NodeId>> {
        let mut seq = Vec::with_capacity(self.edges.len() + 1);
        seq.push(start);
        let mut cur = start;
        for &e in &self.edges {
            let (a, b) = phys.graph().endpoints(e);
            cur = if cur == a {
                b
            } else if cur == b {
                a
            } else {
                return None;
            };
            seq.push(cur);
        }
        Some(seq)
    }
}

/// A complete mapping: every guest assigned to a host, every virtual link
/// routed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    /// `placement[g]` = host node of guest `g` (indexed by
    /// [`GuestId::index`]).
    placement: Vec<NodeId>,
    /// `routes[l]` = physical route of virtual link `l` (indexed by
    /// [`VLinkId::index`]).
    routes: Vec<Route>,
}

impl Mapping {
    /// Builds a mapping from dense placement and route tables.
    pub fn new(placement: Vec<NodeId>, routes: Vec<Route>) -> Self {
        Mapping { placement, routes }
    }

    /// Host of a guest.
    pub fn host_of(&self, guest: GuestId) -> NodeId {
        self.placement[guest.index()]
    }

    /// Route of a virtual link.
    pub fn route_of(&self, link: VLinkId) -> &Route {
        &self.routes[link.index()]
    }

    /// The raw placement table.
    pub fn placement(&self) -> &[NodeId] {
        &self.placement
    }

    /// The raw route table.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// Number of guests placed.
    pub fn guest_count(&self) -> usize {
        self.placement.len()
    }

    /// Guests grouped by host (the sets `G_i` of Eq. 1), sorted for
    /// deterministic iteration.
    pub fn guests_by_host(&self) -> BTreeMap<NodeId, Vec<GuestId>> {
        let mut map: BTreeMap<NodeId, Vec<GuestId>> = BTreeMap::new();
        for (idx, &host) in self.placement.iter().enumerate() {
            map.entry(host).or_default().push(GuestId::from_index(idx));
        }
        map
    }

    /// Number of distinct hosts actually used — the consolidation objective
    /// sketched in the paper's future work (§6).
    pub fn hosts_used(&self) -> usize {
        let mut hosts: Vec<NodeId> = self.placement.clone();
        hosts.sort_unstable();
        hosts.dedup();
        hosts.len()
    }

    /// Number of virtual links whose endpoints share a host (these are
    /// "handled inside the host" and never routed — §5.2 notes this drives
    /// the variance in Figure 1).
    pub fn intra_host_link_count(&self) -> usize {
        self.routes.iter().filter(|r| r.is_intra_host()).count()
    }

    /// Number of virtual links actually routed over the network — the
    /// x-axis of Figure 1.
    pub fn routed_link_count(&self) -> usize {
        self.routes.len() - self.intra_host_link_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{HostSpec, LinkSpec, PhysicalTopology, VmmOverhead};
    use crate::resources::{Kbps, MemMb, Millis, Mips, StorGb};
    use emumap_graph::generators;

    fn line_phys(n: usize) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::line(n),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    #[test]
    fn route_node_sequence_chains() {
        let phys = line_phys(4);
        let edges: Vec<_> = phys.graph().edge_ids().collect();
        let route = Route::new(edges.clone());
        let start = phys.hosts()[0];
        let seq = route.node_sequence(&phys, start).unwrap();
        assert_eq!(seq.len(), 4);
        assert_eq!(seq[0], phys.hosts()[0]);
        assert_eq!(seq[3], phys.hosts()[3]);
    }

    #[test]
    fn route_node_sequence_detects_discontinuity() {
        let phys = line_phys(4);
        let edges: Vec<_> = phys.graph().edge_ids().collect();
        // Skip the middle edge: 0-1 then 2-3 does not chain.
        let route = Route::new(vec![edges[0], edges[2]]);
        assert!(route.node_sequence(&phys, phys.hosts()[0]).is_none());
    }

    #[test]
    fn intra_host_route() {
        let r = Route::intra_host();
        assert!(r.is_intra_host());
        assert_eq!(r.hop_count(), 0);
        let phys = line_phys(2);
        assert_eq!(
            r.node_sequence(&phys, phys.hosts()[1]).unwrap(),
            vec![phys.hosts()[1]]
        );
    }

    #[test]
    fn mapping_accessors_and_grouping() {
        let phys = line_phys(3);
        let h = phys.hosts();
        let placement = vec![h[0], h[0], h[2]];
        let routes = vec![Route::intra_host(), Route::new(vec![])];
        let m = Mapping::new(placement, routes);
        assert_eq!(m.guest_count(), 3);
        assert_eq!(m.host_of(GuestId::from_index(1)), h[0]);
        assert_eq!(m.hosts_used(), 2);
        let groups = m.guests_by_host();
        assert_eq!(groups[&h[0]].len(), 2);
        assert_eq!(groups[&h[2]].len(), 1);
        assert!(!groups.contains_key(&h[1]));
    }

    #[test]
    fn link_counts() {
        let phys = line_phys(3);
        let e: Vec<_> = phys.graph().edge_ids().collect();
        let m = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[1]],
            vec![
                Route::intra_host(),
                Route::new(vec![e[0]]),
                Route::intra_host(),
            ],
        );
        assert_eq!(m.intra_host_link_count(), 2);
        assert_eq!(m.routed_link_count(), 1);
    }
}
