//! The physical environment: a cluster of workstations running VMMs,
//! connected by an arbitrary network (paper §3.1).

use crate::resources::{Kbps, MemMb, Millis, Mips, StorGb};
use emumap_graph::generators::{Role, Topology};
use emumap_graph::{EdgeId, Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide source of topology generation ids. Starts at 1 so 0 can
/// serve as an "unset" sentinel in caches.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

fn fresh_generation() -> u64 {
    NEXT_GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// Capacities of one physical host, *before* VMM overhead deduction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Processing capacity (`proc` in the paper).
    pub proc: Mips,
    /// Memory capacity (`mem`).
    pub mem: MemMb,
    /// Storage capacity (`stor`).
    pub stor: StorGb,
}

impl HostSpec {
    /// A host with the given capacities.
    pub fn new(proc: Mips, mem: MemMb, stor: StorGb) -> Self {
        HostSpec { proc, mem, stor }
    }
}

/// Resources consumed by the virtual machine monitor on every host.
///
/// §3.1: "for each different resource (CPU, memory, storage), the amount of
/// it used by the VMM is deducted from that resource availability prior the
/// mapping."
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct VmmOverhead {
    /// CPU consumed by the VMM.
    pub proc: Mips,
    /// Memory consumed by the VMM.
    pub mem: MemMb,
    /// Storage consumed by the VMM.
    pub stor: StorGb,
}

impl VmmOverhead {
    /// No overhead (the Table 1 setup does not state one; the harness uses
    /// this default so capacities match the paper's ranges exactly).
    pub const NONE: VmmOverhead = VmmOverhead {
        proc: Mips(0.0),
        mem: MemMb(0),
        stor: StorGb(0.0),
    };
}

/// A node of the physical network.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PhysNode {
    /// A workstation that can run guests.
    Host(HostSpec),
    /// A switch: routes traffic, hosts nothing.
    Switch,
}

impl PhysNode {
    /// The host spec, if this node is a host.
    pub fn as_host(&self) -> Option<&HostSpec> {
        match self {
            PhysNode::Host(spec) => Some(spec),
            PhysNode::Switch => None,
        }
    }

    /// `true` if this node can run guests.
    pub fn is_host(&self) -> bool {
        matches!(self, PhysNode::Host(_))
    }
}

/// Capacities of one physical link.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Bandwidth capacity (`bw`).
    pub bw: Kbps,
    /// Latency (`lat`).
    pub lat: Millis,
}

impl LinkSpec {
    /// A link with the given capacities.
    pub fn new(bw: Kbps, lat: Millis) -> Self {
        LinkSpec { bw, lat }
    }
}

/// The physical environment: hosts and switches connected by capacitated
/// links. This is the graph `c = (C, E_c)` of §3.2, generalized with switch
/// nodes so the cascaded-switch topology of the evaluation is expressible
/// (switches forward traffic but receive no guests).
#[derive(Clone, Debug)]
pub struct PhysicalTopology {
    graph: Graph<PhysNode, LinkSpec>,
    hosts: Vec<NodeId>,
    vmm: VmmOverhead,
    /// Identity of this topology for cache invalidation. Two values built
    /// in the same process never share a generation unless one is a clone
    /// of the other (a clone *is* the same topology: there are no
    /// mutators). Not serialized — a deserialized topology gets a fresh
    /// id, so caches warmed on other content can never be mistaken for
    /// current.
    generation: u64,
}

// Manual impls rather than derive: `generation` is a process-local cache
// key that must never hit the wire, and a deserialized topology must get
// a fresh one. The field set matches the pre-generation wire format.
impl Serialize for PhysicalTopology {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("graph".to_string(), self.graph.to_value()),
            ("hosts".to_string(), self.hosts.to_value()),
            ("vmm".to_string(), self.vmm.to_value()),
        ])
    }
}

impl Deserialize for PhysicalTopology {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let pairs = value.expect_object("PhysicalTopology")?;
        Ok(PhysicalTopology {
            graph: serde::__field(pairs, "graph", "PhysicalTopology")?,
            hosts: serde::__field(pairs, "hosts", "PhysicalTopology")?,
            vmm: serde::__field(pairs, "vmm", "PhysicalTopology")?,
            generation: fresh_generation(),
        })
    }
}

impl PhysicalTopology {
    /// Builds a physical topology by decorating a generated shape with host
    /// specs and one uniform link spec.
    ///
    /// `host_specs` must yield one spec per [`Role::Host`] node of the
    /// shape, in node order.
    ///
    /// # Panics
    /// Panics if `host_specs` runs out before every host is decorated.
    pub fn from_shape<I>(
        shape: &Topology,
        mut host_specs: I,
        link: LinkSpec,
        vmm: VmmOverhead,
    ) -> Self
    where
        I: Iterator<Item = HostSpec>,
    {
        let mut graph = Graph::with_capacity(shape.node_count(), shape.edge_count());
        let mut hosts = Vec::new();
        for (id, role) in shape.nodes() {
            let node = match role {
                Role::Host => {
                    let spec = host_specs
                        .next()
                        .expect("host_specs iterator exhausted before all hosts were decorated");
                    hosts.push(id);
                    PhysNode::Host(spec)
                }
                Role::Switch => PhysNode::Switch,
            };
            let new_id = graph.add_node(node);
            debug_assert_eq!(new_id, id, "shape ids must be preserved");
        }
        for e in shape.edges() {
            graph.add_edge(e.a, e.b, link);
        }
        PhysicalTopology {
            graph,
            hosts,
            vmm,
            generation: fresh_generation(),
        }
    }

    /// Builds a physical topology directly from a decorated graph.
    pub fn from_graph(graph: Graph<PhysNode, LinkSpec>, vmm: VmmOverhead) -> Self {
        let hosts = graph
            .nodes()
            .filter(|(_, n)| n.is_host())
            .map(|(id, _)| id)
            .collect();
        PhysicalTopology {
            graph,
            hosts,
            vmm,
            generation: fresh_generation(),
        }
    }

    /// The underlying capacitated graph.
    pub fn graph(&self) -> &Graph<PhysNode, LinkSpec> {
        &self.graph
    }

    /// Node ids of all hosts (insertion order). `hosts().len()` is the `n`
    /// of the paper.
    pub fn hosts(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.hosts.len()
    }

    /// The VMM overhead configured for this cluster.
    pub fn vmm_overhead(&self) -> VmmOverhead {
        self.vmm
    }

    /// The raw spec of a host node.
    ///
    /// # Panics
    /// Panics if `node` is a switch.
    pub fn host_spec(&self, node: NodeId) -> &HostSpec {
        self.graph
            .node(node)
            .as_host()
            .unwrap_or_else(|| panic!("{node} is a switch, not a host"))
    }

    /// `true` if `node` is a host (can receive guests).
    pub fn is_host(&self, node: NodeId) -> bool {
        self.graph.node(node).is_host()
    }

    /// *Effective* CPU capacity of a host: raw spec minus VMM overhead
    /// (§3.1). Effective capacities are what all mapping math uses.
    pub fn effective_proc(&self, node: NodeId) -> Mips {
        self.host_spec(node).proc - self.vmm.proc
    }

    /// Effective memory capacity of a host (raw minus VMM overhead,
    /// saturating at zero).
    pub fn effective_mem(&self, node: NodeId) -> MemMb {
        self.host_spec(node).mem.saturating_sub(self.vmm.mem)
    }

    /// Effective storage capacity of a host.
    pub fn effective_stor(&self, node: NodeId) -> StorGb {
        StorGb((self.host_spec(node).stor - self.vmm.stor).value().max(0.0))
    }

    /// Link spec of a physical edge.
    pub fn link(&self, edge: EdgeId) -> &LinkSpec {
        self.graph.edge(edge)
    }

    /// Total effective CPU across hosts; used by harness sanity checks.
    pub fn total_effective_proc(&self) -> Mips {
        self.hosts.iter().map(|&h| self.effective_proc(h)).sum()
    }

    /// Cache-invalidation identity (see the field doc). O(1); equal
    /// generations imply identical topology content, but not vice versa —
    /// caches that miss on generation should fall back to a content
    /// fingerprint before rebuilding.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;

    fn uniform_spec() -> HostSpec {
        HostSpec::new(Mips(2000.0), MemMb::from_gb(2), StorGb(2000.0))
    }

    fn paper_link() -> LinkSpec {
        LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0))
    }

    #[test]
    fn from_shape_decorates_all_hosts() {
        let shape = generators::torus2d(5, 8);
        let phys = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(uniform_spec()),
            paper_link(),
            VmmOverhead::NONE,
        );
        assert_eq!(phys.host_count(), 40);
        assert_eq!(phys.graph().edge_count(), 80);
        for &h in phys.hosts() {
            assert!(phys.is_host(h));
            assert_eq!(phys.effective_proc(h), Mips(2000.0));
        }
    }

    #[test]
    fn switched_topology_keeps_switches_hostless() {
        let shape = generators::switched_cascade(40, 64);
        let phys = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(uniform_spec()),
            paper_link(),
            VmmOverhead::NONE,
        );
        assert_eq!(phys.host_count(), 40);
        assert_eq!(phys.graph().node_count(), 41);
        let switch = phys
            .graph()
            .nodes()
            .find(|(_, n)| !n.is_host())
            .map(|(id, _)| id)
            .unwrap();
        assert!(!phys.is_host(switch));
    }

    #[test]
    #[should_panic(expected = "is a switch")]
    fn host_spec_panics_for_switch() {
        let shape = generators::switched_cascade(2, 4);
        let phys = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(uniform_spec()),
            paper_link(),
            VmmOverhead::NONE,
        );
        let switch = phys
            .graph()
            .nodes()
            .find(|(_, n)| !n.is_host())
            .map(|(id, _)| id)
            .unwrap();
        let _ = phys.host_spec(switch);
    }

    #[test]
    fn vmm_overhead_is_deducted() {
        let shape = generators::ring(3);
        let vmm = VmmOverhead {
            proc: Mips(100.0),
            mem: MemMb(256),
            stor: StorGb(10.0),
        };
        let phys = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(uniform_spec()),
            paper_link(),
            vmm,
        );
        let h = phys.hosts()[0];
        assert_eq!(phys.effective_proc(h), Mips(1900.0));
        assert_eq!(phys.effective_mem(h), MemMb(2048 - 256));
        assert_eq!(phys.effective_stor(h), StorGb(1990.0));
    }

    #[test]
    fn oversized_vmm_overhead_saturates_not_panics() {
        let shape = generators::ring(3);
        let vmm = VmmOverhead {
            proc: Mips(0.0),
            mem: MemMb::from_gb(10),
            stor: StorGb(99_999.0),
        };
        let phys = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(uniform_spec()),
            paper_link(),
            vmm,
        );
        let h = phys.hosts()[0];
        assert_eq!(phys.effective_mem(h), MemMb::ZERO);
        assert_eq!(phys.effective_stor(h), StorGb(0.0));
    }

    #[test]
    fn link_specs_are_uniform() {
        let shape = generators::ring(4);
        let phys = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(uniform_spec()),
            paper_link(),
            VmmOverhead::NONE,
        );
        for e in phys.graph().edge_ids() {
            assert_eq!(phys.link(e).bw, Kbps(1_000_000.0));
            assert_eq!(phys.link(e).lat, Millis(5.0));
        }
    }

    #[test]
    fn total_effective_proc_sums_hosts() {
        let shape = generators::line(4);
        let phys = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(uniform_spec()),
            paper_link(),
            VmmOverhead::NONE,
        );
        assert_eq!(phys.total_effective_proc(), Mips(8000.0));
    }

    #[test]
    fn generation_distinguishes_builds_but_not_clones() {
        let shape = generators::ring(3);
        let build = || {
            PhysicalTopology::from_shape(
                &shape,
                std::iter::repeat(uniform_spec()),
                paper_link(),
                VmmOverhead::NONE,
            )
        };
        let a = build();
        let b = build();
        assert_ne!(a.generation(), b.generation(), "independent builds differ");
        assert_eq!(a.generation(), a.clone().generation(), "clones share");
        assert_ne!(a.generation(), 0, "0 is reserved as an unset sentinel");
    }

    #[test]
    fn generation_is_fresh_after_deserialization() {
        let shape = generators::ring(3);
        let phys = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(uniform_spec()),
            paper_link(),
            VmmOverhead::NONE,
        );
        let json = serde_json::to_string(&phys).unwrap();
        let back: PhysicalTopology = serde_json::from_str(&json).unwrap();
        assert_ne!(phys.generation(), back.generation());
        assert_eq!(phys.host_count(), back.host_count());
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn from_shape_panics_when_specs_run_out() {
        let shape = generators::ring(3);
        let _ = PhysicalTopology::from_shape(
            &shape,
            std::iter::once(uniform_spec()),
            paper_link(),
            VmmOverhead::NONE,
        );
    }
}
