//! Incremental residual-capacity bookkeeping.
//!
//! Every HMN stage mutates a tentative assignment thousands of times
//! (placements, migrations, route commitments), so recomputing capacities
//! from scratch per probe would be quadratic. [`ResidualState`] maintains
//! per-host residual CPU/memory/storage and per-link residual bandwidth
//! under O(1) place/remove and O(path) route commit/release, and is the
//! single source of truth the mappers consult for feasibility (Eqs. 2, 3, 9)
//! and for the objective's residual-CPU inputs (Eq. 11).

use crate::mapping::Mapping;
use crate::physical::PhysicalTopology;
use crate::resources::{Kbps, MemMb, Mips, StorGb};
use crate::virtualenv::{GuestId, GuestSpec, VLinkId, VirtualEnvironment};
use emumap_graph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// Mutable residual capacities over a fixed physical topology.
///
/// CPU residuals are allowed to go negative — CPU is the optimized
/// quantity, not a constraint (§3.2: "We are not considering CPU as a
/// constraint of our problem"). Memory and storage are hard constraints and
/// [`ResidualState::place`] refuses to violate them.
///
/// Host capacities live in structure-of-arrays columns indexed by *host
/// slot* (position in [`PhysicalTopology::hosts`] order), not node id, so
/// candidate filtering in Hosting/Greedy is a linear pass over contiguous
/// memory. [`ResidualState::fill_feasible`] compresses one such pass into
/// a [`FeasBitset`]. Switches hold no capacity and have no slot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ResidualState {
    /// Host node ids in slot order (mirror of `phys.hosts()`).
    hosts: Vec<NodeId>,
    /// Node index → host slot; `u32::MAX` marks switches.
    host_slot: Vec<u32>,
    /// Residual CPU per host slot (may go negative).
    proc: Vec<f64>,
    /// Residual memory per host slot.
    mem: Vec<u64>,
    /// Residual storage per host slot.
    stor: Vec<f64>,
    /// Residual bandwidth per physical edge index.
    bw: Vec<f64>,
}

/// Scale-aware tolerance for the f64 hard-constraint re-checks in
/// [`ResidualState::apply_mapping`]: partial sums of storage/bandwidth
/// deductions reassociate by ulps when tenants replay in a different
/// order, so an exact-boundary fit admitted once must not be refused on
/// rebuild. Memory needs no slack — it is integer arithmetic.
#[inline]
fn float_slack(demand: f64) -> f64 {
    1e-9 * (1.0 + demand.abs())
}

/// A set of host slots as a packed bit vector, filled by
/// [`ResidualState::fill_feasible`] in one branch-light column pass and
/// then scanned word-at-a-time by the placement stages.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FeasBitset {
    words: Vec<u64>,
    len: usize,
}

impl FeasBitset {
    /// An empty set; reusable across fills without reallocating.
    pub fn new() -> Self {
        FeasBitset::default()
    }

    /// Number of slots the set ranges over (not the number of set bits).
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the set ranges over zero slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears all bits and resizes to cover `len` slots.
    pub fn clear_resize(&mut self, len: usize) {
        self.len = len;
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
    }

    /// Sets bit `slot`.
    #[inline]
    pub fn set(&mut self, slot: usize) {
        debug_assert!(slot < self.len);
        self.words[slot / 64] |= 1u64 << (slot % 64);
    }

    /// Reads bit `slot`.
    #[inline]
    pub fn get(&self, slot: usize) -> bool {
        slot < self.len && self.words[slot / 64] >> (slot % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Lowest set slot, if any — O(words), skipping empty words.
    pub fn first_one(&self) -> Option<usize> {
        self.words
            .iter()
            .position(|&w| w != 0)
            .map(|wi| wi * 64 + self.words[wi].trailing_zeros() as usize)
    }

    /// Iterates set slots in ascending order, skipping zero words.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(wi * 64 + bit)
            })
        })
    }
}

/// Why a guest cannot be placed on a host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlaceError {
    /// Target node is a switch.
    NotAHost,
    /// Eq. 2 would be violated.
    InsufficientMemory,
    /// Eq. 3 would be violated.
    InsufficientStorage,
    /// Eq. 9 would be violated on some edge of a committed route
    /// (reported by the whole-mapping [`ResidualState::apply_mapping`]
    /// path, never by single-guest placement).
    InsufficientBandwidth,
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::NotAHost => write!(f, "target node is a switch, not a host"),
            PlaceError::InsufficientMemory => write!(f, "insufficient residual memory"),
            PlaceError::InsufficientStorage => write!(f, "insufficient residual storage"),
            PlaceError::InsufficientBandwidth => write!(f, "insufficient residual bandwidth"),
        }
    }
}

impl std::error::Error for PlaceError {}

impl ResidualState {
    /// Fresh residuals equal to the *effective* capacities of the topology
    /// (raw capacities minus VMM overhead, §3.1).
    pub fn new(phys: &PhysicalTopology) -> Self {
        let hosts: Vec<NodeId> = phys.hosts().to_vec();
        let mut host_slot = vec![u32::MAX; phys.graph().node_count()];
        for (slot, &h) in hosts.iter().enumerate() {
            host_slot[h.index()] = slot as u32;
        }
        let proc = hosts
            .iter()
            .map(|&h| phys.effective_proc(h).value())
            .collect();
        let mem = hosts
            .iter()
            .map(|&h| phys.effective_mem(h).value())
            .collect();
        let stor = hosts
            .iter()
            .map(|&h| phys.effective_stor(h).value())
            .collect();
        let bw = phys
            .graph()
            .edge_ids()
            .map(|e| phys.link(e).bw.value())
            .collect();
        ResidualState {
            hosts,
            host_slot,
            proc,
            mem,
            stor,
            bw,
        }
    }

    /// The host slot of a node, or `None` for switches.
    #[inline]
    pub fn slot_of(&self, node: NodeId) -> Option<usize> {
        match self.host_slot.get(node.index()) {
            Some(&s) if s != u32::MAX => Some(s as usize),
            _ => None,
        }
    }

    /// The node id occupying a host slot.
    #[inline]
    pub fn host_at(&self, slot: usize) -> NodeId {
        self.hosts[slot]
    }

    /// Host node ids in slot order (mirrors `phys.hosts()`).
    pub fn host_nodes(&self) -> &[NodeId] {
        &self.hosts
    }

    /// Residual CPU column, one entry per host slot.
    pub fn proc_column(&self) -> &[f64] {
        &self.proc
    }

    /// Residual memory column, one entry per host slot.
    pub fn mem_column(&self) -> &[u64] {
        &self.mem
    }

    /// Residual storage column, one entry per host slot.
    pub fn stor_column(&self) -> &[f64] {
        &self.stor
    }

    /// Residual CPU of a node (negative = oversubscribed, which is legal).
    /// Switches report zero.
    #[inline]
    pub fn proc(&self, node: NodeId) -> Mips {
        Mips(self.slot_of(node).map_or(0.0, |s| self.proc[s]))
    }

    /// Residual memory of a node. Switches report zero.
    #[inline]
    pub fn mem(&self, node: NodeId) -> MemMb {
        MemMb(self.slot_of(node).map_or(0, |s| self.mem[s]))
    }

    /// Residual storage of a node. Switches report zero.
    #[inline]
    pub fn stor(&self, node: NodeId) -> StorGb {
        StorGb(self.slot_of(node).map_or(0.0, |s| self.stor[s]))
    }

    /// Residual bandwidth of a physical edge.
    #[inline]
    pub fn bw(&self, edge: EdgeId) -> Kbps {
        Kbps(self.bw[edge.index()])
    }

    /// `true` if `guest` would respect the hard constraints on `host`
    /// (Eqs. 2–3). CPU is deliberately not checked.
    pub fn fits(&self, guest: &GuestSpec, host: NodeId) -> bool {
        self.check_fit(guest, host).is_ok()
    }

    /// Like [`fits`](Self::fits) but says why not.
    pub fn check_fit(&self, guest: &GuestSpec, host: NodeId) -> Result<(), PlaceError> {
        // A switch has zero capacity, so this also rejects switches —
        // but distinguish the reason for callers/diagnostics.
        let (mem, stor) = match self.slot_of(host) {
            Some(s) => (self.mem[s], self.stor[s]),
            None => (0, 0.0),
        };
        if mem < guest.mem.value() {
            return Err(PlaceError::InsufficientMemory);
        }
        if stor < guest.stor.value() {
            return Err(PlaceError::InsufficientStorage);
        }
        Ok(())
    }

    /// Marks every host slot where `guest` respects the hard constraints
    /// (Eqs. 2–3) in one branch-light pass over the capacity columns.
    /// `out` is cleared and resized to the host count first.
    pub fn fill_feasible(&self, guest: &GuestSpec, out: &mut FeasBitset) {
        out.clear_resize(self.hosts.len());
        let gm = guest.mem.value();
        let gs = guest.stor.value();
        let mut word = 0u64;
        for (slot, (&m, &s)) in self.mem.iter().zip(&self.stor).enumerate() {
            word |= u64::from(m >= gm && s >= gs) << (slot % 64);
            if slot % 64 == 63 {
                out.words[slot / 64] = word;
                word = 0;
            }
        }
        if !self.hosts.len().is_multiple_of(64) {
            out.words[self.hosts.len() / 64] = word;
        }
    }

    /// Commits `guest` onto `host`, updating residuals.
    ///
    /// Fails (without mutating) if the hard constraints would be violated
    /// or `host` is not a host node of `phys`.
    pub fn place(
        &mut self,
        phys: &PhysicalTopology,
        guest: &GuestSpec,
        host: NodeId,
    ) -> Result<(), PlaceError> {
        if !phys.is_host(host) {
            return Err(PlaceError::NotAHost);
        }
        self.check_fit(guest, host)?;
        let s = self.slot_of(host).expect("hosts always have a slot");
        self.proc[s] -= guest.proc.value();
        self.mem[s] -= guest.mem.value();
        self.stor[s] -= guest.stor.value();
        Ok(())
    }

    /// Reverses a previous [`place`](Self::place) of `guest` on `host`.
    ///
    /// The caller is responsible for only removing guests it actually
    /// placed; this is debug-asserted via capacity overflow checks in the
    /// validation layer rather than tracked here (the mappers own the
    /// assignment tables).
    pub fn remove(&mut self, guest: &GuestSpec, host: NodeId) {
        let s = self
            .slot_of(host)
            .expect("remove targets a host that received a place");
        self.proc[s] += guest.proc.value();
        self.mem[s] += guest.mem.value();
        self.stor[s] += guest.stor.value();
    }

    /// `true` if every edge of `route` has at least `demand` residual
    /// bandwidth (Eq. 9 probe).
    pub fn route_feasible(&self, route: &[EdgeId], demand: Kbps) -> bool {
        route.iter().all(|e| self.bw[e.index()] >= demand.value())
    }

    /// Deducts `demand` from every edge of `route`.
    ///
    /// # Panics
    /// Panics in debug builds if any edge lacks capacity; callers must
    /// probe with [`route_feasible`](Self::route_feasible) first (the
    /// mappers do — A*Prune prunes infeasible edges during search).
    pub fn commit_route(&mut self, route: &[EdgeId], demand: Kbps) {
        for e in route {
            debug_assert!(
                self.bw[e.index()] >= demand.value() - 1e-9,
                "committing route over edge {e} without residual bandwidth"
            );
            self.bw[e.index()] -= demand.value();
        }
    }

    /// Returns `demand` to every edge of `route` (reversing a commit).
    pub fn release_route(&mut self, route: &[EdgeId], demand: Kbps) {
        for e in route {
            self.bw[e.index()] += demand.value();
        }
    }

    /// Commits an entire admitted mapping — every guest placement plus
    /// every routed link — against these residuals, in canonical order
    /// (guest index order, then link index order).
    ///
    /// The hard constraints are re-checked as the deductions happen:
    /// memory exactly (integer arithmetic is order-independent), storage
    /// and bandwidth with a scale-aware float slack so a mapping admitted
    /// against bit-equal residuals can never be spuriously refused when
    /// replayed in a different tenant order (f64 partial sums reassociate
    /// by ulps). CPU is never checked (§3.2).
    ///
    /// On `Err` the state is **partially applied** — callers that need
    /// atomicity apply to a scratch clone (as
    /// [`rebuilt`](Self::rebuilt) does) and discard it on failure.
    pub fn apply_mapping(
        &mut self,
        venv: &VirtualEnvironment,
        mapping: &Mapping,
    ) -> Result<(), PlaceError> {
        debug_assert_eq!(venv.guest_count(), mapping.guest_count());
        for (idx, &host) in mapping.placement().iter().enumerate() {
            let guest = venv.guest(GuestId::from_index(idx));
            let s = self.slot_of(host).ok_or(PlaceError::NotAHost)?;
            if self.mem[s] < guest.mem.value() {
                return Err(PlaceError::InsufficientMemory);
            }
            let gs = guest.stor.value();
            if self.stor[s] - gs < -float_slack(gs) {
                return Err(PlaceError::InsufficientStorage);
            }
            self.proc[s] -= guest.proc.value();
            self.mem[s] -= guest.mem.value();
            self.stor[s] -= gs;
        }
        for (idx, route) in mapping.routes().iter().enumerate() {
            let demand = venv.link(VLinkId::from_index(idx)).bw.value();
            for e in route.edges() {
                if self.bw[e.index()] - demand < -float_slack(demand) {
                    return Err(PlaceError::InsufficientBandwidth);
                }
                self.bw[e.index()] -= demand;
            }
        }
        Ok(())
    }

    /// Returns an entire mapping's resources — the exact reverse of
    /// [`apply_mapping`](Self::apply_mapping), in the same canonical
    /// order. The caller is responsible for only releasing mappings it
    /// actually applied; the serve layer debug-asserts the result against
    /// a from-scratch rebuild (see [`divergence`](Self::divergence)).
    pub fn release_mapping(&mut self, venv: &VirtualEnvironment, mapping: &Mapping) {
        debug_assert_eq!(venv.guest_count(), mapping.guest_count());
        for (idx, &host) in mapping.placement().iter().enumerate() {
            let guest = venv.guest(GuestId::from_index(idx));
            let s = self
                .slot_of(host)
                .expect("release targets a host that received an apply");
            self.proc[s] += guest.proc.value();
            self.mem[s] += guest.mem.value();
            self.stor[s] += guest.stor.value();
        }
        for (idx, route) in mapping.routes().iter().enumerate() {
            let demand = venv.link(VLinkId::from_index(idx)).bw.value();
            for e in route.edges() {
                self.bw[e.index()] += demand;
            }
        }
    }

    /// From-scratch canonical rebuild: fresh residuals over `phys` with
    /// every surviving `(venv, mapping)` pair applied in iteration order.
    /// This is the reference state the incremental bookkeeping must
    /// reconcile against — and what the serve session adopts after every
    /// mutation so its residuals are *bitwise* a pure function of the
    /// surviving tenant set. Atomic: on `Err` nothing is returned and no
    /// existing state was touched.
    pub fn rebuilt<'t, I>(phys: &PhysicalTopology, tenants: I) -> Result<ResidualState, PlaceError>
    where
        I: IntoIterator<Item = (&'t VirtualEnvironment, &'t Mapping)>,
    {
        let mut state = ResidualState::new(phys);
        for (venv, mapping) in tenants {
            state.apply_mapping(venv, mapping)?;
        }
        Ok(state)
    }

    /// Largest absolute per-entry difference between two residual states
    /// across all four columns (CPU, memory, storage, bandwidth) — the
    /// reconciliation metric. Zero iff the states agree bit-for-bit on
    /// every finite entry; incremental apply/release drift shows up as a
    /// small positive value bounded by [`drift_tolerance`](Self::
    /// drift_tolerance).
    ///
    /// # Panics
    /// Panics if the states cover different topologies (column lengths
    /// differ) — comparing residuals of different clusters is a bug.
    pub fn divergence(&self, other: &ResidualState) -> f64 {
        assert_eq!(self.hosts, other.hosts, "residuals of different clusters");
        assert_eq!(self.bw.len(), other.bw.len());
        let mut worst = 0.0f64;
        for (a, b) in self.proc.iter().zip(&other.proc) {
            worst = worst.max((a - b).abs());
        }
        for (a, b) in self.mem.iter().zip(&other.mem) {
            worst = worst.max(a.abs_diff(*b) as f64);
        }
        for (a, b) in self.stor.iter().zip(&other.stor) {
            worst = worst.max((a - b).abs());
        }
        for (a, b) in self.bw.iter().zip(&other.bw) {
            worst = worst.max((a - b).abs());
        }
        worst
    }

    /// Scale-aware bound on the [`divergence`](Self::divergence) an
    /// incremental apply/release history may legitimately accumulate
    /// against a from-scratch rebuild: f64 additions reassociate at the
    /// ulp scale of the largest column magnitude. Mirrors the objective
    /// accumulator's `1e-9 * (1 + scale)` drift budget.
    pub fn drift_tolerance(&self) -> f64 {
        let scale = self
            .proc
            .iter()
            .chain(&self.stor)
            .chain(&self.bw)
            .fold(0.0f64, |m, v| m.max(v.abs()));
        1e-9 * (1.0 + scale)
    }

    /// Residual CPU of every *host* of `phys`, in host order — the
    /// `rproc(c_i)` vector the objective function consumes (Eq. 11).
    pub fn host_proc_residuals(&self, phys: &PhysicalTopology) -> Vec<f64> {
        debug_assert_eq!(phys.host_count(), self.hosts.len());
        self.proc.clone()
    }

    /// Allocation-free variant of
    /// [`host_proc_residuals`](Self::host_proc_residuals): fills `out`
    /// (cleared first) with the host-order residual CPU vector — now a
    /// single contiguous copy of the CPU column. The search loops refresh
    /// their objective accumulator through a reused scratch buffer via
    /// this.
    pub fn host_proc_residuals_into(&self, phys: &PhysicalTopology, out: &mut Vec<f64>) {
        debug_assert_eq!(phys.host_count(), self.hosts.len());
        out.clear();
        out.extend_from_slice(&self.proc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{HostSpec, LinkSpec, VmmOverhead};
    use crate::resources::Millis;
    use emumap_graph::generators;

    fn phys() -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::line(3),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(500.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn guest(proc: f64, mem: u64, stor: f64) -> GuestSpec {
        GuestSpec::new(Mips(proc), MemMb(mem), StorGb(stor))
    }

    #[test]
    fn fresh_residuals_match_effective_capacity() {
        let p = phys();
        let r = ResidualState::new(&p);
        let h = p.hosts()[0];
        assert_eq!(r.proc(h), Mips(1000.0));
        assert_eq!(r.mem(h), MemMb(1024));
        assert_eq!(r.stor(h), StorGb(100.0));
        for e in p.graph().edge_ids() {
            assert_eq!(r.bw(e), Kbps(500.0));
        }
    }

    #[test]
    fn place_and_remove_roundtrip() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        let h = p.hosts()[1];
        let g = guest(100.0, 256, 10.0);
        r.place(&p, &g, h).unwrap();
        assert_eq!(r.proc(h), Mips(900.0));
        assert_eq!(r.mem(h), MemMb(768));
        assert_eq!(r.stor(h), StorGb(90.0));
        r.remove(&g, h);
        assert_eq!(r.proc(h), Mips(1000.0));
        assert_eq!(r.mem(h), MemMb(1024));
    }

    #[test]
    fn memory_is_a_hard_constraint() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        let h = p.hosts()[0];
        let g = guest(0.0, 2048, 1.0);
        assert_eq!(r.place(&p, &g, h), Err(PlaceError::InsufficientMemory));
        assert!(!r.fits(&g, h));
        // State unchanged after failed placement.
        assert_eq!(r.mem(h), MemMb(1024));
    }

    #[test]
    fn storage_is_a_hard_constraint() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        let h = p.hosts()[0];
        let g = guest(0.0, 1, 1000.0);
        assert_eq!(r.place(&p, &g, h), Err(PlaceError::InsufficientStorage));
    }

    #[test]
    fn cpu_may_be_oversubscribed() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        let h = p.hosts()[0];
        let hungry = guest(800.0, 100, 1.0);
        r.place(&p, &hungry, h).unwrap();
        r.place(&p, &hungry, h).unwrap();
        assert_eq!(r.proc(h), Mips(-600.0));
    }

    #[test]
    fn exact_fit_is_allowed() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        let h = p.hosts()[2];
        let g = guest(1.0, 1024, 100.0);
        assert!(r.fits(&g, h));
        r.place(&p, &g, h).unwrap();
        assert_eq!(r.mem(h), MemMb::ZERO);
        assert!(!r.fits(&guest(0.0, 1, 0.0), h));
    }

    #[test]
    fn route_commit_and_release() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        let edges: Vec<_> = p.graph().edge_ids().collect();
        assert!(r.route_feasible(&edges, Kbps(500.0)));
        assert!(!r.route_feasible(&edges, Kbps(500.1)));
        r.commit_route(&edges, Kbps(300.0));
        assert_eq!(r.bw(edges[0]), Kbps(200.0));
        assert!(!r.route_feasible(&edges, Kbps(300.0)));
        r.release_route(&edges, Kbps(300.0));
        assert_eq!(r.bw(edges[0]), Kbps(500.0));
    }

    #[test]
    fn host_proc_residuals_in_host_order() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        r.place(&p, &guest(250.0, 1, 1.0), p.hosts()[1]).unwrap();
        assert_eq!(r.host_proc_residuals(&p), vec![1000.0, 750.0, 1000.0]);
    }

    #[test]
    fn columns_track_place_and_remove_in_host_order() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        let g = guest(100.0, 256, 10.0);
        r.place(&p, &g, p.hosts()[1]).unwrap();
        assert_eq!(r.proc_column(), &[1000.0, 900.0, 1000.0]);
        assert_eq!(r.mem_column(), &[1024, 768, 1024]);
        assert_eq!(r.stor_column(), &[100.0, 90.0, 100.0]);
        assert_eq!(r.host_nodes(), p.hosts());
        for (slot, &h) in p.hosts().iter().enumerate() {
            assert_eq!(r.slot_of(h), Some(slot));
            assert_eq!(r.host_at(slot), h);
        }
        r.remove(&g, p.hosts()[1]);
        assert_eq!(r.proc_column(), &[1000.0, 1000.0, 1000.0]);
    }

    #[test]
    fn fill_feasible_agrees_with_fits() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        // Fill host 0's memory and host 2's storage so the bitset has
        // holes to find.
        r.place(&p, &guest(0.0, 1024, 1.0), p.hosts()[0]).unwrap();
        r.place(&p, &guest(0.0, 1, 100.0), p.hosts()[2]).unwrap();
        let g = guest(10.0, 512, 50.0);
        let mut bits = FeasBitset::new();
        r.fill_feasible(&g, &mut bits);
        assert_eq!(bits.len(), p.host_count());
        for (slot, &h) in p.hosts().iter().enumerate() {
            assert_eq!(bits.get(slot), r.fits(&g, h), "slot {slot}");
        }
        assert_eq!(bits.count(), 1);
        assert_eq!(bits.first_one(), Some(1));
        assert_eq!(bits.iter_ones().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn bitset_handles_multi_word_ranges() {
        let mut bits = FeasBitset::new();
        bits.clear_resize(130);
        for slot in [0, 63, 64, 100, 129] {
            bits.set(slot);
        }
        assert_eq!(bits.count(), 5);
        assert_eq!(bits.first_one(), Some(0));
        assert_eq!(
            bits.iter_ones().collect::<Vec<_>>(),
            vec![0, 63, 64, 100, 129]
        );
        assert!(!bits.get(65));
        assert!(!bits.get(500), "out-of-range reads are false, not panics");
        bits.clear_resize(10);
        assert_eq!(bits.count(), 0, "clear_resize zeroes previous bits");
    }

    #[test]
    fn switches_have_no_slot_and_zero_capacity() {
        let shape = generators::switched_cascade(2, 4);
        let p = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(500.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let switch = p
            .graph()
            .nodes()
            .find(|(_, n)| !n.is_host())
            .map(|(id, _)| id)
            .unwrap();
        let r = ResidualState::new(&p);
        assert_eq!(r.slot_of(switch), None);
        assert_eq!(r.proc(switch), Mips(0.0));
        assert_eq!(r.mem(switch), MemMb(0));
        assert_eq!(r.stor(switch), StorGb(0.0));
    }

    #[test]
    fn switches_are_rejected() {
        let shape = generators::switched_cascade(2, 4);
        let p = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(500.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let switch = p
            .graph()
            .nodes()
            .find(|(_, n)| !n.is_host())
            .map(|(id, _)| id)
            .unwrap();
        let mut r = ResidualState::new(&p);
        assert_eq!(
            r.place(&p, &guest(1.0, 1, 1.0), switch),
            Err(PlaceError::NotAHost)
        );
    }

    /// Two guests linked over bandwidth 200, mapped onto hosts 0 and 2 of
    /// the 3-host line (route spans both physical edges).
    fn tenant(p: &PhysicalTopology) -> (VirtualEnvironment, Mapping) {
        use crate::mapping::Route;
        use crate::virtualenv::VLinkSpec;
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(guest(100.0, 256, 10.0));
        let b = venv.add_guest(guest(50.0, 128, 5.0));
        venv.add_link(a, b, VLinkSpec::new(Kbps(200.0), Millis(30.0)));
        let edges: Vec<EdgeId> = p.graph().edge_ids().collect();
        let mapping = Mapping::new(
            vec![p.hosts()[0], p.hosts()[2]],
            vec![Route::new(edges.clone())],
        );
        (venv, mapping)
    }

    #[test]
    fn apply_release_mapping_roundtrips_bitwise() {
        let p = phys();
        let fresh = ResidualState::new(&p);
        let (venv, mapping) = tenant(&p);
        let mut r = fresh.clone();
        r.apply_mapping(&venv, &mapping).unwrap();
        assert_eq!(r.proc(p.hosts()[0]), Mips(900.0));
        assert_eq!(r.mem(p.hosts()[2]), MemMb(896));
        for e in p.graph().edge_ids() {
            assert_eq!(r.bw(e), Kbps(300.0));
        }
        r.release_mapping(&venv, &mapping);
        assert_eq!(r, fresh, "release must undo apply bit-for-bit");
        assert_eq!(r.divergence(&fresh), 0.0);
    }

    #[test]
    fn rebuilt_matches_incremental_apply() {
        let p = phys();
        let (venv, mapping) = tenant(&p);
        let mut incremental = ResidualState::new(&p);
        incremental.apply_mapping(&venv, &mapping).unwrap();
        let rebuilt = ResidualState::rebuilt(&p, [(&venv, &mapping)]).unwrap();
        assert_eq!(rebuilt, incremental);
        assert!(incremental.divergence(&rebuilt) <= incremental.drift_tolerance());
    }

    #[test]
    fn divergence_reports_the_largest_leak() {
        let p = phys();
        let base = ResidualState::new(&p);
        let mut leaked = base.clone();
        let g = guest(0.25, 3, 0.0);
        leaked.place(&p, &g, p.hosts()[1]).unwrap();
        // Memory leak (3) dominates the CPU leak (0.25).
        assert_eq!(base.divergence(&leaked), 3.0);
        assert!(base.divergence(&leaked) > base.drift_tolerance());
    }

    #[test]
    fn apply_mapping_enforces_memory_and_bandwidth() {
        let p = phys();
        let (venv, mapping) = tenant(&p);
        // A tenant that already consumed all of host 0's memory forces the
        // strict integer check to fire.
        let mut r = ResidualState::new(&p);
        r.place(&p, &guest(0.0, 1024, 1.0), p.hosts()[0]).unwrap();
        assert_eq!(
            r.apply_mapping(&venv, &mapping),
            Err(PlaceError::InsufficientMemory)
        );
        // Draining an edge below the link demand trips the Eq. 9 re-check.
        let mut r = ResidualState::new(&p);
        let edges: Vec<EdgeId> = p.graph().edge_ids().collect();
        r.commit_route(&edges[..1], Kbps(400.0));
        assert_eq!(
            r.apply_mapping(&venv, &mapping),
            Err(PlaceError::InsufficientBandwidth)
        );
    }

    #[test]
    fn apply_mapping_tolerates_exact_boundary_fits() {
        let p = phys();
        let (venv, mapping) = tenant(&p);
        // Consume all bandwidth except exactly the tenant's demand via a
        // partial-sum order that differs from the rebuild order.
        let edges: Vec<EdgeId> = p.graph().edge_ids().collect();
        let mut r = ResidualState::new(&p);
        for _ in 0..3 {
            r.commit_route(&edges, Kbps(100.0));
        }
        r.apply_mapping(&venv, &mapping)
            .expect("boundary fit must not be refused by float slack");
        for e in p.graph().edge_ids() {
            assert!(r.bw(e).value().abs() <= 1e-9);
        }
    }
}
