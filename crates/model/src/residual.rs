//! Incremental residual-capacity bookkeeping.
//!
//! Every HMN stage mutates a tentative assignment thousands of times
//! (placements, migrations, route commitments), so recomputing capacities
//! from scratch per probe would be quadratic. [`ResidualState`] maintains
//! per-host residual CPU/memory/storage and per-link residual bandwidth
//! under O(1) place/remove and O(path) route commit/release, and is the
//! single source of truth the mappers consult for feasibility (Eqs. 2, 3, 9)
//! and for the objective's residual-CPU inputs (Eq. 11).

use crate::physical::PhysicalTopology;
use crate::resources::{Kbps, MemMb, Mips, StorGb};
use crate::virtualenv::GuestSpec;
use emumap_graph::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// Mutable residual capacities over a fixed physical topology.
///
/// CPU residuals are allowed to go negative — CPU is the optimized
/// quantity, not a constraint (§3.2: "We are not considering CPU as a
/// constraint of our problem"). Memory and storage are hard constraints and
/// [`ResidualState::place`] refuses to violate them.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResidualState {
    /// Residual CPU per node index (switches pinned to 0; may go negative
    /// on hosts).
    proc: Vec<f64>,
    /// Residual memory per node index.
    mem: Vec<u64>,
    /// Residual storage per node index.
    stor: Vec<f64>,
    /// Residual bandwidth per physical edge index.
    bw: Vec<f64>,
}

/// Why a guest cannot be placed on a host.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlaceError {
    /// Target node is a switch.
    NotAHost,
    /// Eq. 2 would be violated.
    InsufficientMemory,
    /// Eq. 3 would be violated.
    InsufficientStorage,
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::NotAHost => write!(f, "target node is a switch, not a host"),
            PlaceError::InsufficientMemory => write!(f, "insufficient residual memory"),
            PlaceError::InsufficientStorage => write!(f, "insufficient residual storage"),
        }
    }
}

impl std::error::Error for PlaceError {}

impl ResidualState {
    /// Fresh residuals equal to the *effective* capacities of the topology
    /// (raw capacities minus VMM overhead, §3.1).
    pub fn new(phys: &PhysicalTopology) -> Self {
        let n = phys.graph().node_count();
        let mut proc = vec![0.0; n];
        let mut mem = vec![0u64; n];
        let mut stor = vec![0.0; n];
        for &h in phys.hosts() {
            proc[h.index()] = phys.effective_proc(h).value();
            mem[h.index()] = phys.effective_mem(h).value();
            stor[h.index()] = phys.effective_stor(h).value();
        }
        let bw = phys
            .graph()
            .edge_ids()
            .map(|e| phys.link(e).bw.value())
            .collect();
        ResidualState {
            proc,
            mem,
            stor,
            bw,
        }
    }

    /// Residual CPU of a node (negative = oversubscribed, which is legal).
    #[inline]
    pub fn proc(&self, node: NodeId) -> Mips {
        Mips(self.proc[node.index()])
    }

    /// Residual memory of a node.
    #[inline]
    pub fn mem(&self, node: NodeId) -> MemMb {
        MemMb(self.mem[node.index()])
    }

    /// Residual storage of a node.
    #[inline]
    pub fn stor(&self, node: NodeId) -> StorGb {
        StorGb(self.stor[node.index()])
    }

    /// Residual bandwidth of a physical edge.
    #[inline]
    pub fn bw(&self, edge: EdgeId) -> Kbps {
        Kbps(self.bw[edge.index()])
    }

    /// `true` if `guest` would respect the hard constraints on `host`
    /// (Eqs. 2–3). CPU is deliberately not checked.
    pub fn fits(&self, guest: &GuestSpec, host: NodeId) -> bool {
        self.check_fit(guest, host).is_ok()
    }

    /// Like [`fits`](Self::fits) but says why not.
    pub fn check_fit(&self, guest: &GuestSpec, host: NodeId) -> Result<(), PlaceError> {
        if self.mem[host.index()] < guest.mem.value() {
            // A switch has zero capacity, so this also rejects switches —
            // but distinguish the reason for callers/diagnostics.
            return Err(PlaceError::InsufficientMemory);
        }
        if self.stor[host.index()] < guest.stor.value() {
            return Err(PlaceError::InsufficientStorage);
        }
        Ok(())
    }

    /// Commits `guest` onto `host`, updating residuals.
    ///
    /// Fails (without mutating) if the hard constraints would be violated
    /// or `host` is not a host node of `phys`.
    pub fn place(
        &mut self,
        phys: &PhysicalTopology,
        guest: &GuestSpec,
        host: NodeId,
    ) -> Result<(), PlaceError> {
        if !phys.is_host(host) {
            return Err(PlaceError::NotAHost);
        }
        self.check_fit(guest, host)?;
        self.proc[host.index()] -= guest.proc.value();
        self.mem[host.index()] -= guest.mem.value();
        self.stor[host.index()] -= guest.stor.value();
        Ok(())
    }

    /// Reverses a previous [`place`](Self::place) of `guest` on `host`.
    ///
    /// The caller is responsible for only removing guests it actually
    /// placed; this is debug-asserted via capacity overflow checks in the
    /// validation layer rather than tracked here (the mappers own the
    /// assignment tables).
    pub fn remove(&mut self, guest: &GuestSpec, host: NodeId) {
        self.proc[host.index()] += guest.proc.value();
        self.mem[host.index()] += guest.mem.value();
        self.stor[host.index()] += guest.stor.value();
    }

    /// `true` if every edge of `route` has at least `demand` residual
    /// bandwidth (Eq. 9 probe).
    pub fn route_feasible(&self, route: &[EdgeId], demand: Kbps) -> bool {
        route.iter().all(|e| self.bw[e.index()] >= demand.value())
    }

    /// Deducts `demand` from every edge of `route`.
    ///
    /// # Panics
    /// Panics in debug builds if any edge lacks capacity; callers must
    /// probe with [`route_feasible`](Self::route_feasible) first (the
    /// mappers do — A*Prune prunes infeasible edges during search).
    pub fn commit_route(&mut self, route: &[EdgeId], demand: Kbps) {
        for e in route {
            debug_assert!(
                self.bw[e.index()] >= demand.value() - 1e-9,
                "committing route over edge {e} without residual bandwidth"
            );
            self.bw[e.index()] -= demand.value();
        }
    }

    /// Returns `demand` to every edge of `route` (reversing a commit).
    pub fn release_route(&mut self, route: &[EdgeId], demand: Kbps) {
        for e in route {
            self.bw[e.index()] += demand.value();
        }
    }

    /// Residual CPU of every *host* of `phys`, in host order — the
    /// `rproc(c_i)` vector the objective function consumes (Eq. 11).
    pub fn host_proc_residuals(&self, phys: &PhysicalTopology) -> Vec<f64> {
        phys.hosts().iter().map(|&h| self.proc[h.index()]).collect()
    }

    /// Allocation-free variant of
    /// [`host_proc_residuals`](Self::host_proc_residuals): fills `out`
    /// (cleared first) with the host-order residual CPU vector. The search
    /// loops refresh their objective accumulator through a reused scratch
    /// buffer via this.
    pub fn host_proc_residuals_into(&self, phys: &PhysicalTopology, out: &mut Vec<f64>) {
        out.clear();
        out.extend(phys.hosts().iter().map(|&h| self.proc[h.index()]));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::physical::{HostSpec, LinkSpec, VmmOverhead};
    use crate::resources::Millis;
    use emumap_graph::generators;

    fn phys() -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::line(3),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(500.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn guest(proc: f64, mem: u64, stor: f64) -> GuestSpec {
        GuestSpec::new(Mips(proc), MemMb(mem), StorGb(stor))
    }

    #[test]
    fn fresh_residuals_match_effective_capacity() {
        let p = phys();
        let r = ResidualState::new(&p);
        let h = p.hosts()[0];
        assert_eq!(r.proc(h), Mips(1000.0));
        assert_eq!(r.mem(h), MemMb(1024));
        assert_eq!(r.stor(h), StorGb(100.0));
        for e in p.graph().edge_ids() {
            assert_eq!(r.bw(e), Kbps(500.0));
        }
    }

    #[test]
    fn place_and_remove_roundtrip() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        let h = p.hosts()[1];
        let g = guest(100.0, 256, 10.0);
        r.place(&p, &g, h).unwrap();
        assert_eq!(r.proc(h), Mips(900.0));
        assert_eq!(r.mem(h), MemMb(768));
        assert_eq!(r.stor(h), StorGb(90.0));
        r.remove(&g, h);
        assert_eq!(r.proc(h), Mips(1000.0));
        assert_eq!(r.mem(h), MemMb(1024));
    }

    #[test]
    fn memory_is_a_hard_constraint() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        let h = p.hosts()[0];
        let g = guest(0.0, 2048, 1.0);
        assert_eq!(r.place(&p, &g, h), Err(PlaceError::InsufficientMemory));
        assert!(!r.fits(&g, h));
        // State unchanged after failed placement.
        assert_eq!(r.mem(h), MemMb(1024));
    }

    #[test]
    fn storage_is_a_hard_constraint() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        let h = p.hosts()[0];
        let g = guest(0.0, 1, 1000.0);
        assert_eq!(r.place(&p, &g, h), Err(PlaceError::InsufficientStorage));
    }

    #[test]
    fn cpu_may_be_oversubscribed() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        let h = p.hosts()[0];
        let hungry = guest(800.0, 100, 1.0);
        r.place(&p, &hungry, h).unwrap();
        r.place(&p, &hungry, h).unwrap();
        assert_eq!(r.proc(h), Mips(-600.0));
    }

    #[test]
    fn exact_fit_is_allowed() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        let h = p.hosts()[2];
        let g = guest(1.0, 1024, 100.0);
        assert!(r.fits(&g, h));
        r.place(&p, &g, h).unwrap();
        assert_eq!(r.mem(h), MemMb::ZERO);
        assert!(!r.fits(&guest(0.0, 1, 0.0), h));
    }

    #[test]
    fn route_commit_and_release() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        let edges: Vec<_> = p.graph().edge_ids().collect();
        assert!(r.route_feasible(&edges, Kbps(500.0)));
        assert!(!r.route_feasible(&edges, Kbps(500.1)));
        r.commit_route(&edges, Kbps(300.0));
        assert_eq!(r.bw(edges[0]), Kbps(200.0));
        assert!(!r.route_feasible(&edges, Kbps(300.0)));
        r.release_route(&edges, Kbps(300.0));
        assert_eq!(r.bw(edges[0]), Kbps(500.0));
    }

    #[test]
    fn host_proc_residuals_in_host_order() {
        let p = phys();
        let mut r = ResidualState::new(&p);
        r.place(&p, &guest(250.0, 1, 1.0), p.hosts()[1]).unwrap();
        assert_eq!(r.host_proc_residuals(&p), vec![1000.0, 750.0, 1000.0]);
    }

    #[test]
    fn switches_are_rejected() {
        let shape = generators::switched_cascade(2, 4);
        let p = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(500.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let switch = p
            .graph()
            .nodes()
            .find(|(_, n)| !n.is_host())
            .map(|(id, _)| id)
            .unwrap();
        let mut r = ResidualState::new(&p);
        assert_eq!(
            r.place(&p, &guest(1.0, 1, 1.0), switch),
            Err(PlaceError::NotAHost)
        );
    }
}
