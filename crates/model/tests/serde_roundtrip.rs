//! Wire-format stability: every model type the CLI reads/writes must
//! survive a JSON round trip (the CLI contract), including the
//! infinite-bandwidth sentinel used for intra-host links.

use emumap_model::{
    GuestSpec, HostSpec, Kbps, LinkSpec, Mapping, MemMb, Millis, Mips, PhysicalTopology, Route,
    StorGb, VLinkSpec, VirtualEnvironment, VmmOverhead,
};
use emumap_workloads::{ClusterSpec, VirtualEnvSpec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn roundtrip<T: serde::Serialize + serde::de::DeserializeOwned>(value: &T) -> T {
    let json = serde_json::to_string(value).expect("serialize");
    serde_json::from_str(&json).expect("deserialize")
}

#[test]
fn physical_topology_roundtrips() {
    let mut rng = SmallRng::seed_from_u64(1);
    for topo in [ClusterSpec::paper_torus(), ClusterSpec::paper_switched()] {
        let phys = ClusterSpec::paper().build(topo, &mut rng);
        let back: PhysicalTopology = roundtrip(&phys);
        assert_eq!(back.host_count(), phys.host_count());
        assert_eq!(back.graph().node_count(), phys.graph().node_count());
        assert_eq!(back.graph().edge_count(), phys.graph().edge_count());
        for (&a, &b) in phys.hosts().iter().zip(back.hosts()) {
            assert_eq!(a, b);
            assert_eq!(phys.host_spec(a), back.host_spec(b));
        }
        for e in phys.graph().edge_ids() {
            assert_eq!(phys.link(e), back.link(e));
            assert_eq!(phys.graph().endpoints(e), back.graph().endpoints(e));
        }
        assert_eq!(phys.vmm_overhead(), back.vmm_overhead());
    }
}

#[test]
fn virtual_environment_roundtrips() {
    let mut rng = SmallRng::seed_from_u64(2);
    let venv = VirtualEnvSpec::high_level(60, 0.05).generate(&mut rng);
    let back: VirtualEnvironment = roundtrip(&venv);
    assert_eq!(back.guest_count(), venv.guest_count());
    assert_eq!(back.link_count(), venv.link_count());
    for g in venv.guest_ids() {
        assert_eq!(venv.guest(g), back.guest(g));
    }
    for l in venv.link_ids() {
        assert_eq!(venv.link(l), back.link(l));
        assert_eq!(venv.link_endpoints(l), back.link_endpoints(l));
    }
}

#[test]
fn mapping_roundtrips_including_intra_host_routes() {
    let mut rng = SmallRng::seed_from_u64(3);
    let phys = ClusterSpec::paper().build(ClusterSpec::paper_torus(), &mut rng);
    let e: Vec<_> = phys.graph().edge_ids().collect();
    let mapping = Mapping::new(
        vec![phys.hosts()[0], phys.hosts()[1], phys.hosts()[0]],
        vec![Route::intra_host(), Route::new(vec![e[0], e[1]])],
    );
    let back: Mapping = roundtrip(&mapping);
    assert_eq!(back, mapping);
    assert!(back
        .route_of(emumap_graph::EdgeId::from_index(0))
        .is_intra_host());
}

#[test]
fn infinite_bandwidth_survives_json() {
    // serde_json serializes non-finite f64 as null; make the behaviour
    // explicit so the CLI contract is known: Kbps(INFINITY) must not
    // silently become a finite number.
    let spec = LinkSpec::new(Kbps::INFINITE, Millis(0.0));
    let json = serde_json::to_string(&spec).expect("serialize");
    let back: Result<LinkSpec, _> = serde_json::from_str(&json);
    match back {
        Ok(spec) => assert!(!spec.bw.is_finite(), "json was {json}"),
        Err(_) => assert!(json.contains("null"), "json was {json}"),
    }
}

proptest! {
    #[test]
    fn specs_roundtrip(proc in 0.0f64..1e6, mem in 0u64..1_000_000, stor in 0.0f64..1e6,
                       bw in 0.0f64..1e9, lat in 0.0f64..1e4) {
        let h = HostSpec::new(Mips(proc), MemMb(mem), StorGb(stor));
        prop_assert_eq!(roundtrip(&h), h);
        let g = GuestSpec::new(Mips(proc), MemMb(mem), StorGb(stor));
        prop_assert_eq!(roundtrip(&g), g);
        let l = LinkSpec::new(Kbps(bw), Millis(lat));
        prop_assert_eq!(roundtrip(&l), l);
        let v = VLinkSpec::new(Kbps(bw), Millis(lat));
        prop_assert_eq!(roundtrip(&v), v);
        let o = VmmOverhead { proc: Mips(proc), mem: MemMb(mem), stor: StorGb(stor) };
        prop_assert_eq!(roundtrip(&o), o);
    }
}
