//! # emumap-workloads
//!
//! Seedable generators reproducing the ICPP 2009 evaluation setup
//! (Table 1):
//!
//! * [`ClusterSpec`] — the 40-host heterogeneous cluster, in 2-D-torus or
//!   cascaded-switch arrangement;
//! * [`VirtualEnvSpec`] — the high-level (grid/cloud) and low-level (P2P)
//!   virtual-environment families;
//! * [`scenarios`] — the 16-row scenario grid of Tables 2–3 with
//!   deterministic per-repetition instantiation.
//!
//! Everything is a pure function of an explicit seed, so the 30-repetition
//! experiment protocol is exactly reproducible.
//!
//! ```
//! use emumap_workloads::{ClusterSpec, scenarios};
//!
//! let cluster = ClusterSpec::paper();
//! let rows = scenarios::paper_scenarios();
//! let inst = scenarios::instantiate(
//!     &cluster, ClusterSpec::paper_torus(), &rows[0], /*rep=*/0, /*seed=*/42,
//! );
//! assert_eq!(inst.phys.host_count(), 40);
//! assert_eq!(inst.venv.guest_count(), 100); // 2.5:1 on 40 hosts
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
pub mod feasibility;
pub mod sampler;
pub mod scenarios;
mod venv_gen;

pub use cluster::{ClusterSpec, ClusterTopology};
pub use feasibility::{ffd_packable, memory_utilization};
pub use sampler::{sample, standard_normal, Distribution, Range};
pub use scenarios::{
    instantiate, instantiate_both, oracle_smoke, paper_scenarios, Instance, Scenario, WorkloadKind,
};
pub use venv_gen::VirtualEnvSpec;
