//! Instance-feasibility prechecks.
//!
//! The high-level 10:1 scenario sits at ~94% mean memory utilization
//! (400 guests × ~192 MB against 40 hosts × ~2 GB), so a nontrivial
//! fraction of literal Table 1 draws are *unmappable by any algorithm* —
//! sometimes total demand even exceeds total capacity. The paper's
//! near-zero failure counts at 10:1 (HMN 5/480, RA 4/480, with successes
//! for every heuristic) imply its generator produced mappable instances;
//! we make that explicit with a first-fit-decreasing packability check and
//! rejection sampling in [`crate::scenarios::instantiate`], analogous to
//! the generator's stated connectivity guarantee. DESIGN.md records this
//! as a substitution.

use emumap_model::{HostSpec, VirtualEnvironment};

/// `true` if first-fit-decreasing (by memory, checking storage too) packs
/// every guest into the hosts. FFD is not a completeness proof — a
/// `false` can still be packable by an exhaustive search — but it is the
/// standard cheap certificate, and anything FFD packs is genuinely
/// mappable (placement-wise).
pub fn ffd_packable(hosts: &[HostSpec], venv: &VirtualEnvironment) -> bool {
    let mut mem_free: Vec<u64> = hosts.iter().map(|h| h.mem.value()).collect();
    let mut stor_free: Vec<f64> = hosts.iter().map(|h| h.stor.value()).collect();

    // Guests by descending memory (the binding resource in Table 1).
    let mut guests: Vec<(u64, f64)> = venv
        .guest_ids()
        .map(|g| {
            let s = venv.guest(g);
            (s.mem.value(), s.stor.value())
        })
        .collect();
    guests.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.total_cmp(&a.1)));

    'guests: for (mem, stor) in guests {
        for i in 0..hosts.len() {
            if mem_free[i] >= mem && stor_free[i] >= stor {
                mem_free[i] -= mem;
                stor_free[i] -= stor;
                continue 'guests;
            }
        }
        return false;
    }
    true
}

/// Ratio of total guest memory demand to total host memory capacity — a
/// quick infeasibility screen (`> 1.0` is a proof of unmappability).
pub fn memory_utilization(hosts: &[HostSpec], venv: &VirtualEnvironment) -> f64 {
    let capacity: u64 = hosts.iter().map(|h| h.mem.value()).sum();
    let demand: u64 = venv.total_mem_demand().value();
    demand as f64 / capacity as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_model::{GuestSpec, MemMb, Mips, StorGb};

    fn host(mem: u64, stor: f64) -> HostSpec {
        HostSpec::new(Mips(1000.0), MemMb(mem), StorGb(stor))
    }

    fn guest(mem: u64, stor: f64) -> GuestSpec {
        GuestSpec::new(Mips(10.0), MemMb(mem), StorGb(stor))
    }

    #[test]
    fn packs_an_easy_instance() {
        let hosts = vec![host(1000, 100.0); 2];
        let mut venv = VirtualEnvironment::new();
        for _ in 0..4 {
            venv.add_guest(guest(400, 10.0));
        }
        assert!(ffd_packable(&hosts, &venv));
    }

    #[test]
    fn rejects_total_overcommit() {
        let hosts = vec![host(1000, 100.0)];
        let mut venv = VirtualEnvironment::new();
        venv.add_guest(guest(600, 1.0));
        venv.add_guest(guest(600, 1.0));
        assert!(!ffd_packable(&hosts, &venv));
        assert!(memory_utilization(&hosts, &venv) > 1.0);
    }

    #[test]
    fn ffd_handles_fragmentation_that_defeats_naive_order() {
        // Two hosts of 1000; guests 600, 600, 400, 400. In arrival order
        // first-fit would pair 600+400 twice — fine; but 400,400,600,600
        // naive would pack 400+400 on host 0 and strand a 600. FFD sorts
        // descending so it always pairs 600+400.
        let hosts = vec![host(1000, 100.0); 2];
        let mut venv = VirtualEnvironment::new();
        for m in [400, 400, 600, 600] {
            venv.add_guest(guest(m, 1.0));
        }
        assert!(ffd_packable(&hosts, &venv));
    }

    #[test]
    fn storage_binds_independently() {
        let hosts = vec![host(10_000, 10.0)];
        let mut venv = VirtualEnvironment::new();
        venv.add_guest(guest(10, 6.0));
        venv.add_guest(guest(10, 6.0));
        assert!(!ffd_packable(&hosts, &venv));
    }

    #[test]
    fn exact_fit_packs() {
        let hosts = vec![host(1000, 10.0)];
        let mut venv = VirtualEnvironment::new();
        venv.add_guest(guest(1000, 10.0));
        assert!(ffd_packable(&hosts, &venv));
    }

    #[test]
    fn utilization_ratio_is_exact() {
        let hosts = vec![host(1000, 10.0), host(3000, 10.0)];
        let mut venv = VirtualEnvironment::new();
        venv.add_guest(guest(2000, 1.0));
        assert!((memory_utilization(&hosts, &venv) - 0.5).abs() < 1e-12);
    }
}
