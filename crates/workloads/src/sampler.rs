//! Random samplers for resource generation.
//!
//! Table 1 gives every quantity as a `[lo, hi]` range sampled uniformly;
//! §5.1's prose also mentions resources "generated randomly, based in a
//! normal distribution", so a truncated-normal sampler (Box–Muller — no
//! external distribution crate needed) is provided as an alternative.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// An inclusive numeric range `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Range {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Range {
    /// A range; `lo` must not exceed `hi`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        Range { lo, hi }
    }

    /// The midpoint of the range.
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// The width of the range.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// How values are drawn from a [`Range`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Distribution {
    /// Uniform over `[lo, hi]` — Table 1's stated distributions.
    #[default]
    Uniform,
    /// Normal with mean at the midpoint and the range spanning ±3σ,
    /// truncated (by resampling) to `[lo, hi]`.
    TruncatedNormal,
}

/// Draws one value from `range` under `dist`.
pub fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range, dist: Distribution) -> f64 {
    if range.width() == 0.0 {
        return range.lo;
    }
    match dist {
        Distribution::Uniform => rng.gen_range(range.lo..=range.hi),
        Distribution::TruncatedNormal => {
            let mean = range.mid();
            let sigma = range.width() / 6.0;
            loop {
                let v = mean + sigma * standard_normal(rng);
                if v >= range.lo && v <= range.hi {
                    return v;
                }
            }
        }
    }
}

/// One standard-normal draw via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn range_accessors() {
        let r = Range::new(10.0, 30.0);
        assert_eq!(r.mid(), 20.0);
        assert_eq!(r.width(), 20.0);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn inverted_range_panics() {
        let _ = Range::new(2.0, 1.0);
    }

    #[test]
    fn uniform_samples_stay_in_range_and_spread() {
        let mut rng = SmallRng::seed_from_u64(1);
        let r = Range::new(128.0, 256.0);
        let samples: Vec<f64> = (0..2000)
            .map(|_| sample(&mut rng, r, Distribution::Uniform))
            .collect();
        assert!(samples.iter().all(|&v| (r.lo..=r.hi).contains(&v)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!(
            (mean - r.mid()).abs() < 5.0,
            "uniform mean ≈ midpoint, got {mean}"
        );
        // Spread: both halves of the range are populated.
        assert!(samples.iter().any(|&v| v < r.mid()));
        assert!(samples.iter().any(|&v| v > r.mid()));
    }

    #[test]
    fn truncated_normal_stays_in_range_and_concentrates() {
        let mut rng = SmallRng::seed_from_u64(2);
        let r = Range::new(0.0, 60.0);
        let samples: Vec<f64> = (0..4000)
            .map(|_| sample(&mut rng, r, Distribution::TruncatedNormal))
            .collect();
        assert!(samples.iter().all(|&v| (r.lo..=r.hi).contains(&v)));
        // ±1σ (= width/6 = 10) around the mean should hold ~68% — far more
        // than a uniform's 33%.
        let near = samples
            .iter()
            .filter(|&&v| (v - 30.0).abs() <= 10.0)
            .count();
        let frac = near as f64 / samples.len() as f64;
        assert!(frac > 0.55, "normal concentration expected, got {frac}");
    }

    #[test]
    fn degenerate_range_is_constant() {
        let mut rng = SmallRng::seed_from_u64(3);
        let r = Range::new(5.0, 5.0);
        assert_eq!(sample(&mut rng, r, Distribution::Uniform), 5.0);
        assert_eq!(sample(&mut rng, r, Distribution::TruncatedNormal), 5.0);
    }

    #[test]
    fn standard_normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = SmallRng::seed_from_u64(4);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }
}
