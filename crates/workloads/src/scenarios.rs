//! The evaluation's scenario grid (§5.1–5.2): 16 rows of Tables 2–3.
//!
//! High-level workload at guest/host ratios {2.5, 5, 7.5, 10}:1 crossed
//! with densities {0.015, 0.02, 0.025}, plus low-level workload at ratios
//! {20, 30, 40, 50}:1 with density 0.01 — each run on both clusters, 30
//! repetitions.

use crate::cluster::{ClusterSpec, ClusterTopology};
use crate::venv_gen::VirtualEnvSpec;
use emumap_model::{PhysicalTopology, VirtualEnvironment};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which Table 1 workload family a scenario belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Full-stack guests (grid/cloud testing), ratios ≤ 10:1.
    HighLevel,
    /// Minimal guests (P2P protocol testing), ratios ≥ 20:1.
    LowLevel,
}

/// One row of Tables 2–3.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Guests per host (e.g. 2.5 means 100 guests on the 40-host cluster).
    pub ratio: f64,
    /// Virtual-graph density.
    pub density: f64,
    /// Workload family.
    pub workload: WorkloadKind,
}

impl Scenario {
    /// Human-readable row label, matching the paper's ("2.5:1 0.015").
    pub fn label(&self) -> String {
        // Ratios are either integral or x.5; keep the paper's compact form.
        if self.ratio.fract() == 0.0 {
            format!("{}:1 {}", self.ratio as u64, self.density)
        } else {
            format!("{}:1 {}", self.ratio, self.density)
        }
    }

    /// Number of guests for a given cluster size.
    pub fn guest_count(&self, hosts: usize) -> usize {
        (self.ratio * hosts as f64).round() as usize
    }

    /// The virtual-environment spec this scenario draws from.
    pub fn venv_spec(&self, hosts: usize) -> VirtualEnvSpec {
        let guests = self.guest_count(hosts);
        match self.workload {
            WorkloadKind::HighLevel => VirtualEnvSpec::high_level(guests, self.density),
            WorkloadKind::LowLevel => VirtualEnvSpec::low_level(guests, self.density),
        }
    }
}

/// The 16 scenarios of Tables 2–3, in the paper's row order.
pub fn paper_scenarios() -> Vec<Scenario> {
    let mut rows = Vec::with_capacity(16);
    for &density in &[0.015, 0.02, 0.025] {
        for &ratio in &[2.5, 5.0, 7.5, 10.0] {
            rows.push(Scenario {
                ratio,
                density,
                workload: WorkloadKind::HighLevel,
            });
        }
    }
    for &ratio in &[20.0, 30.0, 40.0, 50.0] {
        rows.push(Scenario {
            ratio,
            density: 0.01,
            workload: WorkloadKind::LowLevel,
        });
    }
    rows
}

/// One fully instantiated experiment input: a cluster (in the chosen
/// topology) and a virtual environment, both drawn deterministically from
/// `(scenario, repetition)`.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The physical cluster.
    pub phys: PhysicalTopology,
    /// The virtual environment to map.
    pub venv: VirtualEnvironment,
    /// Seed for the mapper's own randomness, derived from the instance
    /// seed so the whole run is a pure function of `(scenario, rep)`.
    pub mapper_seed: u64,
}

/// How many times the instance generator redraws before accepting an
/// FFD-unpackable draw anyway (see [`crate::feasibility`]).
const MAX_FEASIBILITY_REDRAWS: u64 = 64;

/// Draws `(hosts, venv)` for `(scenario, rep)`, rejection-sampling until
/// the draw is FFD-packable (the paper's generator produced mappable
/// instances — its failure counts at the tightest scenarios are near
/// zero; see `feasibility` module docs). Returns the accepted draw and
/// the mapper seed.
fn draw_feasible(
    cluster: &ClusterSpec,
    scenario: &Scenario,
    rep: u32,
    base_seed: u64,
) -> (Vec<emumap_model::HostSpec>, VirtualEnvironment, u64) {
    let spec = scenario.venv_spec(cluster.hosts);
    let mut last = None;
    for attempt in 0..MAX_FEASIBILITY_REDRAWS {
        let seed = mix(
            base_seed ^ attempt.wrapping_mul(0xa076_1d64_78bd_642f),
            scenario,
            rep,
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let hosts = cluster.draw_hosts(&mut rng);
        let venv = spec.generate(&mut rng);
        let mapper_seed = seed ^ 0x9e37_79b9_7f4a_7c15;
        if crate::feasibility::ffd_packable(&hosts, &venv) {
            return (hosts, venv, mapper_seed);
        }
        last = Some((hosts, venv, mapper_seed));
    }
    // Pathologically tight spec: hand back the final draw; mappers will
    // fail honestly and the harness records it.
    last.expect("MAX_FEASIBILITY_REDRAWS > 0")
}

/// Deterministically instantiates `scenario` for repetition `rep` on the
/// given cluster topology.
///
/// The derivation is stable across runs and platforms: instance RNGs are
/// seeded from a hash of `(base_seed, scenario parameter bits, rep)`.
/// Draws are rejection-sampled to FFD-packability (see
/// [`crate::feasibility`]).
pub fn instantiate(
    cluster: &ClusterSpec,
    topology: ClusterTopology,
    scenario: &Scenario,
    rep: u32,
    base_seed: u64,
) -> Instance {
    let (hosts, venv, mapper_seed) = draw_feasible(cluster, scenario, rep, base_seed);
    let phys = cluster.build_with_hosts(topology, &hosts);
    Instance {
        phys,
        venv,
        mapper_seed,
    }
}

/// Like [`instantiate`], but builds *both* paper topologies over the same
/// hosts and the same virtual environment — the paper's protocol ("each
/// workload has been tested in both clusters").
pub fn instantiate_both(
    cluster: &ClusterSpec,
    scenario: &Scenario,
    rep: u32,
    base_seed: u64,
) -> (Instance, Instance) {
    let (hosts, venv, mapper_seed) = draw_feasible(cluster, scenario, rep, base_seed);
    let torus = cluster.build_with_hosts(ClusterSpec::paper_torus(), &hosts);
    let switched = cluster.build_with_hosts(ClusterSpec::paper_switched(), &hosts);
    (
        Instance {
            phys: torus,
            venv: venv.clone(),
            mapper_seed,
        },
        Instance {
            phys: switched,
            venv,
            mapper_seed,
        },
    )
}

/// A deliberately tiny instance for exercising the exact branch-and-bound
/// oracle: a 6-host ring of uniform hosts with an 8-guest high-churn
/// virtual environment. Small enough that `emumap exact` certifies the
/// optimum in well under a second, yet non-trivial (heterogeneous guest
/// demands, inter-host links with real latency bounds).
///
/// Fully deterministic in `seed`, like every other generator here.
pub fn oracle_smoke(seed: u64) -> (PhysicalTopology, VirtualEnvironment) {
    use crate::sampler::{Distribution, Range};
    use emumap_graph::generators;
    use emumap_model::{HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb, VmmOverhead};

    let phys = PhysicalTopology::from_shape(
        &generators::ring(6),
        std::iter::repeat(HostSpec::new(
            Mips(2000.0),
            MemMb::from_gb(2),
            StorGb(2000.0),
        )),
        LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
        VmmOverhead::NONE,
    );
    let spec = crate::venv_gen::VirtualEnvSpec {
        guests: 8,
        density: 0.25,
        mem_mb: Range::new(64.0, 256.0),
        stor_gb: Range::new(10.0, 50.0),
        cpu_mips: Range::new(20.0, 100.0),
        bw_kbps: Range::new(50.0, 500.0),
        lat_ms: Range::new(20.0, 80.0),
        distribution: Distribution::Uniform,
    };
    let venv = spec.generate(&mut SmallRng::seed_from_u64(seed));
    (phys, venv)
}

/// SplitMix64-style seed mixing.
fn mix(base: u64, scenario: &Scenario, rep: u32) -> u64 {
    let mut z = base
        ^ scenario.ratio.to_bits().rotate_left(17)
        ^ scenario.density.to_bits().rotate_left(43)
        ^ u64::from(rep).wrapping_mul(0xff51_afd7_ed55_8ccd);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators::edges_for_density;

    #[test]
    fn sixteen_rows_in_paper_order() {
        let rows = paper_scenarios();
        assert_eq!(rows.len(), 16);
        assert_eq!(rows[0].label(), "2.5:1 0.015");
        assert_eq!(rows[3].label(), "10:1 0.015");
        assert_eq!(rows[4].label(), "2.5:1 0.02");
        assert_eq!(rows[11].label(), "10:1 0.025");
        assert_eq!(rows[12].label(), "20:1 0.01");
        assert_eq!(rows[15].label(), "50:1 0.01");
        assert!(rows[..12]
            .iter()
            .all(|s| s.workload == WorkloadKind::HighLevel));
        assert!(rows[12..]
            .iter()
            .all(|s| s.workload == WorkloadKind::LowLevel));
    }

    #[test]
    fn guest_counts_match_ratios() {
        let rows = paper_scenarios();
        assert_eq!(rows[0].guest_count(40), 100);
        assert_eq!(rows[3].guest_count(40), 400);
        assert_eq!(rows[12].guest_count(40), 800);
        assert_eq!(rows[15].guest_count(40), 2000);
    }

    #[test]
    fn instantiate_is_deterministic() {
        let cluster = ClusterSpec::paper();
        let s = paper_scenarios()[0];
        let a = instantiate(&cluster, ClusterSpec::paper_torus(), &s, 3, 42);
        let b = instantiate(&cluster, ClusterSpec::paper_torus(), &s, 3, 42);
        assert_eq!(a.mapper_seed, b.mapper_seed);
        assert_eq!(a.venv.guest_count(), b.venv.guest_count());
        for (&x, &y) in a.phys.hosts().iter().zip(b.phys.hosts()) {
            assert_eq!(a.phys.host_spec(x), b.phys.host_spec(y));
        }
    }

    #[test]
    fn repetitions_differ() {
        let cluster = ClusterSpec::paper();
        let s = paper_scenarios()[0];
        let a = instantiate(&cluster, ClusterSpec::paper_torus(), &s, 0, 42);
        let b = instantiate(&cluster, ClusterSpec::paper_torus(), &s, 1, 42);
        assert_ne!(a.mapper_seed, b.mapper_seed);
        let differs = a
            .phys
            .hosts()
            .iter()
            .zip(b.phys.hosts())
            .any(|(&x, &y)| a.phys.host_spec(x) != b.phys.host_spec(y));
        assert!(differs, "different reps draw different hosts");
    }

    #[test]
    fn both_topologies_share_hosts_and_venv() {
        let cluster = ClusterSpec::paper();
        let s = paper_scenarios()[1]; // 5:1 0.015 -> 200 guests
        let (torus, switched) = instantiate_both(&cluster, &s, 0, 7);
        assert_eq!(torus.venv.guest_count(), 200);
        assert_eq!(torus.venv.guest_count(), switched.venv.guest_count());
        assert_eq!(torus.venv.link_count(), edges_for_density(200, 0.015),);
        for (&x, &y) in torus.phys.hosts().iter().zip(switched.phys.hosts()) {
            assert_eq!(torus.phys.host_spec(x), switched.phys.host_spec(y));
        }
    }

    #[test]
    fn scenario_labels_roundtrip_fractions() {
        let s = Scenario {
            ratio: 7.5,
            density: 0.02,
            workload: WorkloadKind::HighLevel,
        };
        assert_eq!(s.label(), "7.5:1 0.02");
    }

    #[test]
    fn oracle_smoke_is_tiny_and_deterministic() {
        let (phys, venv) = oracle_smoke(42);
        assert_eq!(phys.host_count(), 6);
        assert_eq!(venv.guest_count(), 8);
        let (phys2, venv2) = oracle_smoke(42);
        assert_eq!(phys.host_count(), phys2.host_count());
        assert_eq!(venv.link_count(), venv2.link_count());
        for (a, b) in venv.guest_ids().zip(venv2.guest_ids()) {
            assert_eq!(venv.guest(a), venv2.guest(b));
        }
        let (_, other) = oracle_smoke(43);
        assert_eq!(other.guest_count(), 8, "size is seed-independent");
    }
}
