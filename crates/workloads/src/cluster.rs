//! Physical-cluster generation (Table 1, "Physical environment" column).
//!
//! The paper's cluster: 40 heterogeneous hosts — memory uniform in
//! 1–3 GB, storage 1–3 TB, CPU 1000–3000 MIPS — connected either as a
//! 2-D torus or through cascaded 64-port switches, every link 1 Gbps /
//! 5 ms. "In each test, the cluster topology has been built with the same
//! set of hosts": [`ClusterSpec::build_both`] draws the host set once and
//! instantiates both topologies over it.

use crate::sampler::{sample, Distribution, Range};
use emumap_graph::generators::{self, Topology};
use emumap_model::{
    HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, PhysicalTopology, StorGb, VmmOverhead,
};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which network shape connects the hosts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClusterTopology {
    /// `rows x cols` 2-D torus (paper: 5x8 for 40 hosts).
    Torus2D {
        /// Torus rows.
        rows: usize,
        /// Torus columns.
        cols: usize,
    },
    /// Hosts on cascaded switches with the given port count (paper: 64).
    Switched {
        /// Ports per switch.
        ports: usize,
    },
}

impl ClusterTopology {
    /// Builds the topology shape for `n_hosts`.
    ///
    /// # Panics
    /// Panics if a torus shape disagrees with `n_hosts`.
    pub fn shape(&self, n_hosts: usize) -> Topology {
        match *self {
            ClusterTopology::Torus2D { rows, cols } => {
                assert_eq!(
                    rows * cols,
                    n_hosts,
                    "torus {rows}x{cols} != {n_hosts} hosts"
                );
                generators::torus2d(rows, cols)
            }
            ClusterTopology::Switched { ports } => generators::switched_cascade(n_hosts, ports),
        }
    }
}

/// Full description of a random heterogeneous cluster.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of hosts (paper: 40).
    pub hosts: usize,
    /// Host memory range in MB (paper: 1–3 GB).
    pub mem_mb: Range,
    /// Host storage range in GB (paper: 1–3 TB).
    pub stor_gb: Range,
    /// Host CPU range in MIPS (paper: 1000–3000).
    pub cpu_mips: Range,
    /// Link bandwidth (paper: 1 Gbps).
    pub link_bw: Kbps,
    /// Link latency (paper: 5 ms).
    pub link_lat: Millis,
    /// Sampling distribution for host resources.
    pub distribution: Distribution,
    /// Per-host VMM overhead (paper §3.1; Table 1 does not state one, so
    /// the paper preset uses none).
    pub vmm: VmmOverhead,
}

impl ClusterSpec {
    /// The paper's Table 1 cluster.
    pub fn paper() -> Self {
        ClusterSpec {
            hosts: 40,
            mem_mb: Range::new(1024.0, 3072.0),
            stor_gb: Range::new(1000.0, 3000.0),
            cpu_mips: Range::new(1000.0, 3000.0),
            link_bw: Kbps::from_gbps(1.0),
            link_lat: Millis(5.0),
            distribution: Distribution::Uniform,
            vmm: VmmOverhead::NONE,
        }
    }

    /// The paper's torus arrangement of 40 hosts (5x8).
    pub fn paper_torus() -> ClusterTopology {
        ClusterTopology::Torus2D { rows: 5, cols: 8 }
    }

    /// The paper's switched arrangement (cascaded 64-port switches).
    pub fn paper_switched() -> ClusterTopology {
        ClusterTopology::Switched { ports: 64 }
    }

    /// Draws the random host set.
    pub fn draw_hosts<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<HostSpec> {
        (0..self.hosts)
            .map(|_| {
                HostSpec::new(
                    Mips(sample(rng, self.cpu_mips, self.distribution)),
                    MemMb(sample(rng, self.mem_mb, self.distribution).round() as u64),
                    StorGb(sample(rng, self.stor_gb, self.distribution)),
                )
            })
            .collect()
    }

    /// Builds one cluster with freshly drawn hosts.
    pub fn build<R: Rng + ?Sized>(
        &self,
        topology: ClusterTopology,
        rng: &mut R,
    ) -> PhysicalTopology {
        let hosts = self.draw_hosts(rng);
        self.build_with_hosts(topology, &hosts)
    }

    /// Builds a cluster over an explicit host set (so several topologies
    /// can share the same hosts, as the paper's protocol requires).
    pub fn build_with_hosts(
        &self,
        topology: ClusterTopology,
        hosts: &[HostSpec],
    ) -> PhysicalTopology {
        assert_eq!(hosts.len(), self.hosts, "host set size mismatch");
        let shape = topology.shape(self.hosts);
        PhysicalTopology::from_shape(
            &shape,
            hosts.iter().copied(),
            LinkSpec::new(self.link_bw, self.link_lat),
            self.vmm,
        )
    }

    /// Draws one host set and instantiates both paper topologies over it.
    pub fn build_both<R: Rng + ?Sized>(&self, rng: &mut R) -> (PhysicalTopology, PhysicalTopology) {
        let hosts = self.draw_hosts(rng);
        (
            self.build_with_hosts(Self::paper_torus(), &hosts),
            self.build_with_hosts(Self::paper_switched(), &hosts),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paper_cluster_matches_table1() {
        let spec = ClusterSpec::paper();
        let mut rng = SmallRng::seed_from_u64(1);
        let phys = spec.build(ClusterSpec::paper_torus(), &mut rng);
        assert_eq!(phys.host_count(), 40);
        assert_eq!(phys.graph().edge_count(), 80); // 4-regular torus
        for &h in phys.hosts() {
            let s = phys.host_spec(h);
            assert!((1000.0..=3000.0).contains(&s.proc.value()));
            assert!((1024..=3072).contains(&s.mem.value()));
            assert!((1000.0..=3000.0).contains(&s.stor.value()));
        }
        for e in phys.graph().edge_ids() {
            assert_eq!(phys.link(e).bw, Kbps(1_000_000.0));
            assert_eq!(phys.link(e).lat, Millis(5.0));
        }
    }

    #[test]
    fn switched_cluster_has_one_switch_for_40_hosts() {
        let spec = ClusterSpec::paper();
        let mut rng = SmallRng::seed_from_u64(1);
        let phys = spec.build(ClusterSpec::paper_switched(), &mut rng);
        assert_eq!(phys.host_count(), 40);
        assert_eq!(phys.graph().node_count(), 41);
    }

    #[test]
    fn build_both_shares_the_host_set() {
        let spec = ClusterSpec::paper();
        let mut rng = SmallRng::seed_from_u64(7);
        let (torus, switched) = spec.build_both(&mut rng);
        for (&a, &b) in torus.hosts().iter().zip(switched.hosts().iter()) {
            assert_eq!(torus.host_spec(a), switched.host_spec(b));
        }
    }

    #[test]
    fn hosts_are_heterogeneous() {
        let spec = ClusterSpec::paper();
        let mut rng = SmallRng::seed_from_u64(3);
        let hosts = spec.draw_hosts(&mut rng);
        let first = hosts[0];
        assert!(
            hosts.iter().any(|h| h.proc != first.proc),
            "40 draws from a 2000-MIPS-wide range must differ"
        );
    }

    #[test]
    fn seeded_builds_are_reproducible() {
        let spec = ClusterSpec::paper();
        let a = spec.draw_hosts(&mut SmallRng::seed_from_u64(5));
        let b = spec.draw_hosts(&mut SmallRng::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "torus 5x8 != 30 hosts")]
    fn torus_shape_mismatch_panics() {
        let mut spec = ClusterSpec::paper();
        spec.hosts = 30;
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = spec.build(ClusterSpec::paper_torus(), &mut rng);
    }
}
