//! Virtual-environment generation (Table 1, "Virtual environment"
//! columns).
//!
//! "The virtual environment configuration was created by a random generator
//! that receives as input the number of guests and network density and
//! generates an output by creating the links between guests and assigning a
//! given amount of resources to each one. ... The algorithm used to
//! generate the graph topology guarantees that the output graph is
//! connected." (§5.1)

use crate::sampler::{sample, Distribution, Range};
use emumap_graph::generators::random_connected;
use emumap_model::{GuestSpec, Kbps, MemMb, Millis, Mips, StorGb, VLinkSpec, VirtualEnvironment};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Full description of a random virtual environment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct VirtualEnvSpec {
    /// Number of guests.
    pub guests: usize,
    /// Virtual-graph density (fraction of possible guest pairs linked).
    pub density: f64,
    /// Guest memory demand range (MB).
    pub mem_mb: Range,
    /// Guest storage demand range (GB).
    pub stor_gb: Range,
    /// Guest CPU demand range (MIPS).
    pub cpu_mips: Range,
    /// Virtual-link bandwidth demand range (kbps).
    pub bw_kbps: Range,
    /// Virtual-link latency bound range (ms).
    pub lat_ms: Range,
    /// Sampling distribution for all quantities.
    pub distribution: Distribution,
}

impl VirtualEnvSpec {
    /// The **high-level application** workload (grids, cloud middleware —
    /// full OS stacks): Table 1's right column, for guest/host ratios up
    /// to 10:1.
    pub fn high_level(guests: usize, density: f64) -> Self {
        VirtualEnvSpec {
            guests,
            density,
            mem_mb: Range::new(128.0, 256.0),
            stor_gb: Range::new(100.0, 200.0),
            cpu_mips: Range::new(50.0, 100.0),
            bw_kbps: Range::new(500.0, 1000.0), // 0.5–1 Mbps
            lat_ms: Range::new(30.0, 60.0),
            distribution: Distribution::Uniform,
        }
    }

    /// The **low-level application** workload (P2P protocols — minimal
    /// VMs): Table 1's middle column, for ratios 20:1–50:1.
    pub fn low_level(guests: usize, density: f64) -> Self {
        VirtualEnvSpec {
            guests,
            density,
            mem_mb: Range::new(19.0, 38.0),
            stor_gb: Range::new(19.0, 38.0),
            cpu_mips: Range::new(19.0, 38.0),
            bw_kbps: Range::new(87.0, 175.0),
            lat_ms: Range::new(30.0, 60.0),
            distribution: Distribution::Uniform,
        }
    }

    /// Generates a random connected virtual environment per this spec.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> VirtualEnvironment {
        let shape = random_connected(self.guests, self.density, rng);
        let mut venv = VirtualEnvironment::new();
        for _ in 0..self.guests {
            venv.add_guest(GuestSpec::new(
                Mips(sample(rng, self.cpu_mips, self.distribution)),
                MemMb(sample(rng, self.mem_mb, self.distribution).round() as u64),
                StorGb(sample(rng, self.stor_gb, self.distribution)),
            ));
        }
        for e in shape.edges() {
            venv.add_link(
                e.a,
                e.b,
                VLinkSpec::new(
                    Kbps(sample(rng, self.bw_kbps, self.distribution)),
                    Millis(sample(rng, self.lat_ms, self.distribution)),
                ),
            );
        }
        venv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::algo::is_connected;
    use emumap_graph::generators::edges_for_density;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn high_level_respects_table1_ranges() {
        let spec = VirtualEnvSpec::high_level(100, 0.02);
        let mut rng = SmallRng::seed_from_u64(1);
        let venv = spec.generate(&mut rng);
        assert_eq!(venv.guest_count(), 100);
        assert_eq!(venv.link_count(), edges_for_density(100, 0.02));
        for g in venv.guest_ids() {
            let spec = venv.guest(g);
            assert!((128..=256).contains(&spec.mem.value()));
            assert!((100.0..=200.0).contains(&spec.stor.value()));
            assert!((50.0..=100.0).contains(&spec.proc.value()));
        }
        for l in venv.link_ids() {
            let spec = venv.link(l);
            assert!((500.0..=1000.0).contains(&spec.bw.value()));
            assert!((30.0..=60.0).contains(&spec.lat.value()));
        }
    }

    #[test]
    fn low_level_respects_table1_ranges() {
        let spec = VirtualEnvSpec::low_level(800, 0.01);
        let mut rng = SmallRng::seed_from_u64(2);
        let venv = spec.generate(&mut rng);
        assert_eq!(venv.guest_count(), 800);
        for g in venv.guest_ids() {
            let s = venv.guest(g);
            assert!((19..=38).contains(&s.mem.value()));
            assert!((19.0..=38.0).contains(&s.stor.value()));
            assert!((19.0..=38.0).contains(&s.proc.value()));
        }
        for l in venv.link_ids() {
            let s = venv.link(l);
            assert!((87.0..=175.0).contains(&s.bw.value()));
        }
    }

    #[test]
    fn generated_topology_is_connected() {
        let spec = VirtualEnvSpec::high_level(150, 0.015);
        let mut rng = SmallRng::seed_from_u64(3);
        let venv = spec.generate(&mut rng);
        assert!(is_connected(venv.graph()));
    }

    #[test]
    fn generation_is_reproducible() {
        let spec = VirtualEnvSpec::low_level(200, 0.01);
        let a = spec.generate(&mut SmallRng::seed_from_u64(9));
        let b = spec.generate(&mut SmallRng::seed_from_u64(9));
        assert_eq!(a.guest_count(), b.guest_count());
        for g in a.guest_ids() {
            assert_eq!(a.guest(g), b.guest(g));
        }
        for l in a.link_ids() {
            assert_eq!(a.link(l), b.link(l));
            assert_eq!(a.link_endpoints(l), b.link_endpoints(l));
        }
    }

    #[test]
    fn normal_distribution_option_works() {
        let mut spec = VirtualEnvSpec::high_level(50, 0.05);
        spec.distribution = Distribution::TruncatedNormal;
        let venv = spec.generate(&mut SmallRng::seed_from_u64(4));
        for g in venv.guest_ids() {
            assert!((128..=256).contains(&venv.guest(g).mem.value()));
        }
    }
}
