//! Subcommand implementations.

use crate::args::Parsed;
use emumap_bench::crosscheck::{CrossCheck, TrialWitness};
use emumap_bench::parallel::ParallelRunner;
use emumap_core::{
    cluster_diagnostics, mapper_keys, mapper_usage, solve_exact_with, BoundKind, ExactConfig,
    ExactStatus, Hmn, MapCache, MapOutcome, Mapper, MapperConfig,
};
use emumap_model::{validate_mapping, Mapping, PhysicalTopology, VirtualEnvironment};
use emumap_sim::{run_experiment, ExperimentSpec};
use emumap_workloads::{oracle_smoke, ClusterSpec, ClusterTopology, VirtualEnvSpec};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::path::Path;

/// CLI failures, each mapping to a non-zero exit code with a message.
#[derive(Debug)]
pub enum CliError {
    /// Bad usage: unknown subcommand, missing/invalid flags.
    Usage(String),
    /// Filesystem or JSON trouble.
    Io(String),
    /// The requested mapping could not be produced.
    Mapping(String),
    /// Validation found violations.
    Invalid(Vec<String>),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}\n\n{USAGE}"),
            CliError::Io(m) => write!(f, "io error: {m}"),
            CliError::Mapping(m) => write!(f, "mapping failed: {m}"),
            CliError::Invalid(violations) => {
                writeln!(f, "mapping is INVALID ({} violations):", violations.len())?;
                for v in violations {
                    writeln!(f, "  - {v}")?;
                }
                Ok(())
            }
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
emumap — map virtual machines and links onto emulation testbeds (HMN, ICPP 2009)

subcommands:
  gen-cluster --topology torus|switched [--hosts N] [--seed S] -o phys.json
      generate the paper's heterogeneous cluster (default 40 hosts)
  gen-venv --workload high|low --guests N --density D [--seed S] -o venv.json
      generate a Table 1 virtual environment
  map --phys phys.json --venv venv.json
      [--mapper hmn|r|ra|hs|ffd|bf|wf|consolidate|ksp|sa|pt|rr|pool]
      [--seed S] [--attempts A] [-o mapping.json] [--trace events.jsonl]
      map the environment; prints objective and stats; on failure prints
      capacity diagnostics (memory/CPU/latency/bandwidth headroom);
      --trace streams structured pipeline events (phase spans with
      timings, per-phase counters, per-link routing outcomes) as JSONL
  validate --phys phys.json --venv venv.json --mapping mapping.json
      check a mapping against the formal model (Eqs. 1-9)
  simulate --phys phys.json --venv venv.json --mapping mapping.json
      [--rounds N] [--work-factor F] [--msg-kbits K]
      run the emulated experiment and print its execution time
  exact --phys phys.json --venv venv.json | exact --smoke SEED
      [--seed S] [--max-nodes N] [--bound waterfill|lagrangian]
      [--threads T] [--epoch-nodes K] [--root-iters N] [--tree-iters N]
      [--step F] [--damping F] [--trace events.jsonl] [-o mapping.json]
      certify the optimal Eq. 10 objective by branch-and-bound (small
      instances only: the search is exponential in the guest count),
      seeding HMN's mapping as the incumbent; prints the certified
      optimum, the admissible lower bound, search counters and HMN's
      optimality gap; --bound picks the pruning bound (default
      lagrangian: priced per-guest tables + subgradient ascent, never
      weaker than waterfill); --threads T >= 1 runs the epoch-parallel
      engine (verdicts, bounds and counters are bit-identical at every
      T; 0, the default, is the classic sequential DFS), pulling K
      frontier nodes per epoch barrier (--epoch-nodes, default 500);
      --root-iters/--tree-iters/--step/--damping override the
      subgradient ascent schedule of the lagrangian bound;
      --smoke SEED uses a built-in 6-host/8-guest instance instead of
      --phys/--venv
  batch --phys phys.json --venv venv.json
      [--mapper NAME[,NAME..]|all] [--reps N] [--seed S] [--threads T]
      [--attempts A] [-o trials.json] [--trace-dir DIR] [--exact-check G]
      [--exact-max-nodes N] [--quiet]
      run repeated mapping trials across a worker pool (per-worker warm
      caches; deterministic at any thread count) and print per-mapper
      success rates, mean objective and mean mapping time; --trace-dir
      writes one trace_MAPPER_repNNN.jsonl event stream per trial;
      --exact-check G cross-checks every successful trial against the
      exact oracle when the instance has at most G guests (an invalid
      mapping, a refuted infeasibility or an objective below the
      certified lower bound fails the run), reporting certified k/n and
      truncated witness counts honestly; --exact-max-nodes caps the
      oracle's search budget; the stderr progress line is suppressed by
      --quiet or when stderr is not a tty
  serve --phys phys.json
      [--mapper hmn|sa|pt|...] [--seed S] [--attempts A]
      [--socket path.sock] [--trace events.jsonl]
      long-lived embedding daemon: one JSONL request per line on stdin
      (or on a Unix socket), one response per line on stdout; holds
      residual cluster state across apply/remove/status/save/restore
      requests and embeds arrivals against residual capacities with one
      warm cache; responses carry no volatile fields, so equal request
      streams and seeds yield byte-identical response streams; shutdown
      with {\"shutdown\":{}}
  inspect --phys phys.json [--venv venv.json] [--mapping mapping.json]
      [--dot out.dot]
      summarize a topology / environment / mapping; optionally export the
      physical topology as Graphviz DOT
  help
      print this text";

pub(crate) fn read_json<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, CliError> {
    let data =
        std::fs::read_to_string(path).map_err(|e| CliError::Io(format!("reading {path}: {e}")))?;
    serde_json::from_str(&data).map_err(|e| CliError::Io(format!("parsing {path}: {e}")))
}

pub(crate) fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), CliError> {
    if let Some(parent) = Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| CliError::Io(format!("creating {}: {e}", parent.display())))?;
        }
    }
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| CliError::Io(format!("serializing: {e}")))?;
    std::fs::write(path, json).map_err(|e| CliError::Io(format!("writing {path}: {e}")))
}

pub(crate) fn build_mapper(name: &str, attempts: usize) -> Result<Box<dyn Mapper>, CliError> {
    // One lookup against the core registry — the CLI registers nothing
    // itself, so a mapper added there is immediately reachable here.
    let config = MapperConfig {
        max_attempts: attempts,
    };
    emumap_core::build_mapper(name, &config)
        .ok_or_else(|| CliError::Usage(format!("unknown mapper '{name}' ({})", mapper_usage())))
}

/// Runs a parsed command line; returns lines to print on success.
pub fn run(parsed: &Parsed) -> Result<Vec<String>, CliError> {
    match parsed.subcommand.as_str() {
        "gen-cluster" => gen_cluster(parsed),
        "gen-venv" => gen_venv(parsed),
        "map" => map_cmd(parsed),
        "exact" => exact_cmd(parsed),
        "validate" => validate_cmd(parsed),
        "simulate" => simulate_cmd(parsed),
        "batch" => batch_cmd(parsed),
        "serve" => crate::serve::serve_cmd(parsed),
        "inspect" => inspect_cmd(parsed),
        "help" | "-h" | "--help" => Ok(vec![USAGE.to_string()]),
        other => Err(CliError::Usage(format!("unknown subcommand '{other}'"))),
    }
}

fn gen_cluster(p: &Parsed) -> Result<Vec<String>, CliError> {
    let topology = match p.optional("topology").unwrap_or("torus") {
        "torus" => ClusterSpec::paper_torus(),
        "switched" => ClusterSpec::paper_switched(),
        other => {
            return Err(CliError::Usage(format!(
                "unknown topology '{other}' (torus|switched)"
            )))
        }
    };
    let hosts: usize = p.parse_or("hosts", 40).map_err(CliError::Usage)?;
    let seed: u64 = p.parse_or("seed", 2009).map_err(CliError::Usage)?;
    let out = p.required("out").map_err(CliError::Usage)?;

    let mut spec = ClusterSpec::paper();
    spec.hosts = hosts;
    let topology = match topology {
        // The paper's torus is 5x8; other host counts need a near-square
        // factorization.
        ClusterTopology::Torus2D { .. } if hosts != 40 => {
            let rows = (1..=hosts)
                .filter(|r| hosts.is_multiple_of(*r))
                .min_by_key(|&r| (hosts / r).abs_diff(r))
                .unwrap_or(1);
            ClusterTopology::Torus2D {
                rows,
                cols: hosts / rows,
            }
        }
        t => t,
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let phys = spec.build(topology, &mut rng);
    write_json(out, &phys)?;
    Ok(vec![format!(
        "wrote {out}: {} hosts, {} links ({:?})",
        phys.host_count(),
        phys.graph().edge_count(),
        topology
    )])
}

fn gen_venv(p: &Parsed) -> Result<Vec<String>, CliError> {
    let guests: usize = p.parse_or("guests", 100).map_err(CliError::Usage)?;
    let density: f64 = p.parse_or("density", 0.02).map_err(CliError::Usage)?;
    let seed: u64 = p.parse_or("seed", 2009).map_err(CliError::Usage)?;
    let out = p.required("out").map_err(CliError::Usage)?;
    let spec = match p.optional("workload").unwrap_or("high") {
        "high" => VirtualEnvSpec::high_level(guests, density),
        "low" => VirtualEnvSpec::low_level(guests, density),
        other => {
            return Err(CliError::Usage(format!(
                "unknown workload '{other}' (high|low)"
            )))
        }
    };
    let mut rng = SmallRng::seed_from_u64(seed);
    let venv = spec.generate(&mut rng);
    write_json(out, &venv)?;
    Ok(vec![format!(
        "wrote {out}: {} guests, {} virtual links",
        venv.guest_count(),
        venv.link_count()
    )])
}

fn map_cmd(p: &Parsed) -> Result<Vec<String>, CliError> {
    let phys: PhysicalTopology = read_json(p.required("phys").map_err(CliError::Usage)?)?;
    let venv: VirtualEnvironment = read_json(p.required("venv").map_err(CliError::Usage)?)?;
    let seed: u64 = p.parse_or("seed", 2009).map_err(CliError::Usage)?;
    let attempts: usize = p
        .parse_or("attempts", emumap_core::DEFAULT_MAX_ATTEMPTS)
        .map_err(CliError::Usage)?;
    let mapper = build_mapper(p.optional("mapper").unwrap_or("hmn"), attempts)?;

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut cache = MapCache::new();
    if let Some(path) = p.optional("trace") {
        let sink = emumap_trace::JsonlSink::create(path)
            .map_err(|e| CliError::Io(format!("opening trace {path}: {e}")))?;
        cache.trace = emumap_trace::Tracer::new(Box::new(sink));
    }
    let result = mapper.map_with_cache(&phys, &venv, &mut rng, &mut cache);
    // The trace is most valuable on failures; flush it before bailing.
    if let Some(mut sink) = cache.trace.take_sink() {
        sink.flush()
            .map_err(|e| CliError::Io(format!("writing trace: {e}")))?;
    }
    let outcome: MapOutcome = result.map_err(|e| {
        let d = cluster_diagnostics(&phys, &venv);
        CliError::Mapping(format!(
            "{e}\n  diagnostics:\n    memory  : {} / {} MB demanded ({:.1}%)\n    cpu     : {:.0} / {:.0} MIPS demanded ({:.1}%)\n    latency : cluster diameter {:.1} ms vs tightest bound {:.1} ms\n    bandwidth: {:.0} / {:.0} kbps total demand ({:.1}%)",
            d.mem_demand_mb,
            d.mem_capacity_mb,
            100.0 * d.mem_demand_mb as f64 / d.mem_capacity_mb.max(1) as f64,
            d.proc_demand_mips,
            d.proc_capacity_mips,
            100.0 * d.proc_demand_mips / d.proc_capacity_mips.max(1.0),
            d.latency_diameter_ms,
            d.min_latency_bound_ms,
            d.bw_demand_kbps,
            d.bw_capacity_kbps,
            100.0 * d.bw_demand_kbps / d.bw_capacity_kbps.max(1.0),
        ))
    })?;

    // Always re-verify before emitting anything.
    validate_mapping(&phys, &venv, &outcome.mapping).map_err(|violations| {
        CliError::Invalid(violations.iter().map(|v| v.to_string()).collect())
    })?;

    let mut lines = vec![
        format!("mapper          : {}", mapper.name()),
        format!("objective (Eq10): {:.3} MIPS stddev", outcome.objective),
        format!(
            "hosts used      : {}/{}",
            outcome.mapping.hosts_used(),
            phys.host_count()
        ),
        format!(
            "links           : {} routed, {} intra-host",
            outcome.mapping.routed_link_count(),
            outcome.mapping.intra_host_link_count()
        ),
        format!("attempts        : {}", outcome.stats.attempts),
        format!("map time        : {:?}", outcome.stats.total_time),
        format!(
            "search          : {} A* expansions, {} heap pushes, {} scratch reuses",
            outcome.stats.astar_expansions,
            outcome.stats.astar_pushed,
            outcome.stats.scratch_reuses
        ),
        format!(
            "tables          : {} Dijkstra runs ({} hop tables), {} warm-cache hits",
            outcome.stats.dijkstra_runs, outcome.stats.hop_tables, outcome.stats.ar_cache_hits
        ),
        format!(
            "placement       : {} proposals evaluated ({} delta, {} full evals)",
            outcome.stats.proposals_evaluated,
            outcome.stats.delta_evaluations,
            outcome.stats.full_evaluations
        ),
    ];
    if let Some(out) = p.optional("out") {
        write_json(out, &outcome.mapping)?;
        lines.push(format!("wrote {out}"));
    }
    if let Some(path) = p.optional("trace") {
        lines.push(format!("wrote trace -> {path}"));
    }
    Ok(lines)
}

fn parse_bound_kind(p: &Parsed) -> Result<BoundKind, CliError> {
    match p.optional("bound").unwrap_or("lagrangian") {
        "lagrangian" => Ok(BoundKind::Lagrangian),
        "waterfill" => Ok(BoundKind::Waterfill),
        other => Err(CliError::Usage(format!(
            "--bound expects 'waterfill' or 'lagrangian', got '{other}'"
        ))),
    }
}

fn exact_status_str(status: ExactStatus) -> &'static str {
    match status {
        ExactStatus::Optimal => "OPTIMAL (certified)",
        ExactStatus::Infeasible => "INFEASIBLE (certified)",
        ExactStatus::Truncated => "TRUNCATED (bound only; raise --max-nodes)",
    }
}

fn exact_cmd(p: &Parsed) -> Result<Vec<String>, CliError> {
    let (phys, venv): (PhysicalTopology, VirtualEnvironment) = match p.optional("smoke") {
        Some(raw) => {
            let seed: u64 = raw
                .parse()
                .map_err(|_| CliError::Usage(format!("--smoke expects a seed, got '{raw}'")))?;
            oracle_smoke(seed)
        }
        None => (
            read_json(p.required("phys").map_err(CliError::Usage)?)?,
            read_json(p.required("venv").map_err(CliError::Usage)?)?,
        ),
    };
    let seed: u64 = p.parse_or("seed", 2009).map_err(CliError::Usage)?;
    let bound = parse_bound_kind(p)?;
    let defaults = ExactConfig::default();
    let config = ExactConfig {
        max_nodes: p
            .parse_or("max-nodes", defaults.max_nodes)
            .map_err(CliError::Usage)?,
        bound,
        threads: p
            .parse_or("threads", defaults.threads)
            .map_err(CliError::Usage)?,
        epoch_nodes: p
            .parse_or("epoch-nodes", defaults.epoch_nodes)
            .map_err(CliError::Usage)?,
        lagrangian: emumap_core::LagrangianConfig {
            root_iters: p
                .parse_or("root-iters", defaults.lagrangian.root_iters)
                .map_err(CliError::Usage)?,
            tree_iters: p
                .parse_or("tree-iters", defaults.lagrangian.tree_iters)
                .map_err(CliError::Usage)?,
            step: p
                .parse_or("step", defaults.lagrangian.step)
                .map_err(CliError::Usage)?,
            tangent_damping: p
                .parse_or("damping", defaults.lagrangian.tangent_damping)
                .map_err(CliError::Usage)?,
        },
        ..Default::default()
    };

    // Run HMN first (untraced) so the gap report has a heuristic to
    // compare against and the search starts from its mapping as the
    // incumbent; a --trace file then contains only the oracle's span.
    let mut cache = MapCache::new();
    let mut rng = SmallRng::seed_from_u64(seed);
    let hmn = Hmn::new()
        .map_with_cache(&phys, &venv, &mut rng, &mut cache)
        .ok();
    if let Some(path) = p.optional("trace") {
        let sink = emumap_trace::JsonlSink::create(path)
            .map_err(|e| CliError::Io(format!("opening trace {path}: {e}")))?;
        cache.trace = emumap_trace::Tracer::new(Box::new(sink));
    }
    let witnesses: Vec<Mapping> = hmn.iter().map(|o| o.mapping.clone()).collect();
    let outcome = solve_exact_with(&phys, &venv, &config, &mut cache, &witnesses);
    if let Some(mut sink) = cache.trace.take_sink() {
        sink.flush()
            .map_err(|e| CliError::Io(format!("writing trace: {e}")))?;
    }

    let s = &outcome.stats;
    let mut lines = vec![
        format!(
            "instance        : {} hosts, {} guests, {} virtual links",
            phys.host_count(),
            venv.guest_count(),
            venv.link_count()
        ),
        format!("status          : {}", exact_status_str(outcome.status)),
    ];
    match &outcome.best {
        Some(best) => lines.push(format!(
            "objective (Eq10): {:.3} MIPS stddev{}",
            best.objective,
            if outcome.is_certified() {
                " — certified optimum"
            } else {
                " — best found (not certified)"
            }
        )),
        None => lines.push("objective (Eq10): — (no feasible mapping found)".to_string()),
    }
    if outcome.lower_bound.is_finite() {
        lines.push(format!("lower bound     : {:.3}", outcome.lower_bound));
    }
    lines.push(format!(
        "search          : {} nodes expanded, {} pruned ({} bound, {} capacity, {} latency)",
        s.nodes_expanded,
        s.pruned_bound + s.pruned_capacity + s.pruned_latency,
        s.pruned_bound,
        s.pruned_capacity,
        s.pruned_latency
    ));
    if config.threads >= 1 {
        lines.push(format!(
            "parallel        : {} worker(s), {} epoch(s), {} node(s) stolen, {} incumbent publish(es)",
            config.threads, s.epochs, s.nodes_stolen, s.incumbent_publishes
        ));
    }
    if config.bound == BoundKind::Lagrangian {
        lines.push(format!(
            "lagrangian      : {} dual evaluations, {} bound improvements, {} extra prunes",
            s.subgradient_iters, s.bound_improvements, s.pruned_lagrangian
        ));
    }
    lines.push(format!(
        "leaf routing    : {} attempted, {} failed, {} witness(es) accepted",
        s.leaf_routings, s.routing_failures, s.witnesses_accepted
    ));
    match &hmn {
        Some(o) => {
            lines.push(format!("HMN objective   : {:.3} MIPS stddev", o.objective));
            if let Some(gap) = outcome.gap_from(o.objective) {
                let optimum = outcome.best.as_ref().map(|b| b.objective).unwrap_or(0.0);
                let pct = if optimum > 0.0 {
                    100.0 * gap / optimum
                } else {
                    0.0
                };
                lines.push(format!(
                    "HMN gap         : {gap:.3} above the certified optimum ({pct:.1}%)"
                ));
            }
        }
        None => lines.push("HMN objective   : — (HMN failed on this instance)".to_string()),
    }
    if let Some(out) = p.optional("out") {
        match &outcome.best {
            Some(best) => {
                write_json(out, &best.mapping)?;
                lines.push(format!("wrote {out}"));
            }
            None => lines.push(format!("no mapping to write to {out}")),
        }
    }
    if let Some(path) = p.optional("trace") {
        lines.push(format!("wrote trace -> {path}"));
    }
    Ok(lines)
}

fn validate_cmd(p: &Parsed) -> Result<Vec<String>, CliError> {
    let phys: PhysicalTopology = read_json(p.required("phys").map_err(CliError::Usage)?)?;
    let venv: VirtualEnvironment = read_json(p.required("venv").map_err(CliError::Usage)?)?;
    let mapping: Mapping = read_json(p.required("mapping").map_err(CliError::Usage)?)?;
    match validate_mapping(&phys, &venv, &mapping) {
        Ok(()) => Ok(vec![format!(
            "VALID: {} guests on {} hosts, {} routed links satisfy Eqs. 1-9",
            mapping.guest_count(),
            mapping.hosts_used(),
            mapping.routed_link_count()
        )]),
        Err(violations) => Err(CliError::Invalid(
            violations.iter().map(|v| v.to_string()).collect(),
        )),
    }
}

fn simulate_cmd(p: &Parsed) -> Result<Vec<String>, CliError> {
    let phys: PhysicalTopology = read_json(p.required("phys").map_err(CliError::Usage)?)?;
    let venv: VirtualEnvironment = read_json(p.required("venv").map_err(CliError::Usage)?)?;
    let mapping: Mapping = read_json(p.required("mapping").map_err(CliError::Usage)?)?;
    validate_mapping(&phys, &venv, &mapping).map_err(|violations| {
        CliError::Invalid(violations.iter().map(|v| v.to_string()).collect())
    })?;
    let spec = ExperimentSpec {
        rounds: p.parse_or("rounds", 10).map_err(CliError::Usage)?,
        work_factor: p.parse_or("work-factor", 1.0).map_err(CliError::Usage)?,
        msg_kbits: p.parse_or("msg-kbits", 50.0).map_err(CliError::Usage)?,
        ..Default::default()
    };
    let result = run_experiment(&phys, &venv, &mapping, &spec);
    Ok(vec![
        format!(
            "experiment time : {:.4}s ({} rounds)",
            result.total_s, spec.rounds
        ),
        format!("  compute       : {:.4}s", result.compute_s),
        format!("  network       : {:.4}s", result.network_s),
    ])
}

/// One trial's record in `batch -o` output.
#[derive(serde::Serialize)]
struct TrialRecord {
    mapper: String,
    rep: u32,
    seed: u64,
    ok: bool,
    objective: Option<f64>,
    map_time_s: Option<f64>,
    routed_links: Option<usize>,
    networking_time_s: Option<f64>,
}

fn batch_cmd(p: &Parsed) -> Result<Vec<String>, CliError> {
    let phys: PhysicalTopology = read_json(p.required("phys").map_err(CliError::Usage)?)?;
    let venv: VirtualEnvironment = read_json(p.required("venv").map_err(CliError::Usage)?)?;
    let reps: u32 = p.parse_or("reps", 10).map_err(CliError::Usage)?;
    let seed: u64 = p.parse_or("seed", 2009).map_err(CliError::Usage)?;
    let threads: usize = p.parse_or("threads", 0).map_err(CliError::Usage)?;
    let attempts: usize = p
        .parse_or("attempts", emumap_core::DEFAULT_MAX_ATTEMPTS)
        .map_err(CliError::Usage)?;
    let exact_check: usize = p.parse_or("exact-check", 0).map_err(CliError::Usage)?;
    let exact_max_nodes: u64 = p
        .parse_or("exact-max-nodes", ExactConfig::default().max_nodes)
        .map_err(CliError::Usage)?;

    let spec = p.optional("mapper").unwrap_or("hmn");
    let names: Vec<String> = if spec == "all" {
        // Every registered mapper, in registry order.
        mapper_keys().map(|s| s.to_string()).collect()
    } else {
        spec.split(',').map(|s| s.trim().to_string()).collect()
    };
    // Validate every name up front so the workers can unwrap.
    for name in &names {
        build_mapper(name, attempts)?;
    }
    let trace_dir = p.optional("trace-dir");
    if let Some(dir) = trace_dir {
        std::fs::create_dir_all(dir).map_err(|e| CliError::Io(format!("creating {dir}: {e}")))?;
    }

    let mut work: Vec<(usize, u32)> = Vec::new();
    for mi in 0..names.len() {
        for rep in 0..reps {
            work.push((mi, rep));
        }
    }
    // Per-trial seed: decorrelate reps with a golden-ratio stride and keep
    // mappers on disjoint streams via the high byte.
    let trial_seed = |mi: usize, rep: u32| {
        seed ^ (u64::from(rep)).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ ((mi as u64) << 56)
    };

    let runner = ParallelRunner::new(threads);
    let started = std::time::Instant::now();
    // Periodic progress to stderr (stdout carries the deterministic
    // report): every ~10% of trials, whichever worker crosses the line.
    // Suppressed by --quiet and whenever stderr is not a tty (CI logs,
    // pipes) so captured output stays clean.
    let progress = !p.flag("quiet") && std::io::IsTerminal::is_terminal(&std::io::stderr());
    let total_trials = work.len();
    let progress_every = (total_trials / 10).max(1);
    let done = std::sync::atomic::AtomicUsize::new(0);
    // Each trial also carries its mapping back so --exact-check can feed
    // the successes to the oracle as witnesses.
    let results: Vec<(TrialRecord, Option<Mapping>)> = runner.run(work, |(mi, rep), cache| {
        let mapper = build_mapper(&names[mi], attempts).expect("validated above");
        let s = trial_seed(mi, rep);
        let mut rng = SmallRng::seed_from_u64(s);
        if let Some(dir) = trace_dir {
            let path = Path::new(dir).join(format!("trace_{}_rep{rep:03}.jsonl", names[mi]));
            // Trace I/O must never fail a trial; an unopenable file just
            // leaves this trial untraced.
            if let Ok(sink) = emumap_trace::JsonlSink::create(&path) {
                cache.trace = emumap_trace::Tracer::new(Box::new(sink));
            }
        }
        let mapped = mapper.map_with_cache(&phys, &venv, &mut rng, cache);
        if let Some(mut sink) = cache.trace.take_sink() {
            let _ = sink.flush();
        }
        let finished = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
        if progress && (finished.is_multiple_of(progress_every) || finished == total_trials) {
            eprintln!(
                "batch progress  : {finished}/{total_trials} trials done, {:.1}s elapsed",
                started.elapsed().as_secs_f64()
            );
        }
        match mapped {
            Ok(o) => (
                TrialRecord {
                    mapper: names[mi].clone(),
                    rep,
                    seed: s,
                    ok: true,
                    objective: Some(o.objective),
                    map_time_s: Some(o.stats.total_time.as_secs_f64()),
                    routed_links: Some(o.stats.routed_links),
                    networking_time_s: Some(o.stats.networking_time.as_secs_f64()),
                },
                Some(o.mapping),
            ),
            Err(_) => (
                TrialRecord {
                    mapper: names[mi].clone(),
                    rep,
                    seed: s,
                    ok: false,
                    objective: None,
                    map_time_s: None,
                    routed_links: None,
                    networking_time_s: None,
                },
                None,
            ),
        }
    });
    let wall = started.elapsed();
    let (records, mappings): (Vec<TrialRecord>, Vec<Option<Mapping>>) = results.into_iter().unzip();

    let mut lines = vec![format!(
        "batch           : {} trials ({} mappers x {} reps) on {} threads in {:.3}s",
        records.len(),
        names.len(),
        reps,
        runner.threads(),
        wall.as_secs_f64()
    )];
    for name in &names {
        let of_mapper: Vec<&TrialRecord> = records.iter().filter(|r| &r.mapper == name).collect();
        let ok: Vec<&&TrialRecord> = of_mapper.iter().filter(|r| r.ok).collect();
        let mean = |f: fn(&TrialRecord) -> Option<f64>| -> Option<f64> {
            let vals: Vec<f64> = ok.iter().filter_map(|r| f(r)).collect();
            (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
        };
        let fmt = |v: Option<f64>, precision: usize| match v {
            Some(v) => format!("{v:.precision$}"),
            None => "—".to_string(),
        };
        lines.push(format!(
            "  {:<12}: {}/{} ok, mean objective {}, mean map time {}s",
            name,
            ok.len(),
            of_mapper.len(),
            fmt(mean(|r| r.objective), 1),
            fmt(mean(|r| r.map_time_s), 4),
        ));
    }
    if exact_check > 0 {
        let check = CrossCheck {
            max_guests: exact_check,
            config: ExactConfig {
                max_nodes: exact_max_nodes,
                ..Default::default()
            },
        };
        if check.applies(&venv) {
            let trials: Vec<TrialWitness> = records
                .iter()
                .zip(&mappings)
                .filter_map(|(r, m)| {
                    m.as_ref().map(|mapping| TrialWitness {
                        mapper: r.mapper.clone(),
                        objective: r.objective.unwrap_or(f64::INFINITY),
                        mapping: mapping.clone(),
                    })
                })
                .collect();
            // The certify call blocks on one oracle solve; bracket it with
            // the same stderr progress reporting (and --quiet/non-tty
            // gating) the trial loop uses, so a long exact-check is
            // visibly alive instead of silent.
            if progress {
                eprintln!(
                    "batch progress  : exact-check certifying {} witness(es) (budget {} nodes)",
                    trials.len(),
                    exact_max_nodes
                );
            }
            let check_started = std::time::Instant::now();
            let report = check.certify(&phys, &venv, &trials, &mut MapCache::new());
            if progress {
                eprintln!(
                    "batch progress  : exact-check {} in {:.1}s ({} nodes expanded)",
                    exact_status_str(report.outcome.status),
                    check_started.elapsed().as_secs_f64(),
                    report.outcome.stats.nodes_expanded
                );
            }
            let bound = if report.outcome.lower_bound.is_finite() {
                format!("{:.3}", report.outcome.lower_bound)
            } else {
                "∞".to_string()
            };
            lines.push(format!(
                "exact-check     : {} — certified {}/{} witness(es), {} truncated, lower bound {}",
                exact_status_str(report.outcome.status),
                report.certified_trials,
                trials.len(),
                report.truncated_trials,
                bound
            ));
            // With a certified optimum every witness objective becomes an
            // empirical approximation ratio; report it per mapper (CI
            // gates the randomized-rounding mapper's ratio).
            for name in &names {
                if let Some(ratio) = report.mean_ratio(name) {
                    lines.push(format!(
                        "  ratio {:<10}: {ratio:.3}x optimal (mean over {} certified trial(s))",
                        name,
                        report.ratios.iter().filter(|(m, _)| m == name).count()
                    ));
                }
            }
            if !report.ok() {
                return Err(CliError::Invalid(report.disagreements));
            }
        } else {
            lines.push(format!(
                "exact-check     : skipped ({} guests exceed the {exact_check}-guest cutoff)",
                venv.guest_count()
            ));
        }
    }
    if let Some(out) = p.optional("out") {
        write_json(out, &records)?;
        lines.push(format!("wrote {out}"));
    }
    if let Some(dir) = trace_dir {
        lines.push(format!("wrote traces -> {dir}"));
    }
    Ok(lines)
}

fn inspect_cmd(p: &Parsed) -> Result<Vec<String>, CliError> {
    let phys: PhysicalTopology = read_json(p.required("phys").map_err(CliError::Usage)?)?;
    let mut lines = Vec::new();

    let switches = phys.graph().node_count() - phys.host_count();
    lines.push(format!(
        "physical : {} hosts + {} switches, {} links",
        phys.host_count(),
        switches,
        phys.graph().edge_count()
    ));
    let total_proc = phys.total_effective_proc().value();
    let total_mem: u64 = phys
        .hosts()
        .iter()
        .map(|&h| phys.effective_mem(h).value())
        .sum();
    let total_stor: f64 = phys
        .hosts()
        .iter()
        .map(|&h| phys.effective_stor(h).value())
        .sum();
    lines.push(format!(
        "capacity : {total_proc:.0} MIPS, {total_mem} MB memory, {total_stor:.0} GB storage"
    ));
    if let Some(d) = emumap_graph::algo::diameter(phys.graph(), |_, l| l.lat.value()) {
        lines.push(format!("network  : latency diameter {d:.1} ms"));
    }

    let venv: Option<VirtualEnvironment> = match p.optional("venv") {
        Some(path) => Some(read_json(path)?),
        None => None,
    };
    if let Some(venv) = &venv {
        let d = cluster_diagnostics(&phys, venv);
        lines.push(format!(
            "virtual  : {} guests, {} links; memory load {:.1}%, CPU load {:.1}%, \
             bandwidth load {:.1}%",
            venv.guest_count(),
            venv.link_count(),
            100.0 * d.mem_demand_mb as f64 / d.mem_capacity_mb.max(1) as f64,
            100.0 * d.proc_demand_mips / d.proc_capacity_mips.max(1.0),
            100.0 * d.bw_demand_kbps / d.bw_capacity_kbps.max(1.0),
        ));
        if d.min_latency_bound_ms < d.latency_diameter_ms {
            lines.push(format!(
                "warning  : tightest virtual latency bound ({:.1} ms) is below the \
                 cluster diameter ({:.1} ms); some placements will be unroutable",
                d.min_latency_bound_ms, d.latency_diameter_ms
            ));
        }
    }

    if let Some(path) = p.optional("mapping") {
        let venv = venv
            .as_ref()
            .ok_or_else(|| CliError::Usage("--mapping requires --venv".to_string()))?;
        let mapping: Mapping = read_json(path)?;
        let valid = validate_mapping(&phys, venv, &mapping).is_ok();
        lines.push(format!(
            "mapping  : {} hosts used, {} routed / {} intra-host links, objective {:.1} — {}",
            mapping.hosts_used(),
            mapping.routed_link_count(),
            mapping.intra_host_link_count(),
            emumap_model::objective::mapping_objective(&phys, venv, &mapping),
            if valid {
                "VALID"
            } else {
                "INVALID (run `emumap validate` for details)"
            },
        ));
        // Per-host occupancy sparkline.
        let groups = mapping.guests_by_host();
        let occupancy: Vec<usize> = phys
            .hosts()
            .iter()
            .map(|h| groups.get(h).map(Vec::len).unwrap_or(0))
            .collect();
        let max = occupancy.iter().copied().max().unwrap_or(0).max(1);
        const LEVELS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let bars: String = occupancy
            .iter()
            .map(|&c| LEVELS[(c * 8).div_ceil(max).min(8)])
            .collect();
        lines.push(format!("occupancy: [{bars}] (max {max} guests/host)"));
    }

    if let Some(out) = p.optional("dot") {
        let dot = emumap_graph::to_dot(
            phys.graph(),
            &emumap_graph::DotOptions {
                name: "cluster".to_string(),
                graph_attrs: String::new(),
            },
            |id, node| match node {
                emumap_model::PhysNode::Host(spec) => format!(
                    "label=\"h{}\\n{:.0} MIPS\", shape=box",
                    id.index(),
                    spec.proc.value()
                ),
                emumap_model::PhysNode::Switch => {
                    format!("label=\"sw{}\", shape=diamond", id.index())
                }
            },
            |_, link| format!("label=\"{:.0}\"", link.bw.value()),
        );
        std::fs::write(out, dot).map_err(|e| CliError::Io(format!("writing {out}: {e}")))?;
        lines.push(format!("wrote DOT -> {out}"));
    }

    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::Parsed;

    fn run_tokens(tokens: &[&str]) -> Result<Vec<String>, CliError> {
        let parsed =
            Parsed::parse_with_aliases(tokens.iter().map(|s| s.to_string())).expect("parse");
        run(&parsed)
    }

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "emumap-cli-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn full_pipeline_roundtrips_through_json() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let venv = dir.join("venv.json");
        let mapping = dir.join("mapping.json");
        let phys_s = phys.to_str().unwrap();
        let venv_s = venv.to_str().unwrap();
        let mapping_s = mapping.to_str().unwrap();

        run_tokens(&[
            "gen-cluster",
            "--topology",
            "switched",
            "--seed",
            "1",
            "-o",
            phys_s,
        ])
        .expect("gen-cluster");
        run_tokens(&[
            "gen-venv",
            "--workload",
            "high",
            "--guests",
            "60",
            "--density",
            "0.03",
            "--seed",
            "2",
            "-o",
            venv_s,
        ])
        .expect("gen-venv");
        let lines = run_tokens(&[
            "map", "--phys", phys_s, "--venv", venv_s, "--mapper", "hmn", "-o", mapping_s,
        ])
        .expect("map");
        assert!(lines.iter().any(|l| l.contains("objective")));

        let lines = run_tokens(&[
            "validate",
            "--phys",
            phys_s,
            "--venv",
            venv_s,
            "--mapping",
            mapping_s,
        ])
        .expect("validate");
        assert!(lines[0].starts_with("VALID"));

        let lines = run_tokens(&[
            "simulate",
            "--phys",
            phys_s,
            "--venv",
            venv_s,
            "--mapping",
            mapping_s,
            "--rounds",
            "3",
        ])
        .expect("simulate");
        assert!(lines[0].contains("experiment time"));

        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn every_registered_mapper_name_builds() {
        for name in mapper_keys() {
            assert!(build_mapper(name, 10).is_ok(), "{name}");
        }
        // The unknown-mapper error enumerates the whole registry, so a
        // user sees every valid choice (including newly added mappers).
        let Err(CliError::Usage(msg)) = build_mapper("nope", 10) else {
            panic!("unknown mapper must be a usage error");
        };
        for name in mapper_keys() {
            assert!(msg.contains(name), "error message omits '{name}': {msg}");
        }
    }

    #[test]
    fn usage_text_lists_every_registered_mapper() {
        for name in mapper_keys() {
            assert!(USAGE.contains(name), "USAGE omits mapper '{name}'");
        }
    }

    #[test]
    fn unknown_subcommand_is_a_usage_error() {
        assert!(matches!(
            run_tokens(&["frobnicate"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn help_prints_usage() {
        let lines = run_tokens(&["help"]).unwrap();
        assert!(lines[0].contains("subcommands"));
    }

    #[test]
    fn gen_cluster_nonstandard_host_count_factorizes_torus() {
        let dir = tmpdir();
        let phys = dir.join("p36.json");
        let phys_s = phys.to_str().unwrap();
        let lines = run_tokens(&[
            "gen-cluster",
            "--topology",
            "torus",
            "--hosts",
            "36",
            "--seed",
            "3",
            "-o",
            phys_s,
        ])
        .unwrap();
        assert!(lines[0].contains("36 hosts"), "{lines:?}");
        let loaded: PhysicalTopology = read_json(phys_s).unwrap();
        assert_eq!(loaded.host_count(), 36);
        assert_eq!(loaded.graph().edge_count(), 72); // 6x6 torus, 4-regular
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn validate_rejects_corrupted_mapping() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let venv = dir.join("venv.json");
        let mapping = dir.join("mapping.json");
        let phys_s = phys.to_str().unwrap();
        let venv_s = venv.to_str().unwrap();
        let mapping_s = mapping.to_str().unwrap();

        run_tokens(&["gen-cluster", "--seed", "1", "-o", phys_s]).unwrap();
        run_tokens(&[
            "gen-venv",
            "--guests",
            "10",
            "--density",
            "0.2",
            "--seed",
            "2",
            "-o",
            venv_s,
        ])
        .unwrap();
        run_tokens(&["map", "--phys", phys_s, "--venv", venv_s, "-o", mapping_s]).unwrap();

        // Corrupt: drop one route from the mapping JSON.
        let mut m: Mapping = read_json(mapping_s).unwrap();
        let mut routes = m.routes().to_vec();
        routes.pop();
        m = Mapping::new(m.placement().to_vec(), routes);
        write_json(mapping_s, &m).unwrap();

        let err = run_tokens(&[
            "validate",
            "--phys",
            phys_s,
            "--venv",
            venv_s,
            "--mapping",
            mapping_s,
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Invalid(_)));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn batch_runs_deterministically_across_thread_counts() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let venv = dir.join("venv.json");
        let phys_s = phys.to_str().unwrap();
        let venv_s = venv.to_str().unwrap();
        run_tokens(&[
            "gen-cluster",
            "--topology",
            "torus",
            "--seed",
            "1",
            "-o",
            phys_s,
        ])
        .unwrap();
        // Small instance: `all` now spans the whole registry (SA, PT and
        // RR included), which debug builds must finish quickly.
        run_tokens(&[
            "gen-venv",
            "--guests",
            "24",
            "--density",
            "0.05",
            "--seed",
            "2",
            "-o",
            venv_s,
        ])
        .unwrap();

        let run_at = |threads: &str, out: &str| {
            run_tokens(&[
                "batch",
                "--phys",
                phys_s,
                "--venv",
                venv_s,
                "--mapper",
                "all",
                "--reps",
                "2",
                "--threads",
                threads,
                "-o",
                out,
            ])
            .expect("batch")
        };
        let one = dir.join("t1.json");
        let four = dir.join("t4.json");
        let lines = run_at("1", one.to_str().unwrap());
        run_at("4", four.to_str().unwrap());
        let expected = format!("{} trials", 2 * emumap_core::MAPPERS.len());
        assert!(lines.iter().any(|l| l.contains(&expected)), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("rr")), "{lines:?}");
        assert!(lines.iter().any(|l| l.contains("hmn")), "{lines:?}");
        // Wall-clock fields naturally differ; every deterministic field
        // (mapper, rep, seed, ok, objective, routed_links) must not.
        let strip = |path: &std::path::Path| -> serde::Value {
            let mut v =
                serde_json::value_from_str(&std::fs::read_to_string(path).unwrap()).unwrap();
            let serde::Value::Array(recs) = &mut v else {
                panic!("expected array")
            };
            for rec in recs {
                let serde::Value::Object(pairs) = rec else {
                    panic!("expected object")
                };
                pairs.retain(|(k, _)| k != "map_time_s" && k != "networking_time_s");
            }
            v
        };
        assert_eq!(
            strip(&one),
            strip(&four),
            "batch outcomes must not depend on the thread count"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn batch_rejects_unknown_mapper() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let venv = dir.join("venv.json");
        let phys_s = phys.to_str().unwrap();
        let venv_s = venv.to_str().unwrap();
        run_tokens(&["gen-cluster", "--seed", "1", "-o", phys_s]).unwrap();
        run_tokens(&[
            "gen-venv",
            "--guests",
            "10",
            "--density",
            "0.1",
            "--seed",
            "2",
            "-o",
            venv_s,
        ])
        .unwrap();
        let err = run_tokens(&[
            "batch", "--phys", phys_s, "--venv", venv_s, "--mapper", "hmn,nope",
        ])
        .unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn map_prints_search_and_table_counters() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let venv = dir.join("venv.json");
        let phys_s = phys.to_str().unwrap();
        let venv_s = venv.to_str().unwrap();
        run_tokens(&[
            "gen-cluster",
            "--topology",
            "torus",
            "--seed",
            "1",
            "-o",
            phys_s,
        ])
        .unwrap();
        run_tokens(&[
            "gen-venv",
            "--guests",
            "50",
            "--density",
            "0.05",
            "--seed",
            "2",
            "-o",
            venv_s,
        ])
        .unwrap();
        let lines =
            run_tokens(&["map", "--phys", phys_s, "--venv", venv_s, "--mapper", "hmn"]).unwrap();
        let text = lines.join("\n");
        assert!(text.contains("A* expansions"), "{text}");
        assert!(text.contains("Dijkstra runs"), "{text}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn inspect_summarizes_and_exports_dot() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let venv = dir.join("venv.json");
        let mapping = dir.join("mapping.json");
        let dot = dir.join("cluster.dot");
        let (phys_s, venv_s, mapping_s, dot_s) = (
            phys.to_str().unwrap(),
            venv.to_str().unwrap(),
            mapping.to_str().unwrap(),
            dot.to_str().unwrap(),
        );
        run_tokens(&[
            "gen-cluster",
            "--topology",
            "torus",
            "--seed",
            "4",
            "-o",
            phys_s,
        ])
        .unwrap();
        run_tokens(&[
            "gen-venv",
            "--guests",
            "50",
            "--density",
            "0.05",
            "--seed",
            "5",
            "-o",
            venv_s,
        ])
        .unwrap();
        run_tokens(&["map", "--phys", phys_s, "--venv", venv_s, "-o", mapping_s]).unwrap();
        let lines = run_tokens(&[
            "inspect",
            "--phys",
            phys_s,
            "--venv",
            venv_s,
            "--mapping",
            mapping_s,
            "--dot",
            dot_s,
        ])
        .unwrap();
        let text = lines.join("\n");
        assert!(text.contains("40 hosts"), "{text}");
        assert!(text.contains("VALID"), "{text}");
        assert!(text.contains("occupancy"), "{text}");
        let dot_text = std::fs::read_to_string(dot_s).unwrap();
        assert!(dot_text.starts_with("graph cluster {"));
        assert!(dot_text.contains("shape=box"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn inspect_mapping_requires_venv() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let phys_s = phys.to_str().unwrap();
        run_tokens(&["gen-cluster", "--seed", "1", "-o", phys_s]).unwrap();
        let err = run_tokens(&["inspect", "--phys", phys_s, "--mapping", phys_s]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn map_trace_contains_all_three_phases_and_map_end() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let venv = dir.join("venv.json");
        let trace = dir.join("events.jsonl");
        let phys_s = phys.to_str().unwrap();
        let venv_s = venv.to_str().unwrap();
        let trace_s = trace.to_str().unwrap();
        run_tokens(&[
            "gen-cluster",
            "--topology",
            "torus",
            "--seed",
            "1",
            "-o",
            phys_s,
        ])
        .unwrap();
        run_tokens(&[
            "gen-venv",
            "--guests",
            "50",
            "--density",
            "0.05",
            "--seed",
            "2",
            "-o",
            venv_s,
        ])
        .unwrap();
        let lines = run_tokens(&[
            "map", "--phys", phys_s, "--venv", venv_s, "--mapper", "hmn", "--trace", trace_s,
        ])
        .unwrap();
        assert!(lines.iter().any(|l| l.contains("wrote trace")), "{lines:?}");

        let text = std::fs::read_to_string(trace_s).unwrap();
        let events: Vec<emumap_trace::TraceEvent> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("each line parses as an event"))
            .collect();
        let phase_ends: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                emumap_trace::TraceEvent::PhaseEnd { phase, .. } => Some(*phase),
                _ => None,
            })
            .collect();
        use emumap_trace::Phase;
        assert_eq!(
            phase_ends,
            vec![Phase::Hosting, Phase::Migration, Phase::Networking]
        );
        assert!(matches!(
            events.last(),
            Some(emumap_trace::TraceEvent::MapEnd {
                ok: true,
                objective: Some(_),
                ..
            })
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn batch_trace_dir_writes_one_file_per_trial() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let venv = dir.join("venv.json");
        let traces = dir.join("traces");
        let phys_s = phys.to_str().unwrap();
        let venv_s = venv.to_str().unwrap();
        run_tokens(&[
            "gen-cluster",
            "--topology",
            "torus",
            "--seed",
            "1",
            "-o",
            phys_s,
        ])
        .unwrap();
        run_tokens(&[
            "gen-venv",
            "--guests",
            "40",
            "--density",
            "0.05",
            "--seed",
            "2",
            "-o",
            venv_s,
        ])
        .unwrap();
        run_tokens(&[
            "batch",
            "--phys",
            phys_s,
            "--venv",
            venv_s,
            "--mapper",
            "hmn,ffd",
            "--reps",
            "2",
            "--threads",
            "2",
            "--trace-dir",
            traces.to_str().unwrap(),
        ])
        .unwrap();
        let mut files: Vec<String> = std::fs::read_dir(&traces)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .collect();
        files.sort();
        assert_eq!(
            files,
            vec![
                "trace_ffd_rep000.jsonl",
                "trace_ffd_rep001.jsonl",
                "trace_hmn_rep000.jsonl",
                "trace_hmn_rep001.jsonl",
            ]
        );
        for f in &files {
            let text = std::fs::read_to_string(traces.join(f)).unwrap();
            assert!(!text.is_empty(), "{f} should contain events");
            for line in text.lines() {
                let _: emumap_trace::TraceEvent =
                    serde_json::from_str(line).expect("every line parses");
            }
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn exact_smoke_certifies_and_reports_the_hmn_gap() {
        let lines = run_tokens(&["exact", "--smoke", "2009"]).expect("exact");
        let text = lines.join("\n");
        assert!(text.contains("OPTIMAL (certified)"), "{text}");
        assert!(text.contains("certified optimum"), "{text}");
        assert!(text.contains("lower bound"), "{text}");
        assert!(text.contains("nodes expanded"), "{text}");
        assert!(text.contains("HMN objective"), "{text}");
        assert!(text.contains("HMN gap"), "{text}");
        assert!(!text.contains("parallel"), "sequential run: {text}");
    }

    #[test]
    fn exact_threads_report_is_identical_across_counts() {
        // Byte-identical reports modulo the two thread-count-dependent
        // lines: the "parallel" line names the worker count and the
        // stolen-node tally, everything else (verdict, objective, bound,
        // every search counter) must match exactly.
        let strip = |lines: Vec<String>| -> Vec<String> {
            lines
                .into_iter()
                .filter(|l| !l.starts_with("parallel"))
                .collect()
        };
        let one = run_tokens(&["exact", "--smoke", "2009", "--threads", "1"]).expect("1 thread");
        assert!(
            one.iter()
                .any(|l| l.starts_with("parallel") && l.contains("1 worker(s)")),
            "{one:?}"
        );
        let four = run_tokens(&["exact", "--smoke", "2009", "--threads", "4"]).expect("4 threads");
        let eight = run_tokens(&["exact", "--smoke", "2009", "--threads", "8"]).expect("8 threads");
        let one = strip(one);
        assert_eq!(one, strip(four));
        assert_eq!(one, strip(eight));
        assert!(one.iter().any(|l| l.contains("OPTIMAL (certified)")));
    }

    #[test]
    fn exact_subgradient_schedule_is_sweepable_from_the_cli() {
        // Satellite: the ascent schedule is configuration, not constants —
        // a deliberately weak schedule must still certify (admissibility
        // is schedule-independent), just with different effort counters.
        let weak = run_tokens(&[
            "exact",
            "--smoke",
            "2009",
            "--root-iters",
            "2",
            "--tree-iters",
            "1",
            "--step",
            "0.25",
            "--damping",
            "0.3",
        ])
        .expect("weak schedule");
        let text = weak.join("\n");
        assert!(text.contains("OPTIMAL (certified)"), "{text}");
        let default = run_tokens(&["exact", "--smoke", "2009"]).expect("default schedule");
        let evals = |lines: &[String]| {
            lines
                .iter()
                .find(|l| l.starts_with("lagrangian"))
                .expect("lagrangian line")
                .clone()
        };
        assert_ne!(
            evals(&weak),
            evals(&default),
            "schedule change must alter the dual-evaluation count"
        );
    }

    #[test]
    fn exact_reads_instance_files_and_writes_the_mapping() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let venv = dir.join("venv.json");
        let mapping = dir.join("exact.json");
        let (p, v) = emumap_workloads::oracle_smoke(11);
        write_json(phys.to_str().unwrap(), &p).unwrap();
        write_json(venv.to_str().unwrap(), &v).unwrap();
        let lines = run_tokens(&[
            "exact",
            "--phys",
            phys.to_str().unwrap(),
            "--venv",
            venv.to_str().unwrap(),
            "-o",
            mapping.to_str().unwrap(),
        ])
        .expect("exact");
        assert!(lines.iter().any(|l| l.contains("wrote ")), "{lines:?}");
        // The certified mapping must itself validate.
        let m: Mapping = read_json(mapping.to_str().unwrap()).unwrap();
        assert!(validate_mapping(&p, &v, &m).is_ok());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn exact_trace_contains_only_the_oracle_span() {
        let dir = tmpdir();
        let trace = dir.join("exact.jsonl");
        let trace_s = trace.to_str().unwrap();
        run_tokens(&["exact", "--smoke", "2009", "--trace", trace_s]).expect("exact");
        let text = std::fs::read_to_string(trace_s).unwrap();
        let events: Vec<emumap_trace::TraceEvent> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("each line parses as an event"))
            .collect();
        assert!(matches!(
            events.first(),
            Some(emumap_trace::TraceEvent::MapStart { mapper, .. }) if mapper == "EXACT"
        ));
        let phase_ends: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                emumap_trace::TraceEvent::PhaseEnd { phase, .. } => Some(*phase),
                _ => None,
            })
            .collect();
        assert_eq!(phase_ends, vec![emumap_trace::Phase::Exact]);
        assert!(matches!(
            events.last(),
            Some(emumap_trace::TraceEvent::MapEnd { ok: true, .. })
        ));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn exact_truncates_under_a_tiny_node_budget() {
        let lines = run_tokens(&["exact", "--smoke", "2009", "--max-nodes", "2"]).expect("exact");
        let text = lines.join("\n");
        assert!(text.contains("TRUNCATED"), "{text}");
    }

    #[test]
    fn batch_exact_check_certifies_small_instances() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let venv = dir.join("venv.json");
        let (p, v) = emumap_workloads::oracle_smoke(3);
        write_json(phys.to_str().unwrap(), &p).unwrap();
        write_json(venv.to_str().unwrap(), &v).unwrap();
        let lines = run_tokens(&[
            "batch",
            "--phys",
            phys.to_str().unwrap(),
            "--venv",
            venv.to_str().unwrap(),
            "--mapper",
            "hmn,ffd",
            "--reps",
            "2",
            "--threads",
            "2",
            "--exact-check",
            "10",
        ])
        .expect("batch with exact-check");
        let text = lines.join("\n");
        assert!(text.contains("exact-check"), "{text}");
        assert!(
            text.contains("certified 4/4 witness(es), 0 truncated"),
            "{text}"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn batch_exact_check_reports_truncated_witnesses_honestly() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let venv = dir.join("venv.json");
        let (p, v) = emumap_workloads::oracle_smoke(3);
        write_json(phys.to_str().unwrap(), &p).unwrap();
        write_json(venv.to_str().unwrap(), &v).unwrap();
        let lines = run_tokens(&[
            "batch",
            "--phys",
            phys.to_str().unwrap(),
            "--venv",
            venv.to_str().unwrap(),
            "--mapper",
            "hmn,ffd",
            "--reps",
            "2",
            "--threads",
            "2",
            "--exact-check",
            "10",
            "--exact-max-nodes",
            "2",
        ])
        .expect("batch with truncated exact-check");
        let text = lines.join("\n");
        assert!(text.contains("TRUNCATED"), "{text}");
        assert!(
            text.contains("certified 0/4 witness(es), 4 truncated"),
            "{text}"
        );
        assert!(
            !text.contains("x optimal"),
            "no ratios without certificates: {text}"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn exact_bound_waterfill_runs_without_lagrangian_work() {
        let lines =
            run_tokens(&["exact", "--smoke", "2009", "--bound", "waterfill"]).expect("exact");
        let text = lines.join("\n");
        assert!(text.contains("OPTIMAL (certified)"), "{text}");
        assert!(!text.contains("lagrangian"), "{text}");
    }

    #[test]
    fn exact_bound_lagrangian_reports_dual_evaluations() {
        let lines =
            run_tokens(&["exact", "--smoke", "2009", "--bound", "lagrangian"]).expect("exact");
        let text = lines.join("\n");
        assert!(text.contains("OPTIMAL (certified)"), "{text}");
        assert!(text.contains("dual evaluations"), "{text}");
    }

    #[test]
    fn exact_rejects_unknown_bound_kind() {
        let err = run_tokens(&["exact", "--smoke", "2009", "--bound", "simplex"]).unwrap_err();
        assert!(format!("{err}").contains("--bound expects"), "{err}");
    }

    #[test]
    fn batch_exact_check_skips_oversized_instances() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let venv = dir.join("venv.json");
        let (p, v) = emumap_workloads::oracle_smoke(3);
        write_json(phys.to_str().unwrap(), &p).unwrap();
        write_json(venv.to_str().unwrap(), &v).unwrap();
        let lines = run_tokens(&[
            "batch",
            "--phys",
            phys.to_str().unwrap(),
            "--venv",
            venv.to_str().unwrap(),
            "--reps",
            "1",
            "--exact-check",
            "2",
        ])
        .expect("batch");
        assert!(lines.iter().any(|l| l.contains("skipped")), "{lines:?}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn map_reports_mapper_failure() {
        let dir = tmpdir();
        let phys = dir.join("phys.json");
        let venv = dir.join("venv.json");
        let phys_s = phys.to_str().unwrap();
        let venv_s = venv.to_str().unwrap();
        run_tokens(&["gen-cluster", "--seed", "1", "-o", phys_s]).unwrap();
        // 4000 high-level guests cannot fit 40 hosts (memory).
        run_tokens(&[
            "gen-venv",
            "--guests",
            "4000",
            "--density",
            "0.001",
            "--seed",
            "2",
            "-o",
            venv_s,
        ])
        .unwrap();
        let err = run_tokens(&["map", "--phys", phys_s, "--venv", venv_s]).unwrap_err();
        assert!(matches!(err, CliError::Mapping(_)));
        std::fs::remove_dir_all(dir).ok();
    }
}
