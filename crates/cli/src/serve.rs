//! `emumap serve`: the JSONL request/response daemon.
//!
//! One request per line on stdin (or a Unix socket), one response per
//! line on stdout, flushed per response. Requests and responses are
//! single-key objects — the key is the verb:
//!
//! ```text
//! → {"apply":{"id":"t1","workload":"high","guests":40,"density":0.03,"seed":7}}
//! ← {"applied":{"id":"t1","guests":40,...,"objective":573.9}}
//! → {"remove":{"id":"t1"}}
//! ← {"removed":{"id":"t1","guests":40,"links":23}}
//! → {"status":{}}
//! ← {"status":{"tenants":0,...}}
//! → {"shutdown":{}}
//! ← {"bye":{}}
//! ```
//!
//! An `apply` carries either an inline `"venv"` (the `gen-venv` JSON
//! format) or the generator form above (`workload`/`guests`/`density`/
//! `seed`), which is resolved through the same Table 1 generators as
//! `gen-venv` — so request traces stay tiny and self-contained.
//!
//! Responses carry **no wall-clock or volatile fields**: the same request
//! stream against the same `--seed` yields byte-identical response
//! streams regardless of cache warmth or mapper thread count, which is
//! what lets CI diff a live replay against a committed golden file.
//! Malformed requests and protocol failures (unknown tenant, corrupt
//! snapshot) produce an `{"error":{...}}` response and the daemon keeps
//! serving; an orderly `apply` rejection is a `{"rejected":{...}}`
//! response, not an error.

use std::io::{BufRead, Write};

use crate::args::Parsed;
use crate::commands::{build_mapper, read_json, write_json, CliError};
use emumap_core::serve::{ApplyOutcome, ServeError, Session, Snapshot};
use emumap_core::Mapper;
use emumap_model::{PhysicalTopology, VirtualEnvironment};
use emumap_workloads::VirtualEnvSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize, Value};

/// Where an `apply` gets its virtual environment from.
enum VenvSource {
    Inline(VirtualEnvironment),
    Generated {
        workload: String,
        guests: usize,
        density: f64,
        seed: u64,
    },
}

/// One parsed request.
enum Request {
    Apply { id: String, venv: VenvSource },
    Remove { id: String },
    Status,
    Save { path: String },
    Restore { path: String },
    Shutdown,
}

fn field<'v>(body: &'v Value, key: &str, verb: &str) -> Result<&'v Value, String> {
    body.get(key)
        .ok_or_else(|| format!("{verb}: missing field \"{key}\""))
}

fn str_field(body: &Value, key: &str, verb: &str) -> Result<String, String> {
    match field(body, key, verb)? {
        Value::Str(s) => Ok(s.clone()),
        other => Err(format!(
            "{verb}.{key}: expected string, found {}",
            other.kind()
        )),
    }
}

fn parse_request(line: &str) -> Result<Request, String> {
    let value = serde_json::value_from_str(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let Value::Object(pairs) = &value else {
        return Err(format!("request must be an object, found {}", value.kind()));
    };
    let [(verb, body)] = pairs.as_slice() else {
        return Err(format!(
            "request must have exactly one verb key, found {}",
            pairs.len()
        ));
    };
    match verb.as_str() {
        "apply" => {
            let id = str_field(body, "id", "apply")?;
            let venv = if let Some(inline) = body.get("venv") {
                VenvSource::Inline(
                    VirtualEnvironment::from_value(inline)
                        .map_err(|e| format!("apply.venv: {e}"))?,
                )
            } else {
                VenvSource::Generated {
                    workload: str_field(body, "workload", "apply")?,
                    guests: usize::from_value(field(body, "guests", "apply")?)
                        .map_err(|e| format!("apply.guests: {e}"))?,
                    density: f64::from_value(field(body, "density", "apply")?)
                        .map_err(|e| format!("apply.density: {e}"))?,
                    seed: u64::from_value(field(body, "seed", "apply")?)
                        .map_err(|e| format!("apply.seed: {e}"))?,
                }
            };
            Ok(Request::Apply { id, venv })
        }
        "remove" => Ok(Request::Remove {
            id: str_field(body, "id", "remove")?,
        }),
        "status" => Ok(Request::Status),
        "save" => Ok(Request::Save {
            path: str_field(body, "path", "save")?,
        }),
        "restore" => Ok(Request::Restore {
            path: str_field(body, "path", "restore")?,
        }),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown verb \"{other}\"")),
    }
}

/// Wraps a payload under a single verb key.
fn response(verb: &str, payload: Value) -> String {
    serde_json::to_string(&Value::Object(vec![(verb.to_string(), payload)]))
        .expect("Value serialization is infallible")
}

fn error_response(reason: impl Into<String>) -> String {
    response(
        "error",
        Value::Object(vec![("reason".to_string(), Value::Str(reason.into()))]),
    )
}

/// Prepends `id` to a serialized report's fields.
fn with_id(id: &str, payload: Value) -> Value {
    let mut fields = vec![("id".to_string(), Value::Str(id.to_string()))];
    if let Value::Object(rest) = payload {
        fields.extend(rest);
    }
    Value::Object(fields)
}

fn resolve_venv(source: VenvSource) -> Result<VirtualEnvironment, String> {
    match source {
        VenvSource::Inline(venv) => Ok(venv),
        VenvSource::Generated {
            workload,
            guests,
            density,
            seed,
        } => {
            let spec = match workload.as_str() {
                "high" => VirtualEnvSpec::high_level(guests, density),
                "low" => VirtualEnvSpec::low_level(guests, density),
                other => return Err(format!("unknown workload \"{other}\" (high|low)")),
            };
            Ok(spec.generate(&mut SmallRng::seed_from_u64(seed)))
        }
    }
}

/// Executes one request, returning the response line.
fn handle(session: &mut Session, mapper: &dyn Mapper, request: Request) -> ResponseAction {
    match request {
        Request::Apply { id, venv } => match resolve_venv(venv) {
            Ok(venv) => match session.apply(&id, venv, mapper) {
                ApplyOutcome::Admitted(report) => {
                    ResponseAction::Reply(response("applied", with_id(&id, report.to_value())))
                }
                ApplyOutcome::Rejected { reason } => ResponseAction::Reply(response(
                    "rejected",
                    Value::Object(vec![
                        ("id".to_string(), Value::Str(id)),
                        ("reason".to_string(), Value::Str(reason)),
                    ]),
                )),
            },
            Err(reason) => ResponseAction::Reply(error_response(reason)),
        },
        Request::Remove { id } => match session.remove(&id) {
            Ok(report) => {
                ResponseAction::Reply(response("removed", with_id(&id, report.to_value())))
            }
            Err(e) => ResponseAction::Reply(error_response(e.to_string())),
        },
        Request::Status => ResponseAction::Reply(response("status", session.status().to_value())),
        Request::Save { path } => {
            let snapshot = session.snapshot();
            let tenants = snapshot.tenants.len() as u64;
            match write_json(&path, &snapshot) {
                Ok(()) => ResponseAction::Reply(response(
                    "saved",
                    Value::Object(vec![
                        ("path".to_string(), Value::Str(path)),
                        ("tenants".to_string(), Value::U64(tenants)),
                    ]),
                )),
                Err(e) => ResponseAction::Reply(error_response(e.to_string())),
            }
        }
        Request::Restore { path } => match read_json::<Snapshot>(&path) {
            Ok(snapshot) => match session.restore(snapshot) {
                Ok(tenants) => ResponseAction::Reply(response(
                    "restored",
                    Value::Object(vec![
                        ("path".to_string(), Value::Str(path)),
                        ("tenants".to_string(), Value::U64(tenants)),
                    ]),
                )),
                Err(e @ ServeError::CorruptSnapshot { .. }) => {
                    ResponseAction::Reply(error_response(e.to_string()))
                }
                Err(e) => ResponseAction::Reply(error_response(e.to_string())),
            },
            Err(e) => ResponseAction::Reply(error_response(e.to_string())),
        },
        Request::Shutdown => ResponseAction::Shutdown(response("bye", Value::Object(vec![]))),
    }
}

enum ResponseAction {
    Reply(String),
    Shutdown(String),
}

/// Serves requests from `input` until EOF or a `shutdown` request.
/// Returns `true` if the loop ended on `shutdown` (vs. EOF).
pub fn serve_stream(
    session: &mut Session,
    mapper: &dyn Mapper,
    input: impl BufRead,
    out: &mut impl Write,
) -> Result<bool, CliError> {
    for line in input.lines() {
        let line = line.map_err(|e| CliError::Io(format!("reading request: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let action = match parse_request(&line) {
            Ok(request) => handle(session, mapper, request),
            Err(reason) => ResponseAction::Reply(error_response(reason)),
        };
        let (reply, shutdown) = match action {
            ResponseAction::Reply(r) => (r, false),
            ResponseAction::Shutdown(r) => (r, true),
        };
        writeln!(out, "{reply}").map_err(|e| CliError::Io(format!("writing response: {e}")))?;
        out.flush()
            .map_err(|e| CliError::Io(format!("flushing response: {e}")))?;
        if shutdown {
            return Ok(true);
        }
    }
    Ok(false)
}

/// The `serve` subcommand: builds the session and serves stdin/stdout or
/// a Unix socket until shutdown.
pub fn serve_cmd(p: &Parsed) -> Result<Vec<String>, CliError> {
    let phys: PhysicalTopology = read_json(p.required("phys").map_err(CliError::Usage)?)?;
    let mapper_name = p.optional("mapper").unwrap_or("hmn");
    let attempts: usize = p
        .parse_or("attempts", emumap_core::DEFAULT_MAX_ATTEMPTS)
        .map_err(CliError::Usage)?;
    let mapper = build_mapper(mapper_name, attempts)?;
    let seed: u64 = p.parse_or("seed", 2009).map_err(CliError::Usage)?;

    let mut session = Session::new(phys, seed);
    if let Some(path) = p.optional("trace") {
        let sink = emumap_trace::JsonlSink::create(path)
            .map_err(|e| CliError::Io(format!("creating {path}: {e}")))?;
        session.cache_mut().trace = emumap_trace::Tracer::new(Box::new(sink));
    }

    if let Some(socket) = p.optional("socket") {
        serve_socket(&mut session, mapper.as_ref(), socket)?;
    } else {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        serve_stream(&mut session, mapper.as_ref(), stdin.lock(), &mut out)?;
    }

    if let Some(mut sink) = session.cache_mut().trace.take_sink() {
        sink.flush()
            .map_err(|e| CliError::Io(format!("flushing trace: {e}")))?;
    }
    let counters = session.counters();
    eprintln!(
        "serve: {} requests ({} admitted, {} rejected, {} removed, {} active at exit)",
        session.requests_processed(),
        counters.admitted,
        counters.rejected,
        counters.removed,
        counters.active_tenants,
    );
    // stdout carried the responses; nothing further to print.
    Ok(Vec::new())
}

/// Serves connections on a Unix socket, one at a time, until a client
/// sends `shutdown`.
#[cfg(unix)]
fn serve_socket(session: &mut Session, mapper: &dyn Mapper, path: &str) -> Result<(), CliError> {
    use std::os::unix::net::UnixListener;
    // A stale socket file from a previous run would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener =
        UnixListener::bind(path).map_err(|e| CliError::Io(format!("binding {path}: {e}")))?;
    eprintln!("serve: listening on {path}");
    for stream in listener.incoming() {
        let stream = stream.map_err(|e| CliError::Io(format!("accepting on {path}: {e}")))?;
        let reader = std::io::BufReader::new(
            stream
                .try_clone()
                .map_err(|e| CliError::Io(format!("cloning connection: {e}")))?,
        );
        let mut writer = stream;
        if serve_stream(session, mapper, reader, &mut writer)? {
            break;
        }
    }
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(_session: &mut Session, _mapper: &dyn Mapper, _path: &str) -> Result<(), CliError> {
    Err(CliError::Usage(
        "--socket requires a Unix platform".to_string(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_core::MapCache;
    use emumap_model::{HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb, VmmOverhead};

    fn phys() -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &emumap_graph::generators::torus2d(3, 4),
            std::iter::repeat(HostSpec::new(Mips(2000.0), MemMb(2048), StorGb(2000.0))),
            LinkSpec::new(Kbps(100_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    /// Feeds `requests` through a session and returns the response lines.
    fn run_lines(session: &mut Session, requests: &[String]) -> Vec<String> {
        let mapper = build_mapper("hmn", 1).unwrap();
        let input = requests.join("\n");
        let mut out = Vec::new();
        serve_stream(session, mapper.as_ref(), input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }

    fn apply_gen(id: &str, guests: usize, seed: u64) -> String {
        format!(
            "{{\"apply\":{{\"id\":\"{id}\",\"workload\":\"high\",\"guests\":{guests},\"density\":0.1,\"seed\":{seed}}}}}"
        )
    }

    #[test]
    fn request_lifecycle_round_trips() {
        let mut session = Session::new(phys(), 1);
        let lines = run_lines(
            &mut session,
            &[
                apply_gen("a", 6, 11),
                apply_gen("b", 4, 12),
                "{\"remove\":{\"id\":\"a\"}}".to_string(),
                "{\"status\":{}}".to_string(),
                "{\"shutdown\":{}}".to_string(),
            ],
        );
        assert_eq!(lines.len(), 5);
        assert!(
            lines[0].starts_with("{\"applied\":{\"id\":\"a\""),
            "{}",
            lines[0]
        );
        assert!(
            lines[1].starts_with("{\"applied\":{\"id\":\"b\""),
            "{}",
            lines[1]
        );
        assert!(
            lines[2].starts_with("{\"removed\":{\"id\":\"a\""),
            "{}",
            lines[2]
        );
        assert!(lines[3].contains("\"tenants\":1"), "{}", lines[3]);
        assert!(lines[3].contains("\"leak\":0"), "{}", lines[3]);
        assert_eq!(lines[4], "{\"bye\":{}}");
    }

    #[test]
    fn inline_venvs_and_duplicate_rejection() {
        let mut venv = VirtualEnvironment::new();
        use emumap_model::{GuestSpec, VLinkSpec};
        let a = venv.add_guest(GuestSpec::new(Mips(50.0), MemMb(128), StorGb(100.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(50.0), MemMb(128), StorGb(100.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(500.0), Millis(60.0)));
        let venv_json = serde_json::to_string(&venv).unwrap();
        let mut session = Session::new(phys(), 1);
        let lines = run_lines(
            &mut session,
            &[
                format!("{{\"apply\":{{\"id\":\"t\",\"venv\":{venv_json}}}}}"),
                format!("{{\"apply\":{{\"id\":\"t\",\"venv\":{venv_json}}}}}"),
            ],
        );
        assert!(lines[0].starts_with("{\"applied\":"), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"rejected\":"), "{}", lines[1]);
        assert!(lines[1].contains("duplicate"), "{}", lines[1]);
    }

    #[test]
    fn malformed_requests_do_not_kill_the_daemon() {
        let mut session = Session::new(phys(), 1);
        let lines = run_lines(
            &mut session,
            &[
                "not json at all".to_string(),
                "{\"fly\":{}}".to_string(),
                "{\"remove\":{\"id\":\"ghost\"}}".to_string(),
                "{\"apply\":{\"id\":\"x\",\"workload\":\"mid\",\"guests\":2,\"density\":0.5,\"seed\":1}}".to_string(),
                "{\"status\":{}}".to_string(),
            ],
        );
        assert_eq!(lines.len(), 5);
        for line in &lines[..4] {
            assert!(line.starts_with("{\"error\":"), "{line}");
        }
        assert!(lines[4].starts_with("{\"status\":"), "{}", lines[4]);
    }

    #[test]
    fn save_restore_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!(
            "emumap_serve_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = dir.join("snap.json").display().to_string();
        let mut session = Session::new(phys(), 9);
        let lines = run_lines(
            &mut session,
            &[
                apply_gen("a", 5, 3),
                format!("{{\"save\":{{\"path\":\"{snap}\"}}}}"),
            ],
        );
        assert!(lines[1].starts_with("{\"saved\":"), "{}", lines[1]);
        assert!(lines[1].contains("\"tenants\":1"), "{}", lines[1]);

        let mut fresh = Session::new(phys(), 9);
        let lines = run_lines(
            &mut fresh,
            &[
                format!("{{\"restore\":{{\"path\":\"{snap}\"}}}}"),
                "{\"status\":{}}".to_string(),
            ],
        );
        assert!(lines[0].starts_with("{\"restored\":"), "{}", lines[0]);
        assert!(lines[1].contains("\"tenants\":1"), "{}", lines[1]);
        assert_eq!(fresh.residual(), session.residual());

        // A corrupt snapshot is refused and reported.
        std::fs::write(&snap, "{\"version\":1,\"tenants\":\"zap\",\"counters\":{}}").unwrap();
        let lines = run_lines(
            &mut fresh,
            &[format!("{{\"restore\":{{\"path\":\"{snap}\"}}}}")],
        );
        assert!(lines[0].starts_with("{\"error\":"), "{}", lines[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The golden-file contract: identical request streams produce
    /// byte-identical response streams regardless of cache warmth.
    #[test]
    fn responses_are_byte_identical_across_cache_warmth() {
        let requests: Vec<String> = vec![
            apply_gen("a", 6, 21),
            apply_gen("b", 5, 22),
            "{\"remove\":{\"id\":\"a\"}}".to_string(),
            apply_gen("c", 7, 23),
            "{\"status\":{}}".to_string(),
            "{\"shutdown\":{}}".to_string(),
        ];
        let mut cold = Session::new(phys(), 77);
        let cold_lines = run_lines(&mut cold, &requests);

        let mut warm_cache = MapCache::new();
        let mapper = build_mapper("hmn", 1).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let spec = VirtualEnvSpec::high_level(8, 0.2);
        let warmup = spec.generate(&mut rng);
        let _ = mapper.map_with_cache(&phys(), &warmup, &mut rng, &mut warm_cache);
        let mut warm = Session::with_cache(phys(), 77, warm_cache);
        let warm_lines = run_lines(&mut warm, &requests);

        assert_eq!(cold_lines, warm_lines);
    }
}
