//! The `emumap` binary: thin wrapper over [`emumap_cli`].

fn main() {
    let parsed = match emumap_cli::Parsed::parse_with_aliases(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("usage error: {e}\n\n{}", emumap_cli::commands::USAGE);
            std::process::exit(2);
        }
    };
    match emumap_cli::run(&parsed) {
        Ok(lines) => {
            for line in lines {
                println!("{line}");
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    }
}
