//! # emumap-cli
//!
//! The `emumap` command-line tool: drive the mapping library over JSON
//! files, the way an emulation frontend would.
//!
//! ```sh
//! emumap gen-cluster --topology torus --seed 1 -o phys.json
//! emumap gen-venv --workload high --guests 100 --density 0.02 --seed 2 -o venv.json
//! emumap map --phys phys.json --venv venv.json --mapper hmn -o mapping.json
//! emumap validate --phys phys.json --venv venv.json --mapping mapping.json
//! emumap simulate --phys phys.json --venv venv.json --mapping mapping.json --rounds 10
//! ```
//!
//! All subcommand logic lives in this library crate (unit-testable); the
//! binary is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod serve;

pub use args::{ArgError, Parsed};
pub use commands::{run, CliError};
