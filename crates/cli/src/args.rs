//! Tiny dependency-free argument parsing: `--key value` flags after a
//! subcommand.

use std::collections::BTreeMap;

/// Parsing failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand supplied.
    MissingSubcommand,
    /// A `--flag` had no value.
    MissingValue(String),
    /// A token that is not a flag appeared where a flag was expected.
    UnexpectedToken(String),
    /// A flag appeared twice.
    Duplicate(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingSubcommand => write!(f, "missing subcommand"),
            ArgError::MissingValue(k) => write!(f, "flag {k} needs a value"),
            ArgError::UnexpectedToken(t) => write!(f, "unexpected token '{t}'"),
            ArgError::Duplicate(k) => write!(f, "flag {k} given twice"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Flags that take no value: presence alone means `true`. Everything
/// else keeps the strict `--key value` grammar (and its `MissingValue`
/// diagnostics).
const BOOLEAN_FLAGS: &[&str] = &["quiet"];

/// A parsed command line: subcommand plus `--key value` pairs.
#[derive(Clone, Debug, Default)]
pub struct Parsed {
    /// The subcommand (first positional token).
    pub subcommand: String,
    flags: BTreeMap<String, String>,
}

impl Parsed {
    /// Parses tokens (exclusive of the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Parsed, ArgError> {
        let mut iter = tokens.into_iter();
        let subcommand = iter.next().ok_or(ArgError::MissingSubcommand)?;
        if subcommand.starts_with('-') && subcommand != "-h" && subcommand != "--help" {
            return Err(ArgError::UnexpectedToken(subcommand));
        }
        let mut flags = BTreeMap::new();
        while let Some(tok) = iter.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgError::UnexpectedToken(tok));
            };
            // `-o` style shorthand: we normalize `--o` too; only `-o` is
            // special-cased below for ergonomics.
            let value = if BOOLEAN_FLAGS.contains(&key) {
                "true".to_string()
            } else {
                iter.next()
                    .ok_or_else(|| ArgError::MissingValue(tok.clone()))?
            };
            if flags.insert(key.to_string(), value).is_some() {
                return Err(ArgError::Duplicate(tok));
            }
        }
        Ok(Parsed { subcommand, flags })
    }

    /// Parses tokens, accepting `-o` as an alias for `--out`.
    pub fn parse_with_aliases<I: IntoIterator<Item = String>>(
        tokens: I,
    ) -> Result<Parsed, ArgError> {
        let normalized: Vec<String> = tokens
            .into_iter()
            .map(|t| if t == "-o" { "--out".to_string() } else { t })
            .collect();
        Parsed::parse(normalized)
    }

    /// Required string flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// Optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Optional flag parsed to a type, with a default.
    pub fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse '{v}'")),
        }
    }

    /// `true` iff a boolean flag (see [`BOOLEAN_FLAGS`]) was given.
    pub fn flag(&self, key: &str) -> bool {
        debug_assert!(
            BOOLEAN_FLAGS.contains(&key),
            "--{key} is not registered as a boolean flag"
        );
        self.flags.contains_key(key)
    }

    /// Every flag key, for unknown-flag diagnostics.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.flags.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Parsed, ArgError> {
        Parsed::parse_with_aliases(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_subcommand_and_flags() {
        let p = parse(&["map", "--phys", "a.json", "--seed", "7"]).unwrap();
        assert_eq!(p.subcommand, "map");
        assert_eq!(p.required("phys").unwrap(), "a.json");
        assert_eq!(p.parse_or("seed", 0u64).unwrap(), 7);
        assert_eq!(p.parse_or("reps", 5u32).unwrap(), 5);
    }

    #[test]
    fn o_alias_maps_to_out() {
        let p = parse(&["gen-cluster", "-o", "x.json"]).unwrap();
        assert_eq!(p.required("out").unwrap(), "x.json");
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(parse(&[]), Err(ArgError::MissingSubcommand)));
        assert!(matches!(
            parse(&["map", "--phys"]),
            Err(ArgError::MissingValue(_))
        ));
        assert!(matches!(
            parse(&["map", "phys"]),
            Err(ArgError::UnexpectedToken(_))
        ));
        assert!(matches!(
            parse(&["map", "--a", "1", "--a", "2"]),
            Err(ArgError::Duplicate(_))
        ));
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let p = parse(&["batch", "--quiet", "--reps", "3"]).unwrap();
        assert!(p.flag("quiet"));
        assert_eq!(p.parse_or("reps", 0u32).unwrap(), 3);
        let p = parse(&["batch", "--reps", "3"]).unwrap();
        assert!(!p.flag("quiet"));
        // Trailing boolean flag needs no value either.
        let p = parse(&["batch", "--quiet"]).unwrap();
        assert!(p.flag("quiet"));
        // Non-boolean flags keep their strict grammar.
        assert!(matches!(
            parse(&["map", "--phys"]),
            Err(ArgError::MissingValue(_))
        ));
    }

    #[test]
    fn missing_required_flag_reports_name() {
        let p = parse(&["map"]).unwrap();
        let err = p.required("venv").unwrap_err();
        assert!(err.contains("--venv"));
    }

    #[test]
    fn bad_numeric_value_reports_flag() {
        let p = parse(&["map", "--seed", "notanumber"]).unwrap();
        let err = p.parse_or("seed", 0u64).unwrap_err();
        assert!(err.contains("--seed"));
    }
}
