//! Property-based tests for the graph substrate.

use emumap_graph::algo::{
    bfs_path, connected_components, dfs_path_filtered, dijkstra, is_connected, UnionFind,
};
use emumap_graph::generators::{
    edges_for_density, fat_tree, random_connected, ring, switched_cascade, torus2d, Role,
};
use emumap_graph::{Graph, NodeId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// An arbitrary connected weighted graph: node count, density, edge-weight
/// seed.
fn arb_connected_graph() -> impl Strategy<Value = (Graph<Role, f64>, u64)> {
    (2usize..60, 0.0f64..0.3, any::<u64>()).prop_map(|(n, d, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let shape = random_connected(n, d, &mut rng);
        let mut k = 0u32;
        let g = shape.map_edges(|_, _| {
            k += 1;
            1.0 + f64::from(k % 17)
        });
        (g, seed)
    })
}

proptest! {
    #[test]
    fn random_connected_always_connected((g, _seed) in arb_connected_graph()) {
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn random_connected_edge_count_matches_density(
        n in 2usize..120, d in 0.0f64..0.5, seed in any::<u64>()
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_connected(n, d, &mut rng);
        prop_assert_eq!(g.edge_count(), edges_for_density(n, d));
    }

    #[test]
    fn dijkstra_distances_satisfy_triangle_inequality((g, _) in arb_connected_graph()) {
        // For every edge (u,v): dist(s,v) <= dist(s,u) + w(u,v).
        let s = NodeId::from_index(0);
        let r = dijkstra(&g, s, |_, w| *w);
        for e in g.edges() {
            let du = r.distance(e.a).unwrap();
            let dv = r.distance(e.b).unwrap();
            prop_assert!(dv <= du + *e.weight + 1e-9);
            prop_assert!(du <= dv + *e.weight + 1e-9);
        }
    }

    #[test]
    fn dijkstra_path_cost_equals_reported_distance((g, _) in arb_connected_graph()) {
        let s = NodeId::from_index(0);
        let t = NodeId::from_index(g.node_count() - 1);
        let r = dijkstra(&g, s, |_, w| *w);
        let edges = r.edge_path_to(t).unwrap();
        let total: f64 = edges.iter().map(|&e| *g.edge(e)).sum();
        prop_assert!((total - r.distance(t).unwrap()).abs() < 1e-9);
    }

    #[test]
    fn dijkstra_matches_bfs_on_unit_weights(n in 2usize..60, d in 0.0f64..0.3, seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_connected(n, d, &mut rng);
        let s = NodeId::from_index(0);
        let r = dijkstra(&g, s, |_, _| 1.0);
        for t in g.node_ids() {
            let hops = bfs_path(&g, s, t).unwrap().len() - 1;
            prop_assert_eq!(r.distance(t).unwrap() as usize, hops);
        }
    }

    #[test]
    fn dfs_path_found_whenever_budget_allows((g, _) in arb_small_connected_graph()) {
        // With an infinite budget on a connected graph, DFS must find a path
        // between any two nodes. Small graphs only: unbounded backtracking
        // DFS is worst-case exponential, and dense 60-node draws can spin
        // for hours (observed in CI).
        let s = NodeId::from_index(0);
        let t = NodeId::from_index(g.node_count() - 1);
        let found = dfs_path_filtered(&g, s, t, f64::INFINITY, |_, w| Some(*w));
        prop_assert!(found.is_some());
        // ... and the path is simple and really connects s to t.
        let (_, edges) = found.unwrap();
        let mut cur = s;
        let mut visited = vec![false; g.node_count()];
        visited[cur.index()] = true;
        for e in edges {
            cur = g.edge_ref(e).other(cur);
            prop_assert!(!visited[cur.index()], "path revisits a node");
            visited[cur.index()] = true;
        }
        prop_assert_eq!(cur, t);
    }

    #[test]
    fn components_agree_with_union_find(
        n in 1usize..80,
        edges in prop::collection::vec((0usize..80, 0usize..80), 0..160)
    ) {
        let mut g: Graph<(), ()> = Graph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        let mut uf = UnionFind::new(n);
        for (a, b) in edges {
            let (a, b) = (a % n, b % n);
            g.add_edge(ids[a], ids[b], ());
            uf.union(a, b);
        }
        let (labels, count) = connected_components(&g);
        prop_assert_eq!(count, uf.component_count());
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(labels[a] == labels[b], uf.connected(a, b));
            }
        }
    }

    #[test]
    fn torus_always_connected_and_regular(rows in 1usize..12, cols in 1usize..12) {
        let g = torus2d(rows, cols);
        prop_assert_eq!(g.node_count(), rows * cols);
        prop_assert!(is_connected(&g));
        if rows > 2 && cols > 2 {
            for v in g.node_ids() {
                prop_assert_eq!(g.degree(v), 4);
            }
        }
    }

    #[test]
    fn switched_cascade_port_budget_holds(hosts in 1usize..200, ports in 3usize..65) {
        let g = switched_cascade(hosts, ports);
        prop_assert!(is_connected(&g));
        let host_count = g.nodes().filter(|(_, r)| **r == Role::Host).count();
        prop_assert_eq!(host_count, hosts);
        for (id, role) in g.nodes() {
            match role {
                Role::Switch => prop_assert!(g.degree(id) <= ports),
                Role::Host => prop_assert_eq!(g.degree(id), 1),
            }
        }
    }

    #[test]
    fn ring_shortest_path_wraps(n in 3usize..40) {
        let g = ring(n);
        let s = NodeId::from_index(0);
        let r = dijkstra(&g, s, |_, _| 1.0);
        for k in 0..n {
            let t = NodeId::from_index(k);
            let expect = k.min(n - k) as f64;
            prop_assert_eq!(r.distance(t).unwrap(), expect);
        }
    }
}

#[test]
fn fat_tree_hosts_reach_each_other_within_six_hops() {
    let g = fat_tree(4);
    let hosts: Vec<_> = g
        .nodes()
        .filter(|(_, r)| **r == Role::Host)
        .map(|(id, _)| id)
        .collect();
    let r = dijkstra(&g, hosts[0], |_, _| 1.0);
    for &h in &hosts {
        assert!(r.distance(h).unwrap() <= 6.0);
    }
}

/// Smaller graphs for the polynomial-cost algorithms (Yen, max-flow,
/// diameter) so the debug-mode suite stays fast.
fn arb_small_connected_graph() -> impl Strategy<Value = (Graph<Role, f64>, u64)> {
    (2usize..22, 0.0f64..0.3, any::<u64>()).prop_map(|(n, d, seed)| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let shape = random_connected(n, d, &mut rng);
        let mut k = 0u32;
        let g = shape.map_edges(|_, _| {
            k += 1;
            1.0 + f64::from(k % 17)
        });
        (g, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn ksp_is_sorted_simple_and_starts_with_dijkstra((g, _) in arb_small_connected_graph()) {
        let s = NodeId::from_index(0);
        let t = NodeId::from_index(g.node_count() - 1);
        let paths = emumap_graph::algo::k_shortest_paths(&g, s, t, 4, |_, w| *w);
        prop_assert!(!paths.is_empty());
        // First path cost equals the Dijkstra distance.
        let d = dijkstra(&g, s, |_, w| *w).distance(t).unwrap();
        prop_assert!((paths[0].cost - d).abs() < 1e-9);
        // Sorted, simple, endpoint-correct, cost-consistent.
        for w in paths.windows(2) {
            prop_assert!(w[0].cost <= w[1].cost + 1e-9);
        }
        for p in &paths {
            prop_assert_eq!(*p.nodes.first().unwrap(), s);
            prop_assert_eq!(*p.nodes.last().unwrap(), t);
            let mut sorted = p.nodes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), p.nodes.len());
            let total: f64 = p.edges.iter().map(|&e| *g.edge(e)).sum();
            prop_assert!((total - p.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn max_flow_bounded_by_degree_cuts((g, _) in arb_small_connected_graph()) {
        let s = NodeId::from_index(0);
        let t = NodeId::from_index(g.node_count() - 1);
        let flow = emumap_graph::algo::max_flow(&g, s, t, |c| *c);
        let cut_s: f64 = g.neighbors(s).map(|nb| *g.edge(nb.edge)).sum();
        let cut_t: f64 = g.neighbors(t).map(|nb| *g.edge(nb.edge)).sum();
        prop_assert!(flow <= cut_s.min(cut_t) + 1e-9);
        // Connected graph with positive capacities: flow is positive.
        prop_assert!(flow > 0.0);
    }

    #[test]
    fn max_flow_is_symmetric((g, _) in arb_small_connected_graph()) {
        let s = NodeId::from_index(0);
        let t = NodeId::from_index(g.node_count() - 1);
        let a = emumap_graph::algo::max_flow(&g, s, t, |c| *c);
        let b = emumap_graph::algo::max_flow(&g, t, s, |c| *c);
        prop_assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn diameter_bounds_every_dijkstra_distance((g, _) in arb_small_connected_graph()) {
        let d = emumap_graph::algo::diameter(&g, |_, w| *w).unwrap();
        let s = NodeId::from_index(0);
        let r = dijkstra(&g, s, |_, w| *w);
        for v in g.node_ids() {
            prop_assert!(r.distance(v).unwrap() <= d + 1e-9);
        }
        let avg = emumap_graph::algo::average_path_cost(&g, |_, w| *w).unwrap();
        prop_assert!(avg <= d + 1e-9);
    }
}
