//! Typed index handles for graph nodes and edges.
//!
//! Indices are `u32` internally: the largest graphs the harness builds (2000
//! guests, ~20k virtual links, 40-host clusters) are far below the 4-billion
//! ceiling, and the narrower type halves the footprint of adjacency lists
//! relative to `usize` on 64-bit targets.

use serde::{Deserialize, Serialize};

/// Handle to a node in a [`Graph`](crate::Graph).
///
/// Ids are dense: the `k`-th added node has id `k`, which lets callers use
/// them as direct indices into side tables (`Vec<T>` keyed by node).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub(crate) u32);

/// Handle to an edge in a [`Graph`](crate::Graph).
///
/// Like [`NodeId`], edge ids are dense in insertion order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Creates a node id from a raw index.
    ///
    /// Only meaningful for indices previously obtained from the same graph;
    /// exposed so side tables can be rebuilt after serialization.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32 range"))
    }

    /// The dense index of this node (0-based insertion order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Creates an edge id from a raw index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        EdgeId(u32::try_from(index).expect("edge index exceeds u32 range"))
    }

    /// The dense index of this edge (0-based insertion order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Debug for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl std::fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for EdgeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrips_through_index() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn edge_id_roundtrips_through_index() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "e7");
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32 range")]
    fn node_id_rejects_oversized_index() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn ids_order_by_insertion() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }
}
