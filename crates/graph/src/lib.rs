//! # emumap-graph
//!
//! Graph substrate for the `emumap` project — a from-scratch adjacency-list
//! graph library sized for emulation-testbed mapping workloads (tens of
//! physical hosts, thousands of guests, tens of thousands of virtual links).
//!
//! The crate provides:
//!
//! * [`Graph`] — an undirected multigraph with typed [`NodeId`] / [`EdgeId`]
//!   handles and arbitrary node/edge payloads,
//! * shortest-path and traversal algorithms in [`algo`] (Dijkstra with
//!   generic edge costs, BFS/DFS, connectivity, union–find),
//! * cluster-topology generators in [`generators`] (2-D torus, cascaded
//!   switches, ring, line, star, tree, fat-tree, random connected graphs).
//!
//! Everything is deterministic: generators take an explicit RNG so the same
//! seed always yields the same topology, which the paper's 30-repetition
//! experiment protocol relies on.
//!
//! ## Example
//!
//! ```
//! use emumap_graph::{Graph, algo};
//!
//! let mut g: Graph<&str, f64> = Graph::new();
//! let a = g.add_node("a");
//! let b = g.add_node("b");
//! let c = g.add_node("c");
//! g.add_edge(a, b, 1.0);
//! g.add_edge(b, c, 2.0);
//! g.add_edge(a, c, 10.0);
//!
//! let dist = algo::dijkstra(&g, a, |_, w| *w);
//! assert_eq!(dist.distance(c), Some(3.0)); // a -> b -> c beats the direct edge
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod dot;
pub mod generators;
mod graph;
mod ids;

pub use dot::{to_dot, DotOptions};
pub use graph::{CsrAdjacency, EdgeRef, Graph, NeighborRef};
pub use ids::{EdgeId, NodeId};
