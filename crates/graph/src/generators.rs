//! Cluster-topology generators.
//!
//! Every generator returns a [`Graph<Role, ()>`]: a pure *shape* whose nodes
//! are tagged [`Role::Host`] (can run guests) or [`Role::Switch`] (routes
//! traffic but hosts nothing). The model layer decorates these shapes with
//! capacities. The paper evaluates on a 2-D torus and on cascaded 64-port
//! switches and claims HMN handles *arbitrary* cluster networks, so a wide
//! menu of shapes is provided for tests and ablations.
//!
//! Random generators take an explicit `&mut impl Rng` for reproducibility.

use crate::algo::{is_connected, UnionFind};
use crate::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What a topology node is allowed to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Role {
    /// A workstation that runs a VMM and can host guests.
    Host,
    /// A network switch: forwards traffic, cannot host guests.
    Switch,
}

/// A generated topology shape.
pub type Topology = Graph<Role, ()>;

/// `n` hosts in a cycle. `n == 1` yields a single node with no edges;
/// `n == 2` yields a single edge (not a doubled one).
pub fn ring(n: usize) -> Topology {
    let mut g = Graph::with_capacity(n, n);
    let ids: Vec<_> = (0..n).map(|_| g.add_node(Role::Host)).collect();
    if n >= 2 {
        for i in 0..n {
            let j = (i + 1) % n;
            if i < j || (j == 0 && n > 2) {
                g.add_edge(ids[i], ids[j], ());
            }
        }
    }
    g
}

/// `n` hosts in a path.
pub fn line(n: usize) -> Topology {
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    let ids: Vec<_> = (0..n).map(|_| g.add_node(Role::Host)).collect();
    for w in ids.windows(2) {
        g.add_edge(w[0], w[1], ());
    }
    g
}

/// One central host connected to `n - 1` leaves (all hosts).
pub fn star(n: usize) -> Topology {
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    let ids: Vec<_> = (0..n).map(|_| g.add_node(Role::Host)).collect();
    for &leaf in &ids[1..] {
        g.add_edge(ids[0], leaf, ());
    }
    g
}

/// Every pair of the `n` hosts directly connected.
pub fn complete(n: usize) -> Topology {
    let mut g = Graph::with_capacity(n, n * n.saturating_sub(1) / 2);
    let ids: Vec<_> = (0..n).map(|_| g.add_node(Role::Host)).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            g.add_edge(ids[i], ids[j], ());
        }
    }
    g
}

/// `rows x cols` grid *without* wraparound.
pub fn grid2d(rows: usize, cols: usize) -> Topology {
    let mut g = Graph::with_capacity(rows * cols, 2 * rows * cols);
    let ids: Vec<_> = (0..rows * cols).map(|_| g.add_node(Role::Host)).collect();
    let at = |r: usize, c: usize| ids[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(at(r, c), at(r, c + 1), ());
            }
            if r + 1 < rows {
                g.add_edge(at(r, c), at(r + 1, c), ());
            }
        }
    }
    g
}

/// `rows x cols` 2-D torus (grid with wraparound), the paper's first
/// physical topology. Wraparound edges that would duplicate a grid edge
/// (dimension of size 2) or form a self-loop (dimension of size 1) are
/// skipped, so the result is always a simple graph.
pub fn torus2d(rows: usize, cols: usize) -> Topology {
    let mut g = Graph::with_capacity(rows * cols, 2 * rows * cols);
    let ids: Vec<_> = (0..rows * cols).map(|_| g.add_node(Role::Host)).collect();
    let at = |r: usize, c: usize| ids[r * cols + c];
    for r in 0..rows {
        for c in 0..cols {
            // Rightward edge with wraparound.
            if cols > 1 {
                let cn = (c + 1) % cols;
                if c + 1 < cols || cols > 2 {
                    g.add_edge(at(r, c), at(r, cn), ());
                }
            }
            // Downward edge with wraparound.
            if rows > 1 {
                let rn = (r + 1) % rows;
                if r + 1 < rows || rows > 2 {
                    g.add_edge(at(r, c), at(rn, c), ());
                }
            }
        }
    }
    g
}

/// Hosts connected to a chain of cascaded switches with `ports` ports each —
/// the paper's second physical topology ("hosts were connected to cascade
/// 64-port switches").
///
/// Each switch reserves one port for the uplink to the next switch in the
/// cascade (the last switch needs none), so a 64-port switch serves 63 hosts
/// (the first switch in a multi-switch cascade serves 63, middle switches
/// 62, because they also have a downlink). With 40 hosts and 64 ports a
/// single switch suffices and the topology degenerates to a star of hosts
/// around one switch.
///
/// # Panics
/// Panics if `ports < 3` (a cascade needs at least one host port plus up to
/// two cascade ports) or `n_hosts == 0`.
pub fn switched_cascade(n_hosts: usize, ports: usize) -> Topology {
    assert!(
        ports >= 3,
        "cascaded switches need at least 3 ports, got {ports}"
    );
    assert!(n_hosts > 0, "need at least one host");
    let mut g = Graph::new();
    let hosts: Vec<_> = (0..n_hosts).map(|_| g.add_node(Role::Host)).collect();

    let mut switches: Vec<NodeId> = vec![g.add_node(Role::Switch)];
    let mut free_ports = vec![ports]; // per-switch remaining ports

    let mut current = 0usize;
    for &h in &hosts {
        // A switch must keep one port free for a potential uplink unless we
        // can prove it is the last switch; conservatively reserve one port
        // on the current switch while hosts remain to be attached.
        if free_ports[current] <= 1 {
            // Add a new switch cascaded onto the current one.
            let s = g.add_node(Role::Switch);
            g.add_edge(switches[current], s, ());
            free_ports[current] -= 1; // uplink consumed
            switches.push(s);
            free_ports.push(ports - 1); // downlink to previous consumed
            current += 1;
        }
        g.add_edge(h, switches[current], ());
        free_ports[current] -= 1;
    }
    g
}

/// A complete `arity`-ary tree over `n` hosts (all nodes are hosts; node 0
/// is the root, node `k`'s children are `arity*k + 1 ..= arity*k + arity`).
pub fn tree(n: usize, arity: usize) -> Topology {
    assert!(arity >= 1, "tree arity must be >= 1");
    let mut g = Graph::with_capacity(n, n.saturating_sub(1));
    let ids: Vec<_> = (0..n).map(|_| g.add_node(Role::Host)).collect();
    for k in 0..n {
        for c in 1..=arity {
            let child = arity * k + c;
            if child < n {
                g.add_edge(ids[k], ids[child], ());
            }
        }
    }
    g
}

/// A `k`-ary fat tree (k pods; k even, k >= 2): `k^3/4` hosts at the leaves,
/// with edge, aggregation, and core *switches* above them. This is the
/// canonical data-center shape; it exercises HMN's claim of handling
/// arbitrary topologies with multi-path routing.
///
/// # Panics
/// Panics if `k` is odd or `k < 2`.
pub fn fat_tree(k: usize) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fat tree requires even k >= 2, got {k}"
    );
    let half = k / 2;
    let mut g = Graph::new();

    // Hosts: k pods x (k/2 edge switches) x (k/2 hosts each).
    let hosts: Vec<Vec<Vec<NodeId>>> = (0..k)
        .map(|_| {
            (0..half)
                .map(|_| (0..half).map(|_| g.add_node(Role::Host)).collect())
                .collect()
        })
        .collect();
    // Edge and aggregation switches per pod.
    let edge_sw: Vec<Vec<NodeId>> = (0..k)
        .map(|_| (0..half).map(|_| g.add_node(Role::Switch)).collect())
        .collect();
    let agg_sw: Vec<Vec<NodeId>> = (0..k)
        .map(|_| (0..half).map(|_| g.add_node(Role::Switch)).collect())
        .collect();
    // Core switches: (k/2)^2.
    let core_sw: Vec<NodeId> = (0..half * half).map(|_| g.add_node(Role::Switch)).collect();

    for pod in 0..k {
        for e in 0..half {
            for &host in &hosts[pod][e] {
                g.add_edge(host, edge_sw[pod][e], ());
            }
            for &agg in &agg_sw[pod] {
                g.add_edge(edge_sw[pod][e], agg, ());
            }
        }
        for a in 0..half {
            for c in 0..half {
                g.add_edge(agg_sw[pod][a], core_sw[a * half + c], ());
            }
        }
    }
    g
}

/// The number of edges a simple graph of `n` nodes has at density `d`
/// (fraction of the `n(n-1)/2` possible edges), never below the `n - 1`
/// needed for connectivity.
pub fn edges_for_density(n: usize, density: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&density),
        "density must be in [0,1], got {density}"
    );
    if n < 2 {
        return 0;
    }
    let possible = n * (n - 1) / 2;
    let want = (density * possible as f64).round() as usize;
    want.clamp(n - 1, possible)
}

/// A uniformly random *connected* simple graph over `n` host nodes with
/// approximately the given `density` (see [`edges_for_density`]).
///
/// Construction: a random spanning tree (random-permutation attachment,
/// which yields a uniform random recursive tree — adequate spread for the
/// paper's workloads) followed by uniform rejection sampling of additional
/// distinct non-adjacent pairs. Mirrors the paper's generator contract:
/// "the algorithm used to generate the graph topology guarantees that the
/// output graph is connected."
pub fn random_connected<R: Rng + ?Sized>(n: usize, density: f64, rng: &mut R) -> Topology {
    let target_edges = edges_for_density(n, density);
    let mut g = Graph::with_capacity(n, target_edges);
    let ids: Vec<_> = (0..n).map(|_| g.add_node(Role::Host)).collect();
    if n < 2 {
        return g;
    }

    // Random spanning tree: shuffle, then attach each node to a random
    // earlier node in the shuffled order.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut uf = UnionFind::new(n);
    for i in 1..n {
        let parent = order[rng.gen_range(0..i)];
        let child = order[i];
        g.add_edge(ids[parent], ids[child], ());
        uf.union(parent, child);
    }
    debug_assert_eq!(uf.component_count(), 1);

    // Densify with rejection sampling. Collision probability stays low at
    // the paper's densities (<= 0.025), so this terminates quickly; a
    // safety valve falls back to enumeration if the graph is nearly
    // complete.
    let mut edges = g.edge_count();
    let mut attempts = 0usize;
    let max_attempts = 50 * target_edges.max(16);
    while edges < target_edges && attempts < max_attempts {
        attempts += 1;
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a == b || g.has_edge(ids[a], ids[b]) {
            continue;
        }
        g.add_edge(ids[a], ids[b], ());
        edges += 1;
    }
    if edges < target_edges {
        // Dense regime: enumerate the missing pairs and sample from them.
        let mut missing: Vec<(usize, usize)> = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if !g.has_edge(ids[a], ids[b]) {
                    missing.push((a, b));
                }
            }
        }
        missing.shuffle(rng);
        for (a, b) in missing.into_iter().take(target_edges - edges) {
            g.add_edge(ids[a], ids[b], ());
        }
    }

    debug_assert!(is_connected(&g));
    g
}

/// Host node-ids of a topology (skipping switches), in insertion order.
pub fn host_ids(topology: &Topology) -> Vec<NodeId> {
    topology
        .nodes()
        .filter(|(_, role)| **role == Role::Host)
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ring_edge_counts() {
        assert_eq!(ring(1).edge_count(), 0);
        assert_eq!(ring(2).edge_count(), 1);
        assert_eq!(ring(3).edge_count(), 3);
        assert_eq!(ring(10).edge_count(), 10);
        assert!(is_connected(&ring(10)));
    }

    #[test]
    fn ring_degree_is_two() {
        let g = ring(8);
        for v in g.node_ids() {
            assert_eq!(g.degree(v), 2);
        }
    }

    #[test]
    fn line_and_star_shapes() {
        let l = line(5);
        assert_eq!(l.edge_count(), 4);
        assert!(is_connected(&l));
        let s = star(5);
        assert_eq!(s.edge_count(), 4);
        assert_eq!(s.degree(NodeId::from_index(0)), 4);
    }

    #[test]
    fn complete_graph_has_all_pairs() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        for a in g.node_ids() {
            assert_eq!(g.degree(a), 5);
        }
    }

    #[test]
    fn torus_is_4_regular_when_big_enough() {
        let g = torus2d(5, 8); // 40 hosts, the paper's cluster size
        assert_eq!(g.node_count(), 40);
        assert_eq!(g.edge_count(), 80); // 2 edges per node in a torus
        for v in g.node_ids() {
            assert_eq!(g.degree(v), 4);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn torus_degenerate_dimensions() {
        // 1xN torus = ring of N.
        let g = torus2d(1, 5);
        assert_eq!(g.edge_count(), 5);
        for v in g.node_ids() {
            assert_eq!(g.degree(v), 2);
        }
        // 2xN torus must not double the vertical edges.
        let g = torus2d(2, 4);
        assert_eq!(g.node_count(), 8);
        // horizontal: 2 rows x 4 wrap edges = 8; vertical: 4 single edges.
        assert_eq!(g.edge_count(), 12);
        // 1x1 and 1x2 stay simple.
        assert_eq!(torus2d(1, 1).edge_count(), 0);
        assert_eq!(torus2d(1, 2).edge_count(), 1);
    }

    #[test]
    fn grid_has_no_wraparound() {
        let g = grid2d(3, 3);
        assert_eq!(g.edge_count(), 12);
        let corner_degree = g.degree(NodeId::from_index(0));
        assert_eq!(corner_degree, 2);
    }

    #[test]
    fn switched_single_switch_when_ports_suffice() {
        // The paper's setup: 40 hosts, 64-port switches -> one switch.
        let g = switched_cascade(40, 64);
        let switches: Vec<_> = g.nodes().filter(|(_, r)| **r == Role::Switch).collect();
        assert_eq!(switches.len(), 1);
        assert_eq!(g.node_count(), 41);
        assert_eq!(g.edge_count(), 40);
        assert!(is_connected(&g));
    }

    #[test]
    fn switched_cascades_when_hosts_exceed_ports() {
        let g = switched_cascade(10, 4); // 3 usable host ports per switch
        assert!(is_connected(&g));
        let switches = g.nodes().filter(|(_, r)| **r == Role::Switch).count();
        assert!(
            switches >= 3,
            "10 hosts on 4-port switches need >= 3 switches, got {switches}"
        );
        // Port budget respected on every switch.
        for (id, role) in g.nodes() {
            if *role == Role::Switch {
                assert!(g.degree(id) <= 4, "switch {id} exceeds port budget");
            }
        }
        // Hosts have exactly one uplink.
        for (id, role) in g.nodes() {
            if *role == Role::Host {
                assert_eq!(g.degree(id), 1);
            }
        }
    }

    #[test]
    fn tree_shape() {
        let g = tree(7, 2); // perfect binary tree of 7 nodes
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.degree(NodeId::from_index(0)), 2);
        assert!(is_connected(&g));
    }

    #[test]
    fn fat_tree_k4_structure() {
        let g = fat_tree(4);
        let hosts = g.nodes().filter(|(_, r)| **r == Role::Host).count();
        let switches = g.nodes().filter(|(_, r)| **r == Role::Switch).count();
        assert_eq!(hosts, 16); // k^3/4
        assert_eq!(switches, 4 * 2 + 4 * 2 + 4); // edge + agg + core
        assert!(is_connected(&g));
    }

    #[test]
    fn edges_for_density_bounds() {
        assert_eq!(edges_for_density(0, 0.5), 0);
        assert_eq!(edges_for_density(1, 0.5), 0);
        // Never below spanning tree.
        assert_eq!(edges_for_density(100, 0.0), 99);
        // Never above complete.
        assert_eq!(edges_for_density(10, 1.0), 45);
        // Paper's high-level scenario: 400 guests at density 0.02.
        let e = edges_for_density(400, 0.02);
        assert_eq!(e, (0.02f64 * (400.0 * 399.0 / 2.0)).round() as usize);
    }

    #[test]
    fn random_connected_meets_contract() {
        let mut rng = SmallRng::seed_from_u64(7);
        for &(n, d) in &[
            (2usize, 0.0),
            (40, 0.1),
            (100, 0.015),
            (400, 0.025),
            (800, 0.01),
        ] {
            let g = random_connected(n, d, &mut rng);
            assert_eq!(g.node_count(), n);
            assert!(is_connected(&g), "n={n} d={d} disconnected");
            assert_eq!(g.edge_count(), edges_for_density(n, d), "n={n} d={d}");
            // Simple graph: no duplicate edges.
            let mut seen = std::collections::HashSet::new();
            for e in g.edges() {
                let key = if e.a < e.b { (e.a, e.b) } else { (e.b, e.a) };
                assert!(seen.insert(key), "duplicate edge {key:?}");
                assert_ne!(e.a, e.b, "self loop");
            }
        }
    }

    #[test]
    fn random_connected_is_deterministic_per_seed() {
        let g1 = random_connected(50, 0.05, &mut SmallRng::seed_from_u64(42));
        let g2 = random_connected(50, 0.05, &mut SmallRng::seed_from_u64(42));
        let e1: Vec<_> = g1.edges().map(|e| (e.a, e.b)).collect();
        let e2: Vec<_> = g2.edges().map(|e| (e.a, e.b)).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn random_connected_dense_regime_falls_back_to_enumeration() {
        let mut rng = SmallRng::seed_from_u64(3);
        let g = random_connected(12, 0.98, &mut rng);
        assert_eq!(g.edge_count(), edges_for_density(12, 0.98));
        assert!(is_connected(&g));
    }

    #[test]
    fn host_ids_skips_switches() {
        let g = switched_cascade(5, 8);
        let hosts = host_ids(&g);
        assert_eq!(hosts.len(), 5);
        for h in hosts {
            assert_eq!(*g.node(h), Role::Host);
        }
    }
}
