//! The core undirected multigraph.

use crate::{EdgeId, NodeId};
use serde::{Deserialize, Serialize};

/// One stored edge: its two endpoints and its payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct EdgeSlot<E> {
    a: NodeId,
    b: NodeId,
    weight: E,
}

/// A neighbor of a node: the node reached and the edge used to reach it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NeighborRef {
    /// The adjacent node.
    pub node: NodeId,
    /// The connecting edge.
    pub edge: EdgeId,
}

/// A borrowed view of an edge: its id, endpoints, and payload.
#[derive(Clone, Copy, Debug)]
pub struct EdgeRef<'g, E> {
    /// The edge's id.
    pub id: EdgeId,
    /// First endpoint (as passed to [`Graph::add_edge`]).
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// The edge payload.
    pub weight: &'g E,
}

impl<'g, E> EdgeRef<'g, E> {
    /// Given one endpoint of this edge, returns the other one.
    ///
    /// # Panics
    /// Panics if `from` is not an endpoint of the edge.
    #[inline]
    pub fn other(&self, from: NodeId) -> NodeId {
        if from == self.a {
            self.b
        } else if from == self.b {
            self.a
        } else {
            panic!("{from} is not an endpoint of edge {}", self.id)
        }
    }
}

/// A compact, cache-friendly snapshot of a graph's adjacency in CSR
/// (compressed sparse row) form: every `(neighbor, edge)` pair lives in one
/// contiguous array, with per-node offsets into it.
///
/// [`Graph`]'s native adjacency is a `Vec<Vec<_>>` — one heap allocation
/// per node, scattered across the heap. Hot search loops (A\*Prune,
/// Dijkstra) iterate neighbor lists millions of times per mapping, so the
/// CSR view is built once per topology and handed to them: neighbor
/// iteration becomes a contiguous slice scan with no pointer chasing.
///
/// The snapshot is immutable; edges added to the graph afterwards are not
/// reflected. Callers that cache a `CsrAdjacency` across calls guard it
/// with a topology fingerprint (see `emumap-core`'s `ArTables`).
#[derive(Clone, Debug, Default)]
pub struct CsrAdjacency {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for node `v`;
    /// length `node_count + 1`.
    offsets: Vec<u32>,
    /// All adjacency entries, grouped by node in id order.
    neighbors: Vec<NeighborRef>,
}

impl CsrAdjacency {
    /// Number of nodes the snapshot covers.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Neighbors of `node` as a contiguous slice, in the same order
    /// [`Graph::neighbors`] yields them.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NeighborRef] {
        let i = node.index();
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// An undirected multigraph with dense integer node/edge ids.
///
/// * Nodes carry a payload `N`, edges a payload `E`.
/// * Parallel edges and self-loops are allowed (virtual environments may
///   legitimately contain several links between the same pair of guests;
///   self-loops model intra-host traffic and are simply never routed).
/// * Removal is not supported: the mapping workloads only ever *build*
///   topologies, and append-only storage keeps ids dense so algorithm
///   side-tables can be flat `Vec`s.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Graph<N, E> {
    nodes: Vec<N>,
    edges: Vec<EdgeSlot<E>>,
    /// adjacency[v] = list of (neighbor, edge) pairs incident to v.
    adjacency: Vec<Vec<(NodeId, EdgeId)>>,
}

impl<N, E> Default for Graph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> Graph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Graph {
            nodes: Vec::new(),
            edges: Vec::new(),
            adjacency: Vec::new(),
        }
    }

    /// Creates an empty graph with capacity reserved for `nodes` nodes and
    /// `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        Graph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            adjacency: Vec::with_capacity(nodes),
        }
    }

    /// Adds a node with the given payload; returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(weight);
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds an undirected edge between `a` and `b`; returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint is not a node of this graph.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, weight: E) -> EdgeId {
        assert!(
            a.index() < self.nodes.len(),
            "edge endpoint {a} out of range"
        );
        assert!(
            b.index() < self.nodes.len(),
            "edge endpoint {b} out of range"
        );
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(EdgeSlot { a, b, weight });
        self.adjacency[a.index()].push((b, id));
        if a != b {
            self.adjacency[b.index()].push((a, id));
        }
        id
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` if `node` is a valid id for this graph.
    #[inline]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.nodes.len()
    }

    /// Payload of `node`.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    #[inline]
    pub fn node(&self, node: NodeId) -> &N {
        &self.nodes[node.index()]
    }

    /// Mutable payload of `node`.
    #[inline]
    pub fn node_mut(&mut self, node: NodeId) -> &mut N {
        &mut self.nodes[node.index()]
    }

    /// Payload of `edge`.
    #[inline]
    pub fn edge(&self, edge: EdgeId) -> &E {
        &self.edges[edge.index()].weight
    }

    /// Mutable payload of `edge`.
    #[inline]
    pub fn edge_mut(&mut self, edge: EdgeId) -> &mut E {
        &mut self.edges[edge.index()].weight
    }

    /// The two endpoints of `edge`, in insertion order.
    #[inline]
    pub fn endpoints(&self, edge: EdgeId) -> (NodeId, NodeId) {
        let slot = &self.edges[edge.index()];
        (slot.a, slot.b)
    }

    /// A full borrowed view of `edge`.
    #[inline]
    pub fn edge_ref(&self, edge: EdgeId) -> EdgeRef<'_, E> {
        let slot = &self.edges[edge.index()];
        EdgeRef {
            id: edge,
            a: slot.a,
            b: slot.b,
            weight: &slot.weight,
        }
    }

    /// Iterator over all node ids in insertion order.
    pub fn node_ids(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterator over all edge ids in insertion order.
    pub fn edge_ids(&self) -> impl ExactSizeIterator<Item = EdgeId> + Clone {
        (0..self.edges.len()).map(EdgeId::from_index)
    }

    /// Iterator over `(id, payload)` for all nodes.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = (NodeId, &N)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, w)| (NodeId::from_index(i), w))
    }

    /// Iterator over borrowed edge views.
    pub fn edges(&self) -> impl ExactSizeIterator<Item = EdgeRef<'_, E>> {
        self.edges.iter().enumerate().map(|(i, slot)| EdgeRef {
            id: EdgeId::from_index(i),
            a: slot.a,
            b: slot.b,
            weight: &slot.weight,
        })
    }

    /// Neighbors of `node`: each adjacent node paired with the edge reaching
    /// it. Parallel edges yield one entry per edge; a self-loop yields a
    /// single entry pointing back at `node`.
    pub fn neighbors(&self, node: NodeId) -> impl ExactSizeIterator<Item = NeighborRef> + '_ {
        self.adjacency[node.index()]
            .iter()
            .map(|&(n, e)| NeighborRef { node: n, edge: e })
    }

    /// Degree of `node` (number of incident edge endpoints; self-loops count
    /// once because adjacency stores them once).
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Finds an edge connecting `a` and `b`, if any (first match in `a`'s
    /// adjacency list; O(degree(a))).
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.adjacency[a.index()]
            .iter()
            .find(|&&(n, _)| n == b)
            .map(|&(_, e)| e)
    }

    /// `true` if some edge connects `a` and `b`.
    #[inline]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        self.find_edge(a, b).is_some()
    }

    /// Maps edge payloads, preserving structure and ids.
    pub fn map_edges<F, E2>(&self, mut f: F) -> Graph<N, E2>
    where
        N: Clone,
        F: FnMut(EdgeId, &E) -> E2,
    {
        Graph {
            nodes: self.nodes.clone(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, slot)| EdgeSlot {
                    a: slot.a,
                    b: slot.b,
                    weight: f(EdgeId::from_index(i), &slot.weight),
                })
                .collect(),
            adjacency: self.adjacency.clone(),
        }
    }

    /// Builds a [`CsrAdjacency`] snapshot of the current adjacency.
    /// O(V + E); neighbor order matches [`Graph::neighbors`].
    pub fn to_csr(&self) -> CsrAdjacency {
        let total: usize = self.adjacency.iter().map(Vec::len).sum();
        let mut offsets = Vec::with_capacity(self.nodes.len() + 1);
        let mut neighbors = Vec::with_capacity(total);
        offsets.push(0u32);
        for adj in &self.adjacency {
            neighbors.extend(adj.iter().map(|&(n, e)| NeighborRef { node: n, edge: e }));
            offsets.push(u32::try_from(neighbors.len()).expect("adjacency fits in u32"));
        }
        CsrAdjacency { offsets, neighbors }
    }

    /// Sum of edge-payload projections; convenience for capacity audits.
    pub fn total_edge_weight<F>(&self, mut f: F) -> f64
    where
        F: FnMut(&E) -> f64,
    {
        self.edges.iter().map(|slot| f(&slot.weight)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph<u32, f64>, [NodeId; 3], [EdgeId; 3]) {
        let mut g = Graph::new();
        let a = g.add_node(0);
        let b = g.add_node(1);
        let c = g.add_node(2);
        let ab = g.add_edge(a, b, 1.0);
        let bc = g.add_edge(b, c, 2.0);
        let ca = g.add_edge(c, a, 3.0);
        (g, [a, b, c], [ab, bc, ca])
    }

    #[test]
    fn counts_and_payloads() {
        let (g, [a, b, c], [ab, ..]) = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(*g.node(b), 1);
        assert_eq!(*g.edge(ab), 1.0);
        assert_eq!(g.endpoints(ab), (a, b));
        assert!(!g.is_empty());
        assert!(g.contains_node(c));
        assert!(!g.contains_node(NodeId::from_index(3)));
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (g, [a, b, _c], _) = triangle();
        let from_a: Vec<_> = g.neighbors(a).map(|n| n.node).collect();
        assert!(from_a.contains(&b));
        let from_b: Vec<_> = g.neighbors(b).map(|n| n.node).collect();
        assert!(from_b.contains(&a));
        assert_eq!(g.degree(a), 2);
    }

    #[test]
    fn find_edge_both_directions() {
        let (g, [a, b, _], [ab, ..]) = triangle();
        assert_eq!(g.find_edge(a, b), Some(ab));
        assert_eq!(g.find_edge(b, a), Some(ab));
    }

    #[test]
    fn parallel_edges_are_distinct() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e1 = g.add_edge(a, b, 1.0);
        let e2 = g.add_edge(a, b, 2.0);
        assert_ne!(e1, e2);
        assert_eq!(g.neighbors(a).count(), 2);
        // find_edge returns one of them
        assert!(g.find_edge(a, b).is_some());
    }

    #[test]
    fn self_loop_listed_once() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert_eq!(g.degree(a), 1);
        let n: Vec<_> = g.neighbors(a).collect();
        assert_eq!(n[0].node, a);
    }

    #[test]
    fn edge_ref_other_endpoint() {
        let (g, [a, b, _], [ab, ..]) = triangle();
        let r = g.edge_ref(ab);
        assert_eq!(r.other(a), b);
        assert_eq!(r.other(b), a);
    }

    #[test]
    #[should_panic(expected = "is not an endpoint")]
    fn edge_ref_other_panics_for_non_endpoint() {
        let (g, [_, _, c], [ab, ..]) = triangle();
        let r = g.edge_ref(ab);
        let _ = r.other(c);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_rejects_unknown_node() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId::from_index(5), ());
    }

    #[test]
    fn map_edges_preserves_structure() {
        let (g, [a, b, _], _) = triangle();
        let g2 = g.map_edges(|_, w| (*w * 10.0) as u64);
        assert_eq!(g2.edge_count(), 3);
        assert_eq!(g2.endpoints(EdgeId::from_index(0)), (a, b));
        assert_eq!(*g2.edge(EdgeId::from_index(2)), 30);
    }

    #[test]
    fn total_edge_weight_sums() {
        let (g, _, _) = triangle();
        assert_eq!(g.total_edge_weight(|w| *w), 6.0);
    }

    #[test]
    fn iterators_cover_everything() {
        let (g, _, _) = triangle();
        assert_eq!(g.node_ids().count(), 3);
        assert_eq!(g.edge_ids().count(), 3);
        assert_eq!(g.nodes().count(), 3);
        assert_eq!(g.edges().count(), 3);
    }

    #[test]
    fn csr_matches_native_adjacency() {
        let (g, ids, _) = triangle();
        let csr = g.to_csr();
        assert_eq!(csr.node_count(), 3);
        for &v in &ids {
            let native: Vec<_> = g.neighbors(v).collect();
            assert_eq!(csr.neighbors(v), native.as_slice());
        }
    }

    #[test]
    fn csr_handles_isolated_nodes_and_self_loops() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(()); // isolated
        g.add_edge(a, a, ());
        let csr = g.to_csr();
        assert_eq!(csr.neighbors(a).len(), 1);
        assert_eq!(csr.neighbors(a)[0].node, a);
        assert!(csr.neighbors(b).is_empty());
    }

    #[test]
    fn csr_of_empty_graph() {
        let g: Graph<(), ()> = Graph::new();
        let csr = g.to_csr();
        assert_eq!(csr.node_count(), 0);
    }

    #[test]
    fn clone_is_deep() {
        let (g, _, _) = triangle();
        let mut g2 = g.clone();
        *g2.edge_mut(EdgeId::from_index(1)) = 99.0;
        assert_eq!(*g.edge(EdgeId::from_index(1)), 2.0);
        assert_eq!(*g2.edge(EdgeId::from_index(1)), 99.0);
    }
}
