//! Disjoint-set forest (union–find) with path halving and union by size.
//!
//! Used by the random-connected-graph generator to add density edges without
//! re-running a full connectivity check after each insertion, and by
//! [`connected_components`](super::connected_components)' property tests as
//! an independent oracle.

/// A disjoint-set forest over `0..len` elements.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl UnionFind {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        UnionFind {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            components: len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the structure tracks no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets currently tracked.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.components -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.len(), 4);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.component_count(), 2);
        assert!(uf.union(1, 2));
        assert_eq!(uf.component_count(), 1);
        assert!(uf.connected(0, 3));
    }

    #[test]
    fn redundant_union_returns_false() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert_eq!(uf.component_count(), 2);
    }

    #[test]
    fn find_is_idempotent() {
        let mut uf = UnionFind::new(10);
        for i in 1..10 {
            uf.union(0, i);
        }
        let root = uf.find(5);
        assert_eq!(uf.find(5), root);
        assert_eq!(uf.find(9), root);
    }
}
