//! Whole-graph metrics: diameter, eccentricity, average path length.
//!
//! Used by the mapping diagnostics (e.g. "no virtual latency bound below
//! `diameter x hop latency` can ever be satisfied between worst-case host
//! pairs") and by tests characterizing the generated topologies.

use crate::algo::dijkstra::dijkstra;
use crate::{EdgeId, Graph, NodeId};

/// Eccentricity of `node`: the greatest shortest-path cost from it to any
/// reachable node. `None` if the graph has unreachable nodes from `node`
/// (infinite eccentricity).
pub fn eccentricity<N, E, F>(graph: &Graph<N, E>, node: NodeId, cost: F) -> Option<f64>
where
    F: FnMut(EdgeId, &E) -> f64,
{
    let result = dijkstra(graph, node, cost);
    let mut max = 0.0f64;
    for v in graph.node_ids() {
        let d = result.distance(v)?;
        max = max.max(d);
    }
    Some(max)
}

/// Diameter: the maximum eccentricity over all nodes. `None` for
/// disconnected or empty graphs.
pub fn diameter<N, E, F>(graph: &Graph<N, E>, mut cost: F) -> Option<f64>
where
    F: FnMut(EdgeId, &E) -> f64,
{
    if graph.node_count() == 0 {
        return None;
    }
    let mut max = 0.0f64;
    for v in graph.node_ids() {
        max = max.max(eccentricity(graph, v, &mut cost)?);
    }
    Some(max)
}

/// Mean shortest-path cost over all ordered node pairs (excluding self
/// pairs). `None` for disconnected graphs or fewer than two nodes.
pub fn average_path_cost<N, E, F>(graph: &Graph<N, E>, mut cost: F) -> Option<f64>
where
    F: FnMut(EdgeId, &E) -> f64,
{
    let n = graph.node_count();
    if n < 2 {
        return None;
    }
    let mut total = 0.0;
    for v in graph.node_ids() {
        let result = dijkstra(graph, v, &mut cost);
        for u in graph.node_ids() {
            if u != v {
                total += result.distance(u)?;
            }
        }
    }
    Some(total / (n * (n - 1)) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn line_diameter_is_length() {
        let g = generators::line(5).map_edges(|_, _| 1.0f64);
        assert_eq!(diameter(&g, |_, w| *w), Some(4.0));
    }

    #[test]
    fn ring_diameter_is_half() {
        let g = generators::ring(8).map_edges(|_, _| 1.0f64);
        assert_eq!(diameter(&g, |_, w| *w), Some(4.0));
    }

    #[test]
    fn paper_torus_diameter_matches_hand_count() {
        // 5x8 torus: floor(5/2) + floor(8/2) = 2 + 4 = 6 hops; at 5 ms per
        // hop that is 30 ms — exactly the lower edge of Table 1's virtual
        // latency bounds, which is why the torus scenarios are feasible at
        // all.
        let g = generators::torus2d(5, 8).map_edges(|_, _| 5.0f64);
        assert_eq!(diameter(&g, |_, w| *w), Some(30.0));
    }

    #[test]
    fn switched_diameter_is_two_hops() {
        let g = generators::switched_cascade(40, 64).map_edges(|_, _| 5.0f64);
        assert_eq!(diameter(&g, |_, w| *w), Some(10.0));
    }

    #[test]
    fn eccentricity_of_star_center_is_one() {
        let g = generators::star(6).map_edges(|_, _| 1.0f64);
        assert_eq!(
            eccentricity(&g, crate::NodeId::from_index(0), |_, w| *w),
            Some(1.0)
        );
        assert_eq!(
            eccentricity(&g, crate::NodeId::from_index(1), |_, w| *w),
            Some(2.0)
        );
    }

    #[test]
    fn disconnected_metrics_are_none() {
        let mut g: crate::Graph<(), f64> = crate::Graph::new();
        g.add_node(());
        g.add_node(());
        assert_eq!(diameter(&g, |_, w| *w), None);
        assert_eq!(average_path_cost(&g, |_, w| *w), None);
    }

    #[test]
    fn average_path_cost_of_triangle_is_one() {
        let g = generators::complete(3).map_edges(|_, _| 1.0f64);
        assert_eq!(average_path_cost(&g, |_, w| *w), Some(1.0));
    }

    #[test]
    fn trivial_graphs() {
        let empty: crate::Graph<(), f64> = crate::Graph::new();
        assert_eq!(diameter(&empty, |_, w| *w), None);
        let single = generators::line(1).map_edges(|_, _| 1.0f64);
        assert_eq!(diameter(&single, |_, w| *w), Some(0.0));
        assert_eq!(average_path_cost(&single, |_, w| *w), None);
    }
}
