//! Dijkstra's single-source shortest paths with caller-supplied edge costs.
//!
//! The Networking stage of HMN needs one-to-all *latency* distances toward
//! each virtual-link destination (the admissible lower bound `ar[]` in the
//! paper's Algorithm 1), so the primary entry point computes the full
//! distance vector; [`dijkstra_path`] additionally reconstructs one path.

use crate::{CsrAdjacency, EdgeId, Graph, NeighborRef, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Outcome of a Dijkstra run from a single source.
#[derive(Clone, Debug)]
pub struct DijkstraResult {
    source: NodeId,
    /// `dist[v]` = shortest distance from the source, `f64::INFINITY` if
    /// unreachable.
    dist: Vec<f64>,
    /// `prev[v]` = (predecessor node, edge used) on one shortest path.
    prev: Vec<Option<(NodeId, EdgeId)>>,
}

impl DijkstraResult {
    /// The source node of this run.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance to `node`, or `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        let d = self.dist[node.index()];
        d.is_finite().then_some(d)
    }

    /// Raw distance vector (`INFINITY` for unreachable nodes), indexed by
    /// [`NodeId::index`]. This is the `ar[]` table of the paper's
    /// Algorithm 1 when the run is rooted at the link destination.
    pub fn distances(&self) -> &[f64] {
        &self.dist
    }

    /// Reconstructs the shortest path from the source to `target` as a node
    /// sequence (source first), or `None` if unreachable.
    pub fn path_to(&self, target: NodeId) -> Option<Vec<NodeId>> {
        if !self.dist[target.index()].is_finite() {
            return None;
        }
        let mut path = vec![target];
        let mut cur = target;
        while cur != self.source {
            let (p, _) = self.prev[cur.index()].expect("finite distance implies predecessor");
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }

    /// Reconstructs the shortest path as an edge sequence, or `None` if
    /// `target` is unreachable. Empty when `target == source`.
    pub fn edge_path_to(&self, target: NodeId) -> Option<Vec<EdgeId>> {
        if !self.dist[target.index()].is_finite() {
            return None;
        }
        let mut edges = Vec::new();
        let mut cur = target;
        while cur != self.source {
            let (p, e) = self.prev[cur.index()].expect("finite distance implies predecessor");
            edges.push(e);
            cur = p;
        }
        edges.reverse();
        Some(edges)
    }
}

/// Runs Dijkstra from `source`, with the cost of each edge given by
/// `cost(edge_id, payload)`.
///
/// Costs must be non-negative and finite; this is debug-asserted. Undirected
/// edges are relaxed in both directions.
pub fn dijkstra<N, E, F>(graph: &Graph<N, E>, source: NodeId, mut cost: F) -> DijkstraResult
where
    F: FnMut(EdgeId, &E) -> f64,
{
    dijkstra_core(graph.node_count(), source, |v, relax| {
        for nb in graph.neighbors(v) {
            relax(nb, cost(nb.edge, graph.edge(nb.edge)));
        }
    })
}

/// [`dijkstra`] iterating neighbors through a pre-built [`CsrAdjacency`]
/// snapshot instead of the graph's native per-node adjacency vectors — the
/// hot-path variant used when many runs share one topology (the `ar[]`
/// tables of HMN's Networking stage).
///
/// `csr` must be a snapshot of `graph` (debug-asserted on node count).
pub fn dijkstra_csr<N, E, F>(
    graph: &Graph<N, E>,
    csr: &CsrAdjacency,
    source: NodeId,
    mut cost: F,
) -> DijkstraResult
where
    F: FnMut(EdgeId, &E) -> f64,
{
    debug_assert_eq!(
        csr.node_count(),
        graph.node_count(),
        "CSR snapshot does not match this graph"
    );
    dijkstra_core(graph.node_count(), source, |v, relax| {
        for &nb in csr.neighbors(v) {
            relax(nb, cost(nb.edge, graph.edge(nb.edge)));
        }
    })
}

/// The shared relaxation loop: `neighbors(v, relax)` must call
/// `relax(neighbor, edge_cost)` once per incident edge of `v`.
fn dijkstra_core<G>(n: usize, source: NodeId, mut neighbors: G) -> DijkstraResult
where
    G: FnMut(NodeId, &mut dyn FnMut(NeighborRef, f64)),
{
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    // Max-heap of Reverse(OrderedCost) — f64 is not Ord, so store the bit
    // pattern of the (non-negative) cost, which orders identically.
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();

    dist[source.index()] = 0.0;
    heap.push(Reverse((0u64, source.index() as u32)));

    while let Some(Reverse((dbits, v))) = heap.pop() {
        let d = f64::from_bits(dbits);
        let v = NodeId::from_index(v as usize);
        if d > dist[v.index()] {
            continue; // stale entry
        }
        neighbors(v, &mut |nb, w| {
            debug_assert!(
                w >= 0.0 && w.is_finite(),
                "dijkstra requires non-negative finite edge costs, got {w}"
            );
            let nd = d + w;
            if nd < dist[nb.node.index()] {
                dist[nb.node.index()] = nd;
                prev[nb.node.index()] = Some((v, nb.edge));
                heap.push(Reverse((nd.to_bits(), nb.node.index() as u32)));
            }
        });
    }

    DijkstraResult { source, dist, prev }
}

/// Convenience: shortest path from `source` to `target` as
/// `(total_cost, node_path)`, or `None` if unreachable.
pub fn dijkstra_path<N, E, F>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    cost: F,
) -> Option<(f64, Vec<NodeId>)>
where
    F: FnMut(EdgeId, &E) -> f64,
{
    let result = dijkstra(graph, source, cost);
    let d = result.distance(target)?;
    Some((
        d,
        result.path_to(target).expect("reachable target has a path"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// Builds the classic 5-node example with a known shortest-path tree.
    fn weighted() -> (Graph<(), f64>, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        let w = [
            (0, 1, 4.0),
            (0, 2, 1.0),
            (2, 1, 2.0),
            (1, 3, 1.0),
            (2, 3, 5.0),
            (3, 4, 3.0),
        ];
        for (a, b, c) in w {
            g.add_edge(ids[a], ids[b], c);
        }
        (g, ids)
    }

    #[test]
    fn distances_match_hand_computation() {
        let (g, ids) = weighted();
        let r = dijkstra(&g, ids[0], |_, w| *w);
        assert_eq!(r.distance(ids[0]), Some(0.0));
        assert_eq!(r.distance(ids[2]), Some(1.0));
        assert_eq!(r.distance(ids[1]), Some(3.0)); // 0-2-1
        assert_eq!(r.distance(ids[3]), Some(4.0)); // 0-2-1-3
        assert_eq!(r.distance(ids[4]), Some(7.0));
    }

    #[test]
    fn path_reconstruction() {
        let (g, ids) = weighted();
        let (d, path) = dijkstra_path(&g, ids[0], ids[3], |_, w| *w).unwrap();
        assert_eq!(d, 4.0);
        assert_eq!(path, vec![ids[0], ids[2], ids[1], ids[3]]);
    }

    #[test]
    fn edge_path_lengths_are_consistent() {
        let (g, ids) = weighted();
        let r = dijkstra(&g, ids[0], |_, w| *w);
        let edges = r.edge_path_to(ids[4]).unwrap();
        let total: f64 = edges.iter().map(|&e| *g.edge(e)).sum();
        assert_eq!(total, 7.0);
        assert!(r.edge_path_to(ids[0]).unwrap().is_empty());
    }

    #[test]
    fn unreachable_is_none() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let r = dijkstra(&g, a, |_, w| *w);
        assert_eq!(r.distance(b), None);
        assert!(r.path_to(b).is_none());
        assert!(dijkstra_path(&g, a, b, |_, w| *w).is_none());
    }

    #[test]
    fn zero_cost_edges_are_fine() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 0.0);
        g.add_edge(b, c, 0.0);
        let r = dijkstra(&g, a, |_, w| *w);
        assert_eq!(r.distance(c), Some(0.0));
    }

    #[test]
    fn parallel_edges_take_cheapest() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 5.0);
        g.add_edge(a, b, 2.0);
        let (d, _) = dijkstra_path(&g, a, b, |_, w| *w).unwrap();
        assert_eq!(d, 2.0);
    }

    #[test]
    fn csr_variant_matches_native_dijkstra() {
        let (g, ids) = weighted();
        let csr = g.to_csr();
        for &src in &ids {
            let a = dijkstra(&g, src, |_, w| *w);
            let b = dijkstra_csr(&g, &csr, src, |_, w| *w);
            assert_eq!(a.distances(), b.distances());
        }
    }

    #[test]
    fn self_loop_does_not_shorten_anything() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, a, 0.0);
        g.add_edge(a, b, 3.0);
        let r = dijkstra(&g, a, |_, w| *w);
        assert_eq!(r.distance(b), Some(3.0));
    }
}
