//! Graph algorithms: shortest paths, traversals, connectivity, K-shortest
//! paths, max flow, and whole-graph metrics.

mod components;
mod dijkstra;
mod ksp;
mod maxflow;
mod metrics;
mod traversal;
mod union_find;

pub use components::{connected_components, is_connected};
pub use dijkstra::{dijkstra, dijkstra_csr, dijkstra_path, DijkstraResult};
pub use ksp::{k_shortest_paths, k_shortest_paths_csr, CostedPath};
pub use maxflow::max_flow;
pub use metrics::{average_path_cost, diameter, eccentricity};
pub use traversal::{bfs_order, bfs_path, dfs_order, dfs_path_filtered};
pub use union_find::UnionFind;
