//! Yen's K-shortest simple paths.
//!
//! A\*Prune (Liu & Ramakrishnan 2001) is itself a K-shortest-paths
//! algorithm; the paper uses its 1-constrained variant. Yen's algorithm is
//! the classical alternative, provided here (a) as an independent oracle
//! for A\*Prune's property tests — the widest feasible path must appear
//! among the K cheapest-by-latency simple paths for large enough K — and
//! (b) to power the `KspRouting` extension strategy in `emumap-core`.

use crate::{CsrAdjacency, EdgeId, Graph, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A simple path: total cost plus the node sequence from source to target.
#[derive(Clone, Debug, PartialEq)]
pub struct CostedPath {
    /// Sum of edge costs along the path.
    pub cost: f64,
    /// Node sequence, source first.
    pub nodes: Vec<NodeId>,
    /// Edge sequence (`nodes.len() - 1` entries).
    pub edges: Vec<EdgeId>,
}

/// Dijkstra restricted to a subgraph: `banned_edges` may not be used,
/// `banned_nodes` may not be visited. Returns the cheapest path as a
/// [`CostedPath`], or `None`.
fn dijkstra_path_filtered<N, E, F>(
    graph: &Graph<N, E>,
    csr: &CsrAdjacency,
    source: NodeId,
    target: NodeId,
    cost: &mut F,
    banned_edges: &[EdgeId],
    banned_nodes: &[NodeId],
) -> Option<CostedPath>
where
    F: FnMut(EdgeId, &E) -> f64,
{
    let n = graph.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<(NodeId, EdgeId)>> = vec![None; n];
    let mut blocked = vec![false; n];
    for &b in banned_nodes {
        blocked[b.index()] = true;
    }
    if blocked[source.index()] || blocked[target.index()] {
        return None;
    }
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    dist[source.index()] = 0.0;
    heap.push(Reverse((0u64, source.index() as u32)));
    while let Some(Reverse((dbits, v))) = heap.pop() {
        let d = f64::from_bits(dbits);
        let v = NodeId::from_index(v as usize);
        if d > dist[v.index()] {
            continue;
        }
        if v == target {
            break;
        }
        for nb in csr.neighbors(v) {
            if blocked[nb.node.index()] || banned_edges.contains(&nb.edge) {
                continue;
            }
            let w = cost(nb.edge, graph.edge(nb.edge));
            let nd = d + w;
            if nd < dist[nb.node.index()] {
                dist[nb.node.index()] = nd;
                prev[nb.node.index()] = Some((v, nb.edge));
                heap.push(Reverse((nd.to_bits(), nb.node.index() as u32)));
            }
        }
    }
    if !dist[target.index()].is_finite() {
        return None;
    }
    let mut nodes = vec![target];
    let mut edges = Vec::new();
    let mut cur = target;
    while cur != source {
        let (p, e) = prev[cur.index()].expect("finite distance implies predecessor");
        nodes.push(p);
        edges.push(e);
        cur = p;
    }
    nodes.reverse();
    edges.reverse();
    Some(CostedPath {
        cost: dist[target.index()],
        nodes,
        edges,
    })
}

/// Returns up to `k` cheapest simple paths from `source` to `target` in
/// ascending cost order (Yen's algorithm). Returns fewer than `k` when the
/// graph has fewer simple paths. Costs must be non-negative.
///
/// Builds a one-shot CSR snapshot internally; callers that already hold a
/// cached [`CsrAdjacency`] for the graph should use
/// [`k_shortest_paths_csr`] to skip the O(V + E) rebuild per call.
pub fn k_shortest_paths<N, E, F>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    k: usize,
    cost: F,
) -> Vec<CostedPath>
where
    F: FnMut(EdgeId, &E) -> f64,
{
    k_shortest_paths_csr(graph, &graph.to_csr(), source, target, k, cost)
}

/// [`k_shortest_paths`] iterating neighbors through a pre-built
/// [`CsrAdjacency`] snapshot of `graph`. The snapshot must come from
/// [`Graph::to_csr`] on this graph (neighbor order matches, so results are
/// identical to the edge-list path).
pub fn k_shortest_paths_csr<N, E, F>(
    graph: &Graph<N, E>,
    csr: &CsrAdjacency,
    source: NodeId,
    target: NodeId,
    k: usize,
    mut cost: F,
) -> Vec<CostedPath>
where
    F: FnMut(EdgeId, &E) -> f64,
{
    debug_assert_eq!(csr.node_count(), graph.node_count());
    if k == 0 {
        return Vec::new();
    }
    let Some(first) = dijkstra_path_filtered(graph, csr, source, target, &mut cost, &[], &[])
    else {
        return Vec::new();
    };
    let mut accepted: Vec<CostedPath> = vec![first];
    // Candidate set: (path, spur metadata is already folded into the path).
    let mut candidates: Vec<CostedPath> = Vec::new();

    while accepted.len() < k {
        let last = accepted.last().expect("at least the shortest path");
        // Each node of the previous path (except the target) is a spur.
        for spur_idx in 0..last.nodes.len() - 1 {
            let spur_node = last.nodes[spur_idx];
            let root_nodes = &last.nodes[..=spur_idx];
            let root_edges = &last.edges[..spur_idx];
            let root_cost: f64 = root_edges.iter().map(|&e| cost(e, graph.edge(e))).sum();

            // Edges to ban: the next edge of every accepted path sharing
            // this root (forces a deviation).
            let mut banned_edges: Vec<EdgeId> = Vec::new();
            for p in accepted.iter().chain(candidates.iter()) {
                if p.nodes.len() > spur_idx + 1 && p.nodes[..=spur_idx] == *root_nodes {
                    banned_edges.push(p.edges[spur_idx]);
                }
            }
            // Nodes to ban: the root minus the spur node itself (keeps the
            // total path simple).
            let banned_nodes = &root_nodes[..spur_idx];

            if let Some(spur) = dijkstra_path_filtered(
                graph,
                csr,
                spur_node,
                target,
                &mut cost,
                &banned_edges,
                banned_nodes,
            ) {
                let mut nodes = root_nodes.to_vec();
                nodes.extend_from_slice(&spur.nodes[1..]);
                let mut edges = root_edges.to_vec();
                edges.extend_from_slice(&spur.edges);
                let total = CostedPath {
                    cost: root_cost + spur.cost,
                    nodes,
                    edges,
                };
                if !candidates.contains(&total) && !accepted.contains(&total) {
                    candidates.push(total);
                }
            }
        }
        // Promote the cheapest candidate (ties: lexicographic nodes for
        // determinism).
        candidates.sort_by(|a, b| a.cost.total_cmp(&b.cost).then(a.nodes.cmp(&b.nodes)));
        if candidates.is_empty() {
            break;
        }
        accepted.push(candidates.remove(0));
    }
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    /// The classic Yen example graph.
    fn yen_graph() -> (Graph<&'static str, f64>, Vec<NodeId>) {
        let mut g = Graph::new();
        let c = g.add_node("C");
        let d = g.add_node("D");
        let e = g.add_node("E");
        let f = g.add_node("F");
        let gg = g.add_node("G");
        let h = g.add_node("H");
        for &(a, b, w) in &[
            (c, d, 3.0),
            (c, e, 2.0),
            (d, f, 4.0),
            (e, d, 1.0),
            (e, f, 2.0),
            (e, gg, 3.0),
            (f, gg, 2.0),
            (f, h, 1.0),
            (gg, h, 2.0),
        ] {
            g.add_edge(a, b, w);
        }
        (g, vec![c, d, e, f, gg, h])
    }

    #[test]
    fn yen_reference_example() {
        let (g, ids) = yen_graph();
        let (c, h) = (ids[0], ids[5]);
        let paths = k_shortest_paths(&g, c, h, 3, |_, w| *w);
        assert_eq!(paths.len(), 3);
        // Undirected version of Yen's example still has C-E-F-H = 5 as the
        // shortest path.
        assert_eq!(paths[0].cost, 5.0);
        assert!(paths[0].cost <= paths[1].cost);
        assert!(paths[1].cost <= paths[2].cost);
    }

    #[test]
    fn paths_are_simple_and_connect_endpoints() {
        let (g, ids) = yen_graph();
        let paths = k_shortest_paths(&g, ids[0], ids[5], 10, |_, w| *w);
        assert!(paths.len() >= 3);
        for p in &paths {
            assert_eq!(p.nodes.first(), Some(&ids[0]));
            assert_eq!(p.nodes.last(), Some(&ids[5]));
            let mut sorted = p.nodes.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), p.nodes.len(), "path revisits a node");
            // Edge costs sum to the reported cost.
            let total: f64 = p.edges.iter().map(|&e| *g.edge(e)).sum();
            assert!((total - p.cost).abs() < 1e-9);
        }
    }

    #[test]
    fn all_paths_distinct() {
        let (g, ids) = yen_graph();
        let paths = k_shortest_paths(&g, ids[0], ids[5], 20, |_, w| *w);
        for i in 0..paths.len() {
            for j in (i + 1)..paths.len() {
                assert_ne!(paths[i].nodes, paths[j].nodes);
            }
        }
    }

    #[test]
    fn k_zero_and_unreachable() {
        let (g, ids) = yen_graph();
        assert!(k_shortest_paths(&g, ids[0], ids[5], 0, |_, w| *w).is_empty());
        let mut g2: Graph<(), f64> = Graph::new();
        let a = g2.add_node(());
        let b = g2.add_node(());
        assert!(k_shortest_paths(&g2, a, b, 3, |_, w| *w).is_empty());
    }

    #[test]
    fn exhausts_small_graphs_gracefully() {
        // A triangle has exactly 2 simple paths between any two nodes.
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(b, c, 1.0);
        g.add_edge(a, c, 1.0);
        let paths = k_shortest_paths(&g, a, c, 10, |_, w| *w);
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].cost, 1.0);
        assert_eq!(paths[1].cost, 2.0);
    }

    #[test]
    fn csr_variant_matches_edge_list_entry_point() {
        let (g, ids) = yen_graph();
        let csr = g.to_csr();
        let a = k_shortest_paths(&g, ids[0], ids[5], 10, |_, w| *w);
        let b = k_shortest_paths_csr(&g, &csr, ids[0], ids[5], 10, |_, w| *w);
        assert_eq!(a, b);
    }

    #[test]
    fn costs_are_monotone_on_a_ring() {
        let shape = crate::generators::ring(6);
        let g = shape.map_edges(|_, _| 1.0f64);
        let paths = k_shortest_paths(
            &g,
            NodeId::from_index(0),
            NodeId::from_index(2),
            5,
            |_, w| *w,
        );
        assert_eq!(
            paths.len(),
            2,
            "a ring has exactly two simple paths per pair"
        );
        assert_eq!(paths[0].cost, 2.0);
        assert_eq!(paths[1].cost, 4.0);
    }
}
