//! Edmonds–Karp maximum flow on undirected capacitated graphs.
//!
//! Used by the mapping layer's diagnostics: the max-flow between two hosts
//! upper-bounds the virtual-link bandwidth that can ever be routed between
//! them (ignoring latency), so a failed Networking stage can tell the
//! tester whether more retries could possibly help or the cut is simply
//! too small.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Maximum flow from `source` to `sink`, with each edge's capacity given
/// by `capacity(edge payload)`. Undirected edges carry flow in either
/// direction up to their capacity. Returns 0 for `source == sink`.
pub fn max_flow<N, E, F>(graph: &Graph<N, E>, source: NodeId, sink: NodeId, capacity: F) -> f64
where
    F: Fn(&E) -> f64,
{
    if source == sink {
        return 0.0;
    }
    // Residual network: for an undirected edge {a,b} with capacity c, both
    // directed arcs start at capacity c, and pushing f along a->b adds f
    // to b->a's residual (standard undirected reduction).
    let m = graph.edge_count();
    // residual[2e] = a->b, residual[2e+1] = b->a.
    let mut residual = vec![0.0f64; 2 * m];
    for e in graph.edges() {
        let c = capacity(e.weight);
        debug_assert!(c >= 0.0, "capacities must be non-negative");
        residual[2 * e.id.index()] = c;
        residual[2 * e.id.index() + 1] = c;
    }

    let arc_of = |edge: crate::EdgeId, from: NodeId| -> usize {
        let (a, _) = graph.endpoints(edge);
        if from == a {
            2 * edge.index()
        } else {
            2 * edge.index() + 1
        }
    };

    let mut total = 0.0;
    loop {
        // BFS for an augmenting path in the residual network.
        let mut prev: Vec<Option<(NodeId, crate::EdgeId)>> = vec![None; graph.node_count()];
        let mut seen = vec![false; graph.node_count()];
        seen[source.index()] = true;
        let mut queue = VecDeque::from([source]);
        'bfs: while let Some(v) = queue.pop_front() {
            for nb in graph.neighbors(v) {
                if seen[nb.node.index()] || residual[arc_of(nb.edge, v)] <= 1e-12 {
                    continue;
                }
                seen[nb.node.index()] = true;
                prev[nb.node.index()] = Some((v, nb.edge));
                if nb.node == sink {
                    break 'bfs;
                }
                queue.push_back(nb.node);
            }
        }
        if !seen[sink.index()] {
            break;
        }
        // Bottleneck along the path.
        let mut bottleneck = f64::INFINITY;
        let mut cur = sink;
        while cur != source {
            let (p, e) = prev[cur.index()].expect("seen implies predecessor");
            bottleneck = bottleneck.min(residual[arc_of(e, p)]);
            cur = p;
        }
        // Augment.
        let mut cur = sink;
        while cur != source {
            let (p, e) = prev[cur.index()].expect("seen implies predecessor");
            residual[arc_of(e, p)] -= bottleneck;
            residual[arc_of(e, cur)] += bottleneck;
            cur = p;
        }
        total += bottleneck;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::Graph;

    #[test]
    fn single_edge_flow_is_its_capacity() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 7.5);
        assert_eq!(max_flow(&g, a, b, |c| *c), 7.5);
    }

    #[test]
    fn series_takes_the_bottleneck() {
        let mut g: Graph<(), f64> = Graph::new();
        let ids: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], 10.0);
        g.add_edge(ids[1], ids[2], 4.0);
        assert_eq!(max_flow(&g, ids[0], ids[2], |c| *c), 4.0);
    }

    #[test]
    fn parallel_paths_add_up() {
        // Ring of 4: two disjoint 2-hop paths between opposite corners.
        let shape = generators::ring(4);
        let g = shape.map_edges(|_, _| 5.0f64);
        let flow = max_flow(
            &g,
            crate::NodeId::from_index(0),
            crate::NodeId::from_index(2),
            |c| *c,
        );
        assert_eq!(flow, 10.0);
    }

    #[test]
    fn disconnected_flow_is_zero() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        assert_eq!(max_flow(&g, a, b, |c| *c), 0.0);
        assert_eq!(max_flow(&g, a, a, |c| *c), 0.0);
    }

    #[test]
    fn classic_flow_network() {
        // CLRS-style example with a known max flow.
        let mut g: Graph<(), f64> = Graph::new();
        let ids: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        let (s, a, b, c, d, t) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        g.add_edge(s, a, 16.0);
        g.add_edge(s, b, 13.0);
        g.add_edge(a, c, 12.0);
        g.add_edge(b, d, 14.0);
        g.add_edge(c, t, 20.0);
        g.add_edge(d, t, 4.0);
        g.add_edge(a, b, 10.0);
        g.add_edge(c, d, 9.0);
        let flow = max_flow(&g, s, t, |cap| *cap);
        // Undirected: limited by the sink cut {c-t: 20, d-t: 4} = 24 and
        // the source cut {s-a: 16, s-b: 13} = 29; interior supports 24.
        assert_eq!(flow, 24.0);
    }

    #[test]
    fn torus_bisection_exceeds_single_link() {
        let shape = generators::torus2d(4, 4);
        let g = shape.map_edges(|_, _| 1.0f64);
        let flow = max_flow(
            &g,
            crate::NodeId::from_index(0),
            crate::NodeId::from_index(10),
            |c| *c,
        );
        // A 4-regular torus has min cut 4 between any two nodes.
        assert_eq!(flow, 4.0);
    }

    #[test]
    fn flow_never_exceeds_degree_cut() {
        let shape = generators::switched_cascade(10, 12);
        let g = shape.map_edges(|_, _| 3.0f64);
        // Host-to-host flow through a switch: each host has one 3-unit
        // uplink.
        let flow = max_flow(
            &g,
            crate::NodeId::from_index(0),
            crate::NodeId::from_index(5),
            |c| *c,
        );
        assert_eq!(flow, 3.0);
    }
}
