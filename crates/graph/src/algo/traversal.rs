//! Breadth-first and depth-first traversal and path search.
//!
//! The paper's Random (R) and Hosting+Search (HS) baselines route virtual
//! links with a depth-first search; [`dfs_path_filtered`] is the generic
//! engine they build on — it finds *some* simple path whose edges all pass a
//! caller predicate, with no optimality guarantee (that is exactly the
//! baselines' weakness that A*Prune fixes).

use crate::{EdgeId, Graph, NodeId};
use std::collections::VecDeque;

/// Nodes in breadth-first order from `source` (including `source`).
pub fn bfs_order<N, E>(graph: &Graph<N, E>, source: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for nb in graph.neighbors(v) {
            if !seen[nb.node.index()] {
                seen[nb.node.index()] = true;
                queue.push_back(nb.node);
            }
        }
    }
    order
}

/// Shortest path by hop count from `source` to `target`, as a node sequence,
/// or `None` if unreachable.
pub fn bfs_path<N, E>(graph: &Graph<N, E>, source: NodeId, target: NodeId) -> Option<Vec<NodeId>> {
    let mut prev: Vec<Option<NodeId>> = vec![None; graph.node_count()];
    let mut seen = vec![false; graph.node_count()];
    let mut queue = VecDeque::new();
    seen[source.index()] = true;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        if v == target {
            let mut path = vec![target];
            let mut cur = target;
            while cur != source {
                let p = prev[cur.index()].expect("reached node has predecessor");
                path.push(p);
                cur = p;
            }
            path.reverse();
            return Some(path);
        }
        for nb in graph.neighbors(v) {
            if !seen[nb.node.index()] {
                seen[nb.node.index()] = true;
                prev[nb.node.index()] = Some(v);
                queue.push_back(nb.node);
            }
        }
    }
    None
}

/// Nodes in depth-first (preorder) order from `source`.
pub fn dfs_order<N, E>(graph: &Graph<N, E>, source: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; graph.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(v) = stack.pop() {
        if seen[v.index()] {
            continue;
        }
        seen[v.index()] = true;
        order.push(v);
        // Push in reverse so the first-listed neighbor is visited first,
        // matching the recursive formulation.
        let neighbors: Vec<_> = graph.neighbors(v).collect();
        for nb in neighbors.into_iter().rev() {
            if !seen[nb.node.index()] {
                stack.push(nb.node);
            }
        }
    }
    order
}

/// Depth-first search for a *simple* path from `source` to `target` using
/// only edges for which `edge_ok(edge, cumulative_cost_so_far)` returns
/// `Some(step_cost)`, subject to total cost ≤ `budget`.
///
/// * `edge_ok` returns `None` to veto an edge outright (e.g. insufficient
///   residual bandwidth), or `Some(cost)` with the cost this edge adds
///   (e.g. its latency).
/// * The path is simple: no node repeats (paper Eq. 7 forbids loops).
/// * Returns the edge sequence of the first path found in DFS order, with
///   its total cost — NOT the cheapest path. This mirrors the baselines in
///   the paper, which accept the first feasible path.
pub fn dfs_path_filtered<N, E, F>(
    graph: &Graph<N, E>,
    source: NodeId,
    target: NodeId,
    budget: f64,
    mut edge_ok: F,
) -> Option<(f64, Vec<EdgeId>)>
where
    F: FnMut(EdgeId, &E) -> Option<f64>,
{
    if source == target {
        return Some((0.0, Vec::new()));
    }
    // Iterative DFS with explicit path stack so deep topologies (a 2000-node
    // ring would recurse 2000 frames) cannot overflow the call stack.
    struct Frame {
        node: NodeId,
        next_neighbor: usize,
    }
    let mut on_path = vec![false; graph.node_count()];
    let mut cost_so_far = 0.0f64;
    let mut edge_stack: Vec<(EdgeId, f64)> = Vec::new();
    let mut frames = vec![Frame {
        node: source,
        next_neighbor: 0,
    }];
    on_path[source.index()] = true;

    while let Some(frame) = frames.last_mut() {
        let v = frame.node;
        let neighbors: Vec<_> = graph.neighbors(v).collect();
        let mut advanced = false;
        while frame.next_neighbor < neighbors.len() {
            let nb = neighbors[frame.next_neighbor];
            frame.next_neighbor += 1;
            if on_path[nb.node.index()] {
                continue;
            }
            let Some(step) = edge_ok(nb.edge, graph.edge(nb.edge)) else {
                continue;
            };
            if cost_so_far + step > budget {
                continue;
            }
            // Take the edge.
            cost_so_far += step;
            edge_stack.push((nb.edge, step));
            if nb.node == target {
                let total = cost_so_far;
                return Some((total, edge_stack.into_iter().map(|(e, _)| e).collect()));
            }
            on_path[nb.node.index()] = true;
            frames.push(Frame {
                node: nb.node,
                next_neighbor: 0,
            });
            advanced = true;
            break;
        }
        if !advanced {
            // Backtrack.
            let done = frames.pop().expect("frame exists");
            on_path[done.node.index()] = false;
            if let Some((_, step)) = edge_stack.pop() {
                cost_so_far -= step;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn path_graph(n: usize) -> (Graph<(), f64>, Vec<NodeId>) {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..n).map(|_| g.add_node(())).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], 1.0);
        }
        (g, ids)
    }

    #[test]
    fn bfs_order_visits_everything_once() {
        let (g, ids) = path_graph(5);
        let order = bfs_order(&g, ids[2]);
        assert_eq!(order.len(), 5);
        assert_eq!(order[0], ids[2]);
    }

    #[test]
    fn bfs_path_is_shortest_in_hops() {
        let mut g: Graph<(), ()> = Graph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[3], ());
        g.add_edge(ids[0], ids[2], ());
        g.add_edge(ids[2], ids[3], ());
        g.add_edge(ids[0], ids[3], ()); // direct edge
        let p = bfs_path(&g, ids[0], ids[3]).unwrap();
        assert_eq!(p, vec![ids[0], ids[3]]);
    }

    #[test]
    fn bfs_path_none_when_disconnected() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        assert!(bfs_path(&g, a, b).is_none());
    }

    #[test]
    fn dfs_order_covers_component() {
        let (g, ids) = path_graph(6);
        let order = dfs_order(&g, ids[0]);
        assert_eq!(order, ids);
    }

    #[test]
    fn dfs_path_respects_budget() {
        let (g, ids) = path_graph(5); // 4 unit-cost hops end to end
        let found = dfs_path_filtered(&g, ids[0], ids[4], 4.0, |_, w| Some(*w));
        assert!(found.is_some());
        let (cost, edges) = found.unwrap();
        assert_eq!(cost, 4.0);
        assert_eq!(edges.len(), 4);
        assert!(dfs_path_filtered(&g, ids[0], ids[4], 3.9, |_, w| Some(*w)).is_none());
    }

    #[test]
    fn dfs_path_respects_edge_veto() {
        let mut g: Graph<(), f64> = Graph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        let blocked = g.add_edge(ids[0], ids[3], 1.0);
        g.add_edge(ids[0], ids[1], 1.0);
        g.add_edge(ids[1], ids[2], 1.0);
        g.add_edge(ids[2], ids[3], 1.0);
        let (cost, edges) = dfs_path_filtered(&g, ids[0], ids[3], 100.0, |e, w| {
            (e != blocked).then_some(*w)
        })
        .unwrap();
        assert_eq!(edges.len(), 3);
        assert_eq!(cost, 3.0);
        assert!(!edges.contains(&blocked));
    }

    #[test]
    fn dfs_path_is_simple() {
        // Diamond with a tempting cycle; ensure no node repeats.
        let mut g: Graph<(), f64> = Graph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        for &(a, b) in &[(0, 1), (1, 2), (2, 0), (2, 3)] {
            g.add_edge(ids[a], ids[b], 1.0);
        }
        let (_, edges) = dfs_path_filtered(&g, ids[0], ids[3], 10.0, |_, w| Some(*w)).unwrap();
        let mut visited = vec![ids[0]];
        let mut cur = ids[0];
        for e in edges {
            let r = g.edge_ref(e);
            cur = r.other(cur);
            assert!(!visited.contains(&cur), "path revisits {cur}");
            visited.push(cur);
        }
        assert_eq!(cur, ids[3]);
    }

    #[test]
    fn dfs_path_trivial_when_source_is_target() {
        let (g, ids) = path_graph(2);
        let (cost, edges) = dfs_path_filtered(&g, ids[0], ids[0], 0.0, |_, w| Some(*w)).unwrap();
        assert_eq!(cost, 0.0);
        assert!(edges.is_empty());
    }

    #[test]
    fn dfs_path_survives_deep_graphs() {
        // A 50_000-node path would overflow a recursive DFS; the iterative
        // implementation must handle it.
        let (g, ids) = path_graph(20_000);
        let found = dfs_path_filtered(&g, ids[0], ids[19_999], f64::INFINITY, |_, w| Some(*w));
        assert_eq!(found.unwrap().1.len(), 19_999);
    }
}
