//! Connectivity queries.
//!
//! The Table 1 workload generator "guarantees that the output graph is
//! connected"; these helpers verify that invariant in tests and let the
//! generators assert it before returning.

use crate::{Graph, NodeId};

/// Assigns each node a component label in `0..k` and returns
/// `(labels, component_count)`. Labels are dense and assigned in order of
/// first discovery.
pub fn connected_components<N, E>(graph: &Graph<N, E>) -> (Vec<usize>, usize) {
    const UNLABELED: usize = usize::MAX;
    let mut labels = vec![UNLABELED; graph.node_count()];
    let mut next = 0usize;
    let mut stack: Vec<NodeId> = Vec::new();
    for start in graph.node_ids() {
        if labels[start.index()] != UNLABELED {
            continue;
        }
        labels[start.index()] = next;
        stack.push(start);
        while let Some(v) = stack.pop() {
            for nb in graph.neighbors(v) {
                if labels[nb.node.index()] == UNLABELED {
                    labels[nb.node.index()] = next;
                    stack.push(nb.node);
                }
            }
        }
        next += 1;
    }
    (labels, next)
}

/// `true` if the graph is connected. The empty graph is considered
/// connected (it has no pair of nodes to disconnect).
pub fn is_connected<N, E>(graph: &Graph<N, E>) -> bool {
    let (_, count) = connected_components(graph);
    count <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn empty_graph_is_connected() {
        let g: Graph<(), ()> = Graph::new();
        assert!(is_connected(&g));
    }

    #[test]
    fn singleton_is_connected() {
        let mut g: Graph<(), ()> = Graph::new();
        g.add_node(());
        assert!(is_connected(&g));
    }

    #[test]
    fn two_isolated_nodes_are_disconnected() {
        let mut g: Graph<(), ()> = Graph::new();
        g.add_node(());
        g.add_node(());
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn labels_are_dense_and_stable() {
        let mut g: Graph<(), ()> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, c, ());
        g.add_edge(b, d, ());
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(labels[a.index()], 0);
        assert_eq!(labels[c.index()], 0);
        assert_eq!(labels[b.index()], 1);
        assert_eq!(labels[d.index()], 1);
    }

    #[test]
    fn bridge_joins_components() {
        let mut g: Graph<(), ()> = Graph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[2], ids[3], ());
        assert!(!is_connected(&g));
        g.add_edge(ids[1], ids[2], ());
        assert!(is_connected(&g));
    }
}
