//! Graphviz DOT export.
//!
//! Testers debugging a mapping want to *see* the cluster and the virtual
//! environment; `to_dot` renders any graph with caller-supplied node/edge
//! labellers, and the CLI's `inspect --dot` uses it for physical
//! topologies (hosts as boxes, switches as diamonds).

use crate::{EdgeId, Graph, NodeId};
use std::fmt::Write;

/// Options for DOT rendering.
#[derive(Clone, Debug)]
pub struct DotOptions {
    /// The graph name emitted after `graph`.
    pub name: String,
    /// Extra attributes inserted at the top (e.g. `layout=neato;`).
    pub graph_attrs: String,
}

impl Default for DotOptions {
    fn default() -> Self {
        DotOptions {
            name: "emumap".to_string(),
            graph_attrs: String::new(),
        }
    }
}

/// Renders the graph in DOT format. `node_attrs` / `edge_attrs` return the
/// attribute list body for each element (empty string for none), e.g.
/// `label="h3", shape=box`.
pub fn to_dot<N, E>(
    graph: &Graph<N, E>,
    options: &DotOptions,
    mut node_attrs: impl FnMut(NodeId, &N) -> String,
    mut edge_attrs: impl FnMut(EdgeId, &E) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph {} {{", options.name);
    if !options.graph_attrs.is_empty() {
        let _ = writeln!(out, "  {}", options.graph_attrs);
    }
    for (id, payload) in graph.nodes() {
        let attrs = node_attrs(id, payload);
        if attrs.is_empty() {
            let _ = writeln!(out, "  {};", id.index());
        } else {
            let _ = writeln!(out, "  {} [{}];", id.index(), attrs);
        }
    }
    for e in graph.edges() {
        let attrs = edge_attrs(e.id, e.weight);
        if attrs.is_empty() {
            let _ = writeln!(out, "  {} -- {};", e.a.index(), e.b.index());
        } else {
            let _ = writeln!(out, "  {} -- {} [{}];", e.a.index(), e.b.index(), attrs);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn renders_nodes_and_edges() {
        let g = generators::line(3);
        let dot = to_dot(
            &g,
            &DotOptions::default(),
            |id, _| format!("label=\"h{}\"", id.index()),
            |_, _| String::new(),
        );
        assert!(dot.starts_with("graph emumap {"));
        assert!(dot.contains("0 [label=\"h0\"];"));
        assert!(dot.contains("0 -- 1;"));
        assert!(dot.contains("1 -- 2;"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_attrs_render_bare_elements() {
        let g = generators::ring(3);
        let dot = to_dot(
            &g,
            &DotOptions::default(),
            |_, _| String::new(),
            |_, _| String::new(),
        );
        assert!(dot.contains("  0;"));
        assert!(dot.contains("0 -- 1;"));
    }

    #[test]
    fn graph_attrs_and_name_are_emitted() {
        let g = generators::line(2);
        let opts = DotOptions {
            name: "cluster".to_string(),
            graph_attrs: "layout=neato;".to_string(),
        };
        let dot = to_dot(&g, &opts, |_, _| String::new(), |_, _| String::new());
        assert!(dot.starts_with("graph cluster {"));
        assert!(dot.contains("layout=neato;"));
    }

    #[test]
    fn edge_attrs_appear() {
        let mut g: Graph<(), f64> = Graph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 42.0);
        let dot = to_dot(
            &g,
            &DotOptions::default(),
            |_, _| String::new(),
            |_, w| format!("label=\"{w} kbps\""),
        );
        assert!(dot.contains("0 -- 1 [label=\"42 kbps\"];"));
    }
}
