//! Extension bench: HMN against the classical bin-packing placements
//! (first-fit-decreasing, best-fit, worst-fit — all routed with A*Prune),
//! quantifying what Hosting's network affinity + Migration's balancing buy
//! over textbook placement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emumap_core::{BestFit, FirstFitDecreasing, Hmn, Mapper, WorstFit};
use emumap_workloads::{instantiate, ClusterSpec, Scenario, WorkloadKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_placement_strategies(c: &mut Criterion) {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 5.0,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, 0, 2009);

    let mappers: Vec<(&str, Box<dyn Mapper>)> = vec![
        ("hmn", Box::new(Hmn::new())),
        ("ffd", Box::new(FirstFitDecreasing::default())),
        ("best_fit", Box::new(BestFit::default())),
        ("worst_fit", Box::new(WorstFit::default())),
    ];

    // One-shot quality report: objective, hosts used, intra-host links.
    for (name, mapper) in &mappers {
        let mut rng = SmallRng::seed_from_u64(1);
        match mapper.map(&inst.phys, &inst.venv, &mut rng) {
            Ok(out) => eprintln!(
                "[placement_strategies] {name}: objective {:.1}, hosts {}, intra-host links {}",
                out.objective,
                out.mapping.hosts_used(),
                out.stats.intra_host_links
            ),
            Err(e) => eprintln!("[placement_strategies] {name}: FAILED ({e})"),
        }
    }

    let mut group = c.benchmark_group("placement_strategies");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, mapper) in &mappers {
        group.bench_with_input(BenchmarkId::from_parameter(*name), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                mapper
                    .map(&inst.phys, &inst.venv, &mut rng)
                    .map(|o| o.objective)
                    .ok()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_placement_strategies);
criterion_main!(benches);
