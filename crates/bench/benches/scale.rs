//! Datacenter-scale end-to-end benchmark: a 2000-guest low-level
//! workload (Table 1's P2P column) mapped onto a ~10k-host fat-tree,
//! annealed by plain SA and by the parallel-tempering ladder at an
//! **equal total proposal budget**.
//!
//! This is the gate for the SoA/CSR hot-path work: candidate filtering,
//! Dijkstra tables and routing all run over dense columns and the shared
//! CSR snapshot, so the whole pipeline has to stay tractable at three
//! orders of magnitude above the paper's 40-host testbed.
//!
//! Writes `results/BENCH_scale.json` with per-mapper wall-clock,
//! objective, proposals-per-second and allocation counters (peak live
//! bytes as a portable RSS proxy). CI's bench-smoke job runs it in quick
//! mode (`EMUMAP_BENCH_QUICK=1` — same topology, reduced proposal budget
//! and a thinner virtual environment) and asserts a wall-clock budget
//! plus `pt.objective <= sa.objective`.

use emumap_core::{
    AStarPruneConfig, Annealing, AnnealingConfig, MapCache, Mapper, ParallelTempering,
    TemperingConfig,
};
use emumap_graph::generators;
use emumap_model::{
    HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, PhysicalTopology, StorGb, VirtualEnvironment,
    VmmOverhead,
};
use emumap_workloads::VirtualEnvSpec;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Wrapper around the system allocator counting live and cumulative
/// bytes. `peak_live` is a portable peak-RSS proxy: it tracks the
/// high-water mark of heap bytes actually held, which is what a resident
/// set would grow to (modulo allocator slack), without any /proc parsing.
struct CountingAlloc {
    live: AtomicUsize,
    peak_live: AtomicUsize,
    total: AtomicU64,
}

impl CountingAlloc {
    const fn new() -> Self {
        CountingAlloc {
            live: AtomicUsize::new(0),
            peak_live: AtomicUsize::new(0),
            total: AtomicU64::new(0),
        }
    }

    fn on_alloc(&self, bytes: usize) {
        let live = self.live.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak_live.fetch_max(live, Ordering::Relaxed);
        self.total.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> AllocSnapshot {
        AllocSnapshot {
            live: self.live.load(Ordering::Relaxed),
            peak_live: self.peak_live.load(Ordering::Relaxed),
            total: self.total.load(Ordering::Relaxed),
        }
    }
}

#[derive(Clone, Copy)]
struct AllocSnapshot {
    live: usize,
    peak_live: usize,
    total: u64,
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            self.on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        self.live.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            self.live.fetch_sub(layout.size(), Ordering::Relaxed);
            self.on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc::new();

/// One mapper's end-to-end measurement.
#[derive(Serialize)]
struct ScaleEntry {
    name: String,
    wall_s: f64,
    objective: f64,
    proposals_evaluated: usize,
    proposals_per_s: f64,
    replica_exchanges: usize,
    exchange_accepts: usize,
    routed_links: usize,
    intra_host_links: usize,
    /// Heap high-water mark during this mapper's run, in bytes (the
    /// peak-RSS proxy).
    peak_live_bytes: usize,
    /// Bytes allocated in total during this mapper's run.
    allocated_bytes: u64,
}

#[derive(Serialize)]
struct ScaleReport {
    quick: bool,
    hosts: usize,
    switches: usize,
    guests: usize,
    virtual_links: usize,
    proposal_budget: usize,
    build_s: f64,
    entries: Vec<ScaleEntry>,
}

fn build_instance(quick: bool) -> (PhysicalTopology, VirtualEnvironment) {
    // fat_tree(36): 36^3/4 = 11664 hosts + 1944 switches. Quick mode
    // keeps the full topology — the SoA/CSR structures must be exercised
    // at datacenter scale either way — and thins only the search work.
    let shape = generators::fat_tree(36);
    let phys = PhysicalTopology::from_shape(
        &shape,
        std::iter::repeat(HostSpec::new(
            Mips(8000.0),
            MemMb::from_gb(8),
            StorGb(4000.0),
        )),
        // 5 ms per hop keeps the 6-hop worst case inside Table 1's 30 ms
        // latency floor.
        LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
        VmmOverhead::NONE,
    );
    let guests = if quick { 500 } else { 2000 };
    let density = if quick { 0.004 } else { 0.002 };
    let venv = VirtualEnvSpec::low_level(guests, density).generate(&mut SmallRng::seed_from_u64(7));
    (phys, venv)
}

fn measure(
    name: &str,
    mapper: &dyn Mapper,
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
) -> ScaleEntry {
    let before = ALLOC.snapshot();
    // Reset the high-water mark to the current live level so the peak is
    // attributable to this run alone.
    ALLOC.peak_live.store(before.live, Ordering::Relaxed);
    let mut cache = MapCache::new();
    let mut rng = SmallRng::seed_from_u64(2009);
    let t = Instant::now();
    let out = mapper
        .map_with_cache(phys, venv, &mut rng, &mut cache)
        .unwrap_or_else(|e| panic!("{name} failed at scale: {e}"));
    let wall_s = t.elapsed().as_secs_f64();
    let after = ALLOC.snapshot();
    ScaleEntry {
        name: name.to_string(),
        wall_s,
        objective: out.objective,
        proposals_evaluated: out.stats.proposals_evaluated,
        proposals_per_s: out.stats.proposals_evaluated as f64 / wall_s.max(1e-9),
        replica_exchanges: out.stats.replica_exchanges,
        exchange_accepts: out.stats.exchange_accepts,
        routed_links: out.stats.routed_links,
        intra_host_links: out.stats.intra_host_links,
        peak_live_bytes: after.peak_live,
        allocated_bytes: after.total - before.total,
    }
}

fn main() {
    let quick = std::env::var("EMUMAP_BENCH_QUICK").is_ok();
    let t_build = Instant::now();
    let (phys, venv) = build_instance(quick);
    let build_s = t_build.elapsed().as_secs_f64();
    eprintln!(
        "[scale] instance: {} hosts, {} switches, {} guests, {} vlinks (built in {build_s:.2}s)",
        phys.host_count(),
        phys.graph().node_count() - phys.host_count(),
        venv.guest_count(),
        venv.link_count(),
    );

    // Equal total proposal budgets: SA burns the whole budget in one
    // chain; PT spreads it over a 4-rung ladder.
    let budget = if quick { 40_000 } else { 800_000 };
    // Fat-trees have enormous loop-free path multiplicity inside the
    // latency bound; the exhaustive widest-path search is intractable
    // there, so the routing pass runs with Pareto dominance pruning on.
    let astar = AStarPruneConfig {
        prune_dominated: true,
        ..Default::default()
    };
    let sa = Annealing {
        config: AnnealingConfig {
            iterations: budget,
            astar,
            ..Default::default()
        },
    };
    let rounds = if quick { 50 } else { 200 };
    let pt = ParallelTempering {
        config: TemperingConfig {
            replicas: 4,
            rounds,
            iterations_per_round: budget / (4 * rounds),
            // Cold exploit rung (SA's geometric schedule ends near-greedy)
            // plus genuinely hot rungs that can cross the bandwidth-penalty
            // barriers separating colocation basins.
            min_temperature_factor: 0.0005,
            max_temperature_factor: 0.5,
            astar,
            ..Default::default()
        },
    };
    assert_eq!(pt.config.total_proposals(), budget, "budgets must match");

    let entries = vec![
        measure("sa", &sa, &phys, &venv),
        measure("pt", &pt, &phys, &venv),
    ];
    for e in &entries {
        eprintln!(
            "[scale] {}: {:.2}s wall, objective {:.3}, {:.0} proposals/s, peak {:.1} MiB heap",
            e.name,
            e.wall_s,
            e.objective,
            e.proposals_per_s,
            e.peak_live_bytes as f64 / (1024.0 * 1024.0),
        );
    }

    let report = ScaleReport {
        quick,
        hosts: phys.host_count(),
        switches: phys.graph().node_count() - phys.host_count(),
        guests: venv.guest_count(),
        virtual_links: venv.link_count(),
        proposal_budget: budget,
        build_s,
        entries,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_scale.json", json).expect("write results/BENCH_scale.json");
    eprintln!("[scale] report -> results/BENCH_scale.json");
}
