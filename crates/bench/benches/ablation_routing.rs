//! Ablation: the paper's modified A*Prune vs. the classical
//! K-shortest-paths routing (the ALEVIN-style VNE baseline) at several k.
//! Reports success/objective once and benches wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emumap_core::{Hmn, HmnKsp, Mapper};
use emumap_workloads::{instantiate, ClusterSpec, Scenario, WorkloadKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_routing(c: &mut Criterion) {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 5.0,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, 0, 2009);

    let mappers: Vec<(String, Box<dyn Mapper>)> = vec![
        ("astar_prune".to_string(), Box::new(Hmn::new())),
        ("ksp_k1".to_string(), Box::new(HmnKsp { k: 1 })),
        ("ksp_k4".to_string(), Box::new(HmnKsp { k: 4 })),
        ("ksp_k16".to_string(), Box::new(HmnKsp { k: 16 })),
    ];

    for (name, mapper) in &mappers {
        let mut rng = SmallRng::seed_from_u64(1);
        match mapper.map(&inst.phys, &inst.venv, &mut rng) {
            Ok(out) => eprintln!(
                "[ablation_routing] {name}: ok, objective {:.1}, networking {:?}",
                out.objective, out.stats.networking_time
            ),
            Err(e) => eprintln!("[ablation_routing] {name}: FAILED ({e})"),
        }
    }

    let mut group = c.benchmark_group("ablation_routing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, mapper) in &mappers {
        group.bench_with_input(BenchmarkId::from_parameter(name), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                mapper
                    .map(&inst.phys, &inst.venv, &mut rng)
                    .map(|o| o.objective)
                    .ok()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
