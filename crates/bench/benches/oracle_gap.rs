//! Oracle gap benchmark: how much further the Lagrangian bound carries
//! the branch-and-bound oracle than the water-filling bound, at the same
//! node budget.
//!
//! Two measurements, both seeded and reproducible:
//!
//! 1. **Certification superset on a memory-tight smoke family** — six
//!    one-guest-per-host instances where the assignment is forced into a
//!    matching. Both bounds run at the *same* squeezed node budget; the
//!    Lagrangian's per-guest priced tables see the memory pressure the
//!    water-filling bound is blind to, so it must certify a superset of
//!    the water-filling-certified seeds (pointwise bound dominance plus
//!    identical branch order make this structural, not statistical). CI
//!    gates the superset being *strict* in quick mode.
//! 2. **Certified gaps at paper scale (Figure 1 grid)** — the high-level
//!    scenario rows at guest:host ratios 2.5 and 10.0 on a 20-host torus
//!    (50 and 200 guests). An HMN witness seeds the incumbent, then both
//!    bounds run at the same budget; the report records each side's
//!    `OracleVerdict` and certified gap. The headline row (≥ 40 guests)
//!    must be one the water-filling bound leaves Truncated while the
//!    Lagrangian proves Optimal or reports a strictly tighter gap.
//!
//! 3. **Deterministic parallel sweep** — the exhaustive smoke family
//!    solved under the epoch-parallel engine at 1, 4 and 8 workers
//!    (override with `EMUMAP_BENCH_THREADS=a,b,…`). The engine's
//!    epoch-barrier design makes verdicts a pure function of the
//!    instance, so the per-seed `OracleVerdict` JSON must be
//!    *byte-identical* across thread counts — always asserted. Wall
//!    clocks are recorded per leg (best of two passes); the speedup
//!    floors (≥ 1.8x at 4 workers, ≥ 3x at 8 in full mode) are asserted
//!    only when the host actually has that many cores, and the core
//!    count is written into the report so a reader can tell a 1-core
//!    run's ≈1x apart from a regression. A final scan feeds raw Table-1
//!    ratio-10 draws (no FFD prescreen, 200 guests) to the parallel
//!    oracle until one certifies — the suffix-capacity bound proves
//!    aggregate-overflow draws Infeasible at the root epoch, giving a
//!    non-Truncated ≥100-guest verdict the report gates.
//!
//! Writes `results/BENCH_oracle.json`. Quick mode
//! (`EMUMAP_BENCH_QUICK=1`) shrinks the seed set and node budgets but
//! keeps both paper rows.

use emumap_bench::crosscheck::OracleVerdict;
use emumap_core::{solve_exact_with, BoundKind, ExactConfig, ExactStatus, Hmn, MapCache, Mapper};
use emumap_graph::generators;
use emumap_model::{
    GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, PhysicalTopology, StorGb, VLinkSpec,
    VirtualEnvironment, VmmOverhead,
};
use emumap_workloads::{instantiate, ClusterSpec, ClusterTopology, Scenario, WorkloadKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

const EPSILON: f64 = 1e-9;

/// One smoke seed run under both bounds at the same node budget.
#[derive(Serialize)]
struct SmokeRow {
    seed: u64,
    waterfill: OracleVerdict,
    lagrangian: OracleVerdict,
}

/// One Figure-1-grid row run under both bounds at the same node budget.
#[derive(Serialize)]
struct PaperRow {
    scenario: String,
    guests: usize,
    hosts: usize,
    hmn_objective: f64,
    waterfill: OracleVerdict,
    lagrangian: OracleVerdict,
}

/// One thread-count leg of the parallel sweep: the whole smoke family
/// solved to exhaustion `sweep_reps` times under the epoch engine.
#[derive(Serialize)]
struct SweepLeg {
    threads: usize,
    /// Best-of-two wall clock for the full repetition block.
    wall_s: f64,
    /// The per-seed verdicts of one repetition, serialized as one JSON
    /// array — the byte-equality witness across thread counts.
    verdicts_json: String,
    /// Epoch/steal/publish totals over one repetition. `epochs` and
    /// `incumbent_publishes` are thread-count-invariant; `nodes_stolen`
    /// tallies the item→worker striping and legitimately varies.
    epochs: u64,
    nodes_stolen: u64,
    incumbent_publishes: u64,
}

/// The first raw Table-1 draw the parallel oracle certifies
/// (non-Truncated) in the ≥100-guest scan.
#[derive(Serialize)]
struct CertifiedScanRow {
    scenario: String,
    hosts: usize,
    guests: usize,
    /// Index of the certified draw and how many were scanned to find it.
    rep: u64,
    reps_scanned: u64,
    /// Aggregate guest memory demand vs cluster capacity (MB): > 100 %
    /// is what the root suffix-capacity bound refutes.
    mem_demand_mb: u64,
    mem_capacity_mb: u64,
    verdict: OracleVerdict,
}

/// Part-3 report block: thread sweep plus the certified ≥100-guest row.
#[derive(Serialize)]
struct ParallelOracleReport {
    /// Cores the bench host exposed — the speedup floors below are only
    /// asserted when this is at least the leg's worker count.
    host_cores: usize,
    epoch_nodes: u64,
    sweep_reps: u32,
    /// Nodes expanded by one repetition of the family (per leg — equal
    /// across legs by the determinism contract).
    sweep_nodes: u64,
    sweep: Vec<SweepLeg>,
    /// All legs produced byte-identical verdict JSON.
    verdicts_identical: bool,
    /// wall(1 thread) / wall(4 threads), when both legs ran.
    speedup_4t: Option<f64>,
    /// wall(1 thread) / wall(8 threads), when both legs ran.
    speedup_8t: Option<f64>,
    certified: CertifiedScanRow,
}

#[derive(Serialize)]
struct OracleGapReport {
    quick: bool,
    smoke_budget: u64,
    smoke_rows: Vec<SmokeRow>,
    waterfill_certified: usize,
    lagrangian_certified: usize,
    /// Lagrangian certifies every seed the water-filling bound does.
    superset: bool,
    /// …and at least one more.
    strict_superset: bool,
    paper_budget: u64,
    paper_rows: Vec<PaperRow>,
    parallel: ParallelOracleReport,
    wall_s: f64,
}

/// A memory-tight oracle instance: a 6-host ring of 1 GB hosts and six
/// ~900 MB guests, so each host takes exactly one guest and the search is
/// over perfect matchings. CPU demands are heterogeneous enough that the
/// load-balance objective separates matchings; a sparse virtual chain
/// adds bandwidth/latency coupling. Fully deterministic in `seed`.
fn tight_smoke(seed: u64) -> (PhysicalTopology, VirtualEnvironment) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6f72_6163_6c65);
    // Heterogeneous host CPUs: with uniform hosts a forced matching makes
    // every placement's residual multiset identical and the bounds cannot
    // separate. Heterogeneity makes *which* guest lands where matter.
    let hosts: Vec<HostSpec> = (0..6)
        .map(|_| {
            HostSpec::new(
                Mips(rng.gen_range(1000.0..4000.0)),
                MemMb(1024),
                StorGb(2000.0),
            )
        })
        .collect();
    let phys = PhysicalTopology::from_shape(
        &generators::ring(6),
        hosts.into_iter(),
        LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
        VmmOverhead::NONE,
    );
    let mut venv = VirtualEnvironment::new();
    let guests: Vec<_> = (0..6)
        .map(|_| {
            venv.add_guest(GuestSpec::new(
                Mips(rng.gen_range(100.0..1200.0)),
                MemMb(rng.gen_range(850..=950)),
                StorGb(rng.gen_range(10.0..50.0)),
            ))
        })
        .collect();
    for pair in guests.windows(2) {
        venv.add_link(
            pair[0],
            pair[1],
            VLinkSpec::new(
                Kbps(rng.gen_range(200.0..800.0)),
                Millis(rng.gen_range(20.0..40.0)),
            ),
        );
    }
    (phys, venv)
}

fn solve(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    bound: BoundKind,
    max_nodes: u64,
    witnesses: &[emumap_model::Mapping],
    cache: &mut MapCache,
) -> OracleVerdict {
    let config = ExactConfig {
        max_nodes,
        bound,
        ..Default::default()
    };
    let outcome = solve_exact_with(phys, venv, &config, cache, witnesses);
    OracleVerdict::from(&outcome)
}

fn main() {
    let quick = std::env::var("EMUMAP_BENCH_QUICK").is_ok();
    let t0 = Instant::now();
    let mut cache = MapCache::new();

    // Part 1: certification superset on the memory-tight smoke family.
    // Tuned so the squeeze bites: at 500 nodes the water-filling bound
    // certifies 2/6 quick seeds (7/20 full) while the Lagrangian reaches
    // 4/6 (15/20 full) — a strict superset in both modes.
    let smoke_budget: u64 = 500;
    let seeds: Vec<u64> = if quick {
        (1..=6).collect()
    } else {
        (1..=20).collect()
    };
    let mut smoke_rows = Vec::new();
    for &seed in &seeds {
        let (phys, venv) = tight_smoke(seed);
        let wf = solve(
            &phys,
            &venv,
            BoundKind::Waterfill,
            smoke_budget,
            &[],
            &mut cache,
        );
        let lag = solve(
            &phys,
            &venv,
            BoundKind::Lagrangian,
            smoke_budget,
            &[],
            &mut cache,
        );
        eprintln!(
            "[oracle] smoke seed {seed}: waterfill {:?} ({} nodes) | lagrangian {:?} ({} nodes)",
            wf.status, wf.nodes_expanded, lag.status, lag.nodes_expanded
        );
        smoke_rows.push(SmokeRow {
            seed,
            waterfill: wf,
            lagrangian: lag,
        });
    }
    let waterfill_certified = smoke_rows
        .iter()
        .filter(|r| r.waterfill.status == ExactStatus::Optimal)
        .count();
    let lagrangian_certified = smoke_rows
        .iter()
        .filter(|r| r.lagrangian.status == ExactStatus::Optimal)
        .count();
    let superset = smoke_rows.iter().all(|r| {
        r.waterfill.status != ExactStatus::Optimal || r.lagrangian.status == ExactStatus::Optimal
    });
    let strict_superset = superset && lagrangian_certified > waterfill_certified;
    eprintln!(
        "[oracle] smoke (budget {smoke_budget}): waterfill certifies {waterfill_certified}/{}, \
         lagrangian certifies {lagrangian_certified}/{} (superset={superset}, strict={strict_superset})",
        seeds.len(),
        seeds.len(),
    );
    assert!(
        superset,
        "lagrangian must certify every waterfill-certified seed at the same budget"
    );
    assert!(
        strict_superset,
        "lagrangian must certify strictly more seeds than waterfill at budget {smoke_budget}"
    );

    // Part 2: certified gaps at paper scale.
    let paper_budget: u64 = if quick { 1_500 } else { 20_000 };
    let cluster = ClusterSpec {
        hosts: 20,
        ..ClusterSpec::paper()
    };
    let mut paper_rows = Vec::new();
    for &ratio in &[2.5, 10.0] {
        let scenario = Scenario {
            ratio,
            density: 0.015,
            workload: WorkloadKind::HighLevel,
        };
        // Scan repetitions until HMN lands a witness: the tightest row
        // (ratio 10 ≈ 96% memory utilization) is not mappable on every
        // draw, and the oracle needs a finite incumbent to report a gap.
        let (instance, hmn) = (0..16)
            .find_map(|rep| {
                let instance = instantiate(
                    &cluster,
                    ClusterTopology::Torus2D { rows: 4, cols: 5 },
                    &scenario,
                    rep,
                    2009,
                );
                let mut rng = SmallRng::seed_from_u64(instance.mapper_seed);
                Hmn::new()
                    .map_with_cache(&instance.phys, &instance.venv, &mut rng, &mut cache)
                    .ok()
                    .map(|out| (instance, out))
            })
            .expect("HMN maps at least one repetition of the paper row");
        let witnesses = [hmn.mapping];
        let wf = solve(
            &instance.phys,
            &instance.venv,
            BoundKind::Waterfill,
            paper_budget,
            &witnesses,
            &mut cache,
        );
        let lag = solve(
            &instance.phys,
            &instance.venv,
            BoundKind::Lagrangian,
            paper_budget,
            &witnesses,
            &mut cache,
        );
        eprintln!(
            "[oracle] {} ({} guests): waterfill {:?} lb {:?} gap {:?} | lagrangian {:?} lb {:?} gap {:?}",
            scenario.label(),
            instance.venv.guest_count(),
            wf.status,
            wf.lower_bound,
            wf.gap,
            lag.status,
            lag.lower_bound,
            lag.gap,
        );
        paper_rows.push(PaperRow {
            scenario: scenario.label(),
            guests: instance.venv.guest_count(),
            hosts: cluster.hosts,
            hmn_objective: hmn.objective,
            waterfill: wf,
            lagrangian: lag,
        });
    }
    // The headline acceptance row: at least one ≥ 40-guest instance the
    // water-filling bound leaves Truncated where the Lagrangian either
    // certifies Optimal or reports a strictly tighter explicit gap.
    let headline = paper_rows.iter().any(|r| {
        r.guests >= 40
            && r.waterfill.status == ExactStatus::Truncated
            && (r.lagrangian.status == ExactStatus::Optimal
                || (r.lagrangian.gap.is_some()
                    && r.lagrangian.lower_bound.unwrap_or(f64::NEG_INFINITY)
                        > r.waterfill.lower_bound.unwrap_or(f64::INFINITY) + EPSILON))
    });
    assert!(
        headline,
        "no ≥40-guest Figure-1 row where waterfill truncates and lagrangian tightens: {:?}",
        paper_rows
            .iter()
            .map(|r| (
                r.scenario.clone(),
                r.guests,
                r.waterfill.status,
                r.waterfill.lower_bound,
                r.lagrangian.status,
                r.lagrangian.lower_bound
            ))
            .collect::<Vec<_>>()
    );

    // Part 3: the deterministic epoch-parallel engine. One leg per
    // thread count solves the smoke family to exhaustion `sweep_reps`
    // times; verdict JSON must match byte-for-byte across legs.
    let host_cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let sweep_threads: Vec<usize> = match std::env::var("EMUMAP_BENCH_THREADS") {
        Ok(list) => list
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .expect("EMUMAP_BENCH_THREADS: comma-separated worker counts")
            })
            .collect(),
        Err(_) => vec![1, 4, 8],
    };
    let sweep_reps: u32 = if quick { 50 } else { 20 };
    let epoch_nodes = ExactConfig::default().epoch_nodes;
    let mut sweep: Vec<SweepLeg> = Vec::new();
    let mut sweep_nodes = 0u64;
    for &threads in &sweep_threads {
        assert!(
            threads >= 1,
            "the sweep exercises the epoch engine; worker counts must be >= 1"
        );
        let config = ExactConfig {
            threads,
            bound: BoundKind::Lagrangian,
            ..Default::default()
        };
        let mut wall_s = f64::INFINITY;
        let mut verdicts_json = String::new();
        let (mut epochs, mut stolen, mut publishes) = (0u64, 0u64, 0u64);
        for pass in 0..2 {
            let t0 = Instant::now();
            let mut verdicts: Vec<OracleVerdict> = Vec::with_capacity(seeds.len());
            for rep in 0..sweep_reps {
                for &seed in &seeds {
                    let (phys, venv) = tight_smoke(seed);
                    let outcome = solve_exact_with(&phys, &venv, &config, &mut cache, &[]);
                    if pass == 0 && rep == 0 {
                        verdicts.push(OracleVerdict::from(&outcome));
                        sweep_nodes += outcome.stats.nodes_expanded;
                        epochs += outcome.stats.epochs;
                        stolen += outcome.stats.nodes_stolen;
                        publishes += outcome.stats.incumbent_publishes;
                    }
                }
            }
            wall_s = wall_s.min(t0.elapsed().as_secs_f64());
            if pass == 0 {
                verdicts_json = serde_json::to_string(&verdicts).expect("serialize sweep verdicts");
            }
        }
        eprintln!(
            "[oracle] sweep {threads}t: {} seeds x {sweep_reps} reps in {wall_s:.3}s \
             ({epochs} epochs, {stolen} stolen, {publishes} publishes per rep)",
            seeds.len(),
        );
        sweep.push(SweepLeg {
            threads,
            wall_s,
            verdicts_json,
            epochs,
            nodes_stolen: stolen,
            incumbent_publishes: publishes,
        });
    }
    sweep_nodes /= sweep_threads.len().max(1) as u64;
    let verdicts_identical = sweep
        .windows(2)
        .all(|w| w[0].verdicts_json == w[1].verdicts_json);
    assert!(
        verdicts_identical,
        "epoch-parallel verdicts must be byte-identical across worker counts"
    );
    let wall_at = |t: usize| sweep.iter().find(|l| l.threads == t).map(|l| l.wall_s);
    let speedup_4t = wall_at(1).zip(wall_at(4)).map(|(a, b)| a / b);
    let speedup_8t = wall_at(1).zip(wall_at(8)).map(|(a, b)| a / b);
    if host_cores >= 4 {
        if let Some(s) = speedup_4t {
            eprintln!("[oracle] sweep speedup at 4 workers: {s:.2}x ({host_cores} cores)");
            assert!(s >= 1.8, "4-worker speedup {s:.2}x below the 1.8x floor");
        }
    }
    if host_cores >= 8 && !quick {
        if let Some(s) = speedup_8t {
            eprintln!("[oracle] sweep speedup at 8 workers: {s:.2}x ({host_cores} cores)");
            assert!(s >= 3.0, "8-worker speedup {s:.2}x below the 3x floor");
        }
    }

    // The ≥100-guest certified row: raw Table-1 ratio-10 draws (the
    // paper's generator has no FFD prescreen) fed to the parallel oracle
    // until one certifies. Aggregate-overflow draws are proven
    // Infeasible by the root suffix-capacity bound — a real certificate,
    // not a truncation, on a 200-guest instance.
    let scan_scenario = Scenario {
        ratio: 10.0,
        density: 0.015,
        workload: WorkloadKind::HighLevel,
    };
    let scan_budget: u64 = if quick { 2_000 } else { 20_000 };
    let scan_config = ExactConfig {
        threads: 4,
        max_nodes: scan_budget,
        ..Default::default()
    };
    let mut certified = None;
    for rep in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(0x5eed_f16e ^ rep.wrapping_mul(0x9e37_79b9));
        let phys = cluster.build(ClusterTopology::Torus2D { rows: 4, cols: 5 }, &mut rng);
        let venv = scan_scenario.venv_spec(cluster.hosts).generate(&mut rng);
        let outcome = solve_exact_with(&phys, &venv, &scan_config, &mut cache, &[]);
        if outcome.status != ExactStatus::Truncated {
            let mem_demand_mb: u64 = venv.guest_ids().map(|g| venv.guest(g).mem.value()).sum();
            let mem_capacity_mb: u64 = phys
                .hosts()
                .iter()
                .map(|&h| phys.host_spec(h).mem.value())
                .sum();
            eprintln!(
                "[oracle] certified scan: rep {rep} ({} guests, mem {mem_demand_mb}/{mem_capacity_mb} MB) -> {:?} in {} node(s)",
                venv.guest_count(),
                outcome.status,
                outcome.stats.nodes_expanded,
            );
            certified = Some(CertifiedScanRow {
                scenario: scan_scenario.label(),
                hosts: cluster.hosts,
                guests: venv.guest_count(),
                rep,
                reps_scanned: rep + 1,
                mem_demand_mb,
                mem_capacity_mb,
                verdict: OracleVerdict::from(&outcome),
            });
            break;
        }
    }
    let certified = certified
        .expect("no raw ratio-10 draw certified within 32 reps — the scan seeds are fixed, so this is a solver regression");
    assert!(
        certified.guests >= 100,
        "certified row must stay a >=100-guest instance"
    );
    let parallel = ParallelOracleReport {
        host_cores,
        epoch_nodes,
        sweep_reps,
        sweep_nodes,
        sweep,
        verdicts_identical,
        speedup_4t,
        speedup_8t,
        certified,
    };

    let wall_s = t0.elapsed().as_secs_f64();
    let report = OracleGapReport {
        quick,
        smoke_budget,
        smoke_rows,
        waterfill_certified,
        lagrangian_certified,
        superset,
        strict_superset,
        paper_budget,
        paper_rows,
        parallel,
        wall_s,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_oracle.json", json).expect("write results/BENCH_oracle.json");
    eprintln!("[oracle] report -> results/BENCH_oracle.json ({wall_s:.2}s)");
}
