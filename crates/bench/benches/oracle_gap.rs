//! Oracle gap benchmark: how much further the Lagrangian bound carries
//! the branch-and-bound oracle than the water-filling bound, at the same
//! node budget.
//!
//! Two measurements, both seeded and reproducible:
//!
//! 1. **Certification superset on a memory-tight smoke family** — six
//!    one-guest-per-host instances where the assignment is forced into a
//!    matching. Both bounds run at the *same* squeezed node budget; the
//!    Lagrangian's per-guest priced tables see the memory pressure the
//!    water-filling bound is blind to, so it must certify a superset of
//!    the water-filling-certified seeds (pointwise bound dominance plus
//!    identical branch order make this structural, not statistical). CI
//!    gates the superset being *strict* in quick mode.
//! 2. **Certified gaps at paper scale (Figure 1 grid)** — the high-level
//!    scenario rows at guest:host ratios 2.5 and 10.0 on a 20-host torus
//!    (50 and 200 guests). An HMN witness seeds the incumbent, then both
//!    bounds run at the same budget; the report records each side's
//!    `OracleVerdict` and certified gap. The headline row (≥ 40 guests)
//!    must be one the water-filling bound leaves Truncated while the
//!    Lagrangian proves Optimal or reports a strictly tighter gap.
//!
//! Writes `results/BENCH_oracle.json`. Quick mode
//! (`EMUMAP_BENCH_QUICK=1`) shrinks the seed set and node budgets but
//! keeps both paper rows.

use emumap_bench::crosscheck::OracleVerdict;
use emumap_core::{solve_exact_with, BoundKind, ExactConfig, ExactStatus, Hmn, MapCache, Mapper};
use emumap_graph::generators;
use emumap_model::{
    GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, PhysicalTopology, StorGb, VLinkSpec,
    VirtualEnvironment, VmmOverhead,
};
use emumap_workloads::{instantiate, ClusterSpec, ClusterTopology, Scenario, WorkloadKind};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

const EPSILON: f64 = 1e-9;

/// One smoke seed run under both bounds at the same node budget.
#[derive(Serialize)]
struct SmokeRow {
    seed: u64,
    waterfill: OracleVerdict,
    lagrangian: OracleVerdict,
}

/// One Figure-1-grid row run under both bounds at the same node budget.
#[derive(Serialize)]
struct PaperRow {
    scenario: String,
    guests: usize,
    hosts: usize,
    hmn_objective: f64,
    waterfill: OracleVerdict,
    lagrangian: OracleVerdict,
}

#[derive(Serialize)]
struct OracleGapReport {
    quick: bool,
    smoke_budget: u64,
    smoke_rows: Vec<SmokeRow>,
    waterfill_certified: usize,
    lagrangian_certified: usize,
    /// Lagrangian certifies every seed the water-filling bound does.
    superset: bool,
    /// …and at least one more.
    strict_superset: bool,
    paper_budget: u64,
    paper_rows: Vec<PaperRow>,
    wall_s: f64,
}

/// A memory-tight oracle instance: a 6-host ring of 1 GB hosts and six
/// ~900 MB guests, so each host takes exactly one guest and the search is
/// over perfect matchings. CPU demands are heterogeneous enough that the
/// load-balance objective separates matchings; a sparse virtual chain
/// adds bandwidth/latency coupling. Fully deterministic in `seed`.
fn tight_smoke(seed: u64) -> (PhysicalTopology, VirtualEnvironment) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6f72_6163_6c65);
    // Heterogeneous host CPUs: with uniform hosts a forced matching makes
    // every placement's residual multiset identical and the bounds cannot
    // separate. Heterogeneity makes *which* guest lands where matter.
    let hosts: Vec<HostSpec> = (0..6)
        .map(|_| {
            HostSpec::new(
                Mips(rng.gen_range(1000.0..4000.0)),
                MemMb(1024),
                StorGb(2000.0),
            )
        })
        .collect();
    let phys = PhysicalTopology::from_shape(
        &generators::ring(6),
        hosts.into_iter(),
        LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
        VmmOverhead::NONE,
    );
    let mut venv = VirtualEnvironment::new();
    let guests: Vec<_> = (0..6)
        .map(|_| {
            venv.add_guest(GuestSpec::new(
                Mips(rng.gen_range(100.0..1200.0)),
                MemMb(rng.gen_range(850..=950)),
                StorGb(rng.gen_range(10.0..50.0)),
            ))
        })
        .collect();
    for pair in guests.windows(2) {
        venv.add_link(
            pair[0],
            pair[1],
            VLinkSpec::new(
                Kbps(rng.gen_range(200.0..800.0)),
                Millis(rng.gen_range(20.0..40.0)),
            ),
        );
    }
    (phys, venv)
}

fn solve(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    bound: BoundKind,
    max_nodes: u64,
    witnesses: &[emumap_model::Mapping],
    cache: &mut MapCache,
) -> OracleVerdict {
    let config = ExactConfig {
        max_nodes,
        bound,
        ..Default::default()
    };
    let outcome = solve_exact_with(phys, venv, &config, cache, witnesses);
    OracleVerdict::from(&outcome)
}

fn main() {
    let quick = std::env::var("EMUMAP_BENCH_QUICK").is_ok();
    let t0 = Instant::now();
    let mut cache = MapCache::new();

    // Part 1: certification superset on the memory-tight smoke family.
    // Tuned so the squeeze bites: at 500 nodes the water-filling bound
    // certifies 2/6 quick seeds (7/20 full) while the Lagrangian reaches
    // 4/6 (15/20 full) — a strict superset in both modes.
    let smoke_budget: u64 = 500;
    let seeds: Vec<u64> = if quick {
        (1..=6).collect()
    } else {
        (1..=20).collect()
    };
    let mut smoke_rows = Vec::new();
    for &seed in &seeds {
        let (phys, venv) = tight_smoke(seed);
        let wf = solve(
            &phys,
            &venv,
            BoundKind::Waterfill,
            smoke_budget,
            &[],
            &mut cache,
        );
        let lag = solve(
            &phys,
            &venv,
            BoundKind::Lagrangian,
            smoke_budget,
            &[],
            &mut cache,
        );
        eprintln!(
            "[oracle] smoke seed {seed}: waterfill {:?} ({} nodes) | lagrangian {:?} ({} nodes)",
            wf.status, wf.nodes_expanded, lag.status, lag.nodes_expanded
        );
        smoke_rows.push(SmokeRow {
            seed,
            waterfill: wf,
            lagrangian: lag,
        });
    }
    let waterfill_certified = smoke_rows
        .iter()
        .filter(|r| r.waterfill.status == ExactStatus::Optimal)
        .count();
    let lagrangian_certified = smoke_rows
        .iter()
        .filter(|r| r.lagrangian.status == ExactStatus::Optimal)
        .count();
    let superset = smoke_rows.iter().all(|r| {
        r.waterfill.status != ExactStatus::Optimal || r.lagrangian.status == ExactStatus::Optimal
    });
    let strict_superset = superset && lagrangian_certified > waterfill_certified;
    eprintln!(
        "[oracle] smoke (budget {smoke_budget}): waterfill certifies {waterfill_certified}/{}, \
         lagrangian certifies {lagrangian_certified}/{} (superset={superset}, strict={strict_superset})",
        seeds.len(),
        seeds.len(),
    );
    assert!(
        superset,
        "lagrangian must certify every waterfill-certified seed at the same budget"
    );
    assert!(
        strict_superset,
        "lagrangian must certify strictly more seeds than waterfill at budget {smoke_budget}"
    );

    // Part 2: certified gaps at paper scale.
    let paper_budget: u64 = if quick { 1_500 } else { 20_000 };
    let cluster = ClusterSpec {
        hosts: 20,
        ..ClusterSpec::paper()
    };
    let mut paper_rows = Vec::new();
    for &ratio in &[2.5, 10.0] {
        let scenario = Scenario {
            ratio,
            density: 0.015,
            workload: WorkloadKind::HighLevel,
        };
        // Scan repetitions until HMN lands a witness: the tightest row
        // (ratio 10 ≈ 96% memory utilization) is not mappable on every
        // draw, and the oracle needs a finite incumbent to report a gap.
        let (instance, hmn) = (0..16)
            .find_map(|rep| {
                let instance = instantiate(
                    &cluster,
                    ClusterTopology::Torus2D { rows: 4, cols: 5 },
                    &scenario,
                    rep,
                    2009,
                );
                let mut rng = SmallRng::seed_from_u64(instance.mapper_seed);
                Hmn::new()
                    .map_with_cache(&instance.phys, &instance.venv, &mut rng, &mut cache)
                    .ok()
                    .map(|out| (instance, out))
            })
            .expect("HMN maps at least one repetition of the paper row");
        let witnesses = [hmn.mapping];
        let wf = solve(
            &instance.phys,
            &instance.venv,
            BoundKind::Waterfill,
            paper_budget,
            &witnesses,
            &mut cache,
        );
        let lag = solve(
            &instance.phys,
            &instance.venv,
            BoundKind::Lagrangian,
            paper_budget,
            &witnesses,
            &mut cache,
        );
        eprintln!(
            "[oracle] {} ({} guests): waterfill {:?} lb {:?} gap {:?} | lagrangian {:?} lb {:?} gap {:?}",
            scenario.label(),
            instance.venv.guest_count(),
            wf.status,
            wf.lower_bound,
            wf.gap,
            lag.status,
            lag.lower_bound,
            lag.gap,
        );
        paper_rows.push(PaperRow {
            scenario: scenario.label(),
            guests: instance.venv.guest_count(),
            hosts: cluster.hosts,
            hmn_objective: hmn.objective,
            waterfill: wf,
            lagrangian: lag,
        });
    }
    // The headline acceptance row: at least one ≥ 40-guest instance the
    // water-filling bound leaves Truncated where the Lagrangian either
    // certifies Optimal or reports a strictly tighter explicit gap.
    let headline = paper_rows.iter().any(|r| {
        r.guests >= 40
            && r.waterfill.status == ExactStatus::Truncated
            && (r.lagrangian.status == ExactStatus::Optimal
                || (r.lagrangian.gap.is_some()
                    && r.lagrangian.lower_bound.unwrap_or(f64::NEG_INFINITY)
                        > r.waterfill.lower_bound.unwrap_or(f64::INFINITY) + EPSILON))
    });
    assert!(
        headline,
        "no ≥40-guest Figure-1 row where waterfill truncates and lagrangian tightens: {:?}",
        paper_rows
            .iter()
            .map(|r| (
                r.scenario.clone(),
                r.guests,
                r.waterfill.status,
                r.waterfill.lower_bound,
                r.lagrangian.status,
                r.lagrangian.lower_bound
            ))
            .collect::<Vec<_>>()
    );

    let wall_s = t0.elapsed().as_secs_f64();
    let report = OracleGapReport {
        quick,
        smoke_budget,
        smoke_rows,
        waterfill_certified,
        lagrangian_certified,
        superset,
        strict_superset,
        paper_budget,
        paper_rows,
        wall_s,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_oracle.json", json).expect("write results/BENCH_oracle.json");
    eprintln!("[oracle] report -> results/BENCH_oracle.json ({wall_s:.2}s)");
}
