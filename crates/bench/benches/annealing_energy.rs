//! Micro-benchmark for the delta-evaluation engine: the annealer's
//! proposal loop evaluated the old way (migrate, full O(hosts) Eq. 10
//! recompute + O(links) inter-host bandwidth rescan, revert on reject)
//! vs. the incremental way (`objective_if_migrated` +
//! `inter_bandwidth_delta`, O(1)/O(degree) per proposal, mutation only on
//! accept). Same instance, same seeded proposal stream, same greedy
//! accept rule — only the evaluation strategy differs.
//!
//! Writes `results/BENCH_annealing.json` with per-variant
//! proposals-per-second and the measured speedup; CI's bench-smoke job
//! asserts the file is well-formed and the speedup is at least 10x.
//!
//! Quick mode (`EMUMAP_BENCH_QUICK=1`) shrinks the proposal stream and
//! measurement time so the gate stays fast.

use criterion::{BenchmarkId, Criterion};
use emumap_core::PlacementState;
use emumap_graph::{generators, NodeId};
use emumap_model::objective::population_stddev;
use emumap_model::{
    GuestId, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, PhysicalTopology, StorGb,
    VirtualEnvironment, VmmOverhead,
};
use emumap_workloads::{Distribution, Range, VirtualEnvSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

/// Benchmark scale: 64 hosts, 256 guests (~4 guests/host).
const HOSTS_SIDE: usize = 8;
const GUESTS: usize = 256;

fn build_instance() -> (PhysicalTopology, VirtualEnvironment) {
    let phys = PhysicalTopology::from_shape(
        &generators::torus2d(HOSTS_SIDE, HOSTS_SIDE),
        std::iter::repeat(HostSpec::new(
            Mips(8000.0),
            MemMb::from_gb(8),
            StorGb(4000.0),
        )),
        LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
        VmmOverhead::NONE,
    );
    let spec = VirtualEnvSpec {
        guests: GUESTS,
        density: 0.01,
        mem_mb: Range::new(64.0, 256.0),
        stor_gb: Range::new(10.0, 50.0),
        cpu_mips: Range::new(20.0, 100.0),
        bw_kbps: Range::new(50.0, 500.0),
        lat_ms: Range::new(20.0, 80.0),
        distribution: Distribution::Uniform,
    };
    let venv = spec.generate(&mut SmallRng::seed_from_u64(2009));
    (phys, venv)
}

/// A fixed initial placement (first fitting host, round-robin start) so
/// every benchmark iteration anneals from the same state.
fn initial_placement(phys: &PhysicalTopology, venv: &VirtualEnvironment) -> Vec<(GuestId, NodeId)> {
    let mut state = PlacementState::new(phys, venv);
    let hosts = phys.hosts();
    let mut plan = Vec::with_capacity(venv.guest_count());
    for (i, g) in venv.guest_ids().enumerate() {
        let pick = (0..hosts.len())
            .map(|k| hosts[(i + k) % hosts.len()])
            .find(|&h| state.fits(g, h))
            .expect("benchmark instance must be placeable");
        state.assign(g, pick).expect("fit checked");
        plan.push((g, pick));
    }
    plan
}

/// Bandwidth normalization shared by both variants (the annealer's rule).
fn bw_scale_of(phys: &PhysicalTopology, venv: &VirtualEnvironment) -> f64 {
    let total_bw: f64 = venv.link_ids().map(|l| venv.link(l).bw.value()).sum();
    total_bw / phys.host_count() as f64
}

const BW_WEIGHT: f64 = 0.5;

/// One annealing pass with full recomputation per proposal — the old
/// evaluation strategy, reconstructed over the public API: mutate first,
/// recompute Eq. 10 over the whole residual vector (allocating) plus a
/// full inter-host bandwidth rescan, migrate back on reject.
fn run_full_recompute(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    plan: &[(GuestId, NodeId)],
    proposals: usize,
) -> f64 {
    let mut state = PlacementState::new(phys, venv);
    for &(g, h) in plan {
        state.assign(g, h).expect("plan is feasible");
    }
    let hosts = phys.hosts();
    let bw_scale = bw_scale_of(phys, venv);
    let energy = |state: &PlacementState<'_>| {
        let obj = population_stddev(&state.residual().host_proc_residuals(phys));
        obj + BW_WEIGHT * state.inter_host_bandwidth().value() / bw_scale
    };
    let mut rng = SmallRng::seed_from_u64(42);
    let mut current = energy(&state);
    for _ in 0..proposals {
        let g = GuestId::from_index(rng.gen_range(0..venv.guest_count()));
        let to = hosts[rng.gen_range(0..hosts.len())];
        let from = state.host_of(g).expect("complete");
        if to == from || !state.fits(g, to) {
            continue;
        }
        state.migrate(g, to).expect("fit checked");
        let proposed = energy(&state);
        if proposed <= current {
            current = proposed;
        } else {
            state.migrate(g, from).expect("own slot still fits");
        }
    }
    current
}

/// The same annealing pass through the delta-evaluation engine: O(1)
/// objective probe + O(degree) bandwidth delta, no mutation on reject.
fn run_delta(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    plan: &[(GuestId, NodeId)],
    proposals: usize,
) -> f64 {
    let mut state = PlacementState::new(phys, venv);
    for &(g, h) in plan {
        state.assign(g, h).expect("plan is feasible");
    }
    let hosts = phys.hosts();
    let bw_scale = bw_scale_of(phys, venv);
    let mut rng = SmallRng::seed_from_u64(42);
    let mut bw_inter = state.inter_host_bandwidth().value();
    let mut current = state.objective() + BW_WEIGHT * bw_inter / bw_scale;
    for _ in 0..proposals {
        let g = GuestId::from_index(rng.gen_range(0..venv.guest_count()));
        let to = hosts[rng.gen_range(0..hosts.len())];
        let from = state.host_of(g).expect("complete");
        if to == from || !state.fits(g, to) {
            continue;
        }
        let bw_after = bw_inter + state.inter_bandwidth_delta(g, to).value();
        let proposed = state.objective_if_migrated(g, to) + BW_WEIGHT * bw_after / bw_scale;
        if proposed <= current {
            state.migrate(g, to).expect("fit checked");
            current = proposed;
            bw_inter = bw_after;
        }
    }
    current
}

/// One summary row of `BENCH_annealing.json`.
#[derive(Serialize)]
struct AnnealEntry {
    name: String,
    mean_s: f64,
    min_s: f64,
    samples: usize,
    proposals: usize,
    proposals_per_s: f64,
}

/// The report CI parses: both variants plus the measured speedup.
#[derive(Serialize)]
struct AnnealReport {
    hosts: usize,
    guests: usize,
    entries: Vec<AnnealEntry>,
    speedup_proposals_per_s: f64,
}

fn main() {
    let quick = std::env::var("EMUMAP_BENCH_QUICK").is_ok();
    let proposals: usize = if quick { 2_000 } else { 20_000 };

    let (phys, venv) = build_instance();
    let plan = initial_placement(&phys, &venv);

    let mut criterion = Criterion::default();
    let mut group = criterion.benchmark_group("annealing_energy");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(if quick {
        200
    } else {
        500
    }));
    group.measurement_time(std::time::Duration::from_secs(if quick { 1 } else { 3 }));

    group.bench_with_input(
        BenchmarkId::from_parameter("full_recompute"),
        &proposals,
        |b, &n| b.iter(|| run_full_recompute(&phys, &venv, &plan, n)),
    );
    group.bench_with_input(BenchmarkId::from_parameter("delta"), &proposals, |b, &n| {
        b.iter(|| run_delta(&phys, &venv, &plan, n))
    });
    group.finish();

    let mut entries = Vec::new();
    for (name, summary) in criterion.results() {
        entries.push(AnnealEntry {
            name: name.clone(),
            mean_s: summary.mean_s(),
            min_s: summary.min_s(),
            samples: summary.samples.len(),
            proposals,
            proposals_per_s: proposals as f64 / summary.mean_s(),
        });
    }
    let rate = |suffix: &str| {
        entries
            .iter()
            .find(|e| e.name.ends_with(suffix))
            .map(|e| e.proposals_per_s)
            .expect("both variants ran")
    };
    let report = AnnealReport {
        hosts: HOSTS_SIDE * HOSTS_SIDE,
        guests: GUESTS,
        speedup_proposals_per_s: rate("delta") / rate("full_recompute"),
        entries,
    };

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_annealing.json", json)
        .expect("write results/BENCH_annealing.json");
    eprintln!("[annealing_energy] summaries -> results/BENCH_annealing.json");
    for e in &report.entries {
        eprintln!(
            "[annealing_energy] {}: mean {:.6}s ({} proposals, {:.0} proposals/s)",
            e.name, e.mean_s, e.proposals, e.proposals_per_s
        );
    }
    eprintln!(
        "[annealing_energy] delta-evaluation speedup: {:.1}x proposals/s",
        report.speedup_proposals_per_s
    );
}
