//! Per-stage costs of HMN (§5.2 observes the Networking stage dominates):
//! Hosting, Migration, and Networking benchmarked in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use emumap_core::hosting::{hosting_stage, links_by_descending_bw};
use emumap_core::migration::migration_stage;
use emumap_core::networking::networking_stage;
use emumap_core::PlacementState;
use emumap_workloads::{instantiate, ClusterSpec, Scenario, WorkloadKind};

fn bench_stages(c: &mut Criterion) {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 5.0,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, 0, 2009);
    let links = links_by_descending_bw(&inst.venv);

    let mut group = c.benchmark_group("hmn_stages");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_function("hosting", |b| {
        b.iter(|| {
            let mut st = PlacementState::new(&inst.phys, &inst.venv);
            hosting_stage(&mut st, &links).expect("hostable");
            st.assigned_count()
        })
    });

    group.bench_function("migration", |b| {
        // Set up a hosted state once per iteration batch; migration itself
        // is what we time, but it needs a fresh pre-state each run.
        b.iter_with_setup(
            || {
                let mut st = PlacementState::new(&inst.phys, &inst.venv);
                hosting_stage(&mut st, &links).expect("hostable");
                st
            },
            |mut st| migration_stage(&mut st).migrations,
        )
    });

    group.bench_function("networking", |b| {
        b.iter_with_setup(
            || {
                let mut st = PlacementState::new(&inst.phys, &inst.venv);
                hosting_stage(&mut st, &links).expect("hostable");
                migration_stage(&mut st);
                st
            },
            |mut st| {
                networking_stage(&mut st, &links, &Default::default())
                    .expect("routable")
                    .1
                    .routed_links
            },
        )
    });

    group.finish();
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
