//! Churn benchmark for the `emumap serve` session engine: a seeded
//! arrival/departure trace replayed against a 1024-host fat-tree,
//! measuring sustained admissions per second and the p99 single-embed
//! latency with one warm `MapCache` across the whole stream.
//!
//! Writes `results/BENCH_serve.json`. CI's bench-smoke job runs it in
//! quick mode (`EMUMAP_BENCH_QUICK=1` — same topology, shorter trace)
//! and gates a minimum admissions/s floor plus zero leaked capacity at
//! the end of the stream.

use emumap_core::serve::{ApplyOutcome, Session};
use emumap_core::{Hmn, HmnConfig};
use emumap_graph::generators;
use emumap_model::{
    HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, PhysicalTopology, ResidualState, StorGb,
    VmmOverhead,
};
use emumap_workloads::VirtualEnvSpec;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct ServeReport {
    quick: bool,
    hosts: usize,
    switches: usize,
    /// Requests replayed (applies + removes).
    events: usize,
    admitted: u64,
    rejected: u64,
    removed: u64,
    active_at_end: u64,
    guests_at_end: u64,
    /// Admissions sustained per wall-clock second over the whole replay.
    admissions_per_s: f64,
    /// Median single-`apply` latency, milliseconds.
    p50_embed_ms: f64,
    /// 99th-percentile single-`apply` latency, milliseconds.
    p99_embed_ms: f64,
    wall_s: f64,
    /// Largest residual-capacity gap vs. a from-scratch rebuild of the
    /// surviving tenants — must be exactly zero.
    leak: f64,
}

fn build_phys() -> PhysicalTopology {
    // fat_tree(16): 16^3/4 = 1024 hosts + 320 switches — the ISSUE's
    // 1k-host cluster. 5 ms per hop keeps the 6-hop worst case inside
    // the Table 1 latency floor (30 ms).
    PhysicalTopology::from_shape(
        &generators::fat_tree(16),
        std::iter::repeat(HostSpec::new(
            Mips(8000.0),
            MemMb::from_gb(8),
            StorGb(4000.0),
        )),
        LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
        VmmOverhead::NONE,
    )
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn main() {
    let quick = std::env::var("EMUMAP_BENCH_QUICK").is_ok();
    let t_build = Instant::now();
    let phys = build_phys();
    let fresh = ResidualState::new(&phys);
    eprintln!(
        "[serve] cluster: {} hosts, {} switches (built in {:.2}s)",
        phys.host_count(),
        phys.graph().node_count() - phys.host_count(),
        t_build.elapsed().as_secs_f64(),
    );

    // Fat-trees have enormous equal-cost path multiplicity: with every
    // link at 1 Gbps the bottleneck metric gives A*Prune no guidance and
    // the unpruned frontier grows exponentially, so Pareto dominance
    // pruning is required (same as the scale bench). The expansion cap
    // stays as a safety valve so one unlucky link cannot stall an
    // admission.
    let mapper = Hmn::with_config(HmnConfig {
        prune_dominated: true,
        max_expansions: 50_000,
        ..HmnConfig::default()
    });

    let events = if quick { 120 } else { 500 };
    let mut session = Session::new(phys, 2009);
    // The arrival/departure stream: ~70% arrivals, departures picked
    // uniformly from the active set. At this trace length the 1k-host
    // cluster absorbs every arrival (rejections are exercised by the
    // unit tests and the CI soak on a small cluster); the point here is
    // sustained admission throughput under churn. Everything is driven
    // by one seeded RNG, so the stream — and every response to it — is
    // reproducible.
    let mut stream_rng = SmallRng::seed_from_u64(42);
    let mut active: Vec<String> = Vec::new();
    let mut next_tenant = 0u64;
    let mut embed_ms: Vec<f64> = Vec::new();
    let mut reject_reasons: std::collections::BTreeMap<String, usize> =
        std::collections::BTreeMap::new();
    let t_replay = Instant::now();
    for _ in 0..events {
        let arrive = active.is_empty() || stream_rng.gen_bool(0.7);
        if arrive {
            let id = format!("tenant-{next_tenant}");
            next_tenant += 1;
            let guests = stream_rng.gen_range(8..=24);
            let venv_seed = stream_rng.gen::<u64>();
            let venv = VirtualEnvSpec::high_level(guests, 0.08)
                .generate(&mut SmallRng::seed_from_u64(venv_seed));
            let t = Instant::now();
            let outcome = session.apply(&id, venv, &mapper);
            embed_ms.push(t.elapsed().as_secs_f64() * 1e3);
            match outcome {
                ApplyOutcome::Admitted(_) => active.push(id),
                ApplyOutcome::Rejected { reason } => {
                    *reject_reasons.entry(reason).or_insert(0) += 1;
                }
            }
        } else {
            let idx = stream_rng.gen_range(0..active.len());
            let id = active.swap_remove(idx);
            session.remove(&id).expect("active tenants can be removed");
        }
    }
    let wall_s = t_replay.elapsed().as_secs_f64();
    for (reason, count) in &reject_reasons {
        eprintln!("[serve] rejected x{count}: {reason}");
    }

    let counters = session.counters();
    let leak = {
        let status = session.status();
        status.leak
    };
    // Tear everything down: the residuals must reconcile to pristine.
    for id in active.drain(..) {
        session.remove(&id).expect("teardown");
    }
    assert_eq!(
        session.residual(),
        &fresh,
        "full teardown must restore pristine residuals bit-for-bit"
    );

    embed_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let report = ServeReport {
        quick,
        hosts: session.phys().host_count(),
        switches: session.phys().graph().node_count() - session.phys().host_count(),
        events,
        admitted: counters.admitted,
        rejected: counters.rejected,
        removed: counters.removed,
        active_at_end: counters.active_tenants,
        guests_at_end: counters.placed_guests,
        admissions_per_s: counters.admitted as f64 / wall_s.max(1e-9),
        p50_embed_ms: percentile(&embed_ms, 0.50),
        p99_embed_ms: percentile(&embed_ms, 0.99),
        wall_s,
        leak,
    };
    eprintln!(
        "[serve] {} events in {:.2}s: {} admitted ({:.1}/s), {} rejected, {} removed, p50 {:.1} ms, p99 {:.1} ms, leak {}",
        report.events,
        report.wall_s,
        report.admitted,
        report.admissions_per_s,
        report.rejected,
        report.removed,
        report.p50_embed_ms,
        report.p99_embed_ms,
        report.leak,
    );

    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_serve.json", json).expect("write results/BENCH_serve.json");
    eprintln!("[serve] report -> results/BENCH_serve.json");
}
