//! Micro-benchmarks of the graph substrate: Dijkstra (the `ar[]` tables
//! §5.2 blames for most of the Networking time), A*Prune itself, the naive
//! DFS router, and topology generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emumap_core::{astar_prune, naive_dfs_route, AStarPruneConfig};
use emumap_graph::algo::dijkstra;
use emumap_graph::generators;
use emumap_model::{
    HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, PhysicalTopology, ResidualState, StorGb,
    VmmOverhead,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn paper_phys(shape: &generators::Topology) -> PhysicalTopology {
    PhysicalTopology::from_shape(
        shape,
        std::iter::repeat(HostSpec::new(
            Mips(2000.0),
            MemMb::from_gb(2),
            StorGb(2000.0),
        )),
        LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
        VmmOverhead::NONE,
    )
}

fn bench_graph_algorithms(c: &mut Criterion) {
    let shapes: Vec<(&str, generators::Topology)> = vec![
        ("torus5x8", generators::torus2d(5, 8)),
        ("switched40", generators::switched_cascade(40, 64)),
        ("fat_tree_k4", generators::fat_tree(4)),
    ];

    let mut group = c.benchmark_group("graph_algorithms");
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, shape) in &shapes {
        let phys = paper_phys(shape);
        let residual = ResidualState::new(&phys);
        let src = phys.hosts()[0];
        let dst = *phys.hosts().last().unwrap();

        group.bench_with_input(
            BenchmarkId::new("dijkstra_latency", name),
            &phys,
            |b, phys| {
                b.iter(|| {
                    dijkstra(phys.graph(), dst, |_, l| l.lat.value())
                        .distances()
                        .len()
                })
            },
        );

        let ar: Vec<f64> = dijkstra(phys.graph(), dst, |_, l| l.lat.value())
            .distances()
            .to_vec();
        group.bench_with_input(BenchmarkId::new("astar_prune", name), &phys, |b, phys| {
            b.iter(|| {
                astar_prune(
                    phys,
                    &residual,
                    src,
                    dst,
                    Kbps(100.0),
                    Millis(60.0),
                    &ar,
                    &AStarPruneConfig::default(),
                )
                .expect("path exists")
                .0
                .len()
            })
        });

        let hops = emumap_core::hop_distances(&phys, dst);
        group.bench_with_input(BenchmarkId::new("naive_dfs", name), &phys, |b, phys| {
            let mut rng = SmallRng::seed_from_u64(1);
            b.iter(|| {
                naive_dfs_route(
                    phys,
                    &residual,
                    src,
                    dst,
                    Kbps(100.0),
                    Millis(1e9),
                    &hops,
                    &mut rng,
                )
                .expect("path exists at relaxed latency")
                .len()
            })
        });
    }

    group.bench_function("generate_random_connected_2000_d0.01", |b| {
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| generators::random_connected(2000, 0.01, &mut rng).edge_count())
    });
    group.finish();
}

criterion_group!(benches, bench_graph_algorithms);
criterion_main!(benches);
