//! Criterion counterpart of Figure 1: HMN mapping time as the number of
//! virtual links grows (low-level workload, torus cluster).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use emumap_bench::runner::{run_one, MapperKind};
use emumap_workloads::{instantiate, ClusterSpec, Scenario, WorkloadKind};

fn bench_links_sweep(c: &mut Criterion) {
    let cluster = ClusterSpec::paper();
    let mut group = c.benchmark_group("figure1_hmn_vs_links");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for ratio in [7.5, 20.0, 30.0] {
        let workload = if ratio >= 20.0 {
            WorkloadKind::LowLevel
        } else {
            WorkloadKind::HighLevel
        };
        let density = if ratio >= 20.0 { 0.01 } else { 0.02 };
        let scenario = Scenario {
            ratio,
            density,
            workload,
        };
        let inst = instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, 0, 2009);
        let links = inst.venv.link_count();
        group.throughput(Throughput::Elements(links as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{links}_links")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    run_one(
                        &inst.phys,
                        &inst.venv,
                        MapperKind::HMN,
                        inst.mapper_seed,
                        200,
                        false,
                    )
                    .map(|m| m.routed_links)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_links_sweep);
criterion_main!(benches);
