//! Ablation: the Migration stage on vs. off — how much of HMN's objective
//! advantage (and time) comes from the load-balancing pass. The paper
//! predicts its value shrinks as the guest/host ratio rises ("more guests
//! reduce the chance of migrations").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emumap_core::{Hmn, HmnConfig, Mapper, MigrationPolicy};
use emumap_workloads::{instantiate, ClusterSpec, Scenario, WorkloadKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_migration_ablation(c: &mut Criterion) {
    let cluster = ClusterSpec::paper();
    let with = Hmn::new();
    let without = Hmn::with_config(HmnConfig {
        migration: MigrationPolicy::Off,
        ..Default::default()
    });
    let exhaustive = Hmn::with_config(HmnConfig {
        migration: MigrationPolicy::Exhaustive,
        ..Default::default()
    });

    // Quality report across ratios: migration's benefit should shrink as
    // ratio grows.
    eprintln!("[ablation_migration] objective with vs. without migration:");
    for ratio in [2.5, 5.0, 10.0] {
        let scenario = Scenario {
            ratio,
            density: 0.02,
            workload: WorkloadKind::HighLevel,
        };
        let inst = instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, 0, 2009);
        let mut rng = SmallRng::seed_from_u64(1);
        let a = with.map(&inst.phys, &inst.venv, &mut rng);
        let b = without.map(&inst.phys, &inst.venv, &mut rng);
        let c = exhaustive.map(&inst.phys, &inst.venv, &mut rng);
        if let (Ok(a), Ok(b), Ok(c)) = (a, b, c) {
            eprintln!(
                "  {ratio:>4}:1  paper {:>8.1} ({} moves)   off {:>8.1}   exhaustive {:>8.1} ({} moves)",
                a.objective, a.stats.migrations, b.objective, c.objective, c.stats.migrations,
            );
        }
    }

    let scenario = Scenario {
        ratio: 5.0,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, 0, 2009);
    let mut group = c.benchmark_group("ablation_migration");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, mapper) in [
        ("paper_migration", with),
        ("without_migration", without),
        ("exhaustive_migration", exhaustive),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                mapper
                    .map(&inst.phys, &inst.venv, &mut rng)
                    .map(|o| o.objective)
                    .ok()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_migration_ablation);
criterion_main!(benches);
