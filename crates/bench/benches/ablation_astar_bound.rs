//! Ablation: A*Prune's admissible latency lower bound (the Dijkstra `ar[]`
//! table of Algorithm 1) on vs. off — how much pruning the bound buys in
//! expanded partial paths and wall-clock.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emumap_core::{Hmn, HmnConfig, Mapper};
use emumap_workloads::{instantiate, ClusterSpec, Scenario, WorkloadKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_astar_bound(c: &mut Criterion) {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 5.0,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, 0, 2009);

    let with = Hmn::new();
    let without = Hmn::with_config(HmnConfig {
        use_latency_lower_bound: false,
        ..Default::default()
    });

    for (name, mapper) in [
        ("with lower bound", &with),
        ("without lower bound", &without),
    ] {
        let mut rng = SmallRng::seed_from_u64(1);
        match mapper.map(&inst.phys, &inst.venv, &mut rng) {
            Ok(out) => eprintln!(
                "[ablation_astar_bound] {name}: {} partial paths expanded, networking {:?}",
                out.stats.astar_expansions, out.stats.networking_time
            ),
            Err(e) => eprintln!("[ablation_astar_bound] {name}: FAILED ({e})"),
        }
    }

    let mut group = c.benchmark_group("ablation_astar_bound");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, mapper) in [("with_bound", with), ("without_bound", without)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &inst, |b, inst| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                mapper
                    .map(&inst.phys, &inst.venv, &mut rng)
                    .map(|o| o.stats.astar_expansions)
                    .ok()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_astar_bound);
criterion_main!(benches);
