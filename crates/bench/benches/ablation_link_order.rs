//! Ablation: the descending-bandwidth link ordering used by Hosting and
//! Networking ("the assignment starts from guests whose links have
//! high-bandwidth") vs. ascending and random orders.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emumap_core::{Hmn, HmnConfig, LinkOrder, Mapper};
use emumap_workloads::{instantiate, ClusterSpec, Scenario, WorkloadKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_link_order(c: &mut Criterion) {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 5.0,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, 0, 2009);

    let orders = [
        ("descending_bw", LinkOrder::DescendingBandwidth),
        ("ascending_bw", LinkOrder::AscendingBandwidth),
        ("random", LinkOrder::Random),
    ];

    for (name, order) in orders {
        let mapper = Hmn::with_config(HmnConfig {
            link_order: order,
            ..Default::default()
        });
        let mut rng = SmallRng::seed_from_u64(1);
        match mapper.map(&inst.phys, &inst.venv, &mut rng) {
            Ok(out) => eprintln!(
                "[ablation_link_order] {name}: ok, objective {:.1}, intra-host links {}",
                out.objective, out.stats.intra_host_links
            ),
            Err(e) => eprintln!("[ablation_link_order] {name}: FAILED ({e})"),
        }
    }

    let mut group = c.benchmark_group("ablation_link_order");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, order) in orders {
        group.bench_with_input(BenchmarkId::from_parameter(name), &inst, |b, inst| {
            let mapper = Hmn::with_config(HmnConfig {
                link_order: order,
                ..Default::default()
            });
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                mapper
                    .map(&inst.phys, &inst.venv, &mut rng)
                    .map(|o| o.objective)
                    .ok()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_link_order);
criterion_main!(benches);
