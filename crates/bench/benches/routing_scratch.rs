//! Micro-benchmark for the allocation-free routing hot paths: the same
//! A*Prune queries through the allocating entry point (`astar_prune`,
//! which rebuilds the CSR view and scratch buffers per call) vs. the
//! reusable one (`astar_prune_with` over a shared CSR + warm
//! `RouteScratch`), plus the end-to-end HMN map with a cold vs. warm
//! `MapCache` (cross-trial `ar[]` table reuse).
//!
//! Uses a hand-written `main` instead of `criterion_main!` so the sample
//! summaries stay readable afterwards and can be written to
//! `results/BENCH_routing.json` via `report::write_bench_json`.

use criterion::{BenchmarkId, Criterion};
use emumap_bench::parallel::ParallelRunner;
use emumap_bench::report::{write_bench_json, BenchEntry, PhaseBreakdown};
use emumap_core::{
    astar_prune, astar_prune_with, AStarPruneConfig, ArTables, Hmn, MapCache, Mapper, RouteScratch,
};
use emumap_model::{Kbps, Millis, ResidualState};
use emumap_trace::{NullSink, Tracer};
use emumap_workloads::{instantiate, ClusterSpec, Scenario, WorkloadKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn bench_routing_scratch(c: &mut Criterion) {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 5.0,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, 0, 2009);
    let phys = &inst.phys;
    let residual = ResidualState::new(phys);
    let hosts = phys.hosts().to_vec();

    // A fixed batch of host-pair queries at several strides around the
    // torus, so path lengths vary. Both variants share the same `ar[]`
    // tables (table reuse is what the end-to-end pair measures); this
    // pair isolates the per-search allocation cost.
    let mut tables = ArTables::new();
    tables.prepare(phys);
    let mut queries: Vec<(usize, usize)> = Vec::new();
    for stride in [1usize, 3, 7, 13] {
        for i in 0..hosts.len() {
            queries.push((i, (i + stride) % hosts.len()));
        }
    }
    let ar: Vec<Vec<f64>> = hosts
        .iter()
        .map(|&h| tables.ar_and_csr(phys, h).0.to_vec())
        .collect();
    let config = AStarPruneConfig::default();
    let demand = Kbps::from_mbps(1.0);
    let bound = Millis(1_000.0);

    let mut group = c.benchmark_group("routing_scratch");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));

    group.bench_with_input(
        BenchmarkId::from_parameter("astar_fresh_alloc"),
        &queries,
        |b, queries| {
            b.iter(|| {
                let mut routed = 0usize;
                for &(i, j) in queries {
                    let found = astar_prune(
                        phys, &residual, hosts[i], hosts[j], demand, bound, &ar[j], &config,
                    );
                    routed += usize::from(found.is_some());
                }
                routed
            })
        },
    );

    let csr = phys.graph().to_csr();
    let mut scratch = RouteScratch::new();
    group.bench_with_input(
        BenchmarkId::from_parameter("astar_reused_scratch"),
        &queries,
        |b, queries| {
            b.iter(|| {
                let mut routed = 0usize;
                for &(i, j) in queries {
                    let found = astar_prune_with(
                        phys,
                        &residual,
                        hosts[i],
                        hosts[j],
                        demand,
                        bound,
                        &ar[j],
                        &config,
                        &csr,
                        &mut scratch,
                    );
                    routed += usize::from(found.is_some());
                }
                routed
            })
        },
    );

    // End-to-end HMN trial: cold cache per map vs. one warm cache, the
    // shape the parallel trial engine runs per worker.
    let mapper = Hmn::new();
    group.bench_with_input(
        BenchmarkId::from_parameter("hmn_map_cold_cache"),
        &inst,
        |b, inst| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                let mut cache = MapCache::new();
                mapper
                    .map_with_cache(&inst.phys, &inst.venv, &mut rng, &mut cache)
                    .map(|o| o.objective)
                    .ok()
            })
        },
    );

    let mut warm = MapCache::new();
    let mut rng = SmallRng::seed_from_u64(1);
    let _ = mapper.map_with_cache(&inst.phys, &inst.venv, &mut rng, &mut warm);
    group.bench_with_input(
        BenchmarkId::from_parameter("hmn_map_warm_cache"),
        &inst,
        |b, inst| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                mapper
                    .map_with_cache(&inst.phys, &inst.venv, &mut rng, &mut warm)
                    .map(|o| o.objective)
                    .ok()
            })
        },
    );

    // Same warm map with an enabled tracer discarding into a NullSink:
    // the worst-case tracing tax (every event payload is constructed and
    // immediately dropped). Compare against `hmn_map_warm_cache`, whose
    // disabled tracer never even builds the events.
    let mut warm_null = MapCache::new();
    warm_null.trace = Tracer::new(Box::new(NullSink));
    let mut rng = SmallRng::seed_from_u64(1);
    let _ = mapper.map_with_cache(&inst.phys, &inst.venv, &mut rng, &mut warm_null);
    group.bench_with_input(
        BenchmarkId::from_parameter("hmn_map_warm_null_sink"),
        &inst,
        |b, inst| {
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                mapper
                    .map_with_cache(&inst.phys, &inst.venv, &mut rng, &mut warm_null)
                    .map(|o| o.objective)
                    .ok()
            })
        },
    );

    group.finish();
}

/// Runs a small HMN trial batch through the phase-tracking runner and
/// summarizes it as one entry with a per-phase time breakdown.
fn phase_breakdown_entry() -> BenchEntry {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 5.0,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, 0, 2009);
    let mapper = Hmn::new();
    let trials: Vec<u64> = (0..8).collect();
    let n = trials.len();
    let runner = ParallelRunner::new(0);
    let (times, totals) = runner.run_tracked(trials, |seed, cache| {
        let mut rng = SmallRng::seed_from_u64(seed);
        mapper
            .map_with_cache(&inst.phys, &inst.venv, &mut rng, cache)
            .map(|o| o.stats.total_time.as_secs_f64())
            .unwrap_or(0.0)
    });
    BenchEntry {
        name: "routing_scratch/hmn_phase_breakdown".to_string(),
        mean_s: times.iter().sum::<f64>() / n as f64,
        min_s: times.iter().copied().fold(f64::INFINITY, f64::min),
        samples: n,
        phases: Some(PhaseBreakdown {
            hosting_s: totals.hosting_s() / n as f64,
            migration_s: totals.migration_s() / n as f64,
            networking_s: totals.networking_s() / n as f64,
        }),
    }
}

fn main() {
    let mut criterion = Criterion::default();
    bench_routing_scratch(&mut criterion);

    let mut entries: Vec<BenchEntry> = criterion
        .results()
        .iter()
        .map(|(name, summary)| BenchEntry {
            name: name.clone(),
            mean_s: summary.mean_s(),
            min_s: summary.min_s(),
            samples: summary.samples.len(),
            phases: None,
        })
        .collect();
    entries.push(phase_breakdown_entry());
    write_bench_json("results/BENCH_routing.json", &entries)
        .expect("write results/BENCH_routing.json");
    eprintln!("[routing_scratch] summaries -> results/BENCH_routing.json");
    for e in &entries {
        eprintln!(
            "[routing_scratch] {}: mean {:.6}s min {:.6}s (n={})",
            e.name, e.mean_s, e.min_s, e.samples
        );
        if let Some(p) = &e.phases {
            eprintln!(
                "[routing_scratch]   phases: hosting {:.6}s, migration {:.6}s, networking {:.6}s",
                p.hosting_s, p.migration_s, p.networking_s
            );
        }
    }
}
