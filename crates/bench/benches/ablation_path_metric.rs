//! Ablation: the Networking stage's path metric — the paper's bottleneck
//! bandwidth ("keep the links with the largest amount of bandwidth
//! available to map the rest of the links") vs. classic hop count.
//!
//! Besides the timing, the setup prints the quality difference once:
//! routing-failure behaviour and post-mapping residual-bandwidth spread
//! under both metrics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emumap_core::{Hmn, HmnConfig, Mapper, PathMetric};
use emumap_workloads::{instantiate, ClusterSpec, Scenario, WorkloadKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn config_for(metric: PathMetric) -> HmnConfig {
    HmnConfig {
        path_metric: metric,
        ..Default::default()
    }
}

fn bench_path_metric(c: &mut Criterion) {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 5.0,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let inst = instantiate(&cluster, ClusterSpec::paper_torus(), &scenario, 0, 2009);

    // One-shot quality report.
    for (name, metric) in [
        ("bottleneck-bw (paper)", PathMetric::BottleneckBandwidth),
        ("hop-count (ablation)", PathMetric::HopCount),
    ] {
        let mut rng = SmallRng::seed_from_u64(1);
        match Hmn::with_config(config_for(metric)).map(&inst.phys, &inst.venv, &mut rng) {
            Ok(out) => eprintln!(
                "[ablation_path_metric] {name}: ok, objective {:.1}, {} expansions",
                out.objective, out.stats.astar_expansions
            ),
            Err(e) => eprintln!("[ablation_path_metric] {name}: FAILED ({e})"),
        }
    }

    let mut group = c.benchmark_group("ablation_path_metric");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (name, metric) in [
        ("bottleneck_bw", PathMetric::BottleneckBandwidth),
        ("hop_count", PathMetric::HopCount),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &inst, |b, inst| {
            let mapper = Hmn::with_config(config_for(metric));
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(1);
                mapper
                    .map(&inst.phys, &inst.venv, &mut rng)
                    .map(|o| o.objective)
                    .ok()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_path_metric);
criterion_main!(benches);
