//! Criterion counterpart of Table 3: mapping time per heuristic on both
//! clusters, at a criterion-friendly instance size (2.5:1, density 0.02 —
//! the first table row).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use emumap_bench::runner::{run_one, MapperKind};
use emumap_workloads::{instantiate, ClusterSpec, ClusterTopology, Scenario, WorkloadKind};

fn bench_mapping_time(c: &mut Criterion) {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 2.5,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let topologies: [(&str, ClusterTopology); 2] = [
        ("torus", ClusterSpec::paper_torus()),
        ("switched", ClusterSpec::paper_switched()),
    ];

    let mut group = c.benchmark_group("table3_mapping_time");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (topo_name, topo) in topologies {
        let inst = instantiate(&cluster, topo, &scenario, 0, 2009);
        for kind in MapperKind::ALL {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), topo_name),
                &inst,
                |b, inst| {
                    b.iter(|| {
                        // The retrying baselines may legitimately fail on a
                        // given draw (Table 2's failure counts); time the
                        // attempt either way.
                        run_one(&inst.phys, &inst.venv, kind, inst.mapper_seed, 200, false)
                            .map(|m| m.routed_links)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_mapping_time);
criterion_main!(benches);
