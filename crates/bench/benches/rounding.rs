//! Randomized-rounding mapper benchmark: LP-relaxation quality and
//! end-to-end cost of `--mapper rr` on the paper's testbed.
//!
//! Two measurements, both seeded and reproducible:
//!
//! 1. **Feasibility + wall-clock on the Figure 1 grid** — the high-level
//!    scenario rows (guest:host ratios × link densities) on both paper
//!    clusters, mapped by RR through `run_grid`. The share of repetitions
//!    that produce a valid mapping is the feasibility rate CI gates at
//!    ≥ 90%: rounding a fractional solution is only useful if the
//!    repair stages almost always land it.
//! 2. **Empirical approximation ratio on the oracle smoke family** — RR
//!    (and HMN, for context) against the certified optimum of
//!    `oracle_smoke` instances via the differential cross-checker. CI
//!    gates the RR mean at ≤ 2.0× optimal.
//!
//! Writes `results/BENCH_rounding.json`. Quick mode
//! (`EMUMAP_BENCH_QUICK=1`) thins the grid and the seed set but keeps
//! both clusters and the tightest-density row.

use emumap_bench::crosscheck::{CrossCheck, TrialWitness};
use emumap_bench::runner::{run_grid, MapperKind, RunConfig};
use emumap_core::{ExactStatus, Hmn, MapCache, Mapper, RandomizedRounding};
use emumap_workloads::{oracle_smoke, Scenario, WorkloadKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

/// One grid cell's summary.
#[derive(Serialize)]
struct CellSummary {
    scenario: String,
    cluster: String,
    successes: usize,
    failures: usize,
    mean_objective: Option<f64>,
    mean_map_time_s: Option<f64>,
}

/// One oracle-certified instance's ratios.
#[derive(Serialize)]
struct RatioSample {
    seed: u64,
    status: String,
    rr_ratio: Option<f64>,
    hmn_ratio: Option<f64>,
}

#[derive(Serialize)]
struct RoundingReport {
    quick: bool,
    reps: u32,
    grid_trials: usize,
    grid_successes: usize,
    feasibility_rate: f64,
    grid_wall_s: f64,
    cells: Vec<CellSummary>,
    ratio_seeds: usize,
    ratio_certified: usize,
    rr_mean_ratio: Option<f64>,
    rr_max_ratio: Option<f64>,
    hmn_mean_ratio: Option<f64>,
    ratio_wall_s: f64,
    samples: Vec<RatioSample>,
}

fn figure1_grid(quick: bool) -> Vec<Scenario> {
    // The Figure 1 rows: high-level workloads across the paper's ratio
    // sweep. Quick mode keeps the tightest density (0.015 generates the
    // most virtual links per guest pair drawn) and the full ratio sweep.
    let densities: &[f64] = if quick {
        &[0.015]
    } else {
        &[0.015, 0.02, 0.025]
    };
    let mut rows = Vec::new();
    for &density in densities {
        for &ratio in &[2.5, 5.0, 7.5, 10.0] {
            rows.push(Scenario {
                ratio,
                density,
                workload: WorkloadKind::HighLevel,
            });
        }
    }
    rows
}

fn mean(xs: &[f64]) -> Option<f64> {
    (!xs.is_empty()).then(|| xs.iter().sum::<f64>() / xs.len() as f64)
}

fn main() {
    let quick = std::env::var("EMUMAP_BENCH_QUICK").is_ok();

    // Part 1: feasibility and wall-clock over the Figure 1 grid.
    let scenarios = figure1_grid(quick);
    let reps = if quick { 3 } else { 10 };
    let config = RunConfig {
        reps,
        ..Default::default()
    };
    let t_grid = Instant::now();
    let cells = run_grid(&scenarios, &[MapperKind::RR], &config);
    let grid_wall_s = t_grid.elapsed().as_secs_f64();

    let grid_successes: usize = cells.iter().map(|c| c.successes.len()).sum();
    let grid_trials: usize = cells.iter().map(|c| c.successes.len() + c.failures).sum();
    let feasibility_rate = grid_successes as f64 / grid_trials.max(1) as f64;
    let cell_summaries: Vec<CellSummary> = cells
        .iter()
        .map(|c| CellSummary {
            scenario: c.scenario.clone(),
            cluster: c.cluster.label().to_string(),
            successes: c.successes.len(),
            failures: c.failures,
            mean_objective: c.mean_objective(),
            mean_map_time_s: c.mean_map_time(),
        })
        .collect();
    eprintln!(
        "[rounding] grid: {grid_successes}/{grid_trials} feasible ({:.1}%) in {grid_wall_s:.2}s",
        100.0 * feasibility_rate
    );

    // Part 2: approximation ratio against the certified optimum.
    let seeds: Vec<u64> = if quick {
        (1..=6).collect()
    } else {
        (1..=20).collect()
    };
    let check = CrossCheck::default();
    let mut cache = MapCache::new();
    let mut samples = Vec::new();
    let mut rr_ratios = Vec::new();
    let mut hmn_ratios = Vec::new();
    let t_ratio = Instant::now();
    for &seed in &seeds {
        let (phys, venv) = oracle_smoke(seed);
        let mut trials = Vec::new();
        for mapper in [
            Box::new(RandomizedRounding::new()) as Box<dyn Mapper>,
            Box::new(Hmn::new()),
        ] {
            let mut rng = SmallRng::seed_from_u64(seed);
            if let Ok(out) = mapper.map_with_cache(&phys, &venv, &mut rng, &mut cache) {
                trials.push(TrialWitness {
                    mapper: mapper.name().to_string(),
                    objective: out.objective,
                    mapping: out.mapping,
                });
            }
        }
        let report = check.certify(&phys, &venv, &trials, &mut cache);
        assert!(
            report.ok(),
            "seed {seed}: differential disagreement: {:?}",
            report.disagreements
        );
        let rr = report.mean_ratio("RR");
        let hmn = report.mean_ratio("HMN");
        if let Some(r) = rr {
            rr_ratios.push(r);
        }
        if let Some(r) = hmn {
            hmn_ratios.push(r);
        }
        samples.push(RatioSample {
            seed,
            status: format!("{:?}", report.outcome.status),
            rr_ratio: rr,
            hmn_ratio: hmn,
        });
        if report.outcome.status != ExactStatus::Optimal {
            eprintln!(
                "[rounding] seed {seed}: oracle {:?}, no ratio",
                report.outcome.status
            );
        }
    }
    let ratio_wall_s = t_ratio.elapsed().as_secs_f64();
    let ratio_certified = rr_ratios.len();
    let rr_mean_ratio = mean(&rr_ratios);
    let rr_max_ratio = rr_ratios
        .iter()
        .copied()
        .fold(None, |m: Option<f64>, r| Some(m.map_or(r, |m| m.max(r))));
    let hmn_mean_ratio = mean(&hmn_ratios);
    eprintln!(
        "[rounding] ratio: {ratio_certified}/{} certified, rr mean {:?} max {:?}, hmn mean {:?} ({ratio_wall_s:.2}s)",
        seeds.len(),
        rr_mean_ratio,
        rr_max_ratio,
        hmn_mean_ratio,
    );

    let report = RoundingReport {
        quick,
        reps,
        grid_trials,
        grid_successes,
        feasibility_rate,
        grid_wall_s,
        cells: cell_summaries,
        ratio_seeds: seeds.len(),
        ratio_certified,
        rr_mean_ratio,
        rr_max_ratio,
        hmn_mean_ratio,
        ratio_wall_s,
        samples,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::create_dir_all("results").expect("create results/");
    std::fs::write("results/BENCH_rounding.json", json).expect("write results/BENCH_rounding.json");
    eprintln!("[rounding] report -> results/BENCH_rounding.json");
}
