//! Minimal flag parsing shared by the harness binaries (no CLI crate
//! needed for four numeric flags).

use crate::runner::RunConfig;

/// Common harness options.
#[derive(Clone, Copy, Debug)]
pub struct HarnessArgs {
    /// Runner configuration assembled from the flags.
    pub config: RunConfig,
    /// `--paper` requests full paper fidelity (30 reps).
    pub paper_fidelity: bool,
}

/// Parses `--reps N`, `--seed S`, `--attempts A`, `--threads T`,
/// `--paper` from `std::env::args`. Unknown flags abort with usage help.
pub fn parse_args(binary: &str, purpose: &str) -> HarnessArgs {
    let mut config = RunConfig::default();
    let mut paper_fidelity = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> u64 {
            args.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| die(binary, purpose, &format!("{name} needs a number")))
        };
        match arg.as_str() {
            "--reps" => config.reps = take("--reps") as u32,
            "--seed" => config.seed = take("--seed"),
            "--attempts" => config.max_attempts = take("--attempts") as usize,
            "--threads" => config.threads = take("--threads") as usize,
            "--paper" => {
                paper_fidelity = true;
                config.reps = 30;
            }
            "--help" | "-h" => die(binary, purpose, ""),
            other => die(binary, purpose, &format!("unknown flag {other}")),
        }
    }
    HarnessArgs {
        config,
        paper_fidelity,
    }
}

fn die(binary: &str, purpose: &str, problem: &str) -> ! {
    if !problem.is_empty() {
        eprintln!("error: {problem}\n");
    }
    eprintln!(
        "{binary} — {purpose}\n\n\
         usage: cargo run --release -p emumap-bench --bin {binary} [flags]\n\
         \x20 --reps N       repetitions per scenario cell (default 5; paper: 30)\n\
         \x20 --seed S       base seed (default 2009)\n\
         \x20 --attempts A   baseline retry budget (default 200; paper: 100000)\n\
         \x20 --threads T    worker threads (default: all cores)\n\
         \x20 --paper        30 reps (full paper protocol)"
    );
    std::process::exit(if problem.is_empty() { 0 } else { 2 });
}
