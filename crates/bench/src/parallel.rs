//! Re-export of the deterministic work-fanning engine, which moved to
//! `emumap_core::parallel` so mappers themselves (notably the
//! parallel-tempering annealer) can fan replicas across the same pool the
//! experiment grids use. Import paths through `emumap_bench::parallel`
//! keep working.

pub use emumap_core::parallel::{ParallelRunner, PhaseTotals};
