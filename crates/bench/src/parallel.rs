//! A generic deterministic work-fanning engine for independent trials.
//!
//! The experiment grids (Tables 2–3, Figure 1, the CLI `batch` command)
//! all share the same shape: N independent trials, each a pure function of
//! its seeds, whose results are aggregated afterwards. [`ParallelRunner`]
//! fans such trials across a crossbeam scoped-thread pool and returns the
//! results **in input order**, so aggregation code is identical for 1 and
//! 64 threads.
//!
//! Each worker owns one warm [`MapCache`] that it passes to every trial it
//! executes — this is what makes the pool faster than `run per trial in a
//! fresh thread`, not just parallel: the topology Dijkstra tables and the
//! routing scratch buffers amortize across every trial a worker touches.
//! Because the cache is semantically invisible (see `emumap_core::cache`),
//! trial results are bit-identical to a sequential run with any cache
//! sharing, which the determinism suite asserts.

use crossbeam::queue::SegQueue;
use emumap_core::MapCache;
use parking_lot::Mutex;

/// A fixed-size worker pool executing independent trials in input order.
#[derive(Clone, Copy, Debug)]
pub struct ParallelRunner {
    threads: usize,
}

impl ParallelRunner {
    /// A runner with `threads` workers; `0` means one per available core.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        };
        ParallelRunner { threads }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` once per item, fanning across the pool, and returns the
    /// results in the order of `items`.
    ///
    /// `f` receives the worker's private warm [`MapCache`]; it must be a
    /// pure function of the item (modulo the cache, which must not affect
    /// results), so the output is independent of the thread count and of
    /// which worker picked up which item.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T, &mut MapCache) -> R + Sync,
    {
        let n = items.len();
        let work: SegQueue<(usize, T)> = SegQueue::new();
        for pair in items.into_iter().enumerate() {
            work.push(pair);
        }
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

        crossbeam::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|_| {
                    let mut cache = MapCache::new();
                    while let Some((idx, item)) = work.pop() {
                        let r = f(item, &mut cache);
                        *results[idx].lock() = Some(r);
                    }
                });
            }
        })
        .expect("worker thread panicked");

        results
            .into_iter()
            .map(|m| m.into_inner().expect("every item was executed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let runner = ParallelRunner::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = runner.run(items, |i, _| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_resolves_to_available_cores() {
        let runner = ParallelRunner::new(0);
        assert!(runner.threads() >= 1);
        let out = runner.run(vec![1, 2, 3], |i, _| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let runner = ParallelRunner::new(2);
        let out: Vec<i32> = runner.run(Vec::<i32>::new(), |i, _| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let runner = ParallelRunner::new(8);
        let out = runner.run(vec![7], |i, _| i);
        assert_eq!(out, vec![7]);
    }
}
