//! Differential cross-checking of heuristic trials against the exact
//! branch-and-bound oracle.
//!
//! A batch grid produces, per instance, a set of heuristic mappings. On
//! instances small enough for the oracle ([`CrossCheck::applies`]), those
//! mappings become the oracle's *witnesses* and the oracle's verdict
//! becomes a certificate the trial results must agree with:
//!
//! 1. every successful mapping must pass `validate_mapping` (Eqs. 1–9);
//! 2. the oracle must not report infeasible when any heuristic succeeded;
//! 3. no heuristic objective may undercut the certified lower bound.
//!
//! Any disagreement is a bug in either the heuristic, the validator, or
//! the oracle — exactly the class of defect differential testing exists
//! to catch. The check is wired into `emumap batch --exact-check N`.

use emumap_core::exact::EPSILON;
use emumap_core::{solve_exact_with, ExactConfig, ExactOutcome, ExactStatus, MapCache};
use emumap_model::{validate_mapping, Mapping, PhysicalTopology, VirtualEnvironment};
use serde::{Deserialize, Serialize};

/// A heuristic trial result offered for certification: the mapper's name
/// (for disagreement messages), its Eq. 10 objective, and its mapping.
#[derive(Clone, Debug)]
pub struct TrialWitness {
    /// Mapper name ("HMN", "SA", ...).
    pub mapper: String,
    /// The objective the harness recorded for the mapping.
    pub objective: f64,
    /// The mapping itself.
    pub mapping: Mapping,
}

/// Size-gated oracle cross-check for batch grids.
#[derive(Clone, Copy, Debug)]
pub struct CrossCheck {
    /// Only instances with at most this many guests are cross-checked
    /// (the oracle is exponential in the guest count).
    pub max_guests: usize,
    /// Oracle configuration.
    pub config: ExactConfig,
}

impl Default for CrossCheck {
    fn default() -> Self {
        CrossCheck {
            max_guests: 10,
            config: ExactConfig::default(),
        }
    }
}

/// The outcome of certifying one instance's trials.
#[derive(Debug)]
pub struct CrossCheckReport {
    /// The oracle's verdict (with the trials as witnesses).
    pub outcome: ExactOutcome,
    /// Human-readable disagreements; empty means the instance certifies.
    pub disagreements: Vec<String>,
    /// Empirical approximation ratios — one `(mapper, objective ÷
    /// certified optimum)` pair per trial, in trial order. Populated only
    /// when the oracle proved [`ExactStatus::Optimal`]; a zero-objective
    /// optimum (perfect balance) yields ratio 1.0 for trials that also
    /// reach zero and `f64::INFINITY` otherwise.
    pub ratios: Vec<(String, f64)>,
    /// Trials whose objective entered the ratio population (all of them
    /// when the oracle proved Optimal, none otherwise).
    pub certified_trials: usize,
    /// Trials *silently excluded* from the ratios because the oracle
    /// truncated. Reported so a Truncated-heavy run cannot masquerade as
    /// a well-certified one.
    pub truncated_trials: usize,
}

impl CrossCheckReport {
    /// `true` when every trial agreed with the oracle.
    pub fn ok(&self) -> bool {
        self.disagreements.is_empty()
    }

    /// Mean approximation ratio of the named mapper over this report's
    /// certified trials (`None` when nothing certified for it).
    pub fn mean_ratio(&self, mapper: &str) -> Option<f64> {
        let of: Vec<f64> = self
            .ratios
            .iter()
            .filter(|(m, _)| m == mapper)
            .map(|&(_, r)| r)
            .collect();
        (!of.is_empty()).then(|| of.iter().sum::<f64>() / of.len() as f64)
    }
}

impl CrossCheck {
    /// A cross-check with the given guest-count cutoff.
    pub fn new(max_guests: usize) -> Self {
        CrossCheck {
            max_guests,
            ..Default::default()
        }
    }

    /// Whether this instance is small enough to certify.
    pub fn applies(&self, venv: &VirtualEnvironment) -> bool {
        venv.guest_count() <= self.max_guests
    }

    /// Runs the oracle with `trials` as witnesses and checks the three
    /// differential invariants. Call only when [`applies`](Self::applies).
    pub fn certify(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        trials: &[TrialWitness],
        cache: &mut MapCache,
    ) -> CrossCheckReport {
        let mut disagreements = Vec::new();

        // Invariant 1: every accepted mapping validates.
        for t in trials {
            if let Err(violations) = validate_mapping(phys, venv, &t.mapping) {
                for v in violations {
                    disagreements.push(format!("{}: invalid mapping: {v}", t.mapper));
                }
            }
        }

        let witnesses: Vec<Mapping> = trials.iter().map(|t| t.mapping.clone()).collect();
        let outcome = solve_exact_with(phys, venv, &self.config, cache, &witnesses);

        // Invariant 2: a success refutes infeasibility. (Structural when
        // the witness validated — so a hit here doubles as a validator /
        // oracle disagreement.)
        if outcome.status == ExactStatus::Infeasible && !trials.is_empty() {
            disagreements.push(format!(
                "oracle reports infeasible but {} mapper(s) succeeded",
                trials.len()
            ));
        }

        // Invariant 3: nobody beats the certified lower bound.
        if outcome.lower_bound.is_finite() {
            for t in trials {
                if t.objective < outcome.lower_bound - EPSILON {
                    disagreements.push(format!(
                        "{}: objective {} undercuts the certified lower bound {}",
                        t.mapper, t.objective, outcome.lower_bound
                    ));
                }
            }
        }

        // A certified optimum turns every witness objective into an
        // empirical approximation ratio — the quantity CI gates for the
        // randomized-rounding mapper.
        let mut ratios = Vec::new();
        if outcome.status == ExactStatus::Optimal {
            if let Some(best) = &outcome.best {
                for t in trials {
                    let ratio = if best.objective > EPSILON {
                        t.objective / best.objective
                    } else if t.objective <= EPSILON {
                        1.0
                    } else {
                        f64::INFINITY
                    };
                    ratios.push((t.mapper.clone(), ratio));
                }
            }
        }

        let certified_trials = ratios.len();
        let truncated_trials = if outcome.status == ExactStatus::Truncated {
            trials.len()
        } else {
            0
        };
        CrossCheckReport {
            outcome,
            disagreements,
            ratios,
            certified_trials,
            truncated_trials,
        }
    }
}

/// A serializable snapshot of an oracle verdict for bench reports
/// (`BENCH_oracle.json`): status, incumbent, bound, gap and the headline
/// effort counters. Non-finite floats (an infinite bound on a certified-
/// infeasible instance, a missing incumbent) map to `None`, so the JSON
/// round-trips byte-stably — `serde_json` cannot represent `inf`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OracleVerdict {
    /// The oracle's status (`Optimal` / `Infeasible` / `Truncated`).
    pub status: ExactStatus,
    /// Best feasible objective found, if any.
    pub incumbent: Option<f64>,
    /// Certified lower bound; `None` encodes the infinite bound of a
    /// certified-infeasible instance.
    pub lower_bound: Option<f64>,
    /// `incumbent − lower_bound` when both are finite: the width of the
    /// certified interval (0 for Optimal up to `EPSILON`).
    pub gap: Option<f64>,
    /// Search nodes expanded.
    pub nodes_expanded: u64,
    /// Lagrangian dual evaluations (0 under the water-filling bound).
    pub subgradient_iters: u64,
}

impl From<&ExactOutcome> for OracleVerdict {
    fn from(outcome: &ExactOutcome) -> Self {
        let incumbent = outcome.best.as_ref().map(|b| b.objective);
        let lower_bound = outcome
            .lower_bound
            .is_finite()
            .then_some(outcome.lower_bound);
        let gap = match (incumbent, lower_bound) {
            (Some(ub), Some(lb)) => Some((ub - lb).max(0.0)),
            _ => None,
        };
        OracleVerdict {
            status: outcome.status,
            incumbent,
            lower_bound,
            gap,
            nodes_expanded: outcome.stats.nodes_expanded,
            subgradient_iters: outcome.stats.subgradient_iters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::ParallelRunner;
    use emumap_core::{Hmn, Mapper};
    use emumap_model::Route;
    use emumap_workloads::oracle_smoke;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn applies_is_a_guest_count_gate() {
        let (_, venv) = oracle_smoke(1);
        assert!(CrossCheck::new(8).applies(&venv));
        assert!(!CrossCheck::new(7).applies(&venv));
    }

    #[test]
    fn hmn_certifies_on_the_smoke_instance() {
        let (phys, venv) = oracle_smoke(2009);
        let mut rng = SmallRng::seed_from_u64(0);
        let out = Hmn::new().map(&phys, &venv, &mut rng).expect("HMN maps");
        let trials = vec![TrialWitness {
            mapper: "HMN".into(),
            objective: out.objective,
            mapping: out.mapping,
        }];
        let report = CrossCheck::default().certify(&phys, &venv, &trials, &mut MapCache::new());
        assert!(report.ok(), "disagreements: {:?}", report.disagreements);
        assert!(report.outcome.best.is_some());
        let best = report.outcome.best.as_ref().unwrap();
        assert!(best.objective <= trials[0].objective + EPSILON);
    }

    #[test]
    fn optimal_certification_reports_approximation_ratios() {
        use emumap_core::RandomizedRounding;
        let (phys, venv) = oracle_smoke(2009);
        let mut trials = Vec::new();
        for mapper in [
            Box::new(Hmn::new()) as Box<dyn Mapper>,
            Box::new(RandomizedRounding::new()),
        ] {
            let mut rng = SmallRng::seed_from_u64(7);
            let out = mapper.map(&phys, &venv, &mut rng).expect("smoke maps");
            trials.push(TrialWitness {
                mapper: mapper.name().to_string(),
                objective: out.objective,
                mapping: out.mapping,
            });
        }
        let report = CrossCheck::default().certify(&phys, &venv, &trials, &mut MapCache::new());
        assert!(report.ok(), "disagreements: {:?}", report.disagreements);
        assert_eq!(report.outcome.status, ExactStatus::Optimal);
        assert_eq!(report.ratios.len(), trials.len());
        for (mapper, ratio) in &report.ratios {
            assert!(
                *ratio >= 1.0 - EPSILON,
                "{mapper} ratio {ratio} below 1.0: beats the certified optimum"
            );
        }
        let rr = report.mean_ratio("RR").expect("RR certified");
        assert!(rr.is_finite());
        assert!(report.mean_ratio("nope").is_none());
    }

    #[test]
    fn corrupted_witness_is_reported() {
        let (phys, venv) = oracle_smoke(7);
        let mut rng = SmallRng::seed_from_u64(0);
        let out = Hmn::new().map(&phys, &venv, &mut rng).expect("HMN maps");
        // Break Eq. 1: drop the last guest from the placement.
        let mut placement = out.mapping.placement().to_vec();
        placement.pop();
        let routes: Vec<Route> = out.mapping.routes().to_vec();
        let corrupt = Mapping::new(placement, routes);
        let trials = vec![TrialWitness {
            mapper: "HMN".into(),
            objective: out.objective,
            mapping: corrupt,
        }];
        let report = CrossCheck::default().certify(&phys, &venv, &trials, &mut MapCache::new());
        assert!(!report.ok());
        assert!(report.disagreements[0].contains("invalid mapping"));
        // The corrupt witness must NOT have been fed to the oracle as an
        // incumbent.
        assert_eq!(report.outcome.stats.witnesses_accepted, 0);
    }

    #[test]
    fn truncated_runs_report_their_excluded_trials() {
        // A 1-node budget cannot complete any search: every witness must
        // land in `truncated_trials`, none in the ratio population.
        let (phys, venv) = oracle_smoke(2009);
        let mut rng = SmallRng::seed_from_u64(0);
        let out = Hmn::new().map(&phys, &venv, &mut rng).expect("HMN maps");
        let trials = vec![TrialWitness {
            mapper: "HMN".into(),
            objective: out.objective,
            mapping: out.mapping,
        }];
        let check = CrossCheck {
            config: ExactConfig {
                max_nodes: 1,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = check.certify(&phys, &venv, &trials, &mut MapCache::new());
        assert_eq!(report.outcome.status, ExactStatus::Truncated);
        assert_eq!(report.certified_trials, 0);
        assert_eq!(report.truncated_trials, 1);
        assert!(report.ratios.is_empty());
        assert!(report.mean_ratio("HMN").is_none(), "no inflated mean ratio");
        // And on an instance the oracle does complete, the counts flip.
        let full = CrossCheck::default().certify(&phys, &venv, &trials, &mut MapCache::new());
        assert_eq!(full.outcome.status, ExactStatus::Optimal);
        assert_eq!(full.certified_trials, 1);
        assert_eq!(full.truncated_trials, 0);
    }

    #[test]
    fn oracle_verdicts_round_trip_byte_stably() {
        // Satellite contract: BENCH_oracle.json diffs are only meaningful
        // if serialize(deserialize(json)) == json for every status.
        let (phys, venv) = oracle_smoke(2009);
        let mut rng = SmallRng::seed_from_u64(0);
        let out = Hmn::new().map(&phys, &venv, &mut rng).expect("HMN maps");
        let trials = vec![TrialWitness {
            mapper: "HMN".into(),
            objective: out.objective,
            mapping: out.mapping,
        }];
        let mut verdicts = Vec::new();
        // Optimal (full run) and Truncated (1-node budget) from real runs…
        for max_nodes in [u64::MAX, 1] {
            let check = CrossCheck {
                config: ExactConfig {
                    max_nodes,
                    ..Default::default()
                },
                ..Default::default()
            };
            let report = check.certify(&phys, &venv, &trials, &mut MapCache::new());
            verdicts.push(OracleVerdict::from(&report.outcome));
        }
        // …and Infeasible from a real certified-infeasible instance (the
        // infinite bound must encode as null, not break the JSON).
        {
            use emumap_core::solve_exact;
            use emumap_model::{GuestSpec, MemMb, Mips, StorGb};
            let mut huge = VirtualEnvironment::new();
            huge.add_guest(GuestSpec::new(Mips(1.0), MemMb(1 << 40), StorGb(1.0)));
            let outcome = solve_exact(&phys, &huge, &ExactConfig::default());
            assert_eq!(outcome.status, ExactStatus::Infeasible);
            verdicts.push(OracleVerdict::from(&outcome));
        }
        let statuses: Vec<ExactStatus> = verdicts.iter().map(|v| v.status).collect();
        assert_eq!(
            statuses,
            [
                ExactStatus::Optimal,
                ExactStatus::Truncated,
                ExactStatus::Infeasible
            ]
        );
        for v in &verdicts {
            let json = serde_json::to_string(v).expect("serialize verdict");
            let back: OracleVerdict = serde_json::from_str(&json).expect("parse verdict");
            assert_eq!(&back, v);
            let json2 = serde_json::to_string(&back).expect("re-serialize verdict");
            assert_eq!(json, json2, "verdict JSON must be byte-stable");
        }
        let infeasible = &verdicts[2];
        assert_eq!(infeasible.lower_bound, None);
        assert_eq!(infeasible.incumbent, None);
        let optimal = &verdicts[0];
        assert!(optimal.gap.expect("finite gap") <= EPSILON);
    }

    #[test]
    fn certification_fans_out_over_the_parallel_runner() {
        // One certify per seed, each on a worker with its own warm cache —
        // the shape `batch --exact-check` uses.
        let runner = ParallelRunner::new(2);
        let seeds: Vec<u64> = (0..4).collect();
        let reports = runner.run(seeds, |seed, cache| {
            let (phys, venv) = oracle_smoke(seed);
            let mut rng = SmallRng::seed_from_u64(seed);
            let trials: Vec<TrialWitness> = Hmn::new()
                .map_with_cache(&phys, &venv, &mut rng, cache)
                .ok()
                .map(|o| TrialWitness {
                    mapper: "HMN".into(),
                    objective: o.objective,
                    mapping: o.mapping,
                })
                .into_iter()
                .collect();
            let report = CrossCheck::default().certify(&phys, &venv, &trials, cache);
            (report.ok(), report.disagreements)
        });
        for (ok, disagreements) in reports {
            assert!(ok, "disagreements: {disagreements:?}");
        }
    }
}
