//! The experiment runner: executes the (scenario × cluster × mapper × rep)
//! grid of §5.2 and aggregates the results of Tables 2–3.
//!
//! Work items are independent, so the runner fans them out over a
//! crossbeam scoped-thread worker pool (sized to the machine; the grid is
//! embarrassingly parallel). Each item is a pure function of its seeds, so
//! results are identical at any thread count.

use crate::parallel::ParallelRunner;
use crate::stats;
use emumap_core::{MapCache, Mapper, MapperConfig, MapperEntry};
use emumap_model::{PhysicalTopology, VirtualEnvironment};
use emumap_sim::{run_experiment, ExperimentSpec};
use emumap_workloads::{instantiate_both, ClusterSpec, Scenario};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// A handle to one mapper in the core registry — the bench harness
/// registers nothing itself; any mapper added to
/// [`emumap_core::MAPPERS`] is immediately benchable.
///
/// Serialized as the registry key (`"hmn"`, `"rr"`, …), so result files
/// stay readable and stable as the registry grows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MapperKind {
    key: &'static str,
}

impl MapperKind {
    /// The paper's heuristic.
    pub const HMN: MapperKind = MapperKind { key: "hmn" };
    /// Random placement + DFS routing.
    pub const R: MapperKind = MapperKind { key: "r" };
    /// Random placement + A\*Prune routing.
    pub const RA: MapperKind = MapperKind { key: "ra" };
    /// Hosting + DFS routing.
    pub const HS: MapperKind = MapperKind { key: "hs" };
    /// The randomized-rounding LP mapper.
    pub const RR: MapperKind = MapperKind { key: "rr" };

    /// The evaluation's four heuristics, in Table 2/3 column order.
    pub const ALL: [MapperKind; 4] = [
        MapperKind::HMN,
        MapperKind::R,
        MapperKind::RA,
        MapperKind::HS,
    ];

    /// Resolves a registry key ("hmn", "rr", …); `None` when unknown.
    pub fn from_key(key: &str) -> Option<MapperKind> {
        emumap_core::find_mapper(key).map(|e| MapperKind { key: e.key })
    }

    /// Every registered mapper, in registry order.
    pub fn every() -> impl Iterator<Item = MapperKind> {
        emumap_core::MAPPERS
            .iter()
            .map(|e| MapperKind { key: e.key })
    }

    fn entry(self) -> &'static MapperEntry {
        emumap_core::find_mapper(self.key).expect("MapperKind keys come from the registry")
    }

    /// The registry key (also the CLI `--mapper` spelling).
    pub fn key(self) -> &'static str {
        self.key
    }

    /// The table column header (the mapper's report label).
    pub fn label(self) -> &'static str {
        self.entry().label
    }

    /// Stable registry position — what harnesses fold into derived seeds
    /// to keep mappers on disjoint RNG streams.
    pub fn index(self) -> usize {
        self.entry().index()
    }

    /// Instantiates the mapper with the given retry budget for the
    /// attempt-based mappers (ignored by the deterministic ones).
    pub fn build(self, max_attempts: usize) -> Box<dyn Mapper> {
        (self.entry().build)(&MapperConfig { max_attempts })
    }
}

impl Serialize for MapperKind {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.key.to_string())
    }
}

impl Deserialize for MapperKind {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        match value {
            serde::Value::Str(s) => MapperKind::from_key(s)
                .ok_or_else(|| serde::DeError::new(format!("unknown mapper key '{s}'"))),
            _ => Err(serde::DeError::new("MapperKind: expected a string key")),
        }
    }
}

/// Which physical arrangement a record belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cluster {
    /// The 5×8 2-D torus.
    Torus,
    /// Cascaded 64-port switches.
    Switched,
}

impl Cluster {
    /// Both clusters, in the tables' order.
    pub const BOTH: [Cluster; 2] = [Cluster::Torus, Cluster::Switched];

    /// Table header label.
    pub fn label(self) -> &'static str {
        match self {
            Cluster::Torus => "2-D Torus",
            Cluster::Switched => "Switched",
        }
    }
}

/// One successful mapping's measurements.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Measurement {
    /// The Eq. 10 objective.
    pub objective: f64,
    /// Wall-clock mapping time in seconds.
    pub map_time_s: f64,
    /// Links actually routed (Figure 1's x-axis).
    pub routed_links: usize,
    /// Networking-stage wall-clock in seconds (Figure 1's y-axis driver).
    pub networking_time_s: f64,
    /// Simulated experiment runtime in seconds, when the runner was asked
    /// to simulate (`None` otherwise).
    pub experiment_s: Option<f64>,
}

/// One grid cell's raw results.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// Scenario row label ("2.5:1 0.015").
    pub scenario: String,
    /// Which cluster.
    pub cluster: Cluster,
    /// Which mapper.
    pub mapper: MapperKind,
    /// One entry per successful repetition.
    pub successes: Vec<Measurement>,
    /// Repetitions that failed to find a valid mapping.
    pub failures: usize,
}

impl CellResult {
    /// Mean objective over successes, or `None` if every rep failed (the
    /// tables print "—").
    pub fn mean_objective(&self) -> Option<f64> {
        (!self.successes.is_empty()).then(|| {
            stats::mean(
                &self
                    .successes
                    .iter()
                    .map(|m| m.objective)
                    .collect::<Vec<_>>(),
            )
        })
    }

    /// Mean mapping time over successes.
    pub fn mean_map_time(&self) -> Option<f64> {
        (!self.successes.is_empty()).then(|| {
            stats::mean(
                &self
                    .successes
                    .iter()
                    .map(|m| m.map_time_s)
                    .collect::<Vec<_>>(),
            )
        })
    }
}

/// Runner configuration.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// Repetitions per cell (paper: 30).
    pub reps: u32,
    /// Base seed for the deterministic instance derivation.
    pub seed: u64,
    /// Retry budget for the baselines (paper: 100 000; see
    /// [`emumap_core::DEFAULT_MAX_ATTEMPTS`] for the default's rationale).
    pub max_attempts: usize,
    /// Also run the emulated experiment on each successful mapping
    /// (needed by the correlation study; costs extra time).
    pub simulate: bool,
    /// Worker threads (0 = one per available core).
    pub threads: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            reps: 5,
            seed: 2009,
            max_attempts: emumap_core::DEFAULT_MAX_ATTEMPTS,
            simulate: false,
            threads: 0,
        }
    }
}

/// Executes one mapper on one instance, measuring everything.
///
/// Convenience wrapper over [`run_one_cached`] with a fresh cache.
pub fn run_one(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    kind: MapperKind,
    mapper_seed: u64,
    max_attempts: usize,
    simulate: bool,
) -> Option<Measurement> {
    run_one_cached(
        phys,
        venv,
        kind,
        mapper_seed,
        max_attempts,
        simulate,
        &mut MapCache::new(),
    )
}

/// [`run_one`] with a caller-owned warm [`MapCache`] — the hot path used
/// by [`ParallelRunner`] workers. Identical results for any cache history.
pub fn run_one_cached(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    kind: MapperKind,
    mapper_seed: u64,
    max_attempts: usize,
    simulate: bool,
    cache: &mut MapCache,
) -> Option<Measurement> {
    let mapper = kind.build(max_attempts);
    let mut rng = SmallRng::seed_from_u64(mapper_seed);
    let start = Instant::now();
    let outcome = mapper.map_with_cache(phys, venv, &mut rng, cache).ok()?;
    let map_time_s = start.elapsed().as_secs_f64();
    debug_assert_eq!(
        emumap_model::validate_mapping(phys, venv, &outcome.mapping),
        Ok(()),
        "{} returned an invalid mapping",
        kind.label()
    );
    let experiment_s = simulate
        .then(|| run_experiment(phys, venv, &outcome.mapping, &ExperimentSpec::default()).total_s);
    Some(Measurement {
        objective: outcome.objective,
        map_time_s,
        routed_links: outcome.stats.routed_links,
        networking_time_s: outcome.stats.networking_time.as_secs_f64(),
        experiment_s,
    })
}

/// Runs the full grid: every scenario × both clusters × the given mappers
/// × `config.reps` repetitions. Returns one [`CellResult`] per
/// (scenario, cluster, mapper), in deterministic order.
pub fn run_grid(
    scenarios: &[Scenario],
    mappers: &[MapperKind],
    config: &RunConfig,
) -> Vec<CellResult> {
    let cluster_spec = ClusterSpec::paper();

    // Work items: one per (scenario, rep); each instantiates both clusters
    // once and runs every mapper on them, amortizing generation.
    let mut work: Vec<(usize, u32)> = Vec::with_capacity(scenarios.len() * config.reps as usize);
    for (scenario_idx, _) in scenarios.iter().enumerate() {
        for rep in 0..config.reps {
            work.push((scenario_idx, rep));
        }
    }

    // Fan the items out; every item returns its per-(cluster, mapper)
    // outcomes, which are folded sequentially below — so cell contents are
    // in deterministic (scenario, rep) order at any thread count.
    let runner = ParallelRunner::new(config.threads);
    let outcomes: Vec<Vec<(Cluster, usize, Option<Measurement>)>> =
        runner.run(work.clone(), |(scenario_idx, rep), cache| {
            let scenario = &scenarios[scenario_idx];
            let (torus, switched) = instantiate_both(&cluster_spec, scenario, rep, config.seed);
            let mut out = Vec::with_capacity(2 * mappers.len());
            for (cluster, inst) in [(Cluster::Torus, &torus), (Cluster::Switched, &switched)] {
                for (mi, &kind) in mappers.iter().enumerate() {
                    let m = run_one_cached(
                        &inst.phys,
                        &inst.venv,
                        kind,
                        inst.mapper_seed ^ (mi as u64) << 56,
                        config.max_attempts,
                        config.simulate,
                        cache,
                    );
                    out.push((cluster, mi, m));
                }
            }
            out
        });

    // Result cells, indexed [scenario][cluster][mapper].
    let mut cells: Vec<CellResult> = scenarios
        .iter()
        .flat_map(|s| {
            Cluster::BOTH.iter().flat_map(move |&cluster| {
                mappers.iter().map(move |&mapper| CellResult {
                    scenario: s.label(),
                    cluster,
                    mapper,
                    successes: Vec::new(),
                    failures: 0,
                })
            })
        })
        .collect();
    let cell_index = |scenario_idx: usize, cluster: Cluster, mapper_idx: usize| {
        let c = match cluster {
            Cluster::Torus => 0,
            Cluster::Switched => 1,
        };
        (scenario_idx * 2 + c) * mappers.len() + mapper_idx
    };

    for (&(scenario_idx, _), item_outcomes) in work.iter().zip(outcomes) {
        for (cluster, mi, m) in item_outcomes {
            let cell = &mut cells[cell_index(scenario_idx, cluster, mi)];
            match m {
                Some(measurement) => cell.successes.push(measurement),
                None => cell.failures += 1,
            }
        }
    }

    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_workloads::WorkloadKind;

    fn tiny_scenario() -> Scenario {
        Scenario {
            ratio: 2.5,
            density: 0.02,
            workload: WorkloadKind::HighLevel,
        }
    }

    #[test]
    fn grid_covers_every_cell() {
        let scenarios = [tiny_scenario()];
        let config = RunConfig {
            reps: 2,
            ..Default::default()
        };
        let cells = run_grid(&scenarios, &MapperKind::ALL, &config);
        assert_eq!(cells.len(), 2 * 4);
        for cell in &cells {
            assert_eq!(
                cell.successes.len() + cell.failures,
                2,
                "{:?}/{:?} lost a repetition",
                cell.cluster,
                cell.mapper
            );
        }
    }

    #[test]
    fn hmn_succeeds_on_the_easy_scenario() {
        let scenarios = [tiny_scenario()];
        let config = RunConfig {
            reps: 2,
            ..Default::default()
        };
        let cells = run_grid(&scenarios, &[MapperKind::HMN], &config);
        for cell in &cells {
            assert_eq!(cell.failures, 0);
            assert!(cell.mean_objective().is_some());
            assert!(cell.mean_map_time().unwrap() > 0.0);
        }
    }

    #[test]
    fn grid_is_deterministic_across_thread_counts() {
        let scenarios = [tiny_scenario()];
        let base = RunConfig {
            reps: 2,
            threads: 1,
            ..Default::default()
        };
        let multi = RunConfig {
            reps: 2,
            threads: 3,
            ..Default::default()
        };
        let a = run_grid(&scenarios, &[MapperKind::HMN, MapperKind::RA], &base);
        let b = run_grid(&scenarios, &[MapperKind::HMN, MapperKind::RA], &multi);
        for (x, y) in a.iter().zip(b.iter()) {
            // Results fold in input (scenario, rep) order at any thread
            // count, so cell contents match element-for-element unsorted.
            let ox: Vec<f64> = x.successes.iter().map(|m| m.objective).collect();
            let oy: Vec<f64> = y.successes.iter().map(|m| m.objective).collect();
            assert_eq!(ox, oy, "{:?}/{:?}", x.cluster, x.mapper);
        }
    }

    #[test]
    fn simulate_flag_fills_experiment_time() {
        let scenarios = [tiny_scenario()];
        let config = RunConfig {
            reps: 1,
            simulate: true,
            ..Default::default()
        };
        let cells = run_grid(&scenarios, &[MapperKind::HMN], &config);
        for cell in &cells {
            for m in &cell.successes {
                assert!(m.experiment_s.unwrap() > 0.0);
            }
        }
    }
}
