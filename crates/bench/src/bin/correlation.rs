//! Reproduces the §5.2 correlation study: "we found a correlation of 0.7
//! between the objective function and the execution time of the experiment
//! in the simulated environment."
//!
//! Every successful mapping from every heuristic (which spreads the
//! objective values widely — HMN is balanced, R/RA are not) is simulated
//! with the BSP experiment model, and the Pearson coefficient between the
//! Eq. 10 objective and the experiment runtime is reported, pooled and per
//! scenario.
//!
//! ```sh
//! cargo run --release -p emumap-bench --bin correlation -- --reps 10
//! ```

use emumap_bench::cli::parse_args;
use emumap_bench::runner::{run_grid, MapperKind, RunConfig};
use emumap_bench::stats::pearson;
use emumap_workloads::{Scenario, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct PairedPoint {
    scenario: String,
    mapper: &'static str,
    objective: f64,
    experiment_s: f64,
}

fn main() {
    let args = parse_args(
        "correlation",
        "objective-vs-runtime correlation (paper §5.2: r ≈ 0.7)",
    );
    // High-level scenarios give the heuristics room to differ; the
    // experiment simulation is what costs time, so a focused subset of the
    // grid suffices.
    let scenarios = [
        Scenario {
            ratio: 2.5,
            density: 0.02,
            workload: WorkloadKind::HighLevel,
        },
        Scenario {
            ratio: 5.0,
            density: 0.02,
            workload: WorkloadKind::HighLevel,
        },
        Scenario {
            ratio: 7.5,
            density: 0.02,
            workload: WorkloadKind::HighLevel,
        },
        Scenario {
            ratio: 10.0,
            density: 0.02,
            workload: WorkloadKind::HighLevel,
        },
    ];
    let config = RunConfig {
        simulate: true,
        ..args.config
    };

    eprintln!(
        "running {} scenarios x 2 clusters x 4 mappers x {} reps with simulation...",
        scenarios.len(),
        config.reps
    );
    let cells = run_grid(&scenarios, &MapperKind::ALL, &config);

    let mut points: Vec<PairedPoint> = Vec::new();
    for cell in &cells {
        for m in &cell.successes {
            points.push(PairedPoint {
                scenario: cell.scenario.clone(),
                mapper: cell.mapper.label(),
                objective: m.objective,
                experiment_s: m.experiment_s.expect("simulate=true fills this"),
            });
        }
    }

    let obj: Vec<f64> = points.iter().map(|p| p.objective).collect();
    let time: Vec<f64> = points.iter().map(|p| p.experiment_s).collect();
    match pearson(&obj, &time) {
        Some(r) => {
            println!(
                "pooled Pearson correlation (objective vs. experiment runtime): r = {r:.3} \
                 over {} mappings",
                points.len()
            );
            println!("paper §5.2 reports r = 0.7 — a strongly positive r reproduces the claim");
        }
        None => println!("not enough successful mappings to correlate"),
    }

    // Per-scenario breakdown.
    println!("\nper-scenario:");
    let mut labels: Vec<String> = points.iter().map(|p| p.scenario.clone()).collect();
    labels.sort();
    labels.dedup();
    for label in labels {
        let subset: Vec<&PairedPoint> = points.iter().filter(|p| p.scenario == label).collect();
        let o: Vec<f64> = subset.iter().map(|p| p.objective).collect();
        let t: Vec<f64> = subset.iter().map(|p| p.experiment_s).collect();
        match pearson(&o, &t) {
            Some(r) => println!("  {label:<14} r = {r:+.3}  (n = {})", subset.len()),
            None => println!("  {label:<14} n/a (n = {})", subset.len()),
        }
    }

    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&points).expect("serialize");
    std::fs::write("results/correlation.json", json).expect("write results/correlation.json");
    eprintln!("raw points -> results/correlation.json");
}
