//! Regenerates **Table 3** (simulation time): mean wall-clock mapping time
//! per scenario × mapper × cluster.
//!
//! Absolute numbers are not comparable to the paper's (2009 Java on the
//! authors' machine vs. Rust release builds here); the *shape* is what
//! reproduces: HMN cheapest, HS most expensive, time growing with the
//! guest count, switched-cluster routing effectively instant.
//!
//! ```sh
//! cargo run --release -p emumap-bench --bin table3 -- --reps 30
//! ```

use emumap_bench::cli::parse_args;
use emumap_bench::report::render_table;
use emumap_bench::runner::{run_grid, Cluster, MapperKind};
use emumap_workloads::paper_scenarios;

fn main() {
    let args = parse_args("table3", "mapping wall-clock time (paper Table 3)");
    let scenarios = paper_scenarios();
    let labels: Vec<String> = scenarios.iter().map(|s| s.label()).collect();

    eprintln!(
        "running {} scenarios x 2 clusters x 4 mappers x {} reps...",
        scenarios.len(),
        args.config.reps
    );
    let start = std::time::Instant::now();
    let cells = run_grid(&scenarios, &MapperKind::ALL, &args.config);
    eprintln!("grid finished in {:?}", start.elapsed());

    print!(
        "{}",
        render_table(
            "Table 3 — mapping time (seconds); — = all reps failed",
            &labels,
            &cells,
            |c| c.mean_map_time(),
            4,
        )
    );

    // §5.2's switched-cluster claim: "the mapping time was less than one
    // second in all scenarios."
    let switched_max = cells
        .iter()
        .filter(|c| c.cluster == Cluster::Switched && c.mapper == MapperKind::HMN)
        .filter_map(|c| c.mean_map_time())
        .fold(0.0f64, f64::max);
    println!(
        "\nHMN on the switched cluster: max mean mapping time {switched_max:.4}s \
         (paper: < 1s in all scenarios)"
    );

    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&cells).expect("serialize");
    std::fs::write("results/table3.json", json).expect("write results/table3.json");
    eprintln!("raw cells -> results/table3.json");
}
