//! Regenerates **Table 2** (objective function and failures): mean Eq. 10
//! objective per scenario × {HMN, R, RA, HS} × {torus, switched}, plus the
//! failure-count row.
//!
//! ```sh
//! cargo run --release -p emumap-bench --bin table2 -- --reps 30
//! ```
//!
//! Writes the raw cells to `results/table2.json` for EXPERIMENTS.md.

use emumap_bench::cli::parse_args;
use emumap_bench::report::render_table;
use emumap_bench::runner::{run_grid, MapperKind};
use emumap_workloads::paper_scenarios;

fn main() {
    let args = parse_args("table2", "objective function and failures (paper Table 2)");
    let scenarios = paper_scenarios();
    let labels: Vec<String> = scenarios.iter().map(|s| s.label()).collect();

    eprintln!(
        "running {} scenarios x 2 clusters x 4 mappers x {} reps (seed {}, attempts {})...",
        scenarios.len(),
        args.config.reps,
        args.config.seed,
        args.config.max_attempts
    );
    let start = std::time::Instant::now();
    let cells = run_grid(&scenarios, &MapperKind::ALL, &args.config);
    eprintln!("grid finished in {:?}", start.elapsed());

    print!(
        "{}",
        render_table(
            "Table 2 — objective function (Eq. 10, MIPS stddev of residual CPU); — = all reps failed",
            &labels,
            &cells,
            |c| c.mean_objective(),
            1,
        )
    );
    println!(
        "\ncolumns: T/x = 2-D torus cluster, S/x = switched cluster; {} reps per cell",
        args.config.reps
    );

    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&cells).expect("serialize");
    std::fs::write("results/table2.json", json).expect("write results/table2.json");
    eprintln!("raw cells -> results/table2.json");
}
