//! Regenerates **Figure 1**: HMN mapping time as a function of the number
//! of virtual links actually routed, on the torus cluster — mean and
//! standard deviation per bucket.
//!
//! The paper sweeps the low-level workload (800–2000 guests, density
//! 0.01); links whose guests share a host are never routed, which is the
//! main source of the per-bucket variance §5.2 discusses.
//!
//! ```sh
//! cargo run --release -p emumap-bench --bin figure1 -- --reps 30
//! ```

use emumap_bench::cli::parse_args;
use emumap_bench::parallel::ParallelRunner;
use emumap_bench::runner::{run_one_cached, MapperKind};
use emumap_bench::stats::{mean, sample_stddev};
use emumap_workloads::{instantiate, ClusterSpec, Scenario, WorkloadKind};
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    guests: usize,
    total_links: usize,
    routed_links: usize,
    map_time_s: f64,
    networking_time_s: f64,
}

fn main() {
    let args = parse_args(
        "figure1",
        "HMN mapping time vs. routed virtual links, torus cluster (paper Figure 1)",
    );
    let cluster = ClusterSpec::paper();

    // The low-level sweep: 20:1 .. 50:1 at density 0.01, as in the paper's
    // largest runs, plus intermediate ratios for a smoother curve.
    let ratios = [20.0, 25.0, 30.0, 35.0, 40.0, 45.0, 50.0];

    // Every (ratio, rep) trial is a pure function of its seeds, so the
    // sweep fans out over the worker pool; results come back in input
    // order, keeping the bucket series identical to a sequential run.
    let runner = ParallelRunner::new(args.config.threads);
    eprintln!(
        "sweeping {} ratios x {} reps on the torus cluster ({} threads)...",
        ratios.len(),
        args.config.reps,
        runner.threads()
    );
    let mut trials: Vec<(f64, u32)> = Vec::new();
    for &ratio in &ratios {
        for rep in 0..args.config.reps {
            trials.push((ratio, rep));
        }
    }
    let points: Vec<Point> = runner
        .run(trials, |(ratio, rep), cache| {
            let scenario = Scenario {
                ratio,
                density: 0.01,
                workload: WorkloadKind::LowLevel,
            };
            let inst = instantiate(
                &cluster,
                ClusterSpec::paper_torus(),
                &scenario,
                rep,
                args.config.seed,
            );
            let Some(m) = run_one_cached(
                &inst.phys,
                &inst.venv,
                MapperKind::HMN,
                inst.mapper_seed,
                args.config.max_attempts,
                false,
                cache,
            ) else {
                eprintln!("  {ratio}:1 rep {rep}: HMN failed (skipped)");
                return None;
            };
            Some(Point {
                guests: inst.venv.guest_count(),
                total_links: inst.venv.link_count(),
                routed_links: m.routed_links,
                map_time_s: m.map_time_s,
                networking_time_s: m.networking_time_s,
            })
        })
        .into_iter()
        .flatten()
        .collect();

    // Bucket by routed links (1000-link buckets) and print mean +/- stddev,
    // the series Figure 1 plots.
    println!("### Figure 1 — HMN execution time vs. virtual links routed (torus cluster)");
    println!(
        "{:>16} {:>8} {:>14} {:>14} {:>14}",
        "routed links", "n", "mean time (s)", "stddev (s)", "mean netw (s)"
    );
    let bucket = |p: &Point| p.routed_links / 1000;
    let mut buckets: Vec<usize> = points.iter().map(bucket).collect();
    buckets.sort_unstable();
    buckets.dedup();
    for b in buckets {
        let in_bucket: Vec<&Point> = points.iter().filter(|p| bucket(p) == b).collect();
        let times: Vec<f64> = in_bucket.iter().map(|p| p.map_time_s).collect();
        let netw: Vec<f64> = in_bucket.iter().map(|p| p.networking_time_s).collect();
        println!(
            "{:>10}-{:<5} {:>8} {:>14.4} {:>14.4} {:>14.4}",
            b * 1000,
            (b + 1) * 1000 - 1,
            in_bucket.len(),
            mean(&times),
            sample_stddev(&times),
            mean(&netw),
        );
    }

    // §5.2's headline point: the largest instance.
    if let Some(max) = points.iter().max_by_key(|p| p.routed_links) {
        println!(
            "\nlargest instance: {} guests, {} links ({} routed) mapped in {:.3}s \
             ({:.3}s in Networking — the paper saw the same stage dominate)",
            max.guests, max.total_links, max.routed_links, max.map_time_s, max.networking_time_s
        );
    }

    std::fs::create_dir_all("results").expect("create results dir");
    let json = serde_json::to_string_pretty(&points).expect("serialize");
    std::fs::write("results/figure1.json", json).expect("write results/figure1.json");
    eprintln!("raw points -> results/figure1.json");
}
