//! # emumap-bench
//!
//! The evaluation harness: reruns the ICPP 2009 experiment grid and
//! regenerates every table and figure.
//!
//! Binaries (all accept `--reps N --seed S --attempts A`):
//!
//! * `table2` — mean objective function + failure counts (paper Table 2);
//! * `table3` — mean mapping wall-clock time (paper Table 3);
//! * `figure1` — HMN mapping time vs. routed virtual links on the torus
//!   cluster (paper Figure 1);
//! * `correlation` — Pearson correlation between the Eq. 10 objective and
//!   simulated experiment runtime (§5.2 reports r ≈ 0.7).
//!
//! Criterion benches cover per-stage costs and the ablations listed in
//! DESIGN.md §6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod crosscheck;
pub mod parallel;
pub mod report;
pub mod runner;
pub mod stats;
