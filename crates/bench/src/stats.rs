//! Summary statistics for the experiment harness.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than two
/// values. Used for the "average ± stddev over 30 repetitions" reporting.
pub fn sample_stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|&v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Pearson correlation coefficient between two equal-length samples.
/// Returns `None` when undefined (fewer than two points or zero variance
/// on either side).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len(), "pearson requires paired samples");
    if x.len() < 2 {
        return None;
    }
    let (mx, my) = (mean(x), mean(y));
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y.iter()) {
        cov += (a - mx) * (b - my);
        vx += (a - mx).powi(2);
        vy += (b - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn sample_stddev_uses_n_minus_1() {
        assert_eq!(sample_stddev(&[5.0]), 0.0);
        // Var of {2, 4} with n-1: (1+1)/1 = 2, stddev = sqrt(2).
        assert!((sample_stddev(&[2.0, 4.0]) - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlations() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y_pos = [10.0, 20.0, 30.0, 40.0];
        let y_neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_pos).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_for_orthogonal() {
        let x = [-1.0, 0.0, 1.0];
        let y = [1.0, -2.0, 1.0]; // symmetric around x=0
        assert!(pearson(&x, &y).unwrap().abs() < 1e-12);
    }

    #[test]
    fn pearson_undefined_cases() {
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None); // zero variance
    }

    #[test]
    #[should_panic(expected = "paired samples")]
    fn pearson_length_mismatch_panics() {
        let _ = pearson(&[1.0], &[1.0, 2.0]);
    }
}
