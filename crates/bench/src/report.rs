//! Table formatting that mirrors the paper's layout, plus machine-readable
//! benchmark reports.

use crate::runner::{CellResult, Cluster, MapperKind};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Per-phase share of a benchmark's wall-clock, from the pipeline's trace
/// spans (see [`crate::parallel::PhaseTotals`]).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct PhaseBreakdown {
    /// Seconds in the Hosting phase.
    pub hosting_s: f64,
    /// Seconds in the Migration phase.
    pub migration_s: f64,
    /// Seconds in the Networking phase.
    pub networking_s: f64,
}

impl From<crate::parallel::PhaseTotals> for PhaseBreakdown {
    fn from(t: crate::parallel::PhaseTotals) -> Self {
        PhaseBreakdown {
            hosting_s: t.hosting_s(),
            migration_s: t.migration_s(),
            networking_s: t.networking_s(),
        }
    }
}

/// One benchmark's summary row in a `BENCH_*.json` report.
#[derive(Clone, Debug, Serialize)]
pub struct BenchEntry {
    /// Benchmark id (`group/case`).
    pub name: String,
    /// Mean sample wall-clock in seconds.
    pub mean_s: f64,
    /// Fastest sample in seconds.
    pub min_s: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Per-phase breakdown of the total, when the benchmark ran with a
    /// phase-tracking runner (`null` otherwise).
    pub phases: Option<PhaseBreakdown>,
}

/// Writes benchmark summaries as pretty JSON, creating parent directories.
/// Plain data rather than harness types so library users (and CI scripts)
/// can emit entries without depending on the bench harness.
pub fn write_bench_json(path: impl AsRef<Path>, entries: &[BenchEntry]) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let json = serde_json::to_string_pretty(entries)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    std::fs::write(path, json)
}

/// Index results as `[scenario label][cluster][mapper] -> cell`.
pub fn index_cells(
    cells: &[CellResult],
) -> BTreeMap<String, BTreeMap<&'static str, BTreeMap<&'static str, &CellResult>>> {
    let mut idx: BTreeMap<String, BTreeMap<&'static str, BTreeMap<&'static str, &CellResult>>> =
        BTreeMap::new();
    for c in cells {
        idx.entry(c.scenario.clone())
            .or_default()
            .entry(c.cluster.label())
            .or_default()
            .insert(c.mapper.label(), c);
    }
    idx
}

/// Renders a Table 2/3-shaped table. `value` extracts the number to print
/// for a cell (`None` prints the paper's "—").
pub fn render_table(
    title: &str,
    scenario_order: &[String],
    cells: &[CellResult],
    value: impl Fn(&CellResult) -> Option<f64>,
    precision: usize,
) -> String {
    let idx = index_cells(cells);
    let mappers = [
        MapperKind::HMN,
        MapperKind::R,
        MapperKind::RA,
        MapperKind::HS,
    ];
    let mut out = String::new();
    let _ = writeln!(out, "### {title}");
    let _ = write!(out, "{:<14}", "scenario");
    for cluster in Cluster::BOTH {
        for m in mappers {
            let _ = write!(
                out,
                "{:>10}",
                format!("{}/{}", cluster_short(cluster), m.label())
            );
        }
    }
    let _ = writeln!(out);

    for label in scenario_order {
        let _ = write!(out, "{label:<14}");
        for cluster in Cluster::BOTH {
            for m in mappers {
                let cell = idx
                    .get(label)
                    .and_then(|by_cluster| by_cluster.get(cluster.label()))
                    .and_then(|by_mapper| by_mapper.get(m.label()));
                match cell.and_then(|c| value(c)) {
                    Some(v) => {
                        let _ = write!(out, "{v:>10.precision$}");
                    }
                    None => {
                        let _ = write!(out, "{:>10}", "—");
                    }
                }
            }
        }
        let _ = writeln!(out);
    }

    // Failures row, as in Table 2.
    let _ = write!(out, "{:<14}", "Failures");
    for cluster in Cluster::BOTH {
        for m in mappers {
            let total: usize = cells
                .iter()
                .filter(|c| c.cluster == cluster && c.mapper == m)
                .map(|c| c.failures)
                .sum();
            let _ = write!(out, "{total:>10}");
        }
    }
    let _ = writeln!(out);
    out
}

fn cluster_short(c: Cluster) -> &'static str {
    match c {
        Cluster::Torus => "T",
        Cluster::Switched => "S",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Measurement;

    fn cell(scenario: &str, cluster: Cluster, mapper: MapperKind, obj: Option<f64>) -> CellResult {
        CellResult {
            scenario: scenario.to_string(),
            cluster,
            mapper,
            successes: obj
                .map(|objective| {
                    vec![Measurement {
                        objective,
                        map_time_s: 0.1,
                        routed_links: 5,
                        networking_time_s: 0.05,
                        experiment_s: None,
                    }]
                })
                .unwrap_or_default(),
            failures: usize::from(obj.is_none()),
        }
    }

    #[test]
    fn renders_values_and_dashes() {
        let cells = vec![
            cell("2.5:1 0.015", Cluster::Torus, MapperKind::HMN, Some(573.9)),
            cell("2.5:1 0.015", Cluster::Torus, MapperKind::HS, None),
        ];
        let table = render_table(
            "objective",
            &["2.5:1 0.015".to_string()],
            &cells,
            |c| c.mean_objective(),
            1,
        );
        assert!(table.contains("573.9"));
        assert!(table.contains("—"));
        assert!(table.contains("Failures"));
    }

    #[test]
    fn bench_json_roundtrips_and_creates_directories() {
        let dir = std::env::temp_dir().join(format!("emumap-bench-report-{}", std::process::id()));
        let path = dir.join("nested").join("BENCH_test.json");
        let entries = vec![
            BenchEntry {
                name: "group/case".to_string(),
                mean_s: 0.5,
                min_s: 0.25,
                samples: 10,
                phases: None,
            },
            BenchEntry {
                name: "group/phased".to_string(),
                mean_s: 0.5,
                min_s: 0.25,
                samples: 10,
                phases: Some(PhaseBreakdown {
                    hosting_s: 0.1,
                    migration_s: 0.2,
                    networking_s: 0.2,
                }),
            },
        ];
        write_bench_json(&path, &entries).expect("write");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("group/case"), "{text}");
        assert!(text.contains("\"samples\": 10"), "{text}");
        assert!(text.contains("\"hosting_s\""), "{text}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn failures_row_sums_across_scenarios() {
        let cells = vec![
            cell("a", Cluster::Torus, MapperKind::R, None),
            cell("b", Cluster::Torus, MapperKind::R, None),
        ];
        let table = render_table(
            "objective",
            &["a".to_string(), "b".to_string()],
            &cells,
            |c| c.mean_objective(),
            1,
        );
        let failures_line = table.lines().last().unwrap();
        assert!(failures_line.contains('2'), "failures row: {failures_line}");
    }
}
