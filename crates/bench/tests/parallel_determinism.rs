//! Regression suite for the parallel trial engine's core guarantee:
//! fanning trials across worker threads — each with its own warm
//! `MapCache` — produces **bit-identical** outcomes to a sequential run
//! with fresh caches, for every heuristic and any thread count.
//!
//! This is what licenses `run_grid`/`figure1`/`batch` to parallelize at
//! all: each trial is a pure function of its seeds, and the per-worker
//! caches are semantically invisible.

use emumap_bench::parallel::ParallelRunner;
use emumap_bench::runner::MapperKind;
use emumap_core::MapCache;
use emumap_model::{Mapping, PhysicalTopology, VirtualEnvironment};
use emumap_workloads::{instantiate_both, ClusterSpec, Scenario, WorkloadKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// (mapping, objective bits) of one trial, or None if the mapper failed.
type Outcome = Option<(Mapping, u64)>;

fn one_trial(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    kind: MapperKind,
    seed: u64,
    cache: &mut MapCache,
) -> Outcome {
    let mapper = kind.build(50);
    let mut rng = SmallRng::seed_from_u64(seed);
    mapper
        .map_with_cache(phys, venv, &mut rng, cache)
        .ok()
        .map(|o| (o.mapping, o.objective.to_bits()))
}

#[test]
fn parallel_trials_match_sequential_for_all_heuristics() {
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 2.5,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };

    // A batch of trials across both clusters, several reps, all four
    // heuristics — enough to exercise cross-trial cache reuse on shared
    // topologies and cache invalidation when the topology switches.
    let mut trials: Vec<(u32, usize, MapperKind)> = Vec::new();
    for rep in 0..3u32 {
        for c in 0..2usize {
            for kind in MapperKind::ALL {
                trials.push((rep, c, kind));
            }
        }
    }

    let run_trial = |&(rep, c, kind): &(u32, usize, MapperKind), cache: &mut MapCache| {
        let (torus, switched) = instantiate_both(&cluster, &scenario, rep, 2009);
        let inst = if c == 0 { &torus } else { &switched };
        let seed = inst.mapper_seed ^ ((kind.index() as u64) << 56);
        one_trial(&inst.phys, &inst.venv, kind, seed, cache)
    };

    // Reference: strictly sequential, a fresh cold cache per trial.
    let sequential: Vec<Outcome> = trials
        .iter()
        .map(|t| run_trial(t, &mut MapCache::new()))
        .collect();
    assert!(
        sequential.iter().any(Option::is_some),
        "scenario too hard: no trial succeeded, the comparison is vacuous"
    );

    // Same trials through the pool at several thread counts; each worker
    // keeps one warm cache across every trial it picks up.
    for threads in [1, 2, 4] {
        let parallel =
            ParallelRunner::new(threads).run(trials.clone(), |t, cache| run_trial(&t, cache));
        assert_eq!(
            sequential, parallel,
            "outcomes diverged at {threads} threads"
        );
    }
}

#[test]
fn rounding_mapper_is_deterministic_warm_cold_and_across_threads() {
    // RR samples its placement from a fractional LP solution with the
    // trial's seeded RNG and keeps its solver scratch in the cache, so it
    // gets the same pinned-seed guarantee checks as the paper's four:
    // bit-identical outcomes warm vs. cold and at 1/4/8 threads.
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 2.5,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let kind = MapperKind::RR;
    let mut trials: Vec<(u32, usize)> = Vec::new();
    for rep in 0..2u32 {
        for c in 0..2usize {
            trials.push((rep, c));
        }
    }
    let run_trial = |&(rep, c): &(u32, usize), cache: &mut MapCache| {
        let (torus, switched) = instantiate_both(&cluster, &scenario, rep, 2009);
        let inst = if c == 0 { &torus } else { &switched };
        let seed = inst.mapper_seed ^ ((kind.index() as u64) << 56);
        one_trial(&inst.phys, &inst.venv, kind, seed, cache)
    };

    let sequential: Vec<Outcome> = trials
        .iter()
        .map(|t| run_trial(t, &mut MapCache::new()))
        .collect();
    assert!(
        sequential.iter().any(Option::is_some),
        "RR failed every trial; the determinism comparison is vacuous"
    );
    for threads in [1, 4, 8] {
        let parallel =
            ParallelRunner::new(threads).run(trials.clone(), |t, cache| run_trial(&t, cache));
        assert_eq!(sequential, parallel, "RR diverged at {threads} threads");
    }
    // One warm cache serving every trial twice over must reproduce the
    // cold-cache reference exactly.
    let mut warm = MapCache::new();
    for t in &trials {
        run_trial(t, &mut warm);
    }
    let rewarmed: Vec<Outcome> = trials.iter().map(|t| run_trial(t, &mut warm)).collect();
    assert_eq!(sequential, rewarmed, "warm scratch changed RR outcomes");
}

#[test]
fn warm_cache_is_invisible_within_one_worker() {
    // The single-worker case isolates cache reuse from scheduling: one
    // warm cache serving every trial back-to-back must reproduce the
    // fresh-cache-per-trial reference exactly.
    let cluster = ClusterSpec::paper();
    let scenario = Scenario {
        ratio: 5.0,
        density: 0.015,
        workload: WorkloadKind::HighLevel,
    };
    let (torus, _) = instantiate_both(&cluster, &scenario, 0, 2009);

    let mut warm = MapCache::new();
    for kind in MapperKind::ALL {
        for round in 0..2 {
            let fresh = one_trial(
                &torus.phys,
                &torus.venv,
                kind,
                torus.mapper_seed,
                &mut MapCache::new(),
            );
            let reused = one_trial(&torus.phys, &torus.venv, kind, torus.mapper_seed, &mut warm);
            assert_eq!(fresh, reused, "{:?} round {round}", kind);
        }
    }
}
