//! # emumap-sim
//!
//! A compact discrete-event simulator standing in for CloudSim (the paper
//! evaluates with "the CloudSim simulation framework"; see DESIGN.md for
//! the substitution rationale):
//!
//! * [`engine`] — a deterministic event queue / clock;
//! * [`cpu`] — CloudSim-style time-shared host CPU simulation
//!   (proportional slowdown under oversubscription);
//! * [`network`] — flow-level transfer timing over mapped routes
//!   (reserved bandwidth + route latency; intra-host = instant);
//! * [`experiment`] — the BSP-style emulated experiment whose execution
//!   time the paper correlates (r ≈ 0.7) with the Eq. 10 objective.
//!
//! ```
//! use emumap_sim::{run_experiment, ExperimentSpec};
//! use emumap_graph::generators;
//! use emumap_model::{
//!     GuestSpec, HostSpec, Kbps, LinkSpec, Mapping, MemMb, Millis, Mips, Route, StorGb,
//!     VLinkSpec, VirtualEnvironment, VmmOverhead,
//! };
//!
//! let phys = PhysicalTopologyHelper::pair();
//! # use emumap_model::PhysicalTopology;
//! # struct PhysicalTopologyHelper;
//! # impl PhysicalTopologyHelper {
//! #     fn pair() -> PhysicalTopology {
//! #         PhysicalTopology::from_shape(
//! #             &generators::line(2),
//! #             std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(8192), StorGb(1000.0))),
//! #             LinkSpec::new(Kbps(1000.0), Millis(5.0)),
//! #             VmmOverhead::NONE,
//! #         )
//! #     }
//! # }
//! let mut venv = VirtualEnvironment::new();
//! let a = venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(64), StorGb(1.0)));
//! let b = venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(64), StorGb(1.0)));
//! venv.add_link(a, b, VLinkSpec::new(Kbps(100.0), Millis(60.0)));
//!
//! // Both guests co-located: they timeshare the 1000-MIPS host
//! // work-conservingly, so each round's 100-MI tasks finish in
//! // (100+100)/1000 = 0.2 s and communication is free.
//! let mapping = Mapping::new(vec![phys.hosts()[0]; 2], vec![Route::intra_host()]);
//! let result = run_experiment(&phys, &venv, &mapping, &ExperimentSpec::default());
//! assert!((result.total_s - 2.0).abs() < 1e-9); // 10 rounds x 0.2 s
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod engine;
pub mod experiment;
pub mod network;

pub use cpu::{
    host_makespan, host_makespan_with, simulate_host, simulate_host_with, CpuTask, RateModel,
};
pub use engine::{EventQueue, SimTime};
pub use experiment::{run_experiment, ExperimentResult, ExperimentSpec};
pub use network::{max_min_fair_rates, route_latency, transfer_time, NetworkModel};
