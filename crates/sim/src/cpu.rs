//! Time-shared host CPU simulation.
//!
//! Guests on a host timeshare its CPU under one of two [`RateModel`]s:
//! the paper's **work-conserving** no-reservation model (guests split the
//! whole host proportionally to their `vproc` weights — §3.2 makes CPU a
//! non-constraint, and §3.2's objective discussion says a high-load host
//! "decreases the performance of the virtual machines running on it"),
//! or CloudSim's **capped reservation** model (full demanded rate unless
//! oversubscribed). The work-conserving model is what couples the Eq. 10
//! objective to experiment runtime: per-host phase time is proportional
//! to `Σ vproc / capacity`, so the loaded host of an imbalanced mapping
//! stretches the whole experiment.
//!
//! Completion times are computed event-driven: when a guest finishes, the
//! remaining guests' rates rise, so the simulation advances in
//! piecewise-constant-rate segments through the shared
//! shared event queue in [`crate::engine`].

use crate::engine::{EventQueue, SimTime};
use serde::{Deserialize, Serialize};

/// One compute task: a guest's work for the current phase.
#[derive(Clone, Copy, Debug)]
pub struct CpuTask {
    /// Caller's identifier for the task (e.g. guest index).
    pub id: usize,
    /// CPU demand in MIPS (the guest's `vproc`).
    pub demand_mips: f64,
    /// Work to perform, in million instructions.
    pub work_mi: f64,
}

/// How a host's CPU is divided among resident guests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RateModel {
    /// **No CPU reservation** (the paper's model — §3.2 explicitly makes
    /// CPU a non-constraint): guests timeshare the whole host,
    /// proportionally to their `vproc` weights, and a guest alone on a
    /// big host runs *faster* than its nominal demand. Per-host phase
    /// time is directly proportional to `Σ vproc / capacity`, which is
    /// what couples the Eq. 10 objective to experiment runtime
    /// ("a high load ... decreases the performance of the virtual
    /// machines running on it").
    #[default]
    WorkConserving,
    /// CloudSim-style capped reservation: each guest runs at exactly its
    /// demanded MIPS unless the host is oversubscribed, in which case all
    /// guests slow proportionally. Kept for comparison/ablation.
    CappedReservation,
}

/// Simulates one host running `tasks` time-shared from time `start` under
/// the default [`RateModel::WorkConserving`] model; returns
/// `(task id, completion time)` for every task, in completion order
/// (deterministic: ties resolve by task submission order).
///
/// `capacity_mips` is the host's effective CPU. Zero-work tasks complete
/// immediately at `start`.
///
/// # Panics
/// Panics if any demand is non-positive while its work is positive, or the
/// capacity is non-positive with pending work.
pub fn simulate_host(
    capacity_mips: f64,
    tasks: &[CpuTask],
    start: SimTime,
) -> Vec<(usize, SimTime)> {
    simulate_host_with(capacity_mips, tasks, start, RateModel::WorkConserving)
}

/// [`simulate_host`] with an explicit [`RateModel`].
pub fn simulate_host_with(
    capacity_mips: f64,
    tasks: &[CpuTask],
    start: SimTime,
    model: RateModel,
) -> Vec<(usize, SimTime)> {
    #[derive(Clone, Copy)]
    struct Live {
        idx: usize,
        remaining: f64,
    }

    let mut done: Vec<(usize, SimTime)> = Vec::with_capacity(tasks.len());
    let mut live: Vec<Live> = Vec::new();
    for (idx, t) in tasks.iter().enumerate() {
        if t.work_mi <= 0.0 {
            done.push((t.id, start));
        } else {
            assert!(
                t.demand_mips > 0.0,
                "task {} has work but no CPU demand",
                t.id
            );
            live.push(Live {
                idx,
                remaining: t.work_mi,
            });
        }
    }
    if !live.is_empty() {
        assert!(capacity_mips > 0.0, "host has pending work but no capacity");
    }

    // Event-driven piecewise simulation: between guest completions all
    // rates are constant, so the next event is the minimum remaining/rate.
    let mut queue: EventQueue<()> = EventQueue::new();
    queue.schedule(start, ());
    queue.pop(); // position the clock at `start`
    let mut now = start.seconds();

    while !live.is_empty() {
        let total_demand: f64 = live.iter().map(|l| tasks[l.idx].demand_mips).sum();
        let scale = match model {
            RateModel::WorkConserving => capacity_mips / total_demand,
            RateModel::CappedReservation => {
                if total_demand <= capacity_mips {
                    1.0
                } else {
                    capacity_mips / total_demand
                }
            }
        };
        // Next completion under current rates.
        let mut best_dt = f64::INFINITY;
        for l in &live {
            let rate = tasks[l.idx].demand_mips * scale;
            let dt = l.remaining / rate;
            if dt < best_dt {
                best_dt = dt;
            }
        }
        let dt = best_dt;
        queue.schedule(SimTime(now + dt), ());
        let (t, ()) = queue.pop().expect("just scheduled");
        now = t.seconds();

        // Advance everyone, retire the finished (allow for float fuzz).
        let mut still_live = Vec::with_capacity(live.len());
        for mut l in live {
            let rate = tasks[l.idx].demand_mips * scale;
            l.remaining -= rate * dt;
            if l.remaining <= 1e-9 {
                done.push((tasks[l.idx].id, t));
            } else {
                still_live.push(l);
            }
        }
        live = still_live;
    }
    done
}

/// Convenience: the time at which the *last* task completes (under the
/// default work-conserving model).
pub fn host_makespan(capacity_mips: f64, tasks: &[CpuTask], start: SimTime) -> SimTime {
    host_makespan_with(capacity_mips, tasks, start, RateModel::WorkConserving)
}

/// [`host_makespan`] with an explicit [`RateModel`].
pub fn host_makespan_with(
    capacity_mips: f64,
    tasks: &[CpuTask],
    start: SimTime,
    model: RateModel,
) -> SimTime {
    simulate_host_with(capacity_mips, tasks, start, model)
        .into_iter()
        .map(|(_, t)| t)
        .fold(
            start,
            |acc, t| if t.seconds() > acc.seconds() { t } else { acc },
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: usize, demand: f64, work: f64) -> CpuTask {
        CpuTask {
            id,
            demand_mips: demand,
            work_mi: work,
        }
    }

    fn capped(capacity: f64, tasks: &[CpuTask], start: SimTime) -> Vec<(usize, SimTime)> {
        simulate_host_with(capacity, tasks, start, RateModel::CappedReservation)
    }

    // --- CappedReservation (CloudSim-style) semantics.

    #[test]
    fn capped_undersubscribed_host_runs_at_demand() {
        // 1000 MIPS host, two guests demanding 100 each: no contention.
        let out = capped(
            1000.0,
            &[t(0, 100.0, 200.0), t(1, 100.0, 400.0)],
            SimTime::ZERO,
        );
        let find = |id| out.iter().find(|(i, _)| *i == id).unwrap().1.seconds();
        assert!((find(0) - 2.0).abs() < 1e-9);
        assert!((find(1) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn capped_oversubscribed_host_scales_proportionally() {
        // 100 MIPS host, two guests each demanding 100: each runs at 50.
        let out = capped(
            100.0,
            &[t(0, 100.0, 100.0), t(1, 100.0, 100.0)],
            SimTime::ZERO,
        );
        for (_, time) in out {
            assert!((time.seconds() - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    fn capped_rates_rise_when_a_guest_finishes() {
        // 100 MIPS host: guest 0 has 50 MI, guest 1 has 150 MI, both
        // demand 100 MIPS. Phase 1 (both live): rate 50 each; guest 0 done
        // at t=1 (50 MI), guest 1 has 100 MI left. Phase 2: guest 1 alone
        // at min(demand, capacity)=100 -> +1 s. Total 2 s, NOT the 3 s a
        // fixed 50-MIPS rate would give.
        let out = capped(
            100.0,
            &[t(0, 100.0, 50.0), t(1, 100.0, 150.0)],
            SimTime::ZERO,
        );
        let find = |id| out.iter().find(|(i, _)| *i == id).unwrap().1.seconds();
        assert!((find(0) - 1.0).abs() < 1e-9);
        assert!((find(1) - 2.0).abs() < 1e-9);
    }

    // --- WorkConserving (the paper's no-reservation) semantics.

    #[test]
    fn work_conserving_uses_the_whole_host() {
        // A lone guest demanding 100 MIPS on a 1000 MIPS host computes at
        // the full 1000 MIPS — 10x its nominal rate.
        let out = simulate_host(1000.0, &[t(0, 100.0, 100.0)], SimTime::ZERO);
        assert!((out[0].1.seconds() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn work_conserving_time_tracks_utilization() {
        // Phase time on a host = work_factor x (total demand / capacity)
        // when all guests carry work proportional to their demand: here
        // work = 1 s x demand, total demand 300 on a 1000 MIPS host ->
        // everyone finishes at 0.3 s.
        let tasks = [t(0, 100.0, 100.0), t(1, 200.0, 200.0)];
        let out = simulate_host(1000.0, &tasks, SimTime::ZERO);
        for (_, time) in out {
            assert!((time.seconds() - 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn work_conserving_shares_by_demand_weight() {
        // Demands 100 vs 300 on a 400 MIPS host: rates 100 and 300; with
        // equal work 300 MI, guest 0 finishes at 3 s... but when guest 1
        // finishes at 1 s, guest 0 takes the whole host (400 MIPS) for its
        // remaining 200 MI -> total 1 + 0.5 = 1.5 s.
        let out = simulate_host(
            400.0,
            &[t(0, 100.0, 300.0), t(1, 300.0, 300.0)],
            SimTime::ZERO,
        );
        let find = |id| out.iter().find(|(i, _)| *i == id).unwrap().1.seconds();
        assert!((find(1) - 1.0).abs() < 1e-9);
        assert!((find(0) - 1.5).abs() < 1e-9);
    }

    // --- Shared behaviour.

    #[test]
    fn heterogeneous_demands_share_proportionally() {
        // 300 MIPS host; demands 100 and 200, works 100 and 200: total
        // demand exactly equals capacity, so both finish at t=1 under
        // either model.
        for model in [RateModel::WorkConserving, RateModel::CappedReservation] {
            let out = simulate_host_with(
                300.0,
                &[t(0, 100.0, 100.0), t(1, 200.0, 200.0)],
                SimTime::ZERO,
                model,
            );
            for (_, time) in out {
                assert!((time.seconds() - 1.0).abs() < 1e-9, "{model:?}");
            }
        }
    }

    #[test]
    fn start_offset_is_respected() {
        let out = simulate_host(100.0, &[t(0, 100.0, 100.0)], SimTime(10.0));
        assert!((out[0].1.seconds() - 11.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_completes_immediately() {
        let out = capped(100.0, &[t(0, 100.0, 0.0), t(1, 100.0, 100.0)], SimTime(5.0));
        let find = |id| out.iter().find(|(i, _)| *i == id).unwrap().1.seconds();
        assert_eq!(find(0), 5.0);
        assert!((find(1) - 6.0).abs() < 1e-9);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let out = simulate_host(100.0, &[], SimTime::ZERO);
        assert!(out.is_empty());
        assert_eq!(host_makespan(100.0, &[], SimTime(3.0)), SimTime(3.0));
    }

    #[test]
    fn makespan_is_last_completion() {
        let tasks = [t(0, 100.0, 100.0), t(1, 100.0, 300.0)];
        let m = host_makespan_with(1000.0, &tasks, SimTime::ZERO, RateModel::CappedReservation);
        assert!((m.seconds() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn balanced_hosts_beat_imbalanced_packing() {
        // The paper's core claim in miniature: the same four guests on two
        // 100-MIPS hosts finish sooner spread 2+2 than packed 4+0 — under
        // both rate models.
        let guests = [
            t(0, 100.0, 100.0),
            t(1, 100.0, 100.0),
            t(2, 100.0, 100.0),
            t(3, 100.0, 100.0),
        ];
        for model in [RateModel::WorkConserving, RateModel::CappedReservation] {
            let packed = host_makespan_with(100.0, &guests, SimTime::ZERO, model);
            let spread_a = host_makespan_with(100.0, &guests[..2], SimTime::ZERO, model);
            let spread_b = host_makespan_with(100.0, &guests[2..], SimTime::ZERO, model);
            let spread = spread_a.seconds().max(spread_b.seconds());
            assert!(packed.seconds() > spread, "{model:?}");
            assert!((packed.seconds() - 4.0).abs() < 1e-9);
            assert!((spread - 2.0).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "no capacity")]
    fn zero_capacity_with_work_panics() {
        let _ = simulate_host(0.0, &[t(0, 10.0, 10.0)], SimTime::ZERO);
    }
}
