//! The emulated experiment whose execution time the paper correlates with
//! the objective function (§5.2: "we found a correlation of 0.7 between the
//! objective function and the execution time of the experiment in the
//! simulated environment").
//!
//! The model is a BSP-style distributed application — the common shape of
//! both workload families (grid/cloud apps and P2P protocols exchange
//! messages between work phases):
//!
//! * the run consists of [`ExperimentSpec::rounds`] rounds;
//! * in each round, every guest computes `work_factor x vproc` million
//!   instructions (i.e. nominally `work_factor` seconds at its demanded
//!   rate) on its host's time-shared CPU ([`crate::cpu`]);
//! * then every virtual link carries one message of
//!   [`ExperimentSpec::msg_kbits`], starting when both endpoints finish
//!   computing ([`crate::network`]);
//! * a global barrier ends the round when every transfer completes.
//!
//! The mapping enters through two channels: CPU oversubscription stretches
//! compute phases on overloaded hosts (what Eq. 10 minimizes), and
//! co-location/short routes shrink communication phases (what Hosting and
//! Networking optimize).

use crate::cpu::{simulate_host_with, CpuTask, RateModel};
use crate::engine::SimTime;
use crate::network::{max_min_fair_rates, transfer_time, NetworkModel};
use emumap_graph::NodeId;
use emumap_model::{Mapping, PhysicalTopology, VirtualEnvironment};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Parameters of the emulated experiment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Compute/communicate rounds.
    pub rounds: usize,
    /// Seconds of nominal compute per guest per round (work in MI is
    /// `work_factor x vproc`).
    pub work_factor: f64,
    /// Message size per virtual link per round, in kilobits.
    pub msg_kbits: f64,
    /// CPU sharing model (default: the paper's no-reservation
    /// work-conserving share — see [`RateModel`]).
    pub rate_model: RateModel,
    /// Network bandwidth model (default: reservation-enforced, the
    /// paper's constraint semantics — see [`NetworkModel`]).
    pub network_model: NetworkModel,
}

impl Default for ExperimentSpec {
    fn default() -> Self {
        // 10 rounds of 1 s nominal compute; 50 kbit messages (sub-second on
        // even the slowest Table 1 virtual links).
        ExperimentSpec {
            rounds: 10,
            work_factor: 1.0,
            msg_kbits: 50.0,
            rate_model: RateModel::WorkConserving,
            network_model: NetworkModel::Reserved,
        }
    }
}

/// Result of simulating one experiment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Total simulated execution time, in seconds.
    pub total_s: f64,
    /// Per-round durations.
    pub round_s: Vec<f64>,
    /// Time the compute phases contributed (max per round, summed).
    pub compute_s: f64,
    /// Time the communication phases contributed.
    pub network_s: f64,
}

/// Simulates the experiment on a mapped testbed.
///
/// Deterministic: the result is a pure function of the inputs.
pub fn run_experiment(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    mapping: &Mapping,
    spec: &ExperimentSpec,
) -> ExperimentResult {
    // Group guests by host once.
    let mut by_host: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for g in venv.guest_ids() {
        by_host
            .entry(mapping.host_of(g))
            .or_default()
            .push(g.index());
    }

    let mut round_s = Vec::with_capacity(spec.rounds);
    let mut compute_total = 0.0;
    let mut network_total = 0.0;

    // Under the contended model, allocated rates depend only on the
    // mapping, so compute them once.
    let fair_rates = match spec.network_model {
        NetworkModel::Reserved => None,
        NetworkModel::MaxMinFair => Some(max_min_fair_rates(phys, venv, mapping)),
    };

    // Rounds are statistically identical under this model (no state carries
    // over except the clock), so simulate one round and scale — but keep
    // the loop structure so future extensions (per-round workloads) slot
    // in; the cost is negligible because guests-per-host is small.
    for _ in 0..spec.rounds {
        // --- Compute phase: per-host time-shared simulation.
        let mut finish_at = vec![0.0f64; venv.guest_count()];
        let mut compute_makespan = 0.0f64;
        for (&host, guests) in &by_host {
            let capacity = phys.effective_proc(host).value();
            let tasks: Vec<CpuTask> = guests
                .iter()
                .map(|&gi| {
                    let demand = venv
                        .guest(emumap_graph::NodeId::from_index(gi))
                        .proc
                        .value();
                    CpuTask {
                        id: gi,
                        demand_mips: demand,
                        work_mi: spec.work_factor * demand,
                    }
                })
                .collect();
            for (gi, t) in simulate_host_with(capacity, &tasks, SimTime::ZERO, spec.rate_model) {
                finish_at[gi] = t.seconds();
                compute_makespan = compute_makespan.max(t.seconds());
            }
        }

        // --- Communication phase: each link's exchange starts when both
        // endpoints finished computing.
        let mut round_end = compute_makespan;
        for l in venv.link_ids() {
            let (a, b) = venv.link_endpoints(l);
            let start = finish_at[a.index()].max(finish_at[b.index()]);
            let dt = match &fair_rates {
                None => transfer_time(phys, venv, mapping, l, spec.msg_kbits).seconds(),
                Some(rates) => {
                    let rate = rates[l.index()];
                    let serialization = if rate.is_finite() {
                        spec.msg_kbits / rate
                    } else {
                        0.0
                    };
                    serialization + crate::network::route_latency(phys, mapping, l).seconds()
                }
            };
            round_end = round_end.max(start + dt);
        }

        round_s.push(round_end);
        compute_total += compute_makespan;
        network_total += round_end - compute_makespan;
    }

    ExperimentResult {
        total_s: round_s.iter().sum(),
        round_s,
        compute_s: compute_total,
        network_s: network_total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{
        GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, Route, StorGb, VLinkSpec,
        VmmOverhead,
    };

    fn phys_pair(cap: f64) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::line(2),
            std::iter::repeat(HostSpec::new(Mips(cap), MemMb(8192), StorGb(1000.0))),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn venv_pair(demand: f64, bw: f64) -> VirtualEnvironment {
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(demand), MemMb(64), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(demand), MemMb(64), StorGb(1.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(bw), Millis(60.0)));
        venv
    }

    #[test]
    fn unloaded_colocated_run_takes_nominal_time() {
        let phys = phys_pair(1000.0);
        let venv = venv_pair(100.0, 100.0);
        let m = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[0]],
            vec![Route::intra_host()],
        );
        let spec = ExperimentSpec {
            rounds: 5,
            work_factor: 2.0,
            msg_kbits: 100.0,
            rate_model: RateModel::CappedReservation,
            network_model: NetworkModel::Reserved,
        };
        let r = run_experiment(&phys, &venv, &m, &spec);
        // Each round: 2 s compute (no contention), 0 s network (intra-host).
        assert!((r.total_s - 10.0).abs() < 1e-9);
        assert!((r.compute_s - 10.0).abs() < 1e-9);
        assert!(r.network_s.abs() < 1e-9);
        assert_eq!(r.round_s.len(), 5);
    }

    #[test]
    fn oversubscription_stretches_the_run() {
        // Both guests (100 MIPS demand each) on a 100 MIPS host: rates
        // halve, rounds double.
        let phys = phys_pair(100.0);
        let venv = venv_pair(100.0, 100.0);
        let packed = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[0]],
            vec![Route::intra_host()],
        );
        let e: Vec<_> = phys.graph().edge_ids().collect();
        let spread = Mapping::new(vec![phys.hosts()[0], phys.hosts()[1]], vec![Route::new(e)]);
        let spec = ExperimentSpec {
            rounds: 1,
            work_factor: 1.0,
            msg_kbits: 0.0,
            rate_model: RateModel::CappedReservation,
            network_model: NetworkModel::Reserved,
        };
        let packed_r = run_experiment(&phys, &venv, &packed, &spec);
        let spread_r = run_experiment(&phys, &venv, &spread, &spec);
        assert!((packed_r.total_s - 2.0).abs() < 1e-9);
        // Spread: 1 s compute + route latency only (msg 0 kbit still pays
        // propagation 5 ms).
        assert!((spread_r.total_s - 1.005).abs() < 1e-9);
        assert!(packed_r.total_s > spread_r.total_s);
    }

    #[test]
    fn network_phase_costs_serialization_plus_latency() {
        let phys = phys_pair(1000.0);
        let venv = venv_pair(100.0, 100.0);
        let e: Vec<_> = phys.graph().edge_ids().collect();
        let m = Mapping::new(vec![phys.hosts()[0], phys.hosts()[1]], vec![Route::new(e)]);
        let spec = ExperimentSpec {
            rounds: 1,
            work_factor: 1.0,
            msg_kbits: 100.0,
            rate_model: RateModel::CappedReservation,
            network_model: NetworkModel::Reserved,
        };
        let r = run_experiment(&phys, &venv, &m, &spec);
        // 1 s compute + (100 kbit / 100 kbps = 1 s) + 5 ms.
        assert!((r.total_s - 2.005).abs() < 1e-9);
        assert!((r.network_s - 1.005).abs() < 1e-9);
    }

    #[test]
    fn staggered_compute_staggers_transfers() {
        // Guest 0 finishes at 1 s, guest 1 (double work via double demand…
        // no: same demand, more work) — model work via work_factor is
        // uniform, so instead oversubscribe one host to delay its guest.
        let phys = phys_pair(100.0);
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(64), StorGb(1.0)));
        let _b = venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(64), StorGb(1.0)));
        let c = venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(64), StorGb(1.0)));
        venv.add_link(a, c, VLinkSpec::new(Kbps(100.0), Millis(60.0)));
        // a alone on host 0 (finishes at 1 s); b and c share host 1
        // (finish at 2 s). The a-c transfer starts at 2 s.
        let e: Vec<_> = phys.graph().edge_ids().collect();
        let m = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[1], phys.hosts()[1]],
            vec![Route::new(e)],
        );
        let spec = ExperimentSpec {
            rounds: 1,
            work_factor: 1.0,
            msg_kbits: 100.0,
            rate_model: RateModel::CappedReservation,
            network_model: NetworkModel::Reserved,
        };
        let r = run_experiment(&phys, &venv, &m, &spec);
        // 2 s (c's compute) + 1 s serialization + 5 ms.
        assert!((r.total_s - 3.005).abs() < 1e-9, "got {}", r.total_s);
    }

    #[test]
    fn contended_network_model_shares_links() {
        // Two flows over the same physical edge: under reservations each
        // runs at its vbw; under max-min fair they split the 1000 kbps
        // edge 500/500 — faster than a 100 kbps reservation.
        let phys = phys_pair(1000.0);
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(64), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(64), StorGb(1.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(100.0), Millis(60.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(100.0), Millis(60.0)));
        let e: Vec<_> = phys.graph().edge_ids().collect();
        let m = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[1]],
            vec![Route::new(e.clone()), Route::new(e)],
        );
        let reserved = ExperimentSpec {
            rounds: 1,
            work_factor: 0.0,
            msg_kbits: 100.0,
            rate_model: RateModel::CappedReservation,
            network_model: NetworkModel::Reserved,
        };
        let fair = ExperimentSpec {
            network_model: NetworkModel::MaxMinFair,
            ..reserved
        };
        let t_reserved = run_experiment(&phys, &venv, &m, &reserved).total_s;
        let t_fair = run_experiment(&phys, &venv, &m, &fair).total_s;
        // Reserved: 100 kbit / 100 kbps = 1 s + 5 ms.
        assert!((t_reserved - 1.005).abs() < 1e-9);
        // Fair: 100 kbit / 500 kbps = 0.2 s + 5 ms.
        assert!((t_fair - 0.205).abs() < 1e-9);
    }

    #[test]
    fn rounds_accumulate() {
        let phys = phys_pair(1000.0);
        let venv = venv_pair(50.0, 100.0);
        let m = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[0]],
            vec![Route::intra_host()],
        );
        let one = run_experiment(
            &phys,
            &venv,
            &m,
            &ExperimentSpec {
                rounds: 1,
                work_factor: 1.0,
                msg_kbits: 10.0,
                rate_model: RateModel::CappedReservation,
                network_model: NetworkModel::Reserved,
            },
        );
        let five = run_experiment(
            &phys,
            &venv,
            &m,
            &ExperimentSpec {
                rounds: 5,
                work_factor: 1.0,
                msg_kbits: 10.0,
                rate_model: RateModel::CappedReservation,
                network_model: NetworkModel::Reserved,
            },
        );
        assert!((five.total_s - 5.0 * one.total_s).abs() < 1e-9);
    }

    #[test]
    fn better_balanced_mapping_runs_faster_end_to_end() {
        // Four equal guests, two 100-MIPS hosts: 3+1 vs 2+2.
        let phys = phys_pair(100.0);
        let mut venv = VirtualEnvironment::new();
        let g: Vec<_> = (0..4)
            .map(|_| venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(64), StorGb(1.0))))
            .collect();
        let _ = g;
        let h = phys.hosts();
        let lopsided = Mapping::new(vec![h[0], h[0], h[0], h[1]], vec![]);
        let balanced = Mapping::new(vec![h[0], h[0], h[1], h[1]], vec![]);
        let spec = ExperimentSpec {
            rounds: 3,
            work_factor: 1.0,
            msg_kbits: 0.0,
            rate_model: RateModel::CappedReservation,
            network_model: NetworkModel::Reserved,
        };
        let slow = run_experiment(&phys, &venv, &lopsided, &spec);
        let fast = run_experiment(&phys, &venv, &balanced, &spec);
        assert!(slow.total_s > fast.total_s);
        assert!((slow.total_s - 9.0).abs() < 1e-9); // 3 rounds x 3 s
        assert!((fast.total_s - 6.0).abs() < 1e-9); // 3 rounds x 2 s
    }
}
