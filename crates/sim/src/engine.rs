//! A small discrete-event simulation engine.
//!
//! This is the substrate standing in for CloudSim (§5: "The CloudSim
//! simulation framework was used in the tests"): a deterministic event
//! queue with a monotonic clock. Events carry a generic payload; ties on
//! the timestamp break by insertion order, so simulations are exactly
//! reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time, in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, PartialOrd)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Raw seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }
}

impl std::ops::Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

struct Scheduled<E> {
    time: f64,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops
        // first, FIFO within a timestamp.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: f64,
    seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            seq: 0,
            processed: 0,
        }
    }

    /// The current simulation time (the timestamp of the last popped
    /// event, or zero).
    pub fn now(&self) -> SimTime {
        SimTime(self.now)
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` lies in the past (events may be scheduled *at* the
    /// current instant) or is not finite.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(at.0.is_finite(), "event time must be finite, got {}", at.0);
        assert!(
            at.0 >= self.now,
            "cannot schedule into the past ({} < {})",
            at.0,
            self.now
        );
        self.heap.push(Scheduled {
            time: at.0,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, payload: E) {
        assert!(delay.0 >= 0.0, "negative delay {}", delay.0);
        self.schedule(SimTime(self.now + delay.0), payload);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now, "clock went backwards");
        self.now = ev.time;
        self.processed += 1;
        Some((SimTime(ev.time), ev.payload))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| SimTime(e.time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(3.0), "c");
        q.schedule(SimTime(1.0), "a");
        q.schedule(SimTime(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime(3.0));
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(1.0), "first");
        q.schedule(SimTime(1.0), "second");
        q.schedule(SimTime(1.0), "third");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
        assert_eq!(q.pop().unwrap().1, "third");
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(5.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(SimTime(5.0)));
        q.pop();
        assert_eq!(q.now(), SimTime(5.0));
        assert!(q.is_empty());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(2.0), 1);
        q.pop();
        q.schedule_in(SimTime(3.0), 2);
        assert_eq!(q.pop(), Some((SimTime(5.0), 2)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(2.0), ());
        q.pop();
        q.schedule(SimTime(1.0), ());
    }

    #[test]
    fn scheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(2.0), 1);
        q.pop();
        q.schedule(SimTime(2.0), 2);
        assert_eq!(q.pop(), Some((SimTime(2.0), 2)));
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(SimTime(f64::NAN), ());
    }
}
