//! Flow-level network timing over mapped routes.
//!
//! The emulation testbed *reserves* each virtual link's bandwidth along its
//! physical route (Eq. 9 guarantees the reservations fit), so a transfer on
//! virtual link `j` proceeds at exactly `vbw_j` and experiences the route's
//! cumulative latency. Intra-host links are the §3.2 special case: infinite
//! bandwidth, zero latency — transfers complete instantly. This is where a
//! mapping's co-location decisions pay off in experiment runtime.

use crate::engine::SimTime;
use emumap_model::{Mapping, PhysicalTopology, VLinkId, VirtualEnvironment};
use std::collections::HashMap;

/// How virtual-link transfers obtain bandwidth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NetworkModel {
    /// The testbed enforces each link's `vbw` reservation (Eq. 9
    /// guarantees the reservations fit): a transfer proceeds at exactly
    /// `vbw`. The default, matching the paper's constraint model.
    #[default]
    Reserved,
    /// No enforcement: concurrent transfers share each physical link
    /// max–min fairly (see [`max_min_fair_rates`]). Work-conserving, so
    /// lone flows go faster than their reservation and congested flows
    /// slower — useful for studying what reservation enforcement buys.
    MaxMinFair,
}

/// Time for one message of `kbits` kilobits over virtual link `link` under
/// `mapping`: serialization at the reserved bandwidth plus the route's
/// propagation latency. Zero for intra-host links.
pub fn transfer_time(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    mapping: &Mapping,
    link: VLinkId,
    kbits: f64,
) -> SimTime {
    let route = mapping.route_of(link);
    if route.is_intra_host() {
        return SimTime::ZERO;
    }
    let spec = venv.link(link);
    let serialization_s = kbits / spec.bw.value();
    let latency_s: f64 = route
        .edges()
        .iter()
        .map(|&e| phys.link(e).lat.value() / 1000.0)
        .sum();
    SimTime(serialization_s + latency_s)
}

/// The latency (seconds) of a mapped route, zero intra-host.
pub fn route_latency(phys: &PhysicalTopology, mapping: &Mapping, link: VLinkId) -> SimTime {
    SimTime(
        mapping
            .route_of(link)
            .edges()
            .iter()
            .map(|&e| phys.link(e).lat.value() / 1000.0)
            .sum(),
    )
}

/// Max–min fair bandwidth allocation: when the testbed does **not**
/// enforce per-link reservations, simultaneous transfers share each
/// physical link fairly. Returns, for every virtual link, its allocated
/// rate in kbps (infinite for intra-host links).
///
/// Progressive-filling algorithm: repeatedly find the most constrained
/// physical edge (smallest `residual capacity / unfixed flows`), freeze
/// every flow crossing it at that fair share, and subtract. Unfrozen flows
/// keep absorbing leftover capacity, so the allocation is work-conserving
/// — the network analogue of [`crate::cpu::RateModel::WorkConserving`].
pub fn max_min_fair_rates(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    mapping: &Mapping,
) -> Vec<f64> {
    let m = venv.link_count();
    let mut rate = vec![f64::INFINITY; m];

    // Flows per physical edge.
    let mut flows_on: HashMap<usize, Vec<usize>> = HashMap::new();
    let mut unfixed: Vec<bool> = vec![false; m];
    for l in venv.link_ids() {
        let route = mapping.route_of(l);
        if route.is_intra_host() {
            continue; // stays infinite
        }
        unfixed[l.index()] = true;
        for &e in route.edges() {
            flows_on.entry(e.index()).or_default().push(l.index());
        }
    }
    let mut capacity: HashMap<usize, f64> = flows_on
        .keys()
        .map(|&e| (e, phys.link(emumap_graph::EdgeId::from_index(e)).bw.value()))
        .collect();

    while unfixed.iter().any(|&u| u) {
        // Most constrained edge.
        let mut best: Option<(usize, f64)> = None;
        for (&e, flows) in &flows_on {
            let active = flows.iter().filter(|&&f| unfixed[f]).count();
            if active == 0 {
                continue;
            }
            let fair = capacity[&e] / active as f64;
            if best.map(|(_, b)| fair < b).unwrap_or(true) {
                best = Some((e, fair));
            }
        }
        let Some((edge, fair)) = best else { break };
        // Freeze every unfixed flow crossing it, subtracting its rate from
        // all its edges.
        let to_fix: Vec<usize> = flows_on[&edge]
            .iter()
            .copied()
            .filter(|&f| unfixed[f])
            .collect();
        for f in to_fix {
            unfixed[f] = false;
            rate[f] = fair;
            let route = mapping.route_of(emumap_graph::EdgeId::from_index(f));
            for &e in route.edges() {
                *capacity.get_mut(&e.index()).expect("edge registered") -= fair;
            }
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{
        GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, Route, StorGb, VLinkSpec,
        VmmOverhead,
    };

    fn setup() -> (PhysicalTopology, VirtualEnvironment) {
        let phys = PhysicalTopology::from_shape(
            &generators::line(3),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(100.0), Millis(60.0)));
        (phys, venv)
    }

    #[test]
    fn intra_host_transfer_is_instant() {
        let (phys, venv) = setup();
        let m = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[0]],
            vec![Route::intra_host()],
        );
        let l = venv.link_ids().next().unwrap();
        assert_eq!(transfer_time(&phys, &venv, &m, l, 1000.0), SimTime::ZERO);
        assert_eq!(route_latency(&phys, &m, l), SimTime::ZERO);
    }

    #[test]
    fn inter_host_transfer_serializes_at_reserved_bandwidth() {
        let (phys, venv) = setup();
        let edges: Vec<_> = phys.graph().edge_ids().collect();
        let m = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[2]],
            vec![Route::new(edges)],
        );
        let l = venv.link_ids().next().unwrap();
        // 100 kbits at 100 kbps = 1 s; plus 2 hops x 5 ms = 0.01 s.
        let t = transfer_time(&phys, &venv, &m, l, 100.0);
        assert!((t.seconds() - 1.01).abs() < 1e-9);
        assert!((route_latency(&phys, &m, l).seconds() - 0.01).abs() < 1e-12);
    }

    #[test]
    fn max_min_fair_splits_a_shared_edge() {
        let (phys, _) = setup();
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(100.0), Millis(60.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(400.0), Millis(60.0)));
        let first_edge = phys.graph().edge_ids().next().unwrap();
        let m = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[1]],
            vec![Route::new(vec![first_edge]), Route::new(vec![first_edge])],
        );
        // 1000 kbps physical edge shared by two flows: 500 each, whatever
        // they "reserved".
        let rates = max_min_fair_rates(&phys, &venv, &m);
        assert_eq!(rates, vec![500.0, 500.0]);
    }

    #[test]
    fn max_min_fair_gives_leftovers_to_unconstrained_flows() {
        // Flow 0 crosses edges e0 and e1; flow 1 crosses only e0. Make e1
        // narrow by committing... capacities are physical, so instead use
        // a 3-host line where flow 0 goes two hops and flow 1 one hop:
        // both edges 1000 kbps -> each flow gets 500 on e0; flow 0 is then
        // limited to 500 on e1 too (it is alone there, but its bottleneck
        // is e0). Max-min: both 500.
        let (phys, _) = setup();
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0)));
        let c = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0)));
        venv.add_link(a, c, VLinkSpec::new(Kbps(100.0), Millis(60.0))); // 2 hops
        venv.add_link(a, b, VLinkSpec::new(Kbps(100.0), Millis(60.0))); // 1 hop
        let edges: Vec<_> = phys.graph().edge_ids().collect();
        let m = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[1], phys.hosts()[2]],
            vec![Route::new(edges.clone()), Route::new(vec![edges[0]])],
        );
        let rates = max_min_fair_rates(&phys, &venv, &m);
        assert_eq!(rates, vec![500.0, 500.0]);
    }

    #[test]
    fn max_min_fair_intra_host_is_infinite() {
        let (phys, venv) = setup();
        let m = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[0]],
            vec![Route::intra_host()],
        );
        let rates = max_min_fair_rates(&phys, &venv, &m);
        assert!(rates[0].is_infinite());
    }

    #[test]
    fn max_min_fair_disjoint_flows_get_full_links() {
        let (phys, _) = setup();
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0)));
        let c = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(64), StorGb(1.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(1.0), Millis(60.0)));
        venv.add_link(b, c, VLinkSpec::new(Kbps(1.0), Millis(60.0)));
        let edges: Vec<_> = phys.graph().edge_ids().collect();
        let m = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[1], phys.hosts()[2]],
            vec![Route::new(vec![edges[0]]), Route::new(vec![edges[1]])],
        );
        let rates = max_min_fair_rates(&phys, &venv, &m);
        assert_eq!(rates, vec![1000.0, 1000.0]);
    }

    #[test]
    fn longer_routes_cost_more_latency() {
        let (phys, venv) = setup();
        let edges: Vec<_> = phys.graph().edge_ids().collect();
        let l = venv.link_ids().next().unwrap();
        let one_hop = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[1]],
            vec![Route::new(vec![edges[0]])],
        );
        let two_hops = Mapping::new(
            vec![phys.hosts()[0], phys.hosts()[2]],
            vec![Route::new(edges)],
        );
        assert!(
            transfer_time(&phys, &venv, &two_hops, l, 10.0).seconds()
                > transfer_time(&phys, &venv, &one_hop, l, 10.0).seconds()
        );
    }
}
