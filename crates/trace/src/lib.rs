//! Structured observability for the mapping pipeline.
//!
//! The core pipeline emits [`TraceEvent`]s into an [`EventSink`] behind a
//! [`Tracer`]. A disabled tracer is a `None` — [`Tracer::emit`] takes a
//! closure so that event construction (string formatting, counter
//! snapshots) is never even evaluated unless a sink is attached. Three
//! sinks ship in-tree, mirroring how the rest of the workspace vendors
//! its dependencies:
//!
//! - [`NullSink`]: enabled but discards everything — measures the pure
//!   dispatch overhead in benches.
//! - [`RingSink`]: bounded in-memory ring buffer — what tests inspect.
//! - [`JsonlSink`]: one JSON object per line via the vendored
//!   `serde_json`, the `--trace <path>` file format.
//!
//! Events deliberately split *decision* fields (which links routed, how
//! many co-locations, how many migration moves) from *volatile* fields
//! (wall-clock spans, cache hit counters). The decision stream is a pure
//! function of the inputs and RNG seed; the volatile fields depend on
//! machine load and cache warmth. [`TraceEvent::redact_volatile`] zeroes
//! the latter so determinism tests can compare warm- and cold-cache runs
//! event-for-event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{BufWriter, Write};
use std::path::Path;

/// The three stages of the paper's pipeline (§4), reused by every mapper
/// that reports spans (greedy mappers skip Migration; annealing reports
/// its Metropolis loop as Migration).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Guest placement (co-location + first-fit).
    Hosting,
    /// Load-balancing migration (or the annealing loop).
    Migration,
    /// Per-link route search.
    Networking,
    /// Exact branch-and-bound search (the certification oracle, not a
    /// pipeline stage — appears after Networking in trace order).
    Exact,
}

/// Counters snapshotted into a [`TraceEvent::PhaseEnd`]. All fields
/// default to zero; each phase fills only the ones it owns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseCounters {
    /// Hosting: link endpoints placed together on one host.
    pub colocation_hits: u64,
    /// Hosting: placements that fell back to first-fit after co-location
    /// was impossible.
    pub first_fit_fallbacks: u64,
    /// Migration: moves (or annealing proposals) actually performed.
    pub moves_accepted: u64,
    /// Migration: candidate moves evaluated but not taken.
    pub moves_rejected: u64,
    /// Migration: candidate moves whose energy was evaluated (accepted
    /// plus rejected). Deterministic — a pure function of the decision
    /// stream.
    pub proposals_evaluated: u64,
    /// Migration: hypothetical evaluations served by the O(1)/O(degree)
    /// delta paths (objective accumulator + CSR bandwidth delta) instead
    /// of a full recompute. Deterministic.
    pub delta_evaluations: u64,
    /// Migration: full O(hosts) objective evaluations (accumulator builds
    /// and periodic drift refreshes). Deterministic — refresh cadence is
    /// driven by update counts, not wall clock.
    pub full_evaluations: u64,
    /// Networking: A*Prune nodes expanded.
    pub astar_expansions: u64,
    /// Networking: A*Prune nodes pushed onto the open list.
    pub astar_pushed: u64,
    /// Networking: DFS backtrack steps (baseline mappers).
    pub dfs_backtracks: u64,
    /// Networking: `ar[]` table misses — Dijkstra runs the `MapCache`
    /// could not avoid. Volatile: depends on cache warmth.
    pub dijkstra_runs: u64,
    /// Networking: `ar[]` table hits served by the `MapCache`.
    /// Volatile: depends on cache warmth.
    pub cache_hits: u64,
    /// Exact: branch-and-bound search nodes expanded. Deterministic —
    /// the search order is a pure function of the instance.
    pub exact_nodes_expanded: u64,
    /// Exact: subtrees pruned (bound, capacity, or latency).
    pub exact_nodes_pruned: u64,
    /// Migration (parallel tempering): temperature-exchange attempts
    /// between adjacent replicas at round checkpoints. Deterministic —
    /// a pure function of the ladder size and round count.
    pub replica_exchanges: u64,
    /// Migration (parallel tempering): exchange attempts accepted by the
    /// Metropolis criterion. Deterministic — the swap RNG is seeded.
    pub exchange_accepts: u64,
    /// Hosting (randomized rounding): multiplicative-weights iterations
    /// of the fractional packing-LP solver. Deterministic — a pure
    /// function of the instance and the solver configuration.
    pub lp_iterations: u64,
    /// Hosting (randomized rounding): placement samples drawn from the
    /// fractional solution before one passed the feasibility prechecks.
    /// Deterministic — driven by the seeded RNG.
    pub rounding_attempts: u64,
    /// Hosting (randomized rounding): per-guest repairs applied while
    /// rounding (capacity fallbacks away from the sampled host).
    /// Deterministic.
    pub repairs: u64,
    /// Exact (Lagrangian bound): dual evaluations performed across the
    /// search — at least one per expanded node when the Lagrangian bound
    /// is active, exactly zero under the water-filling bound.
    /// Deterministic — the ascent is a pure function of the instance.
    pub subgradient_iters: u64,
    /// Exact (Lagrangian bound): nodes where the Lagrangian bound
    /// strictly exceeded the water-filling bound. Deterministic.
    pub bound_improvements: u64,
    /// Exact (Lagrangian bound): bound prunes only the Lagrangian bound
    /// fired (the water-filling bound alone would have kept searching).
    /// Always ≤ `exact_nodes_pruned`. Deterministic.
    pub nodes_pruned_lagrangian: u64,
    /// Exact (epoch-parallel engine): epoch barriers completed. Every
    /// worker participates in every epoch, so each per-worker snapshot
    /// reports the same *global* value (an equality contract, not a
    /// sum), and the value is thread-count-invariant. Zero under the
    /// sequential engine. Deterministic.
    pub epochs: u64,
    /// Exact (epoch-parallel engine): frontier nodes a worker processed
    /// that were generated by a *different* worker in an earlier epoch.
    /// The one thread-count-VARIANT Exact counter (always zero at one
    /// worker) — excluded from cross-thread-count equality checks.
    /// Deterministic for a fixed thread count.
    pub nodes_stolen: u64,
    /// Exact (epoch-parallel engine): incumbent improvements accepted at
    /// epoch barriers. The sum across workers is thread-count-invariant
    /// (publication decisions happen in the deterministic merge). Zero
    /// under the sequential engine. Deterministic.
    pub incumbent_publishes: u64,
}

impl PhaseCounters {
    /// Copy with the cache-warmth-dependent fields zeroed.
    pub fn redact_volatile(mut self) -> PhaseCounters {
        self.dijkstra_runs = 0;
        self.cache_hits = 0;
        self
    }
}

/// The request family a serve session processes — mirrors the JSONL
/// protocol verbs of `emumap serve` (core depends on this crate, not
/// vice versa).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestKind {
    /// Admit a virtual environment (embed or reject).
    Apply,
    /// Tear down a tenant and release its residuals.
    Remove,
    /// Report session state without mutating it.
    Status,
    /// Snapshot the full testbed state to disk.
    Save,
    /// Replace session state from a snapshot.
    Restore,
}

/// Session-lifetime counters snapshotted into every
/// [`TraceEvent::RequestEnd`]. All deterministic — pure functions of the
/// request stream and seed, so golden-file diffs may include them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeCounters {
    /// `apply` requests that produced a complete embedding.
    pub admitted: u64,
    /// `apply` requests refused (mapper failure or duplicate id).
    pub rejected: u64,
    /// `remove` requests that tore down a tenant.
    pub removed: u64,
    /// Tenants currently embedded (`admitted - removed`, adjusted by
    /// `restore`).
    pub active_tenants: u64,
    /// Guests currently placed across all active tenants.
    pub placed_guests: u64,
    /// Virtual links currently holding bandwidth on physical routes
    /// (intra-host links excluded).
    pub routed_links: u64,
}

/// Why a link could not be routed — a trace-local mirror of the core
/// crate's `RouteVerdict` (core depends on this crate, not vice versa).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LinkVerdict {
    /// No infeasibility proof found; the failure may be heuristic (e.g.
    /// an unlucky DFS or a pruned A* search).
    PossiblyRoutable,
    /// Even the latency-shortest path exceeds the bound.
    LatencyInfeasible {
        /// Best achievable latency, milliseconds.
        best_possible_ms: f64,
        /// The link's bound, milliseconds.
        bound_ms: f64,
    },
    /// Residual max-flow between the endpoints is below the demand.
    BandwidthInfeasible {
        /// Residual max-flow, kbit/s.
        max_flow_kbps: f64,
        /// The link's demand, kbit/s.
        demand_kbps: f64,
    },
}

/// One structured event from a mapping run. Serialized with serde's
/// default externally-tagged enum format, one JSON object per JSONL line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A mapper began a run.
    MapStart {
        /// Mapper name ("HMN", "R", "FFD", ...).
        mapper: String,
        /// Guests in the virtual environment.
        guests: u64,
        /// Virtual links in the environment.
        links: u64,
    },
    /// A pipeline phase began.
    PhaseStart {
        /// Which phase.
        phase: Phase,
    },
    /// A pipeline phase finished.
    PhaseEnd {
        /// Which phase.
        phase: Phase,
        /// Wall-clock span, microseconds. Volatile.
        elapsed_us: u64,
        /// The phase's counters.
        counters: PhaseCounters,
    },
    /// A virtual link whose endpoints share a host — no route needed.
    LinkIntraHost {
        /// Virtual link index.
        link: u64,
    },
    /// A virtual link was routed through the physical network.
    LinkRouted {
        /// Virtual link index.
        link: u64,
        /// Physical hops on the chosen route.
        hops: u64,
    },
    /// A virtual link could not be routed.
    LinkFailed {
        /// Virtual link index.
        link: u64,
        /// Infeasibility diagnosis, when one was computed.
        verdict: LinkVerdict,
    },
    /// Per-worker effort counters of one epoch-parallel exact-oracle
    /// search, emitted inside the Exact span (between `PhaseStart` and
    /// `PhaseEnd`), one per worker in worker order. Additive counters
    /// sum to the `PhaseEnd` totals; `epochs` repeats the global epoch
    /// count in every snapshot. Only the parallel engine emits these —
    /// a sequential (`threads = 0`) run carries none.
    ExactWorker {
        /// Worker index, `0..threads`.
        worker: u64,
        /// This worker's share of the Exact counters.
        counters: PhaseCounters,
    },
    /// The run finished.
    MapEnd {
        /// Whether a complete mapping was produced.
        ok: bool,
        /// The Eq. 10 objective, when the run succeeded.
        objective: Option<f64>,
        /// Whole-run wall-clock, microseconds. Volatile.
        elapsed_us: u64,
    },
    /// A serve session began processing one request. Any `MapStart` ..
    /// `MapEnd` span between this and the matching [`RequestEnd`] belongs
    /// to the embedded mapper run of an `apply`.
    RequestStart {
        /// Monotone per-session request sequence number.
        seq: u64,
        /// Protocol verb.
        kind: RequestKind,
        /// Tenant id, for `apply`/`remove` requests.
        tenant: Option<String>,
    },
    /// A serve session finished processing one request.
    RequestEnd {
        /// Sequence number of the matching [`RequestStart`].
        seq: u64,
        /// Whether the request succeeded (`apply` rejections are *not*
        /// errors — an orderly rejection is `ok: true`; see the admit
        /// counters for the verdict).
        ok: bool,
        /// Request wall-clock, microseconds. Volatile.
        elapsed_us: u64,
        /// Session-lifetime admit/reject/teardown counters after this
        /// request.
        counters: ServeCounters,
    },
}

impl TraceEvent {
    /// Copy with every volatile field (wall-clock spans, cache-warmth
    /// counters) zeroed, leaving only the deterministic decision stream.
    /// Two runs with the same inputs and seed must produce identical
    /// redacted sequences regardless of cache history or machine load.
    pub fn redact_volatile(&self) -> TraceEvent {
        match self.clone() {
            TraceEvent::PhaseEnd {
                phase, counters, ..
            } => TraceEvent::PhaseEnd {
                phase,
                elapsed_us: 0,
                counters: counters.redact_volatile(),
            },
            TraceEvent::MapEnd { ok, objective, .. } => TraceEvent::MapEnd {
                ok,
                objective,
                elapsed_us: 0,
            },
            TraceEvent::RequestEnd {
                seq, ok, counters, ..
            } => TraceEvent::RequestEnd {
                seq,
                ok,
                elapsed_us: 0,
                counters,
            },
            TraceEvent::ExactWorker { worker, counters } => TraceEvent::ExactWorker {
                worker,
                counters: counters.redact_volatile(),
            },
            other => other,
        }
    }
}

/// Where emitted events go. Implementations must be cheap per call —
/// sinks run inside the mapping hot path when tracing is enabled.
pub trait EventSink: Send {
    /// Accept one event.
    fn record(&mut self, event: TraceEvent);
    /// Flush any buffered output, surfacing deferred I/O errors.
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// A sink that discards everything. Attaching it keeps the tracer
/// *enabled* (events are constructed and dispatched), which is exactly
/// what the overhead benchmark wants to measure.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}
}

/// A bounded in-memory ring buffer. When full, the oldest event is
/// dropped and counted. Tests read the retained events back.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: usize,
}

impl RingSink {
    /// A ring retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RingSink {
            capacity: capacity.max(1),
            events: VecDeque::new(),
            dropped: 0,
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Consumes the ring, returning retained events oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events.into()
    }
}

impl EventSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }
}

/// Writes one JSON object per line through a [`BufWriter`]. I/O errors
/// are deferred: `record` latches the first failure and `flush` reports
/// it, so the mapping hot path never returns I/O results.
pub struct JsonlSink<W: Write + Send> {
    out: BufWriter<W>,
    lines: usize,
    error: Option<std::io::Error>,
}

impl JsonlSink<std::fs::File> {
    /// Creates (truncating) a JSONL file, making parent directories.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(JsonlSink::new(std::fs::File::create(path)?))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps any writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: BufWriter::new(out),
            lines: 0,
            error: None,
        }
    }

    /// Lines successfully serialized so far.
    pub fn lines(&self) -> usize {
        self.lines
    }
}

impl<W: Write + Send> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.lines)
            .field("error", &self.error)
            .finish()
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        match serde_json::to_string(&event) {
            Ok(line) => {
                if let Err(e) = writeln!(self.out, "{line}") {
                    self.error = Some(e);
                } else {
                    self.lines += 1;
                }
            }
            Err(e) => {
                self.error = Some(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    e.to_string(),
                ));
            }
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// The handle the pipeline emits through. Disabled by default; the
/// disabled path is a single `Option` check and the event-constructing
/// closure is never called.
#[derive(Default)]
pub struct Tracer {
    sink: Option<Box<dyn EventSink>>,
}

impl Tracer {
    /// A tracer that drops everything at zero cost.
    pub fn disabled() -> Self {
        Tracer { sink: None }
    }

    /// A tracer feeding the given sink.
    pub fn new(sink: Box<dyn EventSink>) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// Whether a sink is attached. Use to gate *expensive* event
    /// payloads (e.g. infeasibility diagnosis) that `emit`'s lazy
    /// closure alone cannot make free.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Emits the event produced by `make` — which is only invoked when a
    /// sink is attached.
    #[inline]
    pub fn emit(&mut self, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &mut self.sink {
            sink.record(make());
        }
    }

    /// Detaches and returns the sink (for flushing/inspection), leaving
    /// the tracer disabled.
    pub fn take_sink(&mut self) -> Option<Box<dyn EventSink>> {
        self.sink.take()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_event() -> TraceEvent {
        TraceEvent::PhaseEnd {
            phase: Phase::Networking,
            elapsed_us: 1234,
            counters: PhaseCounters {
                astar_expansions: 7,
                dijkstra_runs: 3,
                cache_hits: 9,
                ..Default::default()
            },
        }
    }

    #[test]
    fn disabled_tracer_never_constructs_events() {
        let mut tracer = Tracer::disabled();
        let mut constructed = 0;
        tracer.emit(|| {
            constructed += 1;
            sample_event()
        });
        assert_eq!(constructed, 0);
        assert!(!tracer.is_enabled());
        assert!(tracer.take_sink().is_none());
    }

    #[test]
    fn ring_sink_bounds_and_counts_drops() {
        let mut ring = RingSink::new(2);
        for link in 0..5u64 {
            ring.record(TraceEvent::LinkIntraHost { link });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let kept: Vec<TraceEvent> = ring.into_events();
        assert_eq!(
            kept,
            vec![
                TraceEvent::LinkIntraHost { link: 3 },
                TraceEvent::LinkIntraHost { link: 4 }
            ]
        );
    }

    #[test]
    fn jsonl_sink_writes_one_parseable_object_per_line() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.record(TraceEvent::MapStart {
            mapper: "HMN".to_string(),
            guests: 10,
            links: 4,
        });
        sink.record(sample_event());
        sink.record(TraceEvent::MapEnd {
            ok: true,
            objective: Some(573.9),
            elapsed_us: 42,
        });
        assert_eq!(sink.lines(), 3);
        sink.flush().expect("flush");
        let text = String::from_utf8(sink.out.into_inner().expect("inner")).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let value = serde_json::value_from_str(line).expect("line parses");
            assert!(
                matches!(value, serde::Value::Object(_)),
                "line is an object: {line}"
            );
        }
        let back: TraceEvent = serde_json::from_str(lines[1]).expect("roundtrip");
        assert_eq!(back, sample_event());
    }

    #[test]
    fn redact_volatile_zeroes_timings_and_cache_counters() {
        let redacted = sample_event().redact_volatile();
        match redacted {
            TraceEvent::PhaseEnd {
                elapsed_us,
                counters,
                ..
            } => {
                assert_eq!(elapsed_us, 0);
                assert_eq!(counters.dijkstra_runs, 0);
                assert_eq!(counters.cache_hits, 0);
                assert_eq!(counters.astar_expansions, 7, "decision counters survive");
            }
            other => panic!("unexpected: {other:?}"),
        }
        let end = TraceEvent::MapEnd {
            ok: true,
            objective: Some(1.0),
            elapsed_us: 99,
        };
        assert_eq!(
            end.redact_volatile(),
            TraceEvent::MapEnd {
                ok: true,
                objective: Some(1.0),
                elapsed_us: 0
            }
        );
        let routed = TraceEvent::LinkRouted { link: 3, hops: 2 };
        assert_eq!(routed.redact_volatile(), routed);
    }

    #[test]
    fn exact_worker_snapshots_roundtrip_and_redact() {
        let ev = TraceEvent::ExactWorker {
            worker: 3,
            counters: PhaseCounters {
                exact_nodes_expanded: 17,
                epochs: 4,
                nodes_stolen: 2,
                incumbent_publishes: 1,
                cache_hits: 9,
                ..Default::default()
            },
        };
        let back: TraceEvent = serde_json::from_str(&serde_json::to_string(&ev).unwrap()).unwrap();
        assert_eq!(back, ev);
        match ev.redact_volatile() {
            TraceEvent::ExactWorker { worker, counters } => {
                assert_eq!(worker, 3);
                assert_eq!(counters.cache_hits, 0, "volatile fields redact");
                assert_eq!(counters.epochs, 4, "decision counters survive");
                assert_eq!(counters.nodes_stolen, 2);
                assert_eq!(counters.incumbent_publishes, 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn request_spans_roundtrip_and_redact() {
        let start = TraceEvent::RequestStart {
            seq: 7,
            kind: RequestKind::Apply,
            tenant: Some("t-7".to_string()),
        };
        let end = TraceEvent::RequestEnd {
            seq: 7,
            ok: true,
            elapsed_us: 8123,
            counters: ServeCounters {
                admitted: 5,
                rejected: 1,
                removed: 2,
                active_tenants: 3,
                placed_guests: 40,
                routed_links: 12,
            },
        };
        for ev in [&start, &end] {
            let back: TraceEvent =
                serde_json::from_str(&serde_json::to_string(ev).unwrap()).unwrap();
            assert_eq!(&back, ev);
        }
        assert_eq!(start.redact_volatile(), start, "starts carry no clock");
        match end.redact_volatile() {
            TraceEvent::RequestEnd {
                seq,
                ok,
                elapsed_us,
                counters,
            } => {
                assert_eq!((seq, ok, elapsed_us), (7, true, 0));
                assert_eq!(counters.admitted, 5, "admit counters survive");
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn tracer_dispatches_to_attached_sink() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        struct CountSink(Arc<AtomicUsize>);
        impl EventSink for CountSink {
            fn record(&mut self, _event: TraceEvent) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let count = Arc::new(AtomicUsize::new(0));
        let mut tracer = Tracer::new(Box::new(CountSink(Arc::clone(&count))));
        assert!(tracer.is_enabled());
        tracer.emit(|| TraceEvent::LinkRouted { link: 1, hops: 4 });
        tracer.emit(|| TraceEvent::MapEnd {
            ok: true,
            objective: None,
            elapsed_us: 0,
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
        assert!(tracer.take_sink().is_some());
        assert!(!tracer.is_enabled());
    }
}
