//! Contract tests for the observability layer: the trace is a *passive*
//! observer of the pipeline.
//!
//! Two properties matter. First, attaching a sink must not change any
//! mapping outcome (the tracer is not allowed to influence decisions).
//! Second, the *decision* content of a trace must be deterministic: two
//! runs that differ only in cache warmth must emit identical event
//! sequences once the volatile fields (wall-clock timings and
//! cache-warmth counters) are redacted.

use emumap_core::{Hmn, MapCache, Mapper};
use emumap_trace::{EventSink, Phase, TraceEvent, Tracer};
use emumap_workloads::{instantiate, ClusterSpec, Scenario, WorkloadKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::{Arc, Mutex};

/// Sink that shares its event log with the test through an `Arc`, since a
/// boxed `dyn EventSink` cannot be inspected after `Tracer::take_sink`.
struct VecSink(Arc<Mutex<Vec<TraceEvent>>>);

impl EventSink for VecSink {
    fn record(&mut self, event: TraceEvent) {
        self.0.lock().unwrap().push(event);
    }
}

fn shared_sink() -> (Arc<Mutex<Vec<TraceEvent>>>, Tracer) {
    let events = Arc::new(Mutex::new(Vec::new()));
    let tracer = Tracer::new(Box::new(VecSink(Arc::clone(&events))));
    (events, tracer)
}

fn paper_instance() -> (
    emumap_model::PhysicalTopology,
    emumap_model::VirtualEnvironment,
) {
    let scenario = Scenario {
        ratio: 2.5,
        density: 0.02,
        workload: WorkloadKind::HighLevel,
    };
    let inst = instantiate(
        &ClusterSpec::paper(),
        ClusterSpec::paper_torus(),
        &scenario,
        0,
        2009,
    );
    (inst.phys, inst.venv)
}

#[test]
fn warm_and_cold_caches_emit_identical_redacted_event_sequences() {
    let (phys, venv) = paper_instance();
    let mapper = Hmn::new();
    let mut cache = MapCache::new();

    // Cold: first run on a fresh cache computes every Dijkstra table.
    let (cold_events, tracer) = shared_sink();
    cache.trace = tracer;
    let cold = mapper
        .map_with_cache(&phys, &venv, &mut SmallRng::seed_from_u64(1), &mut cache)
        .expect("cold map");

    // Warm: same trial again on the now-populated cache.
    let (warm_events, tracer) = shared_sink();
    cache.trace = tracer;
    let warm = mapper
        .map_with_cache(&phys, &venv, &mut SmallRng::seed_from_u64(1), &mut cache)
        .expect("warm map");

    assert_eq!(
        cold.mapping, warm.mapping,
        "cache must be semantically invisible"
    );

    let cold_events = cold_events.lock().unwrap();
    let warm_events = warm_events.lock().unwrap();
    // The raw sequences differ (the warm run answers `ar[]` lookups from
    // the cache, and every timing is wall-clock); the redacted sequences
    // must not.
    let redact = |events: &[TraceEvent]| -> Vec<TraceEvent> {
        events.iter().map(TraceEvent::redact_volatile).collect()
    };
    assert_eq!(redact(&cold_events), redact(&warm_events));

    // Sanity: the redaction is doing real work — cache warmth is visible
    // in the un-redacted Networking span.
    let networking_counters = |events: &[TraceEvent]| {
        events
            .iter()
            .find_map(|e| match e {
                TraceEvent::PhaseEnd {
                    phase: Phase::Networking,
                    counters,
                    ..
                } => Some(*counters),
                _ => None,
            })
            .expect("networking span")
    };
    let cold_net = networking_counters(&cold_events);
    let warm_net = networking_counters(&warm_events);
    assert!(cold_net.dijkstra_runs > 0, "cold run computes tables");
    assert!(
        warm_net.cache_hits > cold_net.cache_hits,
        "warm run answers more lookups from the cache ({} vs {})",
        warm_net.cache_hits,
        cold_net.cache_hits
    );
}

#[test]
fn attaching_a_sink_does_not_change_the_outcome() {
    let (phys, venv) = paper_instance();
    let mapper = Hmn::new();

    let untraced = mapper
        .map_with_cache(
            &phys,
            &venv,
            &mut SmallRng::seed_from_u64(3),
            &mut MapCache::new(),
        )
        .expect("untraced map");

    let mut cache = MapCache::new();
    let (events, tracer) = shared_sink();
    cache.trace = tracer;
    let traced = mapper
        .map_with_cache(&phys, &venv, &mut SmallRng::seed_from_u64(3), &mut cache)
        .expect("traced map");

    assert_eq!(untraced.mapping, traced.mapping);
    assert_eq!(untraced.objective, traced.objective);
    assert!(
        !events.lock().unwrap().is_empty(),
        "the traced run did emit"
    );
}

#[test]
fn hmn_trace_has_all_three_phase_spans_and_per_link_outcomes() {
    let (phys, venv) = paper_instance();
    let mut cache = MapCache::new();
    let (events, tracer) = shared_sink();
    cache.trace = tracer;
    let outcome = Hmn::new()
        .map_with_cache(&phys, &venv, &mut SmallRng::seed_from_u64(5), &mut cache)
        .expect("map");

    let events = events.lock().unwrap();
    assert!(matches!(events.first(), Some(TraceEvent::MapStart { .. })));
    assert!(matches!(
        events.last(),
        Some(TraceEvent::MapEnd {
            ok: true,
            objective: Some(_),
            ..
        })
    ));

    // Spans open and close in pipeline order.
    let spans: Vec<(bool, Phase)> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::PhaseStart { phase } => Some((true, *phase)),
            TraceEvent::PhaseEnd { phase, .. } => Some((false, *phase)),
            _ => None,
        })
        .collect();
    assert_eq!(
        spans,
        vec![
            (true, Phase::Hosting),
            (false, Phase::Hosting),
            (true, Phase::Migration),
            (false, Phase::Migration),
            (true, Phase::Networking),
            (false, Phase::Networking),
        ]
    );

    // Per-link events reconcile with the run's statistics.
    let routed = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::LinkRouted { .. }))
        .count();
    let intra = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::LinkIntraHost { .. }))
        .count();
    assert_eq!(routed, outcome.stats.routed_links);
    assert_eq!(intra, outcome.stats.intra_host_links);
    assert_eq!(routed + intra, venv.link_count());

    // Phase counters reconcile with the run's statistics too.
    for e in events.iter() {
        match e {
            TraceEvent::PhaseEnd {
                phase: Phase::Hosting,
                counters,
                ..
            } => {
                assert_eq!(
                    counters.colocation_hits,
                    outcome.stats.colocation_hits as u64
                );
                assert_eq!(
                    counters.first_fit_fallbacks,
                    outcome.stats.first_fit_fallbacks as u64
                );
            }
            TraceEvent::PhaseEnd {
                phase: Phase::Migration,
                counters,
                ..
            } => {
                assert_eq!(counters.moves_accepted, outcome.stats.migrations as u64);
                assert_eq!(
                    counters.moves_rejected,
                    outcome.stats.migrations_rejected as u64
                );
            }
            TraceEvent::PhaseEnd {
                phase: Phase::Networking,
                counters,
                ..
            } => {
                assert_eq!(
                    counters.astar_expansions,
                    outcome.stats.astar_expansions as u64
                );
            }
            _ => {}
        }
    }
}

#[test]
fn every_traced_mapper_brackets_its_run_with_map_start_and_end() {
    use emumap_core::{
        Annealing, BestFit, FirstFitDecreasing, HmnKsp, HostingDfs, RandomAStar, RandomDfs,
        WorstFit,
    };
    let (phys, venv) = paper_instance();
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(Hmn::new()),
        Box::new(HmnKsp::default()),
        Box::new(RandomDfs { max_attempts: 200 }),
        Box::new(RandomAStar {
            max_attempts: 200,
            ..Default::default()
        }),
        Box::new(HostingDfs { max_attempts: 200 }),
        Box::new(FirstFitDecreasing::default()),
        Box::new(BestFit::default()),
        Box::new(WorstFit::default()),
        Box::new(Annealing {
            config: emumap_core::AnnealingConfig {
                iterations: 500,
                ..Default::default()
            },
        }),
    ];
    for mapper in mappers {
        let mut cache = MapCache::new();
        let (events, tracer) = shared_sink();
        cache.trace = tracer;
        let result =
            mapper.map_with_cache(&phys, &venv, &mut SmallRng::seed_from_u64(7), &mut cache);
        let events = events.lock().unwrap();
        assert!(
            matches!(events.first(), Some(TraceEvent::MapStart { .. })),
            "{} should open with MapStart",
            mapper.name()
        );
        match events.last() {
            Some(TraceEvent::MapEnd { ok, .. }) => {
                assert_eq!(*ok, result.is_ok(), "{} MapEnd.ok mismatch", mapper.name())
            }
            other => panic!("{} should close with MapEnd, got {other:?}", mapper.name()),
        }
    }
}
