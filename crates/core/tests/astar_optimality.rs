//! A*Prune optimality oracle: on small random graphs, exhaustively
//! enumerate every latency-feasible simple path and verify that the
//! modified 1-constrained A*Prune returns a path whose bottleneck residual
//! bandwidth is maximal (the paper's widest-path selection rule), subject
//! to both constraints.

use emumap_core::{astar_prune, AStarPruneConfig};
use emumap_graph::algo::dijkstra;
use emumap_graph::generators::random_connected;
use emumap_graph::{EdgeId, Graph, NodeId};
use emumap_model::{
    HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, PhysNode, PhysicalTopology, ResidualState,
    StorGb, VmmOverhead,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Enumerates every simple path from `from` to `to`; calls `visit` with
/// (edges, total latency, bottleneck bandwidth).
fn enumerate_paths(
    phys: &PhysicalTopology,
    residual: &ResidualState,
    from: NodeId,
    to: NodeId,
    visit: &mut impl FnMut(&[EdgeId], f64, f64),
) {
    #[allow(clippy::too_many_arguments)]
    fn rec(
        phys: &PhysicalTopology,
        residual: &ResidualState,
        cur: NodeId,
        to: NodeId,
        on_path: &mut Vec<NodeId>,
        edges: &mut Vec<EdgeId>,
        lat: f64,
        bottleneck: f64,
        visit: &mut impl FnMut(&[EdgeId], f64, f64),
    ) {
        if cur == to {
            visit(edges, lat, bottleneck);
            return;
        }
        let neighbors: Vec<_> = phys.graph().neighbors(cur).collect();
        for nb in neighbors {
            if on_path.contains(&nb.node) {
                continue;
            }
            on_path.push(nb.node);
            edges.push(nb.edge);
            rec(
                phys,
                residual,
                nb.node,
                to,
                on_path,
                edges,
                lat + phys.link(nb.edge).lat.value(),
                bottleneck.min(residual.bw(nb.edge).value()),
                visit,
            );
            edges.pop();
            on_path.pop();
        }
    }
    let mut on_path = vec![from];
    let mut edges = Vec::new();
    rec(
        phys,
        residual,
        from,
        to,
        &mut on_path,
        &mut edges,
        0.0,
        f64::INFINITY,
        visit,
    );
}

fn random_phys(n: usize, density: f64, seed: u64) -> (PhysicalTopology, ResidualState) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let shape = random_connected(n, density, &mut rng);
    let mut g: Graph<PhysNode, LinkSpec> = Graph::new();
    for _ in 0..shape.node_count() {
        g.add_node(PhysNode::Host(HostSpec::new(
            Mips(1000.0),
            MemMb(1024),
            StorGb(100.0),
        )));
    }
    for e in shape.edges() {
        g.add_edge(
            e.a,
            e.b,
            LinkSpec::new(
                Kbps((rng.gen_range(1..=10) * 100) as f64),
                Millis(rng.gen_range(1..=5) as f64),
            ),
        );
    }
    let phys = PhysicalTopology::from_graph(g, VmmOverhead::NONE);
    let residual = ResidualState::new(&phys);
    (phys, residual)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn astar_prune_finds_the_widest_feasible_path(
        n in 3usize..8,
        density in 0.2f64..0.8,
        seed in any::<u64>(),
        demand_ix in 0usize..10,
        bound in 3.0f64..25.0,
    ) {
        let (phys, residual) = random_phys(n, density, seed);
        let from = phys.hosts()[0];
        let to = *phys.hosts().last().unwrap();
        prop_assume!(from != to);
        let demand = (demand_ix as f64 + 1.0) * 100.0;

        // Oracle: the best bottleneck among latency- and bandwidth-feasible
        // simple paths.
        let mut best: Option<f64> = None;
        enumerate_paths(&phys, &residual, from, to, &mut |edges, lat, bn| {
            if lat <= bound + 1e-9 && bn >= demand && !edges.is_empty() {
                best = Some(best.map_or(bn, |b: f64| b.max(bn)));
            }
        });

        let ar: Vec<f64> = dijkstra(phys.graph(), to, |_, l| l.lat.value())
            .distances()
            .to_vec();
        let found = astar_prune(
            &phys,
            &residual,
            from,
            to,
            Kbps(demand),
            Millis(bound),
            &ar,
            &AStarPruneConfig::default(),
        );

        match (best, found) {
            (None, None) => {} // agree: infeasible
            (Some(oracle_bn), Some((edges, _))) => {
                // A*Prune's path must be feasible and its bottleneck equal
                // to the oracle's optimum.
                let lat: f64 = edges.iter().map(|&e| phys.link(e).lat.value()).sum();
                prop_assert!(lat <= bound + 1e-9);
                let bn = edges
                    .iter()
                    .map(|&e| residual.bw(e).value())
                    .fold(f64::INFINITY, f64::min);
                prop_assert!(bn >= demand);
                prop_assert!(
                    (bn - oracle_bn).abs() < 1e-9,
                    "A*Prune bottleneck {bn} != oracle optimum {oracle_bn}"
                );
            }
            (Some(bn), None) => prop_assert!(false, "A*Prune missed a feasible path (bn {bn})"),
            (None, Some(_)) => prop_assert!(false, "A*Prune invented an infeasible path"),
        }
    }
}
