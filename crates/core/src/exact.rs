//! An **exact branch-and-bound oracle** for the mapping problem — the
//! certification counterpart to the heuristics.
//!
//! The paper evaluates HMN only against heuristic baselines; nothing can
//! say how far a mapping is from optimal. This module enumerates
//! guest→host assignments with depth-first branch-and-bound and certifies
//! the minimum Eq. 10 objective (population stddev of residual CPU,
//! Eq. 11) over all feasible mappings:
//!
//! * **Bounding** — the objective depends only on the *placement* (routes
//!   never consume CPU), so a continuous water-filling relaxation of the
//!   unassigned CPU demand pool yields an admissible lower bound at every
//!   partial assignment (see [`residual_stddev_lower_bound`]).
//! * **Constraint propagation** — memory/storage are hard (Eqs. 2–3):
//!   a branch dies when the remaining demand exceeds the remaining
//!   aggregate capacity or some unassigned guest no longer fits on any
//!   host. Latency bounds (Eq. 8) prune via the cached Dijkstra `ar[]`
//!   tables: placing a link's endpoints farther apart than its bound
//!   allows can never be routed.
//! * **Leaf routing** — complete placements are routed with the same
//!   A\*Prune Networking stage the heuristics use (with a Yen-KSP
//!   fallback), so oracle feasibility subsumes heuristic feasibility.
//! * **Budget** — a node budget degrades the search to *bound-only*
//!   ([`ExactStatus::Truncated`]) instead of hanging: the result is then
//!   a certified interval `[lower_bound, best]`, never a wrong claim.
//!
//! Routing is the one inexact step (A\*Prune and KSP are incomplete
//! searches): when a strictly-improving placement fails to route, its
//! objective is folded into the reported `lower_bound` instead of being
//! discarded, which keeps `lower_bound` sound. The oracle reports
//! [`ExactStatus::Optimal`] only when the search completed *and*
//! `lower_bound == best`.

use crate::astar_prune::AStarPruneConfig;
use crate::cache::MapCache;
use crate::hmn::elapsed_us;
use crate::hosting::links_by_descending_bw;
use crate::ksp_routing::networking_stage_ksp_with;
use crate::lagrangian::{lagrangian_bound, tightest_peer_bounds, LagrangianConfig, NodeView};
use crate::networking::networking_stage_with;
use crate::parallel::ParallelRunner;
use crate::state::PlacementState;
use emumap_graph::NodeId;
use emumap_model::objective::mapping_objective;
use emumap_model::{validate_mapping, GuestId, Mapping, PhysicalTopology, VirtualEnvironment};
use emumap_trace::{Phase, PhaseCounters, TraceEvent};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// Tolerance for objective comparisons: two values closer than this are
/// considered equal, so "optimal" means optimal up to `EPSILON`.
pub const EPSILON: f64 = 1e-9;

/// Which admissible lower bound the search prunes with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BoundKind {
    /// The water-filling relaxation alone ([`residual_stddev_lower_bound`]):
    /// cheap, but blind to memory/storage/bandwidth/latency.
    Waterfill,
    /// The Lagrangian decomposition of [`crate::lagrangian`] (default):
    /// priced per-guest assignment tables with exact fit/latency
    /// restrictions and subgradient ascent, floored at the water-filling
    /// bound — never weaker, usually much stronger under tight
    /// constraints.
    #[default]
    Lagrangian,
}

/// Configuration of the branch-and-bound oracle.
#[derive(Clone, Copy, Debug)]
pub struct ExactConfig {
    /// Search nodes expanded before the search gives up and reports
    /// [`ExactStatus::Truncated`] with the bounds gathered so far.
    pub max_nodes: u64,
    /// Which lower bound prunes the search.
    pub bound: BoundKind,
    /// Subgradient-ascent knobs of the Lagrangian bound (ignored under
    /// [`BoundKind::Waterfill`]).
    pub lagrangian: LagrangianConfig,
    /// A\*Prune configuration for leaf routing. The default equals the
    /// heuristics' default, so the oracle accepts every route HMN would.
    pub astar: AStarPruneConfig,
    /// `k` for the Yen-KSP fallback router tried when A\*Prune fails at a
    /// leaf (`0` disables the fallback).
    pub ksp_fallback: usize,
    /// Prune branches whose latency bounds (Eq. 8) are already violated
    /// by the partial placement, using the cached Dijkstra tables.
    pub use_latency_pruning: bool,
    /// Worker threads of the epoch-parallel search engine. `0` (the
    /// default) runs the classic sequential depth-first search. Any
    /// value ≥ 1 selects the epoch engine, whose verdicts, bounds and
    /// counters are **bit-identical for every worker count**: workers
    /// pull frontier nodes from a shared depth-ordered queue in
    /// fixed-size epochs, prune only against the incumbent snapshot
    /// taken at the epoch start, and new incumbents publish only at the
    /// epoch barrier — so no pruning decision ever depends on which
    /// worker found what first.
    pub threads: usize,
    /// Frontier nodes expanded per epoch by the parallel engine
    /// (clamped to ≥ 1; ignored at `threads = 0`). Smaller epochs
    /// publish incumbents sooner; larger epochs amortize the barrier.
    pub epoch_nodes: u64,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_nodes: 200_000,
            bound: BoundKind::Lagrangian,
            lagrangian: LagrangianConfig::default(),
            astar: AStarPruneConfig::default(),
            ksp_fallback: 4,
            use_latency_pruning: true,
            threads: 0,
            epoch_nodes: 500,
        }
    }
}

/// How a [`solve_exact`] run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExactStatus {
    /// The search completed and `lower_bound == best` (within
    /// [`EPSILON`]): the incumbent is the certified optimum.
    Optimal,
    /// The search completed, found no feasible mapping, and no pruning
    /// step was inexact: the instance is certified infeasible.
    Infeasible,
    /// The node budget ran out, or a strictly-improving placement could
    /// not be routed by the (incomplete) route searches. Only the
    /// interval `[lower_bound, best]` is certified.
    Truncated,
}

/// Search-effort counters. All deterministic: the branch order is a pure
/// function of the instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactStats {
    /// Search nodes expanded (partial assignments visited).
    pub nodes_expanded: u64,
    /// Subtrees pruned because the lower bound met the incumbent.
    pub pruned_bound: u64,
    /// Subtrees pruned by memory/storage constraint propagation.
    pub pruned_capacity: u64,
    /// Branches pruned by the Eq. 8 latency lower bound.
    pub pruned_latency: u64,
    /// Complete placements handed to the Networking stage.
    pub leaf_routings: u64,
    /// Leaf placements the route searches could not route.
    pub routing_failures: u64,
    /// Witness mappings accepted as incumbents (see [`solve_exact_with`]).
    pub witnesses_accepted: u64,
    /// Lagrangian dual evaluations performed (0 under
    /// [`BoundKind::Waterfill`]; ≥ one per expanded node otherwise).
    pub subgradient_iters: u64,
    /// Nodes where the Lagrangian bound strictly exceeded the
    /// water-filling bound.
    pub bound_improvements: u64,
    /// Bound prunes that *only* the Lagrangian bound fired — the
    /// water-filling bound alone would have kept searching.
    pub pruned_lagrangian: u64,
    /// Epoch barriers completed by the parallel engine (0 under the
    /// sequential engine). Thread-count-invariant; in a per-worker
    /// snapshot every worker reports the same global value.
    pub epochs: u64,
    /// Frontier nodes processed by a different worker than the one that
    /// generated them. The only thread-count-*variant* counter (always 0
    /// at one worker); excluded from cross-thread-count equality.
    pub nodes_stolen: u64,
    /// Incumbent improvements accepted at epoch barriers (0 under the
    /// sequential engine). The total is thread-count-invariant.
    pub incumbent_publishes: u64,
}

impl ExactStats {
    /// Total subtrees pruned, over every pruning rule.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_bound + self.pruned_capacity + self.pruned_latency
    }

    /// Sums every per-node additive counter of `other` into `self`.
    /// `epochs` is global (not additive) and `witnesses_accepted` is
    /// owned by the solve, not a worker — neither is touched.
    fn absorb(&mut self, other: &ExactStats) {
        self.nodes_expanded += other.nodes_expanded;
        self.pruned_bound += other.pruned_bound;
        self.pruned_capacity += other.pruned_capacity;
        self.pruned_latency += other.pruned_latency;
        self.leaf_routings += other.leaf_routings;
        self.routing_failures += other.routing_failures;
        self.subgradient_iters += other.subgradient_iters;
        self.bound_improvements += other.bound_improvements;
        self.pruned_lagrangian += other.pruned_lagrangian;
        self.nodes_stolen += other.nodes_stolen;
        self.incumbent_publishes += other.incumbent_publishes;
    }

    /// The trace-facing view of these counters.
    fn phase_counters(&self) -> PhaseCounters {
        PhaseCounters {
            exact_nodes_expanded: self.nodes_expanded,
            exact_nodes_pruned: self.pruned_total(),
            subgradient_iters: self.subgradient_iters,
            bound_improvements: self.bound_improvements,
            nodes_pruned_lagrangian: self.pruned_lagrangian,
            epochs: self.epochs,
            nodes_stolen: self.nodes_stolen,
            incumbent_publishes: self.incumbent_publishes,
            ..Default::default()
        }
    }
}

/// A feasible mapping found by the oracle, with its Eq. 10 objective.
#[derive(Clone, Debug)]
pub struct ExactSolution {
    /// The mapping (placement + committed routes); passes
    /// [`validate_mapping`].
    pub mapping: Mapping,
    /// Its load-balance objective (Eq. 10).
    pub objective: f64,
}

/// The oracle's verdict: a status, the best mapping found (if any), a
/// certified lower bound, and effort counters.
#[derive(Clone, Debug)]
pub struct ExactOutcome {
    /// How the search ended.
    pub status: ExactStatus,
    /// Best feasible mapping found (the certified optimum when `status`
    /// is [`ExactStatus::Optimal`]).
    pub best: Option<ExactSolution>,
    /// Certified lower bound on the objective of *every* feasible
    /// mapping. [`f64::INFINITY`] when the instance is certified
    /// infeasible.
    pub lower_bound: f64,
    /// Search-effort counters.
    pub stats: ExactStats,
}

impl ExactOutcome {
    /// `true` when the incumbent is the certified optimum.
    pub fn is_certified(&self) -> bool {
        self.status == ExactStatus::Optimal
    }

    /// Optimality gap of a heuristic objective against the incumbent
    /// (`heuristic − best`); `None` when no feasible mapping was found.
    pub fn gap_from(&self, heuristic_objective: f64) -> Option<f64> {
        self.best
            .as_ref()
            .map(|b| heuristic_objective - b.objective)
    }
}

/// Admissible lower bound on the final population stddev of residual CPU.
///
/// `residuals` are the current per-host residuals and `demand` the total
/// CPU demand still unassigned. Any completion subtracts exactly `demand`
/// across the hosts, so the final residual vector `x` satisfies
/// `x_i ≤ r_i` and `Σx = Σr − demand` — and the final *mean* is fixed at
/// `(Σr − demand)/n` regardless of where the guests land. Minimizing the
/// population stddev over that polytope therefore minimizes `Σx²`, whose
/// optimum is the water-filling point `x_i = min(r_i, L)` with the level
/// `L` chosen so the sum comes out right. Every real completion is a
/// point of the polytope, so this is a true (admissible) lower bound.
pub fn residual_stddev_lower_bound(residuals: &[f64], demand: f64) -> f64 {
    let n = residuals.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = residuals.iter().sum();
    let target = total - demand;
    let mut sorted = residuals.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite residuals"));
    // With the k largest residuals clamped to the level L and the rest
    // untouched: k·L + Σ_{i≥k} r_i = target. Find the k whose implied L
    // lies between sorted[k] and sorted[k-1].
    let mut prefix = 0.0;
    for k in 1..=n {
        prefix += sorted[k - 1];
        let suffix = total - prefix;
        let level = (target - suffix) / k as f64;
        let lo = if k < n { sorted[k] } else { f64::NEG_INFINITY };
        if level <= sorted[k - 1] + EPSILON && level >= lo - EPSILON {
            let mean = target / n as f64;
            let mut var = k as f64 * (level - mean) * (level - mean);
            for &r in &sorted[k..] {
                var += (r - mean) * (r - mean);
            }
            return (var / n as f64).sqrt().max(0.0);
        }
    }
    // Unreachable for finite inputs (k = n always admits a level), but
    // stay safe: zero is always admissible.
    0.0
}

/// Runs the oracle with a fresh cache and no witnesses. See
/// [`solve_exact_with`].
pub fn solve_exact(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    config: &ExactConfig,
) -> ExactOutcome {
    solve_exact_with(phys, venv, config, &mut MapCache::new(), &[])
}

/// Runs the branch-and-bound oracle.
///
/// `witnesses` are candidate mappings from heuristic runs: each one that
/// passes [`validate_mapping`] is admitted as an incumbent before the
/// search starts. This both warm-starts the pruning and makes two
/// differential guarantees structural — the oracle never reports
/// [`ExactStatus::Infeasible`] when a heuristic succeeded, and its best
/// objective never exceeds a (valid) heuristic's.
///
/// Emits a `MapStart → PhaseStart(Exact) → … → PhaseEnd(Exact) → MapEnd`
/// span through `cache.trace`, with the branch-and-bound counters in the
/// phase's [`PhaseCounters`]. The epoch-parallel engine
/// (`config.threads ≥ 1`) additionally emits one
/// [`TraceEvent::ExactWorker`] snapshot per worker, in worker order,
/// before the `PhaseEnd`.
pub fn solve_exact_with(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    config: &ExactConfig,
    cache: &mut MapCache,
    witnesses: &[Mapping],
) -> ExactOutcome {
    let start = Instant::now();
    cache.trace.emit(|| TraceEvent::MapStart {
        // The bound kind is part of the trace contract checked by
        // scripts/check_traces.py: "EXACT" (Lagrangian, the default) runs
        // must show subgradient work, "EXACT-WF" runs must show none.
        mapper: match config.bound {
            BoundKind::Lagrangian => "EXACT",
            BoundKind::Waterfill => "EXACT-WF",
        }
        .to_string(),
        guests: venv.guest_count() as u64,
        links: venv.link_count() as u64,
    });
    cache.trace.emit(|| TraceEvent::PhaseStart {
        phase: Phase::Exact,
    });
    let phase_start = Instant::now();

    let (outcome, worker_stats) = if config.threads == 0 {
        let mut search = Search::new(phys, venv, *config);
        for w in witnesses {
            search.offer_witness(w);
        }
        search.run(cache);
        (search.into_outcome(), Vec::new())
    } else {
        solve_epoch_parallel(phys, venv, config, witnesses)
    };

    for (w, stats) in worker_stats.iter().enumerate() {
        cache.trace.emit(|| TraceEvent::ExactWorker {
            worker: w as u64,
            counters: stats.phase_counters(),
        });
    }
    cache.trace.emit(|| TraceEvent::PhaseEnd {
        phase: Phase::Exact,
        elapsed_us: elapsed_us(phase_start),
        counters: outcome.stats.phase_counters(),
    });
    cache.trace.emit(|| TraceEvent::MapEnd {
        ok: outcome.best.is_some(),
        objective: outcome.best.as_ref().map(|b| b.objective),
        elapsed_us: elapsed_us(start),
    });
    outcome
}

/// Immutable per-solve precomputation shared by both search engines:
/// branch order, suffix demands, peer latency bounds, and the root
/// residual vectors. Residual bookkeeping mirrors `ResidualState`
/// semantics exactly (integer memory, `>=` storage fits, CPU
/// unconstrained) so a leaf re-assigned into a fresh [`PlacementState`]
/// cannot diverge.
struct SearchBase<'a> {
    phys: &'a PhysicalTopology,
    venv: &'a VirtualEnvironment,
    config: ExactConfig,
    hosts: Vec<NodeId>,
    /// Branch order: guests by descending (mem, stor, proc) — the most
    /// constrained guests first, so infeasibility surfaces high up.
    order: Vec<GuestId>,
    /// `suffix_demand[d]` = total CPU demand of `order[d..]`.
    suffix_demand: Vec<f64>,
    /// `suffix_mem[d]` / `suffix_stor[d]`: remaining hard-resource demand.
    suffix_mem: Vec<u64>,
    suffix_stor: Vec<f64>,
    /// Per guest: `(peer guest, tightest latency bound over their links)`.
    peers: Vec<Vec<(usize, f64)>>,
    /// Root residuals (full effective capacities). The epoch engine
    /// re-seeds a worker's [`NodeState`] from these before every path
    /// replay: IEEE754 gives no `(a − b) + b == a` guarantee, so an
    /// apply/undo round trip can drift by an ulp — harmless in the
    /// sequential DFS (one fixed mutation sequence) but fatal for
    /// thread-count invariance, where a worker's drift would depend on
    /// *which* items it happened to process.
    root_proc: Vec<f64>,
    root_mem: Vec<u64>,
    root_stor: Vec<f64>,
}

/// Mutable residual bookkeeping at one partial assignment. The
/// sequential engine owns one and mutates it along the DFS; each
/// parallel worker owns one and replays frontier paths into it.
struct NodeState {
    /// Guest index → assigned host slot.
    slot_of: Vec<Option<usize>>,
    r_proc: Vec<f64>,
    r_mem: Vec<u64>,
    r_stor: Vec<f64>,
}

impl<'a> SearchBase<'a> {
    fn new(phys: &'a PhysicalTopology, venv: &'a VirtualEnvironment, config: ExactConfig) -> Self {
        let hosts: Vec<NodeId> = phys.hosts().to_vec();
        let mut order: Vec<GuestId> = venv.guest_ids().collect();
        order.sort_by(|&a, &b| {
            let ga = venv.guest(a);
            let gb = venv.guest(b);
            (gb.mem.value(), gb.stor.value(), gb.proc.value())
                .partial_cmp(&(ga.mem.value(), ga.stor.value(), ga.proc.value()))
                .expect("finite guest specs")
                .then(a.index().cmp(&b.index()))
        });
        let n = order.len();
        let mut suffix_demand = vec![0.0; n + 1];
        let mut suffix_mem = vec![0u64; n + 1];
        let mut suffix_stor = vec![0.0; n + 1];
        for d in (0..n).rev() {
            let g = venv.guest(order[d]);
            suffix_demand[d] = suffix_demand[d + 1] + g.proc.value();
            suffix_mem[d] = suffix_mem[d + 1] + g.mem.value();
            suffix_stor[d] = suffix_stor[d + 1] + g.stor.value();
        }
        let peers = tightest_peer_bounds(venv);
        let root_proc = hosts
            .iter()
            .map(|&h| phys.effective_proc(h).value())
            .collect();
        let root_mem = hosts
            .iter()
            .map(|&h| phys.effective_mem(h).value())
            .collect();
        let root_stor = hosts
            .iter()
            .map(|&h| phys.effective_stor(h).value())
            .collect();
        SearchBase {
            phys,
            venv,
            config,
            hosts,
            order,
            suffix_demand,
            suffix_mem,
            suffix_stor,
            peers,
            root_proc,
            root_mem,
            root_stor,
        }
    }

    /// The root node's residual state: full effective capacities, no
    /// guest assigned.
    fn root_state(&self) -> NodeState {
        NodeState {
            slot_of: vec![None; self.venv.guest_count()],
            r_proc: self.root_proc.clone(),
            r_mem: self.root_mem.clone(),
            r_stor: self.root_stor.clone(),
        }
    }

    /// Restores `st`'s residuals to the root capacities *by copy* from
    /// the root vectors — never by arithmetic undo; see the `root_proc`
    /// field docs. Assignments (`slot_of`) are not touched: they are
    /// integer state, cleared exactly by the caller.
    fn seed_root_residuals(&self, st: &mut NodeState) {
        st.r_proc.copy_from_slice(&self.root_proc);
        st.r_mem.copy_from_slice(&self.root_mem);
        st.r_stor.copy_from_slice(&self.root_stor);
    }

    /// Assigns `order[depth]` to `slot`, debiting the residuals.
    fn apply(&self, st: &mut NodeState, depth: usize, slot: usize) {
        let guest = self.order[depth];
        let spec = self.venv.guest(guest);
        st.slot_of[guest.index()] = Some(slot);
        st.r_proc[slot] -= spec.proc.value();
        st.r_mem[slot] -= spec.mem.value();
        st.r_stor[slot] -= spec.stor.value();
    }

    /// Exact inverse of [`apply`](Self::apply).
    fn undo(&self, st: &mut NodeState, depth: usize, slot: usize) {
        let guest = self.order[depth];
        let spec = self.venv.guest(guest);
        st.slot_of[guest.index()] = None;
        st.r_proc[slot] += spec.proc.value();
        st.r_mem[slot] += spec.mem.value();
        st.r_stor[slot] += spec.stor.value();
    }

    /// The admissible lower bound at the current node. Returns the bound
    /// together with the plain water-filling value (for the
    /// improvement/prune attribution counters). The Lagrangian ascent
    /// warm-starts from whatever multipliers sit in `cache.lagrangian` —
    /// the previously bounded node's under the sequential engine, the
    /// parent's handed-off snapshot under the parallel one.
    fn node_bound(
        &self,
        st: &NodeState,
        depth: usize,
        incumbent: f64,
        cache: &mut MapCache,
        stats: &mut ExactStats,
    ) -> (f64, f64) {
        let lb_wf = residual_stddev_lower_bound(&st.r_proc, self.suffix_demand[depth]);
        if self.config.bound != BoundKind::Lagrangian {
            return (lb_wf, lb_wf);
        }
        let MapCache {
            topo, lagrangian, ..
        } = cache;
        let view = NodeView {
            hosts: &self.hosts,
            r_proc: &st.r_proc,
            r_mem: &st.r_mem,
            r_stor: &st.r_stor,
            unassigned: &self.order[depth..],
            slot_of: &st.slot_of,
            peers: &self.peers,
            incumbent,
            at_root: depth == 0,
            use_latency: self.config.use_latency_pruning,
        };
        let out = lagrangian_bound(
            self.phys,
            self.venv,
            &view,
            topo,
            lagrangian,
            &self.config.lagrangian,
        );
        stats.subgradient_iters += out.evaluations;
        // Dominance is structural (the zero-price evaluation reproduces
        // the water-filling point); the max also absorbs float noise.
        let lb = out.bound.max(lb_wf);
        if lb > lb_wf + EPSILON {
            stats.bound_improvements += 1;
        }
        (lb, lb_wf)
    }

    /// Exact propagation of the hard constraints (Eqs. 2–3): aggregate
    /// remaining demand must fit the aggregate residuals, and every
    /// unassigned guest must still fit on *some* host individually.
    fn capacity_feasible(&self, st: &NodeState, depth: usize) -> bool {
        let total_mem: u64 = st.r_mem.iter().sum();
        if total_mem < self.suffix_mem[depth] {
            return false;
        }
        let total_stor: f64 = st.r_stor.iter().sum();
        if total_stor < self.suffix_stor[depth] {
            return false;
        }
        self.order[depth..].iter().all(|&g| {
            let spec = self.venv.guest(g);
            (0..self.hosts.len())
                .any(|s| st.r_mem[s] >= spec.mem.value() && st.r_stor[s] >= spec.stor.value())
        })
    }

    /// Eq. 8 check against already-placed peers: even the latency-shortest
    /// path must respect each link's bound, so a placement violating it
    /// can never be routed — an exact prune.
    fn latency_admits(
        &self,
        st: &NodeState,
        guest: GuestId,
        slot: usize,
        cache: &mut MapCache,
    ) -> bool {
        let host = self.hosts[slot];
        for i in 0..self.peers[guest.index()].len() {
            let (peer, bound) = self.peers[guest.index()][i];
            let Some(peer_slot) = st.slot_of[peer] else {
                continue;
            };
            let peer_host = self.hosts[peer_slot];
            if peer_host == host {
                continue; // intra-host: no route, no latency
            }
            let (ar, _) = cache.topo.ar_and_csr(self.phys, peer_host);
            if ar[host.index()] > bound + EPSILON {
                return false;
            }
        }
        true
    }

    /// Host slots in branch order at this node: descending residual CPU
    /// (most-loaded-last spreads load early, so good incumbents arrive
    /// fast), ties broken on slot index for determinism.
    fn sorted_slots(&self, st: &NodeState) -> Vec<usize> {
        let mut slots: Vec<usize> = (0..self.hosts.len()).collect();
        slots.sort_by(|&a, &b| {
            st.r_proc[b]
                .partial_cmp(&st.r_proc[a])
                .expect("finite residuals")
                .then(a.cmp(&b))
        });
        slots
    }

    /// The admissible child slots of an interior node, in branch order:
    /// [`sorted_slots`](Self::sorted_slots) with memory/storage non-fits
    /// dropped silently (as the DFS does) and latency-inadmissible slots
    /// counted as latency prunes.
    fn child_slots(
        &self,
        st: &NodeState,
        depth: usize,
        cache: &mut MapCache,
        stats: &mut ExactStats,
    ) -> Vec<usize> {
        let guest = self.order[depth];
        let spec = *self.venv.guest(guest);
        let mut slots = self.sorted_slots(st);
        slots.retain(|&slot| {
            if st.r_mem[slot] < spec.mem.value() || st.r_stor[slot] < spec.stor.value() {
                return false;
            }
            if self.config.use_latency_pruning && !self.latency_admits(st, guest, slot, cache) {
                stats.pruned_latency += 1;
                return false;
            }
            true
        });
        slots
    }

    /// Routes a complete placement on a fresh [`PlacementState`] (route
    /// commitments must not leak into the search residuals), trying
    /// A\*Prune first and Yen-KSP as a fallback.
    fn route_leaf(&self, st: &NodeState, cache: &mut MapCache) -> Option<(Mapping, f64)> {
        let links = links_by_descending_bw(self.venv);
        let astar = self.config.astar;
        let routed = self.with_fresh_state(st, |state| {
            networking_stage_with(state, &links, &astar, cache).ok()
        })?;
        let routed = match routed {
            Some((routes, _)) => Some(routes),
            None if self.config.ksp_fallback > 0 => {
                let k = self.config.ksp_fallback;
                self.with_fresh_state(st, |state| {
                    networking_stage_ksp_with(state, &links, k, cache).ok()
                })?
                .map(|(routes, _)| routes)
            }
            None => None,
        };
        let routes = routed?;
        let placement: Vec<NodeId> = st
            .slot_of
            .iter()
            .map(|s| self.hosts[s.expect("leaf placement is complete")])
            .collect();
        let mapping = Mapping::new(placement, routes);
        let objective = mapping_objective(self.phys, self.venv, &mapping);
        Some((mapping, objective))
    }

    /// Replays the current assignment into a fresh state and hands it to
    /// `f`. Returns `None` if the replay itself fails (possible only
    /// through float-rounding drift in storage residuals; treated as a
    /// routing failure by the caller).
    fn with_fresh_state<R>(
        &self,
        st: &NodeState,
        f: impl FnOnce(&mut PlacementState<'_>) -> R,
    ) -> Option<R> {
        let mut state = PlacementState::new(self.phys, self.venv);
        for (g, slot) in st.slot_of.iter().enumerate() {
            let host = self.hosts[slot.expect("leaf placement is complete")];
            state.assign(GuestId::from_index(g), host).ok()?;
        }
        Some(f(&mut state))
    }
}

/// The sequential DFS engine (`config.threads == 0`).
struct Search<'a> {
    base: SearchBase<'a>,
    st: NodeState,
    best: f64,
    best_mapping: Option<Mapping>,
    lb_floor: f64,
    truncated: bool,
    stats: ExactStats,
}

impl<'a> Search<'a> {
    fn new(phys: &'a PhysicalTopology, venv: &'a VirtualEnvironment, config: ExactConfig) -> Self {
        let base = SearchBase::new(phys, venv, config);
        let st = base.root_state();
        Search {
            base,
            st,
            best: f64::INFINITY,
            best_mapping: None,
            lb_floor: f64::INFINITY,
            truncated: false,
            stats: ExactStats::default(),
        }
    }

    /// Admits a heuristic mapping as an incumbent if it is valid and
    /// strictly better than the current best.
    fn offer_witness(&mut self, mapping: &Mapping) {
        if validate_mapping(self.base.phys, self.base.venv, mapping).is_err() {
            return;
        }
        let objective = mapping_objective(self.base.phys, self.base.venv, mapping);
        if objective < self.best {
            self.best = objective;
            self.best_mapping = Some(mapping.clone());
        }
        self.stats.witnesses_accepted += 1;
    }

    fn run(&mut self, cache: &mut MapCache) {
        cache.topo.prepare(self.base.phys);
        if self.base.config.bound == BoundKind::Lagrangian {
            // Also resets the multipliers: the bound must be a pure
            // function of the instance, whatever the cache history.
            cache.lagrangian.prepare(
                self.base.phys,
                &self.base.hosts,
                self.base.venv.guest_count(),
            );
        }
        self.dfs(0, cache);
    }

    fn dfs(&mut self, depth: usize, cache: &mut MapCache) {
        if self.stats.nodes_expanded >= self.base.config.max_nodes {
            self.truncated = true;
            return;
        }
        self.stats.nodes_expanded += 1;

        let (lb, lb_wf) = self
            .base
            .node_bound(&self.st, depth, self.best, cache, &mut self.stats);
        if lb >= self.best - EPSILON {
            self.stats.pruned_bound += 1;
            if lb_wf < self.best - EPSILON {
                self.stats.pruned_lagrangian += 1;
            }
            return;
        }
        if depth == self.base.order.len() {
            // Strictly-improving complete placement: try to route it.
            self.stats.leaf_routings += 1;
            match self.base.route_leaf(&self.st, cache) {
                Some((mapping, objective)) => {
                    self.best = objective;
                    self.best_mapping = Some(mapping);
                }
                None => {
                    // The placement may still be routable by an exhaustive
                    // router; keep the bound honest instead of excluding it.
                    self.stats.routing_failures += 1;
                    self.lb_floor = self.lb_floor.min(lb);
                }
            }
            return;
        }
        if !self.base.capacity_feasible(&self.st, depth) {
            self.stats.pruned_capacity += 1;
            return;
        }

        let guest = self.base.order[depth];
        let spec = *self.base.venv.guest(guest);
        // Fit and latency checks stay lazy (per slot, inside the loop) so
        // a truncation mid-loop skips the remaining siblings' checks —
        // exactly the pre-refactor counter behavior.
        for slot in self.base.sorted_slots(&self.st) {
            if self.st.r_mem[slot] < spec.mem.value() || self.st.r_stor[slot] < spec.stor.value() {
                continue;
            }
            if self.base.config.use_latency_pruning
                && !self.base.latency_admits(&self.st, guest, slot, cache)
            {
                self.stats.pruned_latency += 1;
                continue;
            }
            self.base.apply(&mut self.st, depth, slot);
            self.dfs(depth + 1, cache);
            self.base.undo(&mut self.st, depth, slot);
            if self.truncated {
                // Unexplored siblings' subtrees all bound below by this
                // frame's entry lb (bounds only tighten down the tree).
                self.lb_floor = self.lb_floor.min(lb);
                return;
            }
        }
    }

    fn into_outcome(self) -> ExactOutcome {
        finish_outcome(
            self.base.phys,
            self.base.venv,
            self.best,
            self.best_mapping,
            self.lb_floor,
            self.truncated,
            self.stats,
        )
    }
}

/// Shared verdict assembly: certification logic is identical for both
/// engines.
fn finish_outcome(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    best: f64,
    best_mapping: Option<Mapping>,
    lb_floor: f64,
    truncated: bool,
    stats: ExactStats,
) -> ExactOutcome {
    let lower_bound = best.min(lb_floor);
    let status = if truncated {
        ExactStatus::Truncated
    } else if best_mapping.is_none() {
        if stats.routing_failures == 0 {
            ExactStatus::Infeasible
        } else {
            ExactStatus::Truncated
        }
    } else if lb_floor >= best - EPSILON {
        ExactStatus::Optimal
    } else {
        ExactStatus::Truncated
    };
    let lower_bound = match status {
        ExactStatus::Infeasible => f64::INFINITY,
        _ => lower_bound,
    };
    ExactOutcome {
        status,
        best: best_mapping.map(|mapping| {
            let objective = mapping_objective(phys, venv, &mapping);
            ExactSolution { mapping, objective }
        }),
        lower_bound,
        stats,
    }
}

// ---------------------------------------------------------------------------
// Epoch-parallel engine
// ---------------------------------------------------------------------------

/// One node of the shared frontier: the assignment path from the root
/// (in branch order) plus everything a worker needs to bound it as a
/// pure function of `(node, epoch snapshot)`.
struct FrontierNode {
    /// `path[d]` = host slot assigned to `order[d]`, for `d < path.len()`.
    path: Vec<usize>,
    /// The generating parent's admissible bound (0 at the root): a valid
    /// lower bound for the whole subtree, used when truncation leaves
    /// the node unexpanded.
    parent_lb: f64,
    /// The parent's post-ascent multipliers (λ‖ν‖β, packed by
    /// [`LagrangianScratch::save_multipliers`]); `None` at the root and
    /// under [`BoundKind::Waterfill`]. Shared by all siblings.
    warm: Option<Arc<Vec<f64>>>,
    /// Worker index that expanded the parent — `nodes_stolen` counts
    /// nodes processed by a different worker than their generator.
    generator: usize,
}

/// What one worker concluded about one frontier node.
enum NodeResult {
    /// Bound met the snapshot incumbent, or capacity propagation failed:
    /// the subtree is dead (already counted in the worker's stats).
    Pruned,
    /// A complete placement: routed mapping, or a routing failure whose
    /// admissible bound must fold into the solve's bound floor.
    Leaf {
        lb: f64,
        routed: Option<(Mapping, f64)>,
    },
    /// An interior node: admissible child slots in branch order plus the
    /// post-ascent multipliers its children warm-start from.
    Expanded {
        lb: f64,
        children: Vec<usize>,
        warm: Option<Arc<Vec<f64>>>,
    },
}

/// All shared engine state, behind one `RwLock`. Workers hold the read
/// lock while processing an epoch (writing results through the per-item
/// mutexes); worker 0 takes the write lock between epoch barriers to
/// merge results and publish the next plan. The coordinator-only fields
/// ride along in the same struct — they are only touched under the
/// write lock.
struct EngineState {
    /// No more epochs: workers exit at the next barrier.
    done: bool,
    /// The incumbent objective frozen at the epoch start — the *only*
    /// upper bound workers may prune against, which is what makes every
    /// pruning decision thread-count-invariant.
    snapshot: f64,
    /// This epoch's nodes, depth-ordered (index 0 = deepest). Item `i`
    /// is processed by worker `i mod workers`.
    items: Vec<FrontierNode>,
    /// One result slot per item.
    results: Vec<Mutex<Option<NodeResult>>>,
    /// The LIFO frontier stack (top = deepest = next to expand).
    frontier: Vec<FrontierNode>,
    best: f64,
    best_mapping: Option<Mapping>,
    lb_floor: f64,
    truncated: bool,
    expanded_total: u64,
    epochs: u64,
    /// Per-worker incumbent publications (attributed to the worker that
    /// processed the accepted leaf).
    publishes: Vec<u64>,
}

/// Takes up to `epoch_nodes` nodes (budget- and frontier-limited) off
/// the frontier into the next epoch plan, or marks the engine done —
/// folding the unexpanded frontier's bounds into `lb_floor` when the
/// node budget truncates the search.
fn plan_next_epoch(state: &mut EngineState, config: &ExactConfig) {
    state.items.clear();
    state.results.clear();
    if state.frontier.is_empty() {
        state.done = true;
        return;
    }
    if state.expanded_total >= config.max_nodes {
        state.truncated = true;
        let unexpanded = state
            .frontier
            .iter()
            .fold(f64::INFINITY, |acc, n| acc.min(n.parent_lb));
        state.lb_floor = state.lb_floor.min(unexpanded);
        state.frontier.clear();
        state.done = true;
        return;
    }
    let budget = config.max_nodes - state.expanded_total;
    let k = config
        .epoch_nodes
        .max(1)
        .min(budget)
        .min(state.frontier.len() as u64) as usize;
    state.snapshot = state.best;
    for _ in 0..k {
        let node = state.frontier.pop().expect("k <= frontier.len()");
        state.items.push(node);
    }
    state.expanded_total += k as u64;
    state.results = (0..k).map(|_| Mutex::new(None)).collect();
}

/// Merges one epoch's results, in deterministic item order. Pass 1 walks
/// items first-to-last (the depth-first order) accepting strictly
/// improving routed leaves and folding routing-failure bounds into the
/// floor; pass 2 walks last-to-first pushing children (each reversed) so
/// the next epoch pops item 0's first child first — the same exploration
/// order a depth-first search would take, whatever the worker count.
fn merge_epoch(state: &mut EngineState, workers: usize) {
    state.epochs += 1;
    let slots = std::mem::take(&mut state.results);
    let mut results: Vec<NodeResult> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("worker produced a result"))
        .collect();
    for (i, r) in results.iter_mut().enumerate() {
        if let NodeResult::Leaf { lb, routed } = r {
            match routed.take() {
                Some((mapping, objective)) => {
                    // Workers only reach a leaf when its bound beat the
                    // snapshot; re-check against intra-epoch improvements
                    // accepted earlier in this very pass.
                    if objective < state.best - EPSILON {
                        state.best = objective;
                        state.best_mapping = Some(mapping);
                        state.publishes[i % workers] += 1;
                    }
                }
                None => state.lb_floor = state.lb_floor.min(*lb),
            }
        }
    }
    let items = std::mem::take(&mut state.items);
    for i in (0..items.len()).rev() {
        if let NodeResult::Expanded { lb, children, warm } = &results[i] {
            // The published incumbent may have caught up with this
            // node's bound mid-epoch: its whole subtree is dead, drop
            // the children unexpanded (the epoch-barrier analogue of
            // the DFS bound prune).
            if *lb >= state.best - EPSILON {
                continue;
            }
            let parent = &items[i];
            for &slot in children.iter().rev() {
                let mut path = Vec::with_capacity(parent.path.len() + 1);
                path.extend_from_slice(&parent.path);
                path.push(slot);
                state.frontier.push(FrontierNode {
                    path,
                    parent_lb: *lb,
                    warm: warm.clone(),
                    generator: i % workers,
                });
            }
        }
    }
}

/// Processes one frontier node — a pure function of `(node, snapshot)`:
/// the worker re-seeds its private residual state from the root vectors
/// (by copy, so the floats are canonical whatever this worker processed
/// before), replays the node's path, loads the parent's multipliers,
/// bounds, and either prunes, routes a leaf, or emits the child list.
/// Nothing here reads mutable shared state, so *which* worker runs this
/// (and in what interleaving) cannot affect the result.
#[allow(clippy::too_many_arguments)]
fn process_node(
    base: &SearchBase<'_>,
    st: &mut NodeState,
    node: &FrontierNode,
    snapshot: f64,
    cache: &mut MapCache,
    stats: &mut ExactStats,
    worker: usize,
) -> NodeResult {
    if node.generator != worker {
        stats.nodes_stolen += 1;
    }
    base.seed_root_residuals(st);
    for (d, &slot) in node.path.iter().enumerate() {
        base.apply(st, d, slot);
    }
    let depth = node.path.len();
    stats.nodes_expanded += 1;
    if base.config.bound == BoundKind::Lagrangian {
        match &node.warm {
            Some(packed) => cache.lagrangian.load_multipliers(packed),
            None => cache.lagrangian.reset_multipliers(),
        }
    }
    let (lb, lb_wf) = base.node_bound(st, depth, snapshot, cache, stats);
    let result = if lb >= snapshot - EPSILON {
        stats.pruned_bound += 1;
        if lb_wf < snapshot - EPSILON {
            stats.pruned_lagrangian += 1;
        }
        NodeResult::Pruned
    } else if depth == base.order.len() {
        stats.leaf_routings += 1;
        match base.route_leaf(st, cache) {
            Some(pair) => NodeResult::Leaf {
                lb,
                routed: Some(pair),
            },
            None => {
                stats.routing_failures += 1;
                NodeResult::Leaf { lb, routed: None }
            }
        }
    } else if !base.capacity_feasible(st, depth) {
        stats.pruned_capacity += 1;
        NodeResult::Pruned
    } else {
        let children = base.child_slots(st, depth, cache, stats);
        let warm = (base.config.bound == BoundKind::Lagrangian).then(|| {
            let mut packed = Vec::new();
            cache.lagrangian.save_multipliers(&mut packed);
            Arc::new(packed)
        });
        NodeResult::Expanded { lb, children, warm }
    };
    // Clear the assignments only (integer state, exact); the residual
    // floats are re-seeded by copy on the next node.
    for d in 0..node.path.len() {
        st.slot_of[base.order[d].index()] = None;
    }
    result
}

/// One worker's lifetime: a bulk-synchronous loop over epochs. Barrier A
/// admits the published plan; barrier B certifies every result slot is
/// filled; between B and the next A, worker 0 alone merges and plans.
fn worker_loop(
    base: &SearchBase<'_>,
    shared: &RwLock<EngineState>,
    barrier: &Barrier,
    worker: usize,
    workers: usize,
    cache: &mut MapCache,
) -> ExactStats {
    let mut stats = ExactStats::default();
    let mut st = base.root_state();
    cache.topo.prepare(base.phys);
    if base.config.bound == BoundKind::Lagrangian {
        cache
            .lagrangian
            .prepare(base.phys, &base.hosts, base.venv.guest_count());
    }
    loop {
        barrier.wait(); // A: the epoch plan is published.
        {
            let state = shared.read();
            if state.done {
                break;
            }
            let mut i = worker;
            while i < state.items.len() {
                let r = process_node(
                    base,
                    &mut st,
                    &state.items[i],
                    state.snapshot,
                    cache,
                    &mut stats,
                    worker,
                );
                *state.results[i].lock() = Some(r);
                i += workers;
            }
        }
        barrier.wait(); // B: every result slot is filled.
        if worker == 0 {
            let mut state = shared.write();
            merge_epoch(&mut state, workers);
            plan_next_epoch(&mut state, &base.config);
        }
    }
    stats
}

/// The epoch-parallel engine (`config.threads ≥ 1`). Returns the outcome
/// plus the per-worker counter snapshots (with merge-time attribution —
/// `incumbent_publishes` and the global `epochs` — folded in), in worker
/// order.
fn solve_epoch_parallel(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    config: &ExactConfig,
    witnesses: &[Mapping],
) -> (ExactOutcome, Vec<ExactStats>) {
    let base = SearchBase::new(phys, venv, *config);
    let workers = config.threads.max(1);
    let mut state = EngineState {
        done: false,
        snapshot: f64::INFINITY,
        items: Vec::new(),
        results: Vec::new(),
        frontier: vec![FrontierNode {
            path: Vec::new(),
            parent_lb: 0.0,
            warm: None,
            generator: 0,
        }],
        best: f64::INFINITY,
        best_mapping: None,
        lb_floor: f64::INFINITY,
        truncated: false,
        expanded_total: 0,
        epochs: 0,
        publishes: vec![0; workers],
    };
    let mut witnesses_accepted = 0u64;
    for w in witnesses {
        if validate_mapping(phys, venv, w).is_err() {
            continue;
        }
        let objective = mapping_objective(phys, venv, w);
        if objective < state.best {
            state.best = objective;
            state.best_mapping = Some(w.clone());
        }
        witnesses_accepted += 1;
    }
    plan_next_epoch(&mut state, config);

    let shared = RwLock::new(state);
    let barrier = Barrier::new(workers);
    let mut worker_stats = ParallelRunner::new(workers)
        .run_workers(|w, cache| worker_loop(&base, &shared, &barrier, w, workers, cache));

    let state = shared.into_inner();
    let mut totals = ExactStats {
        witnesses_accepted,
        epochs: state.epochs,
        ..Default::default()
    };
    for (w, stats) in worker_stats.iter_mut().enumerate() {
        stats.incumbent_publishes = state.publishes[w];
        stats.epochs = state.epochs;
        totals.absorb(stats);
    }
    let outcome = finish_outcome(
        phys,
        venv,
        state.best,
        state.best_mapping,
        state.lb_floor,
        state.truncated,
        totals,
    );
    (outcome, worker_stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hmn::Hmn;
    use crate::mapper::Mapper;
    use emumap_graph::generators;
    use emumap_model::objective::population_stddev;
    use emumap_model::{
        GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb, VLinkSpec, VmmOverhead,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn phys_line(n: usize, mips: &[f64]) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::line(n),
            mips.iter()
                .map(|&m| HostSpec::new(Mips(m), MemMb(2048), StorGb(1000.0))),
            LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    #[test]
    fn water_filling_bound_is_exact_at_leaves() {
        // demand 0: the bound is just the stddev of the residuals.
        let r = [3.0, 1.0, 2.0];
        let expected = population_stddev(&r);
        assert!((residual_stddev_lower_bound(&r, 0.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn water_filling_bound_levels_when_demand_allows() {
        // Residuals (10, 2), demand 8: water-filling leaves (2, 2) —
        // perfectly balanced, bound 0.
        assert!(residual_stddev_lower_bound(&[10.0, 2.0], 8.0) < 1e-12);
        // Demand 4: level L with 2L = 8 → (4, 4)? No: only r0 can be
        // lowered past r1=2... L=4 ≥ 2 keeps r1 at 2, so x=(6,2)? The
        // solver clamps the largest first: k=1, L=(8-2)/1=6 → x=(6,2),
        // stddev 2.
        let lb = residual_stddev_lower_bound(&[10.0, 2.0], 4.0);
        assert!((lb - 2.0).abs() < 1e-9, "lb={lb}");
    }

    #[test]
    fn water_filling_bound_never_exceeds_any_completion() {
        // Brute-force check on a tiny pool: every way of splitting two
        // demands (30, 20) over residuals (100, 80, 60) must be ≥ lb.
        let r = [100.0, 80.0, 60.0];
        let demands = [30.0, 20.0];
        let lb = residual_stddev_lower_bound(&r, demands.iter().sum());
        let mut min_actual = f64::INFINITY;
        for a in 0..3 {
            for b in 0..3 {
                let mut x = r;
                x[a] -= demands[0];
                x[b] -= demands[1];
                min_actual = min_actual.min(population_stddev(&x));
            }
        }
        assert!(lb <= min_actual + 1e-9, "lb={lb} > min={min_actual}");
    }

    fn chain_venv(specs: &[(f64, u64)], bw: f64, lat: f64) -> VirtualEnvironment {
        let mut venv = VirtualEnvironment::new();
        let ids: Vec<_> = specs
            .iter()
            .map(|&(proc, mem)| {
                venv.add_guest(GuestSpec::new(Mips(proc), MemMb(mem), StorGb(10.0)))
            })
            .collect();
        for pair in ids.windows(2) {
            venv.add_link(pair[0], pair[1], VLinkSpec::new(Kbps(bw), Millis(lat)));
        }
        venv
    }

    #[test]
    fn oracle_certifies_a_balanced_optimum() {
        // Two identical hosts, two identical guests: optimum splits them,
        // residuals equal, objective 0.
        let phys = phys_line(2, &[1000.0, 1000.0]);
        let venv = chain_venv(&[(100.0, 64), (100.0, 64)], 10.0, 60.0);
        let out = solve_exact(&phys, &venv, &ExactConfig::default());
        assert_eq!(out.status, ExactStatus::Optimal);
        let best = out.best.expect("feasible");
        assert!(best.objective < 1e-9, "objective={}", best.objective);
        assert_eq!(validate_mapping(&phys, &venv, &best.mapping), Ok(()));
        assert!((out.lower_bound - best.objective).abs() <= EPSILON);
    }

    #[test]
    fn oracle_certifies_infeasible_when_memory_cannot_fit() {
        let phys = phys_line(2, &[1000.0, 1000.0]);
        // Three guests of 1500 MB against two 2048 MB hosts: no host takes
        // two, and there are only two hosts.
        let venv = chain_venv(&[(10.0, 1500), (10.0, 1500), (10.0, 1500)], 10.0, 60.0);
        let out = solve_exact(&phys, &venv, &ExactConfig::default());
        assert_eq!(out.status, ExactStatus::Infeasible);
        assert!(out.best.is_none());
        assert!(out.lower_bound.is_infinite());
    }

    #[test]
    fn oracle_beats_or_matches_hmn_and_validates() {
        // Heterogeneous hosts so balancing is non-trivial.
        let phys = phys_line(3, &[3000.0, 2000.0, 1000.0]);
        let venv = chain_venv(
            &[
                (400.0, 64),
                (300.0, 64),
                (200.0, 64),
                (100.0, 64),
                (500.0, 64),
            ],
            50.0,
            80.0,
        );
        let mut rng = SmallRng::seed_from_u64(7);
        let hmn = Hmn::new().map(&phys, &venv, &mut rng).expect("HMN maps");
        let out = solve_exact(&phys, &venv, &ExactConfig::default());
        let best = out.best.clone().expect("oracle finds a mapping");
        assert_eq!(validate_mapping(&phys, &venv, &best.mapping), Ok(()));
        assert!(
            best.objective <= hmn.objective + EPSILON,
            "oracle {} worse than HMN {}",
            best.objective,
            hmn.objective
        );
        assert!(out.gap_from(hmn.objective).expect("has best") >= -EPSILON);
    }

    #[test]
    fn witness_seeds_the_incumbent() {
        let phys = phys_line(3, &[3000.0, 2000.0, 1000.0]);
        let venv = chain_venv(&[(400.0, 64), (300.0, 64), (200.0, 64)], 50.0, 80.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let hmn = Hmn::new().map(&phys, &venv, &mut rng).expect("HMN maps");
        let mut cache = MapCache::new();
        let out = solve_exact_with(
            &phys,
            &venv,
            &ExactConfig::default(),
            &mut cache,
            std::slice::from_ref(&hmn.mapping),
        );
        assert_eq!(out.stats.witnesses_accepted, 1);
        let best = out.best.expect("at least the witness");
        assert!(best.objective <= hmn.objective + EPSILON);
    }

    #[test]
    fn node_budget_degrades_to_bounds() {
        let phys = phys_line(4, &[2000.0, 2000.0, 2000.0, 2000.0]);
        let venv = chain_venv(
            &[
                (100.0, 64),
                (90.0, 64),
                (80.0, 64),
                (70.0, 64),
                (60.0, 64),
                (50.0, 64),
            ],
            10.0,
            80.0,
        );
        let out = solve_exact(
            &phys,
            &venv,
            &ExactConfig {
                max_nodes: 3,
                ..Default::default()
            },
        );
        assert_eq!(out.status, ExactStatus::Truncated);
        assert!(out.lower_bound.is_finite());
        // The truncated bound must still under-cut the true optimum.
        let full = solve_exact(&phys, &venv, &ExactConfig::default());
        if let Some(best) = full.best {
            assert!(out.lower_bound <= best.objective + EPSILON);
        }
    }

    #[test]
    fn latency_pruning_does_not_change_the_answer() {
        let phys = phys_line(4, &[2000.0, 1500.0, 1000.0, 500.0]);
        // 12 ms bound rules out 3-hop placements (15 ms), so the prune has
        // actual work to do here.
        let venv = chain_venv(&[(300.0, 900), (200.0, 900), (100.0, 900)], 50.0, 12.0);
        let with = solve_exact(&phys, &venv, &ExactConfig::default());
        let without = solve_exact(
            &phys,
            &venv,
            &ExactConfig {
                use_latency_pruning: false,
                ..Default::default()
            },
        );
        assert_eq!(with.status, without.status);
        match (&with.best, &without.best) {
            (Some(a), Some(b)) => assert!((a.objective - b.objective).abs() <= EPSILON),
            (None, None) => {}
            _ => panic!("pruning changed feasibility"),
        }
    }

    #[test]
    fn oracle_emits_a_well_formed_trace_span() {
        use emumap_trace::{EventSink, Tracer};
        use std::sync::{Arc, Mutex};

        struct Capture(Arc<Mutex<Vec<TraceEvent>>>);
        impl EventSink for Capture {
            fn record(&mut self, event: TraceEvent) {
                self.0.lock().unwrap().push(event);
            }
        }

        let phys = phys_line(2, &[1000.0, 1000.0]);
        let venv = chain_venv(&[(100.0, 64), (100.0, 64)], 10.0, 60.0);
        let events = Arc::new(Mutex::new(Vec::new()));
        let mut cache = MapCache::new();
        cache.trace = Tracer::new(Box::new(Capture(Arc::clone(&events))));
        let out = solve_exact_with(&phys, &venv, &ExactConfig::default(), &mut cache, &[]);
        let events = events.lock().unwrap();
        assert!(matches!(
            events.first(),
            Some(TraceEvent::MapStart { mapper, .. }) if mapper == "EXACT"
        ));
        assert!(matches!(
            events.last(),
            Some(TraceEvent::MapEnd { ok: true, .. })
        ));
        let phase_end = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::PhaseEnd {
                    phase: Phase::Exact,
                    counters,
                    ..
                } => Some(*counters),
                _ => None,
            })
            .expect("an Exact PhaseEnd is emitted");
        assert_eq!(phase_end.exact_nodes_expanded, out.stats.nodes_expanded);
        assert_eq!(phase_end.exact_nodes_pruned, out.stats.pruned_total());
        assert!(out.stats.nodes_expanded > 0);
    }

    #[test]
    fn both_bounds_certify_the_same_answer() {
        // The bound kind changes pruning power, never the verdict: same
        // status, same certified objective, and the Lagrangian search
        // visits no more nodes than the water-filling one (its bound is
        // pointwise >= with an identical branch order).
        let phys = phys_line(3, &[3000.0, 2000.0, 1000.0]);
        let venv = chain_venv(
            &[(400.0, 900), (300.0, 900), (200.0, 900), (100.0, 64)],
            50.0,
            80.0,
        );
        let lag = solve_exact(&phys, &venv, &ExactConfig::default());
        let wf = solve_exact(
            &phys,
            &venv,
            &ExactConfig {
                bound: BoundKind::Waterfill,
                ..Default::default()
            },
        );
        assert_eq!(lag.status, ExactStatus::Optimal);
        assert_eq!(wf.status, ExactStatus::Optimal);
        let (a, b) = (lag.best.unwrap(), wf.best.unwrap());
        assert!((a.objective - b.objective).abs() <= EPSILON);
        assert!(
            lag.stats.nodes_expanded <= wf.stats.nodes_expanded,
            "lagrangian expanded {} > waterfill {}",
            lag.stats.nodes_expanded,
            wf.stats.nodes_expanded
        );
        assert!(lag.stats.subgradient_iters >= lag.stats.nodes_expanded);
    }

    #[test]
    fn waterfill_bound_reports_no_lagrangian_work() {
        use emumap_trace::{EventSink, Tracer};
        use std::sync::{Arc, Mutex};

        struct Capture(Arc<Mutex<Vec<TraceEvent>>>);
        impl EventSink for Capture {
            fn record(&mut self, event: TraceEvent) {
                self.0.lock().unwrap().push(event);
            }
        }

        let phys = phys_line(2, &[1000.0, 1000.0]);
        let venv = chain_venv(&[(100.0, 64), (100.0, 64)], 10.0, 60.0);
        let events = Arc::new(Mutex::new(Vec::new()));
        let mut cache = MapCache::new();
        cache.trace = Tracer::new(Box::new(Capture(Arc::clone(&events))));
        let config = ExactConfig {
            bound: BoundKind::Waterfill,
            ..Default::default()
        };
        let out = solve_exact_with(&phys, &venv, &config, &mut cache, &[]);
        assert_eq!(out.stats.subgradient_iters, 0);
        assert_eq!(out.stats.bound_improvements, 0);
        assert_eq!(out.stats.pruned_lagrangian, 0);
        let events = events.lock().unwrap();
        assert!(matches!(
            events.first(),
            Some(TraceEvent::MapStart { mapper, .. }) if mapper == "EXACT-WF"
        ));
    }

    #[test]
    fn lagrangian_prunes_what_waterfill_cannot() {
        // Memory-tight: each 1024 MB host takes exactly one 900 MB guest,
        // so CPU cannot be water-filled onto the big host. The Lagrangian
        // bound sees that and must both improve on the water-filling bound
        // and fire prunes of its own.
        let phys = PhysicalTopology::from_shape(
            &generators::line(4),
            [4000.0, 1000.0, 1000.0, 1000.0]
                .iter()
                .map(|&m| HostSpec::new(Mips(m), MemMb(1024), StorGb(1000.0))),
            LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let venv = chain_venv(
            &[(500.0, 900), (400.0, 900), (300.0, 900), (200.0, 900)],
            10.0,
            80.0,
        );
        let out = solve_exact(&phys, &venv, &ExactConfig::default());
        assert_eq!(out.status, ExactStatus::Optimal);
        assert!(
            out.stats.bound_improvements > 0,
            "no bound improvements recorded: {:?}",
            out.stats
        );
        assert!(
            out.stats.pruned_lagrangian > 0,
            "no lagrangian-only prunes recorded: {:?}",
            out.stats
        );
        assert!(out.stats.pruned_lagrangian <= out.stats.pruned_bound);
    }

    #[test]
    fn empty_virtual_environment_is_trivially_optimal() {
        let phys = phys_line(2, &[1000.0, 800.0]);
        let venv = VirtualEnvironment::new();
        let out = solve_exact(&phys, &venv, &ExactConfig::default());
        assert_eq!(out.status, ExactStatus::Optimal);
        let best = out.best.expect("empty mapping is feasible");
        // Residuals untouched: objective = stddev of (1000, 800) = 100.
        assert!((best.objective - 100.0).abs() < 1e-9);
    }

    /// A mid-size heterogeneous instance with real pruning work, shared
    /// by the parallel-engine tests.
    fn parallel_fixture() -> (PhysicalTopology, VirtualEnvironment) {
        let phys = phys_line(4, &[3000.0, 2400.0, 1800.0, 1200.0]);
        let venv = chain_venv(
            &[
                (500.0, 900),
                (400.0, 900),
                (300.0, 900),
                (250.0, 128),
                (200.0, 128),
                (150.0, 64),
            ],
            40.0,
            80.0,
        );
        (phys, venv)
    }

    /// Everything that must be thread-count-invariant: the full stats
    /// minus `nodes_stolen` (which depends on the item→worker striping).
    fn invariant_stats(s: &ExactStats) -> ExactStats {
        ExactStats {
            nodes_stolen: 0,
            ..*s
        }
    }

    #[test]
    fn parallel_engine_is_bit_identical_across_thread_counts() {
        let (phys, venv) = parallel_fixture();
        let outs: Vec<ExactOutcome> = [1usize, 2, 4, 8]
            .iter()
            .map(|&threads| {
                solve_exact(
                    &phys,
                    &venv,
                    &ExactConfig {
                        threads,
                        ..Default::default()
                    },
                )
            })
            .collect();
        let first = &outs[0];
        assert_eq!(first.status, ExactStatus::Optimal);
        for out in &outs[1..] {
            assert_eq!(out.status, first.status);
            assert_eq!(out.lower_bound.to_bits(), first.lower_bound.to_bits());
            let (a, b) = (first.best.as_ref().unwrap(), out.best.as_ref().unwrap());
            assert_eq!(a.objective.to_bits(), b.objective.to_bits());
            assert_eq!(a.mapping.placement(), b.mapping.placement());
            assert_eq!(invariant_stats(&out.stats), invariant_stats(&first.stats));
        }
    }

    #[test]
    fn parallel_engine_agrees_with_sequential_dfs() {
        // DFS and the epoch engine explore in different orders, so node
        // counts may differ — but both are exact: same verdict, same
        // certified objective and bound (up to EPSILON).
        let (phys, venv) = parallel_fixture();
        for bound in [BoundKind::Lagrangian, BoundKind::Waterfill] {
            let seq = solve_exact(
                &phys,
                &venv,
                &ExactConfig {
                    bound,
                    ..Default::default()
                },
            );
            let par = solve_exact(
                &phys,
                &venv,
                &ExactConfig {
                    bound,
                    threads: 4,
                    ..Default::default()
                },
            );
            assert_eq!(seq.status, ExactStatus::Optimal);
            assert_eq!(par.status, ExactStatus::Optimal);
            let (a, b) = (seq.best.unwrap(), par.best.unwrap());
            assert!((a.objective - b.objective).abs() <= EPSILON);
            assert!((seq.lower_bound - par.lower_bound).abs() <= EPSILON);
        }
    }

    #[test]
    fn parallel_worker_counters_sum_to_totals() {
        use emumap_trace::{EventSink, Tracer};
        use std::sync::Mutex as StdMutex;

        struct Capture(std::sync::Arc<StdMutex<Vec<TraceEvent>>>);
        impl EventSink for Capture {
            fn record(&mut self, event: TraceEvent) {
                self.0.lock().unwrap().push(event);
            }
        }

        let (phys, venv) = parallel_fixture();
        let events = std::sync::Arc::new(StdMutex::new(Vec::new()));
        let mut cache = MapCache::new();
        cache.trace = Tracer::new(Box::new(Capture(std::sync::Arc::clone(&events))));
        let config = ExactConfig {
            threads: 4,
            ..Default::default()
        };
        let out = solve_exact_with(&phys, &venv, &config, &mut cache, &[]);
        let events = events.lock().unwrap();
        let workers: Vec<(u64, PhaseCounters)> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ExactWorker { worker, counters } => Some((*worker, *counters)),
                _ => None,
            })
            .collect();
        assert_eq!(
            workers.iter().map(|(w, _)| *w).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        let total = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::PhaseEnd {
                    phase: Phase::Exact,
                    counters,
                    ..
                } => Some(*counters),
                _ => None,
            })
            .expect("an Exact PhaseEnd is emitted");
        // Additive counters: worker shares sum to the totals.
        let sum = |f: fn(&PhaseCounters) -> u64| workers.iter().map(|(_, c)| f(c)).sum::<u64>();
        assert_eq!(sum(|c| c.exact_nodes_expanded), total.exact_nodes_expanded);
        assert_eq!(sum(|c| c.exact_nodes_pruned), total.exact_nodes_pruned);
        assert_eq!(sum(|c| c.subgradient_iters), total.subgradient_iters);
        assert_eq!(sum(|c| c.bound_improvements), total.bound_improvements);
        assert_eq!(
            sum(|c| c.nodes_pruned_lagrangian),
            total.nodes_pruned_lagrangian
        );
        assert_eq!(sum(|c| c.incumbent_publishes), total.incumbent_publishes);
        // `epochs` is a global: every worker reports the same value.
        assert!(workers.iter().all(|(_, c)| c.epochs == total.epochs));
        assert!(total.epochs > 0);
        assert_eq!(total.exact_nodes_expanded, out.stats.nodes_expanded);
        assert_eq!(out.stats.epochs, total.epochs);
    }

    #[test]
    fn parallel_truncation_still_bounds_the_optimum() {
        let (phys, venv) = parallel_fixture();
        let full = solve_exact(&phys, &venv, &ExactConfig::default());
        let optimum = full.best.expect("fixture is feasible").objective;
        for threads in [1usize, 4] {
            let out = solve_exact(
                &phys,
                &venv,
                &ExactConfig {
                    threads,
                    max_nodes: 7,
                    epoch_nodes: 3,
                    ..Default::default()
                },
            );
            assert_eq!(out.status, ExactStatus::Truncated);
            assert!(out.lower_bound <= optimum + EPSILON);
            assert!(out.stats.nodes_expanded <= 7 + 3);
        }
    }

    #[test]
    fn parallel_witness_seeds_the_incumbent_once() {
        // Witness bookkeeping belongs to the solve, not the workers: the
        // count must not scale with the thread count.
        let (phys, venv) = parallel_fixture();
        let mut rng = SmallRng::seed_from_u64(3);
        let hmn = Hmn::new().map(&phys, &venv, &mut rng).expect("HMN maps");
        for threads in [1usize, 4] {
            let mut cache = MapCache::new();
            let out = solve_exact_with(
                &phys,
                &venv,
                &ExactConfig {
                    threads,
                    ..Default::default()
                },
                &mut cache,
                std::slice::from_ref(&hmn.mapping),
            );
            assert_eq!(out.stats.witnesses_accepted, 1);
            let best = out.best.expect("at least the witness");
            assert!(best.objective <= hmn.objective + EPSILON);
        }
    }

    #[test]
    fn parallel_engine_certifies_infeasibility() {
        let phys = phys_line(2, &[1000.0, 1000.0]);
        let venv = chain_venv(&[(10.0, 1500), (10.0, 1500), (10.0, 1500)], 10.0, 60.0);
        let out = solve_exact(
            &phys,
            &venv,
            &ExactConfig {
                threads: 4,
                ..Default::default()
            },
        );
        assert_eq!(out.status, ExactStatus::Infeasible);
        assert!(out.best.is_none());
        assert!(out.lower_bound.is_infinite());
    }

    #[test]
    fn parallel_empty_virtual_environment_is_trivially_optimal() {
        // The root is itself a leaf: the engine must route the empty
        // placement, not dead-end on an empty frontier.
        let phys = phys_line(2, &[1000.0, 800.0]);
        let venv = VirtualEnvironment::new();
        let out = solve_exact(
            &phys,
            &venv,
            &ExactConfig {
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(out.status, ExactStatus::Optimal);
        let best = out.best.expect("empty mapping is feasible");
        assert!((best.objective - 100.0).abs() < 1e-9);
    }
}
