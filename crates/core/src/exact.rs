//! An **exact branch-and-bound oracle** for the mapping problem — the
//! certification counterpart to the heuristics.
//!
//! The paper evaluates HMN only against heuristic baselines; nothing can
//! say how far a mapping is from optimal. This module enumerates
//! guest→host assignments with depth-first branch-and-bound and certifies
//! the minimum Eq. 10 objective (population stddev of residual CPU,
//! Eq. 11) over all feasible mappings:
//!
//! * **Bounding** — the objective depends only on the *placement* (routes
//!   never consume CPU), so a continuous water-filling relaxation of the
//!   unassigned CPU demand pool yields an admissible lower bound at every
//!   partial assignment (see [`residual_stddev_lower_bound`]).
//! * **Constraint propagation** — memory/storage are hard (Eqs. 2–3):
//!   a branch dies when the remaining demand exceeds the remaining
//!   aggregate capacity or some unassigned guest no longer fits on any
//!   host. Latency bounds (Eq. 8) prune via the cached Dijkstra `ar[]`
//!   tables: placing a link's endpoints farther apart than its bound
//!   allows can never be routed.
//! * **Leaf routing** — complete placements are routed with the same
//!   A\*Prune Networking stage the heuristics use (with a Yen-KSP
//!   fallback), so oracle feasibility subsumes heuristic feasibility.
//! * **Budget** — a node budget degrades the search to *bound-only*
//!   ([`ExactStatus::Truncated`]) instead of hanging: the result is then
//!   a certified interval `[lower_bound, best]`, never a wrong claim.
//!
//! Routing is the one inexact step (A\*Prune and KSP are incomplete
//! searches): when a strictly-improving placement fails to route, its
//! objective is folded into the reported `lower_bound` instead of being
//! discarded, which keeps `lower_bound` sound. The oracle reports
//! [`ExactStatus::Optimal`] only when the search completed *and*
//! `lower_bound == best`.

use crate::astar_prune::AStarPruneConfig;
use crate::cache::MapCache;
use crate::hmn::elapsed_us;
use crate::hosting::links_by_descending_bw;
use crate::ksp_routing::networking_stage_ksp_with;
use crate::lagrangian::{lagrangian_bound, tightest_peer_bounds, LagrangianConfig, NodeView};
use crate::networking::networking_stage_with;
use crate::state::PlacementState;
use emumap_graph::NodeId;
use emumap_model::objective::mapping_objective;
use emumap_model::{validate_mapping, GuestId, Mapping, PhysicalTopology, VirtualEnvironment};
use emumap_trace::{Phase, PhaseCounters, TraceEvent};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Tolerance for objective comparisons: two values closer than this are
/// considered equal, so "optimal" means optimal up to `EPSILON`.
pub const EPSILON: f64 = 1e-9;

/// Which admissible lower bound the search prunes with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BoundKind {
    /// The water-filling relaxation alone ([`residual_stddev_lower_bound`]):
    /// cheap, but blind to memory/storage/bandwidth/latency.
    Waterfill,
    /// The Lagrangian decomposition of [`crate::lagrangian`] (default):
    /// priced per-guest assignment tables with exact fit/latency
    /// restrictions and subgradient ascent, floored at the water-filling
    /// bound — never weaker, usually much stronger under tight
    /// constraints.
    #[default]
    Lagrangian,
}

/// Configuration of the branch-and-bound oracle.
#[derive(Clone, Copy, Debug)]
pub struct ExactConfig {
    /// Search nodes expanded before the search gives up and reports
    /// [`ExactStatus::Truncated`] with the bounds gathered so far.
    pub max_nodes: u64,
    /// Which lower bound prunes the search.
    pub bound: BoundKind,
    /// Subgradient-ascent knobs of the Lagrangian bound (ignored under
    /// [`BoundKind::Waterfill`]).
    pub lagrangian: LagrangianConfig,
    /// A\*Prune configuration for leaf routing. The default equals the
    /// heuristics' default, so the oracle accepts every route HMN would.
    pub astar: AStarPruneConfig,
    /// `k` for the Yen-KSP fallback router tried when A\*Prune fails at a
    /// leaf (`0` disables the fallback).
    pub ksp_fallback: usize,
    /// Prune branches whose latency bounds (Eq. 8) are already violated
    /// by the partial placement, using the cached Dijkstra tables.
    pub use_latency_pruning: bool,
}

impl Default for ExactConfig {
    fn default() -> Self {
        ExactConfig {
            max_nodes: 200_000,
            bound: BoundKind::Lagrangian,
            lagrangian: LagrangianConfig::default(),
            astar: AStarPruneConfig::default(),
            ksp_fallback: 4,
            use_latency_pruning: true,
        }
    }
}

/// How a [`solve_exact`] run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExactStatus {
    /// The search completed and `lower_bound == best` (within
    /// [`EPSILON`]): the incumbent is the certified optimum.
    Optimal,
    /// The search completed, found no feasible mapping, and no pruning
    /// step was inexact: the instance is certified infeasible.
    Infeasible,
    /// The node budget ran out, or a strictly-improving placement could
    /// not be routed by the (incomplete) route searches. Only the
    /// interval `[lower_bound, best]` is certified.
    Truncated,
}

/// Search-effort counters. All deterministic: the branch order is a pure
/// function of the instance.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExactStats {
    /// Search nodes expanded (partial assignments visited).
    pub nodes_expanded: u64,
    /// Subtrees pruned because the lower bound met the incumbent.
    pub pruned_bound: u64,
    /// Subtrees pruned by memory/storage constraint propagation.
    pub pruned_capacity: u64,
    /// Branches pruned by the Eq. 8 latency lower bound.
    pub pruned_latency: u64,
    /// Complete placements handed to the Networking stage.
    pub leaf_routings: u64,
    /// Leaf placements the route searches could not route.
    pub routing_failures: u64,
    /// Witness mappings accepted as incumbents (see [`solve_exact_with`]).
    pub witnesses_accepted: u64,
    /// Lagrangian dual evaluations performed (0 under
    /// [`BoundKind::Waterfill`]; ≥ one per expanded node otherwise).
    pub subgradient_iters: u64,
    /// Nodes where the Lagrangian bound strictly exceeded the
    /// water-filling bound.
    pub bound_improvements: u64,
    /// Bound prunes that *only* the Lagrangian bound fired — the
    /// water-filling bound alone would have kept searching.
    pub pruned_lagrangian: u64,
}

impl ExactStats {
    /// Total subtrees pruned, over every pruning rule.
    pub fn pruned_total(&self) -> u64 {
        self.pruned_bound + self.pruned_capacity + self.pruned_latency
    }
}

/// A feasible mapping found by the oracle, with its Eq. 10 objective.
#[derive(Clone, Debug)]
pub struct ExactSolution {
    /// The mapping (placement + committed routes); passes
    /// [`validate_mapping`].
    pub mapping: Mapping,
    /// Its load-balance objective (Eq. 10).
    pub objective: f64,
}

/// The oracle's verdict: a status, the best mapping found (if any), a
/// certified lower bound, and effort counters.
#[derive(Clone, Debug)]
pub struct ExactOutcome {
    /// How the search ended.
    pub status: ExactStatus,
    /// Best feasible mapping found (the certified optimum when `status`
    /// is [`ExactStatus::Optimal`]).
    pub best: Option<ExactSolution>,
    /// Certified lower bound on the objective of *every* feasible
    /// mapping. [`f64::INFINITY`] when the instance is certified
    /// infeasible.
    pub lower_bound: f64,
    /// Search-effort counters.
    pub stats: ExactStats,
}

impl ExactOutcome {
    /// `true` when the incumbent is the certified optimum.
    pub fn is_certified(&self) -> bool {
        self.status == ExactStatus::Optimal
    }

    /// Optimality gap of a heuristic objective against the incumbent
    /// (`heuristic − best`); `None` when no feasible mapping was found.
    pub fn gap_from(&self, heuristic_objective: f64) -> Option<f64> {
        self.best
            .as_ref()
            .map(|b| heuristic_objective - b.objective)
    }
}

/// Admissible lower bound on the final population stddev of residual CPU.
///
/// `residuals` are the current per-host residuals and `demand` the total
/// CPU demand still unassigned. Any completion subtracts exactly `demand`
/// across the hosts, so the final residual vector `x` satisfies
/// `x_i ≤ r_i` and `Σx = Σr − demand` — and the final *mean* is fixed at
/// `(Σr − demand)/n` regardless of where the guests land. Minimizing the
/// population stddev over that polytope therefore minimizes `Σx²`, whose
/// optimum is the water-filling point `x_i = min(r_i, L)` with the level
/// `L` chosen so the sum comes out right. Every real completion is a
/// point of the polytope, so this is a true (admissible) lower bound.
pub fn residual_stddev_lower_bound(residuals: &[f64], demand: f64) -> f64 {
    let n = residuals.len();
    if n == 0 {
        return 0.0;
    }
    let total: f64 = residuals.iter().sum();
    let target = total - demand;
    let mut sorted = residuals.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite residuals"));
    // With the k largest residuals clamped to the level L and the rest
    // untouched: k·L + Σ_{i≥k} r_i = target. Find the k whose implied L
    // lies between sorted[k] and sorted[k-1].
    let mut prefix = 0.0;
    for k in 1..=n {
        prefix += sorted[k - 1];
        let suffix = total - prefix;
        let level = (target - suffix) / k as f64;
        let lo = if k < n { sorted[k] } else { f64::NEG_INFINITY };
        if level <= sorted[k - 1] + EPSILON && level >= lo - EPSILON {
            let mean = target / n as f64;
            let mut var = k as f64 * (level - mean) * (level - mean);
            for &r in &sorted[k..] {
                var += (r - mean) * (r - mean);
            }
            return (var / n as f64).sqrt().max(0.0);
        }
    }
    // Unreachable for finite inputs (k = n always admits a level), but
    // stay safe: zero is always admissible.
    0.0
}

/// Runs the oracle with a fresh cache and no witnesses. See
/// [`solve_exact_with`].
pub fn solve_exact(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    config: &ExactConfig,
) -> ExactOutcome {
    solve_exact_with(phys, venv, config, &mut MapCache::new(), &[])
}

/// Runs the branch-and-bound oracle.
///
/// `witnesses` are candidate mappings from heuristic runs: each one that
/// passes [`validate_mapping`] is admitted as an incumbent before the
/// search starts. This both warm-starts the pruning and makes two
/// differential guarantees structural — the oracle never reports
/// [`ExactStatus::Infeasible`] when a heuristic succeeded, and its best
/// objective never exceeds a (valid) heuristic's.
///
/// Emits a `MapStart → PhaseStart(Exact) → … → PhaseEnd(Exact) → MapEnd`
/// span through `cache.trace`, with the branch-and-bound counters in the
/// phase's [`PhaseCounters`].
pub fn solve_exact_with(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    config: &ExactConfig,
    cache: &mut MapCache,
    witnesses: &[Mapping],
) -> ExactOutcome {
    let start = Instant::now();
    cache.trace.emit(|| TraceEvent::MapStart {
        // The bound kind is part of the trace contract checked by
        // scripts/check_traces.py: "EXACT" (Lagrangian, the default) runs
        // must show subgradient work, "EXACT-WF" runs must show none.
        mapper: match config.bound {
            BoundKind::Lagrangian => "EXACT",
            BoundKind::Waterfill => "EXACT-WF",
        }
        .to_string(),
        guests: venv.guest_count() as u64,
        links: venv.link_count() as u64,
    });
    cache.trace.emit(|| TraceEvent::PhaseStart {
        phase: Phase::Exact,
    });
    let phase_start = Instant::now();

    let mut search = Search::new(phys, venv, *config);
    for w in witnesses {
        search.offer_witness(w);
    }
    search.run(cache);
    let outcome = search.into_outcome();

    cache.trace.emit(|| TraceEvent::PhaseEnd {
        phase: Phase::Exact,
        elapsed_us: elapsed_us(phase_start),
        counters: PhaseCounters {
            exact_nodes_expanded: outcome.stats.nodes_expanded,
            exact_nodes_pruned: outcome.stats.pruned_total(),
            subgradient_iters: outcome.stats.subgradient_iters,
            bound_improvements: outcome.stats.bound_improvements,
            nodes_pruned_lagrangian: outcome.stats.pruned_lagrangian,
            ..Default::default()
        },
    });
    cache.trace.emit(|| TraceEvent::MapEnd {
        ok: outcome.best.is_some(),
        objective: outcome.best.as_ref().map(|b| b.objective),
        elapsed_us: elapsed_us(start),
    });
    outcome
}

/// The DFS state. Residual bookkeeping mirrors `ResidualState` semantics
/// exactly (integer memory, `>=` storage fits, CPU unconstrained) so a
/// leaf re-assigned into a fresh [`PlacementState`] cannot diverge.
struct Search<'a> {
    phys: &'a PhysicalTopology,
    venv: &'a VirtualEnvironment,
    config: ExactConfig,
    hosts: Vec<NodeId>,
    /// Branch order: guests by descending (mem, stor, proc) — the most
    /// constrained guests first, so infeasibility surfaces high up.
    order: Vec<GuestId>,
    /// `suffix_demand[d]` = total CPU demand of `order[d..]`.
    suffix_demand: Vec<f64>,
    /// `suffix_mem[d]` / `suffix_stor[d]`: remaining hard-resource demand.
    suffix_mem: Vec<u64>,
    suffix_stor: Vec<f64>,
    /// Per guest: `(peer guest, tightest latency bound over their links)`.
    peers: Vec<Vec<(usize, f64)>>,
    /// Guest index → assigned host slot.
    slot_of: Vec<Option<usize>>,
    r_proc: Vec<f64>,
    r_mem: Vec<u64>,
    r_stor: Vec<f64>,
    best: f64,
    best_mapping: Option<Mapping>,
    lb_floor: f64,
    truncated: bool,
    stats: ExactStats,
}

impl<'a> Search<'a> {
    fn new(phys: &'a PhysicalTopology, venv: &'a VirtualEnvironment, config: ExactConfig) -> Self {
        let hosts: Vec<NodeId> = phys.hosts().to_vec();
        let mut order: Vec<GuestId> = venv.guest_ids().collect();
        order.sort_by(|&a, &b| {
            let ga = venv.guest(a);
            let gb = venv.guest(b);
            (gb.mem.value(), gb.stor.value(), gb.proc.value())
                .partial_cmp(&(ga.mem.value(), ga.stor.value(), ga.proc.value()))
                .expect("finite guest specs")
                .then(a.index().cmp(&b.index()))
        });
        let n = order.len();
        let mut suffix_demand = vec![0.0; n + 1];
        let mut suffix_mem = vec![0u64; n + 1];
        let mut suffix_stor = vec![0.0; n + 1];
        for d in (0..n).rev() {
            let g = venv.guest(order[d]);
            suffix_demand[d] = suffix_demand[d + 1] + g.proc.value();
            suffix_mem[d] = suffix_mem[d + 1] + g.mem.value();
            suffix_stor[d] = suffix_stor[d + 1] + g.stor.value();
        }
        let peers = tightest_peer_bounds(venv);
        let r_proc: Vec<f64> = hosts
            .iter()
            .map(|&h| phys.effective_proc(h).value())
            .collect();
        let r_mem: Vec<u64> = hosts
            .iter()
            .map(|&h| phys.effective_mem(h).value())
            .collect();
        let r_stor: Vec<f64> = hosts
            .iter()
            .map(|&h| phys.effective_stor(h).value())
            .collect();
        Search {
            phys,
            venv,
            config,
            hosts,
            order,
            suffix_demand,
            suffix_mem,
            suffix_stor,
            peers,
            slot_of: vec![None; venv.guest_count()],
            r_proc,
            r_mem,
            r_stor,
            best: f64::INFINITY,
            best_mapping: None,
            lb_floor: f64::INFINITY,
            truncated: false,
            stats: ExactStats::default(),
        }
    }

    /// Admits a heuristic mapping as an incumbent if it is valid and
    /// strictly better than the current best.
    fn offer_witness(&mut self, mapping: &Mapping) {
        if validate_mapping(self.phys, self.venv, mapping).is_err() {
            return;
        }
        let objective = mapping_objective(self.phys, self.venv, mapping);
        if objective < self.best {
            self.best = objective;
            self.best_mapping = Some(mapping.clone());
        }
        self.stats.witnesses_accepted += 1;
    }

    fn run(&mut self, cache: &mut MapCache) {
        cache.topo.prepare(self.phys);
        if self.config.bound == BoundKind::Lagrangian {
            // Also resets the multipliers: the bound must be a pure
            // function of the instance, whatever the cache history.
            cache
                .lagrangian
                .prepare(self.phys, &self.hosts, self.venv.guest_count());
        }
        self.dfs(0, cache);
    }

    /// The admissible lower bound at the current node. Returns the bound
    /// together with the plain water-filling value (for the
    /// improvement/prune attribution counters).
    fn node_bound(&mut self, depth: usize, cache: &mut MapCache) -> (f64, f64) {
        let lb_wf = residual_stddev_lower_bound(&self.r_proc, self.suffix_demand[depth]);
        if self.config.bound != BoundKind::Lagrangian {
            return (lb_wf, lb_wf);
        }
        let MapCache {
            topo, lagrangian, ..
        } = cache;
        let view = NodeView {
            hosts: &self.hosts,
            r_proc: &self.r_proc,
            r_mem: &self.r_mem,
            r_stor: &self.r_stor,
            unassigned: &self.order[depth..],
            slot_of: &self.slot_of,
            peers: &self.peers,
            incumbent: self.best,
            at_root: depth == 0,
            use_latency: self.config.use_latency_pruning,
        };
        let out = lagrangian_bound(
            self.phys,
            self.venv,
            &view,
            topo,
            lagrangian,
            &self.config.lagrangian,
        );
        self.stats.subgradient_iters += out.evaluations;
        // Dominance is structural (the zero-price evaluation reproduces
        // the water-filling point); the max also absorbs float noise.
        let lb = out.bound.max(lb_wf);
        if lb > lb_wf + EPSILON {
            self.stats.bound_improvements += 1;
        }
        (lb, lb_wf)
    }

    fn dfs(&mut self, depth: usize, cache: &mut MapCache) {
        if self.stats.nodes_expanded >= self.config.max_nodes {
            self.truncated = true;
            return;
        }
        self.stats.nodes_expanded += 1;

        let (lb, lb_wf) = self.node_bound(depth, cache);
        if lb >= self.best - EPSILON {
            self.stats.pruned_bound += 1;
            if lb_wf < self.best - EPSILON {
                self.stats.pruned_lagrangian += 1;
            }
            return;
        }
        if depth == self.order.len() {
            // Strictly-improving complete placement: try to route it.
            self.stats.leaf_routings += 1;
            match self.route_leaf(cache) {
                Some((mapping, objective)) => {
                    self.best = objective;
                    self.best_mapping = Some(mapping);
                }
                None => {
                    // The placement may still be routable by an exhaustive
                    // router; keep the bound honest instead of excluding it.
                    self.stats.routing_failures += 1;
                    self.lb_floor = self.lb_floor.min(lb);
                }
            }
            return;
        }
        if !self.capacity_feasible(depth) {
            self.stats.pruned_capacity += 1;
            return;
        }

        let guest = self.order[depth];
        let spec = *self.venv.guest(guest);
        // Most-loaded-last: descending residual CPU spreads load early, so
        // good incumbents arrive fast. Ties break on slot index for
        // determinism.
        let mut slots: Vec<usize> = (0..self.hosts.len()).collect();
        slots.sort_by(|&a, &b| {
            self.r_proc[b]
                .partial_cmp(&self.r_proc[a])
                .expect("finite residuals")
                .then(a.cmp(&b))
        });
        for slot in slots {
            if self.r_mem[slot] < spec.mem.value() || self.r_stor[slot] < spec.stor.value() {
                continue;
            }
            if self.config.use_latency_pruning && !self.latency_admits(guest, slot, cache) {
                self.stats.pruned_latency += 1;
                continue;
            }
            self.slot_of[guest.index()] = Some(slot);
            self.r_proc[slot] -= spec.proc.value();
            self.r_mem[slot] -= spec.mem.value();
            self.r_stor[slot] -= spec.stor.value();
            self.dfs(depth + 1, cache);
            self.slot_of[guest.index()] = None;
            self.r_proc[slot] += spec.proc.value();
            self.r_mem[slot] += spec.mem.value();
            self.r_stor[slot] += spec.stor.value();
            if self.truncated {
                // Unexplored siblings' subtrees all bound below by this
                // frame's entry lb (bounds only tighten down the tree).
                self.lb_floor = self.lb_floor.min(lb);
                return;
            }
        }
    }

    /// Exact propagation of the hard constraints (Eqs. 2–3): aggregate
    /// remaining demand must fit the aggregate residuals, and every
    /// unassigned guest must still fit on *some* host individually.
    fn capacity_feasible(&self, depth: usize) -> bool {
        let total_mem: u64 = self.r_mem.iter().sum();
        if total_mem < self.suffix_mem[depth] {
            return false;
        }
        let total_stor: f64 = self.r_stor.iter().sum();
        if total_stor < self.suffix_stor[depth] {
            return false;
        }
        self.order[depth..].iter().all(|&g| {
            let spec = self.venv.guest(g);
            (0..self.hosts.len())
                .any(|s| self.r_mem[s] >= spec.mem.value() && self.r_stor[s] >= spec.stor.value())
        })
    }

    /// Eq. 8 check against already-placed peers: even the latency-shortest
    /// path must respect each link's bound, so a placement violating it
    /// can never be routed — an exact prune.
    fn latency_admits(&mut self, guest: GuestId, slot: usize, cache: &mut MapCache) -> bool {
        let host = self.hosts[slot];
        for i in 0..self.peers[guest.index()].len() {
            let (peer, bound) = self.peers[guest.index()][i];
            let Some(peer_slot) = self.slot_of[peer] else {
                continue;
            };
            let peer_host = self.hosts[peer_slot];
            if peer_host == host {
                continue; // intra-host: no route, no latency
            }
            let (ar, _) = cache.topo.ar_and_csr(self.phys, peer_host);
            if ar[host.index()] > bound + EPSILON {
                return false;
            }
        }
        true
    }

    /// Routes a complete placement on a fresh [`PlacementState`] (route
    /// commitments must not leak into the search residuals), trying
    /// A\*Prune first and Yen-KSP as a fallback.
    fn route_leaf(&self, cache: &mut MapCache) -> Option<(Mapping, f64)> {
        let links = links_by_descending_bw(self.venv);
        let astar = self.config.astar;
        let routed = self
            .with_fresh_state(|state| networking_stage_with(state, &links, &astar, cache).ok())?;
        let routed = match routed {
            Some((routes, _)) => Some(routes),
            None if self.config.ksp_fallback > 0 => {
                let k = self.config.ksp_fallback;
                self.with_fresh_state(|state| {
                    networking_stage_ksp_with(state, &links, k, cache).ok()
                })?
                .map(|(routes, _)| routes)
            }
            None => None,
        };
        let routes = routed?;
        let placement: Vec<NodeId> = self
            .slot_of
            .iter()
            .map(|s| self.hosts[s.expect("leaf placement is complete")])
            .collect();
        let mapping = Mapping::new(placement, routes);
        let objective = mapping_objective(self.phys, self.venv, &mapping);
        Some((mapping, objective))
    }

    /// Replays the current assignment into a fresh state and hands it to
    /// `f`. Returns `None` if the replay itself fails (possible only
    /// through float-rounding drift in storage residuals; treated as a
    /// routing failure by the caller).
    fn with_fresh_state<R>(&self, f: impl FnOnce(&mut PlacementState<'_>) -> R) -> Option<R> {
        let mut state = PlacementState::new(self.phys, self.venv);
        for (g, slot) in self.slot_of.iter().enumerate() {
            let host = self.hosts[slot.expect("leaf placement is complete")];
            state.assign(GuestId::from_index(g), host).ok()?;
        }
        Some(f(&mut state))
    }

    fn into_outcome(self) -> ExactOutcome {
        let (phys, venv) = (self.phys, self.venv);
        let lower_bound = self.best.min(self.lb_floor);
        let status = if self.truncated {
            ExactStatus::Truncated
        } else if self.best_mapping.is_none() {
            if self.stats.routing_failures == 0 {
                ExactStatus::Infeasible
            } else {
                ExactStatus::Truncated
            }
        } else if self.lb_floor >= self.best - EPSILON {
            ExactStatus::Optimal
        } else {
            ExactStatus::Truncated
        };
        let lower_bound = match status {
            ExactStatus::Infeasible => f64::INFINITY,
            _ => lower_bound,
        };
        ExactOutcome {
            status,
            best: self.best_mapping.map(|mapping| {
                let objective = mapping_objective(phys, venv, &mapping);
                ExactSolution { mapping, objective }
            }),
            lower_bound,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hmn::Hmn;
    use crate::mapper::Mapper;
    use emumap_graph::generators;
    use emumap_model::objective::population_stddev;
    use emumap_model::{
        GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb, VLinkSpec, VmmOverhead,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn phys_line(n: usize, mips: &[f64]) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::line(n),
            mips.iter()
                .map(|&m| HostSpec::new(Mips(m), MemMb(2048), StorGb(1000.0))),
            LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    #[test]
    fn water_filling_bound_is_exact_at_leaves() {
        // demand 0: the bound is just the stddev of the residuals.
        let r = [3.0, 1.0, 2.0];
        let expected = population_stddev(&r);
        assert!((residual_stddev_lower_bound(&r, 0.0) - expected).abs() < 1e-12);
    }

    #[test]
    fn water_filling_bound_levels_when_demand_allows() {
        // Residuals (10, 2), demand 8: water-filling leaves (2, 2) —
        // perfectly balanced, bound 0.
        assert!(residual_stddev_lower_bound(&[10.0, 2.0], 8.0) < 1e-12);
        // Demand 4: level L with 2L = 8 → (4, 4)? No: only r0 can be
        // lowered past r1=2... L=4 ≥ 2 keeps r1 at 2, so x=(6,2)? The
        // solver clamps the largest first: k=1, L=(8-2)/1=6 → x=(6,2),
        // stddev 2.
        let lb = residual_stddev_lower_bound(&[10.0, 2.0], 4.0);
        assert!((lb - 2.0).abs() < 1e-9, "lb={lb}");
    }

    #[test]
    fn water_filling_bound_never_exceeds_any_completion() {
        // Brute-force check on a tiny pool: every way of splitting two
        // demands (30, 20) over residuals (100, 80, 60) must be ≥ lb.
        let r = [100.0, 80.0, 60.0];
        let demands = [30.0, 20.0];
        let lb = residual_stddev_lower_bound(&r, demands.iter().sum());
        let mut min_actual = f64::INFINITY;
        for a in 0..3 {
            for b in 0..3 {
                let mut x = r;
                x[a] -= demands[0];
                x[b] -= demands[1];
                min_actual = min_actual.min(population_stddev(&x));
            }
        }
        assert!(lb <= min_actual + 1e-9, "lb={lb} > min={min_actual}");
    }

    fn chain_venv(specs: &[(f64, u64)], bw: f64, lat: f64) -> VirtualEnvironment {
        let mut venv = VirtualEnvironment::new();
        let ids: Vec<_> = specs
            .iter()
            .map(|&(proc, mem)| {
                venv.add_guest(GuestSpec::new(Mips(proc), MemMb(mem), StorGb(10.0)))
            })
            .collect();
        for pair in ids.windows(2) {
            venv.add_link(pair[0], pair[1], VLinkSpec::new(Kbps(bw), Millis(lat)));
        }
        venv
    }

    #[test]
    fn oracle_certifies_a_balanced_optimum() {
        // Two identical hosts, two identical guests: optimum splits them,
        // residuals equal, objective 0.
        let phys = phys_line(2, &[1000.0, 1000.0]);
        let venv = chain_venv(&[(100.0, 64), (100.0, 64)], 10.0, 60.0);
        let out = solve_exact(&phys, &venv, &ExactConfig::default());
        assert_eq!(out.status, ExactStatus::Optimal);
        let best = out.best.expect("feasible");
        assert!(best.objective < 1e-9, "objective={}", best.objective);
        assert_eq!(validate_mapping(&phys, &venv, &best.mapping), Ok(()));
        assert!((out.lower_bound - best.objective).abs() <= EPSILON);
    }

    #[test]
    fn oracle_certifies_infeasible_when_memory_cannot_fit() {
        let phys = phys_line(2, &[1000.0, 1000.0]);
        // Three guests of 1500 MB against two 2048 MB hosts: no host takes
        // two, and there are only two hosts.
        let venv = chain_venv(&[(10.0, 1500), (10.0, 1500), (10.0, 1500)], 10.0, 60.0);
        let out = solve_exact(&phys, &venv, &ExactConfig::default());
        assert_eq!(out.status, ExactStatus::Infeasible);
        assert!(out.best.is_none());
        assert!(out.lower_bound.is_infinite());
    }

    #[test]
    fn oracle_beats_or_matches_hmn_and_validates() {
        // Heterogeneous hosts so balancing is non-trivial.
        let phys = phys_line(3, &[3000.0, 2000.0, 1000.0]);
        let venv = chain_venv(
            &[
                (400.0, 64),
                (300.0, 64),
                (200.0, 64),
                (100.0, 64),
                (500.0, 64),
            ],
            50.0,
            80.0,
        );
        let mut rng = SmallRng::seed_from_u64(7);
        let hmn = Hmn::new().map(&phys, &venv, &mut rng).expect("HMN maps");
        let out = solve_exact(&phys, &venv, &ExactConfig::default());
        let best = out.best.clone().expect("oracle finds a mapping");
        assert_eq!(validate_mapping(&phys, &venv, &best.mapping), Ok(()));
        assert!(
            best.objective <= hmn.objective + EPSILON,
            "oracle {} worse than HMN {}",
            best.objective,
            hmn.objective
        );
        assert!(out.gap_from(hmn.objective).expect("has best") >= -EPSILON);
    }

    #[test]
    fn witness_seeds_the_incumbent() {
        let phys = phys_line(3, &[3000.0, 2000.0, 1000.0]);
        let venv = chain_venv(&[(400.0, 64), (300.0, 64), (200.0, 64)], 50.0, 80.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let hmn = Hmn::new().map(&phys, &venv, &mut rng).expect("HMN maps");
        let mut cache = MapCache::new();
        let out = solve_exact_with(
            &phys,
            &venv,
            &ExactConfig::default(),
            &mut cache,
            std::slice::from_ref(&hmn.mapping),
        );
        assert_eq!(out.stats.witnesses_accepted, 1);
        let best = out.best.expect("at least the witness");
        assert!(best.objective <= hmn.objective + EPSILON);
    }

    #[test]
    fn node_budget_degrades_to_bounds() {
        let phys = phys_line(4, &[2000.0, 2000.0, 2000.0, 2000.0]);
        let venv = chain_venv(
            &[
                (100.0, 64),
                (90.0, 64),
                (80.0, 64),
                (70.0, 64),
                (60.0, 64),
                (50.0, 64),
            ],
            10.0,
            80.0,
        );
        let out = solve_exact(
            &phys,
            &venv,
            &ExactConfig {
                max_nodes: 3,
                ..Default::default()
            },
        );
        assert_eq!(out.status, ExactStatus::Truncated);
        assert!(out.lower_bound.is_finite());
        // The truncated bound must still under-cut the true optimum.
        let full = solve_exact(&phys, &venv, &ExactConfig::default());
        if let Some(best) = full.best {
            assert!(out.lower_bound <= best.objective + EPSILON);
        }
    }

    #[test]
    fn latency_pruning_does_not_change_the_answer() {
        let phys = phys_line(4, &[2000.0, 1500.0, 1000.0, 500.0]);
        // 12 ms bound rules out 3-hop placements (15 ms), so the prune has
        // actual work to do here.
        let venv = chain_venv(&[(300.0, 900), (200.0, 900), (100.0, 900)], 50.0, 12.0);
        let with = solve_exact(&phys, &venv, &ExactConfig::default());
        let without = solve_exact(
            &phys,
            &venv,
            &ExactConfig {
                use_latency_pruning: false,
                ..Default::default()
            },
        );
        assert_eq!(with.status, without.status);
        match (&with.best, &without.best) {
            (Some(a), Some(b)) => assert!((a.objective - b.objective).abs() <= EPSILON),
            (None, None) => {}
            _ => panic!("pruning changed feasibility"),
        }
    }

    #[test]
    fn oracle_emits_a_well_formed_trace_span() {
        use emumap_trace::{EventSink, Tracer};
        use std::sync::{Arc, Mutex};

        struct Capture(Arc<Mutex<Vec<TraceEvent>>>);
        impl EventSink for Capture {
            fn record(&mut self, event: TraceEvent) {
                self.0.lock().unwrap().push(event);
            }
        }

        let phys = phys_line(2, &[1000.0, 1000.0]);
        let venv = chain_venv(&[(100.0, 64), (100.0, 64)], 10.0, 60.0);
        let events = Arc::new(Mutex::new(Vec::new()));
        let mut cache = MapCache::new();
        cache.trace = Tracer::new(Box::new(Capture(Arc::clone(&events))));
        let out = solve_exact_with(&phys, &venv, &ExactConfig::default(), &mut cache, &[]);
        let events = events.lock().unwrap();
        assert!(matches!(
            events.first(),
            Some(TraceEvent::MapStart { mapper, .. }) if mapper == "EXACT"
        ));
        assert!(matches!(
            events.last(),
            Some(TraceEvent::MapEnd { ok: true, .. })
        ));
        let phase_end = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::PhaseEnd {
                    phase: Phase::Exact,
                    counters,
                    ..
                } => Some(*counters),
                _ => None,
            })
            .expect("an Exact PhaseEnd is emitted");
        assert_eq!(phase_end.exact_nodes_expanded, out.stats.nodes_expanded);
        assert_eq!(phase_end.exact_nodes_pruned, out.stats.pruned_total());
        assert!(out.stats.nodes_expanded > 0);
    }

    #[test]
    fn both_bounds_certify_the_same_answer() {
        // The bound kind changes pruning power, never the verdict: same
        // status, same certified objective, and the Lagrangian search
        // visits no more nodes than the water-filling one (its bound is
        // pointwise >= with an identical branch order).
        let phys = phys_line(3, &[3000.0, 2000.0, 1000.0]);
        let venv = chain_venv(
            &[(400.0, 900), (300.0, 900), (200.0, 900), (100.0, 64)],
            50.0,
            80.0,
        );
        let lag = solve_exact(&phys, &venv, &ExactConfig::default());
        let wf = solve_exact(
            &phys,
            &venv,
            &ExactConfig {
                bound: BoundKind::Waterfill,
                ..Default::default()
            },
        );
        assert_eq!(lag.status, ExactStatus::Optimal);
        assert_eq!(wf.status, ExactStatus::Optimal);
        let (a, b) = (lag.best.unwrap(), wf.best.unwrap());
        assert!((a.objective - b.objective).abs() <= EPSILON);
        assert!(
            lag.stats.nodes_expanded <= wf.stats.nodes_expanded,
            "lagrangian expanded {} > waterfill {}",
            lag.stats.nodes_expanded,
            wf.stats.nodes_expanded
        );
        assert!(lag.stats.subgradient_iters >= lag.stats.nodes_expanded);
    }

    #[test]
    fn waterfill_bound_reports_no_lagrangian_work() {
        use emumap_trace::{EventSink, Tracer};
        use std::sync::{Arc, Mutex};

        struct Capture(Arc<Mutex<Vec<TraceEvent>>>);
        impl EventSink for Capture {
            fn record(&mut self, event: TraceEvent) {
                self.0.lock().unwrap().push(event);
            }
        }

        let phys = phys_line(2, &[1000.0, 1000.0]);
        let venv = chain_venv(&[(100.0, 64), (100.0, 64)], 10.0, 60.0);
        let events = Arc::new(Mutex::new(Vec::new()));
        let mut cache = MapCache::new();
        cache.trace = Tracer::new(Box::new(Capture(Arc::clone(&events))));
        let config = ExactConfig {
            bound: BoundKind::Waterfill,
            ..Default::default()
        };
        let out = solve_exact_with(&phys, &venv, &config, &mut cache, &[]);
        assert_eq!(out.stats.subgradient_iters, 0);
        assert_eq!(out.stats.bound_improvements, 0);
        assert_eq!(out.stats.pruned_lagrangian, 0);
        let events = events.lock().unwrap();
        assert!(matches!(
            events.first(),
            Some(TraceEvent::MapStart { mapper, .. }) if mapper == "EXACT-WF"
        ));
    }

    #[test]
    fn lagrangian_prunes_what_waterfill_cannot() {
        // Memory-tight: each 1024 MB host takes exactly one 900 MB guest,
        // so CPU cannot be water-filled onto the big host. The Lagrangian
        // bound sees that and must both improve on the water-filling bound
        // and fire prunes of its own.
        let phys = PhysicalTopology::from_shape(
            &generators::line(4),
            [4000.0, 1000.0, 1000.0, 1000.0]
                .iter()
                .map(|&m| HostSpec::new(Mips(m), MemMb(1024), StorGb(1000.0))),
            LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let venv = chain_venv(
            &[(500.0, 900), (400.0, 900), (300.0, 900), (200.0, 900)],
            10.0,
            80.0,
        );
        let out = solve_exact(&phys, &venv, &ExactConfig::default());
        assert_eq!(out.status, ExactStatus::Optimal);
        assert!(
            out.stats.bound_improvements > 0,
            "no bound improvements recorded: {:?}",
            out.stats
        );
        assert!(
            out.stats.pruned_lagrangian > 0,
            "no lagrangian-only prunes recorded: {:?}",
            out.stats
        );
        assert!(out.stats.pruned_lagrangian <= out.stats.pruned_bound);
    }

    #[test]
    fn empty_virtual_environment_is_trivially_optimal() {
        let phys = phys_line(2, &[1000.0, 800.0]);
        let venv = VirtualEnvironment::new();
        let out = solve_exact(&phys, &venv, &ExactConfig::default());
        assert_eq!(out.status, ExactStatus::Optimal);
        let best = out.best.expect("empty mapping is feasible");
        // Residuals untouched: objective = stddev of (1000, 800) = 100.
        assert!((best.objective - 100.0).abs() < 1e-9);
    }
}
