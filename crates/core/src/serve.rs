//! Online multi-tenant embedding sessions (`emumap serve`).
//!
//! The paper maps one virtual environment onto one testbed in a single
//! shot; a real emulation-testbed controller faces a *stream* of arrivals
//! and departures against one long-lived cluster. [`Session`] is that
//! controller's core: it owns the physical topology, the mutable
//! [`ResidualState`], the admitted tenant set, and one warm [`MapCache`],
//! and processes the `apply` / `remove` / `status` / `save` / `restore`
//! request family.
//!
//! ## Admission against residuals
//!
//! An `apply` embeds the incoming venv against a **derived topology**: the
//! base graph with every host's capacities replaced by its current
//! residuals and every link's bandwidth by its residual bandwidth, with
//! latencies untouched. Latency preservation is load-bearing — the
//! [`ArTables`](crate::ArTables) fingerprint covers endpoints and
//! latencies but *not* bandwidth, so the warm Dijkstra tables carry over
//! across admissions and only the Networking stage's residual-bandwidth
//! checks see the drained links.
//!
//! ## Canonical residuals
//!
//! Floating-point addition does not reassociate, so a purely incremental
//! apply/release history would drift ulps away from a from-scratch rebuild
//! and break bit-exact snapshot/restore determinism. After every mutation
//! the session therefore *resyncs*: it adopts
//! [`ResidualState::rebuilt`] over the surviving tenants in id order,
//! making the residual columns a pure function of the surviving tenant
//! **set** — independent of arrival order, departure order, cache warmth,
//! and thread count. The incremental release path is still exercised and
//! debug-asserted against the canonical rebuild within
//! [`ResidualState::drift_tolerance`]; release builds keep the incremental
//! state if a rebuild is ever refused (it cannot be, short of a bug — the
//! tenants were admitted against these very residuals).

use std::collections::BTreeMap;
use std::time::Instant;

use emumap_graph::Graph;
use emumap_model::{
    validate_mapping, HostSpec, Kbps, LinkSpec, Mapping, MemMb, Mips, ObjectiveAccumulator,
    PhysNode, PhysicalTopology, ResidualState, StorGb, VirtualEnvironment, VmmOverhead,
};
use emumap_trace::{RequestKind, ServeCounters, TraceEvent};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::cache::MapCache;
use crate::mapper::Mapper;

/// Mixes the session seed with a request sequence number into the RNG
/// seed for that request's embedding — the same splitmix-style constant
/// the batch harness uses for per-trial seeds.
const SEQ_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// One admitted virtual environment and where it lives.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TenantRecord {
    /// Caller-chosen tenant id (unique within a session).
    pub id: String,
    /// The admitted virtual environment.
    pub venv: VirtualEnvironment,
    /// Its embedding onto the *base* topology.
    pub mapping: Mapping,
    /// The Eq. 10 objective the embedding reported at admission time
    /// (against the residuals it saw then — a historical record, not a
    /// current cluster metric).
    pub objective: f64,
}

/// On-disk session state: the admitted tenants plus the session-lifetime
/// counters. Residuals are deliberately *not* serialized — they are a
/// pure function of the tenant set and are rebuilt (and re-validated) on
/// [`Session::restore`], so a snapshot cannot smuggle in leaked capacity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Snapshot format version (currently 1).
    pub version: u64,
    /// Admitted tenants in id order.
    pub tenants: Vec<TenantRecord>,
    /// Session-lifetime admit/reject/teardown counters.
    pub counters: ServeCounters,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u64 = 1;

/// What an `apply` did.
#[derive(Clone, Debug, PartialEq)]
pub enum ApplyOutcome {
    /// The venv was embedded; residuals were deducted.
    Admitted(AdmitReport),
    /// The venv was refused; the session is unchanged.
    Rejected {
        /// Deterministic human-readable reason (mapper error or duplicate
        /// id) — safe to diff in golden files.
        reason: String,
    },
}

/// Details of a successful admission.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdmitReport {
    /// Guests embedded.
    pub guests: u64,
    /// Virtual links embedded (routed + intra-host).
    pub links: u64,
    /// Distinct physical hosts used.
    pub hosts_used: u64,
    /// Links routed through the physical network.
    pub routed_links: u64,
    /// Links whose endpoints share a host.
    pub intra_host_links: u64,
    /// Eq. 10 objective of the embedding against the residuals it saw.
    pub objective: f64,
}

/// Details of a teardown.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RemoveReport {
    /// Guests released.
    pub guests: u64,
    /// Virtual links released.
    pub links: u64,
}

/// Cluster-wide aggregates reported by `status`. All fields are pure
/// functions of the surviving tenant set (plus the monotone counters), so
/// status responses are golden-diffable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StatusReport {
    /// Active tenants.
    pub tenants: u64,
    /// Guests placed across all tenants.
    pub guests: u64,
    /// Virtual links held across all tenants.
    pub links: u64,
    /// Session-lifetime counters.
    pub counters: ServeCounters,
    /// Sum of residual host CPU (may be negative — CPU is not a
    /// constraint).
    pub residual_proc: f64,
    /// Sum of effective host CPU capacity.
    pub capacity_proc: f64,
    /// Sum of residual host memory, MB.
    pub residual_mem: u64,
    /// Sum of effective host memory capacity, MB.
    pub capacity_mem: u64,
    /// Sum of residual host storage, GB.
    pub residual_stor: f64,
    /// Sum of effective host storage capacity, GB.
    pub capacity_stor: f64,
    /// Sum of residual link bandwidth, kbit/s.
    pub residual_bw: f64,
    /// Sum of link bandwidth capacity, kbit/s.
    pub capacity_bw: f64,
    /// Largest per-entry gap between the live residuals and a
    /// from-scratch rebuild of the surviving tenants — leaked capacity.
    /// Exactly `0.0` while the session's canonical-resync invariant
    /// holds.
    pub leak: f64,
    /// Eq. 10 objective of the whole cluster: stddev of residual host
    /// CPU across all hosts.
    pub cluster_objective: f64,
}

/// Protocol-level failures (distinct from an orderly `apply` rejection,
/// which is a normal response).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// `remove` named a tenant that is not embedded.
    UnknownTenant {
        /// The offending id.
        id: String,
    },
    /// A snapshot failed validation and was not restored.
    CorruptSnapshot {
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant { id } => write!(f, "unknown tenant \"{id}\""),
            ServeError::CorruptSnapshot { detail } => {
                write!(f, "snapshot rejected: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {}

struct Tenant {
    venv: VirtualEnvironment,
    mapping: Mapping,
    objective: f64,
}

/// A long-lived embedding session over one physical cluster.
///
/// Determinism contract: the same request sequence against the same
/// session seed produces bit-identical outcomes (reports, residuals,
/// snapshots) regardless of prior cache warmth or mapper thread count —
/// guaranteed by the [`Mapper::map_with_cache`] cache-transparency
/// contract plus the canonical-resync invariant (see module docs).
pub struct Session {
    phys: PhysicalTopology,
    residual: ResidualState,
    tenants: BTreeMap<String, Tenant>,
    cache: MapCache,
    counters: ServeCounters,
    seq: u64,
    seed: u64,
}

impl Session {
    /// A fresh session over `phys` with a cold cache.
    pub fn new(phys: PhysicalTopology, seed: u64) -> Self {
        Session::with_cache(phys, seed, MapCache::new())
    }

    /// A session reusing an existing (possibly warm) cache — e.g. one
    /// carrying a trace sink, or a cache warmed by earlier one-shot runs.
    pub fn with_cache(phys: PhysicalTopology, seed: u64, cache: MapCache) -> Self {
        let residual = ResidualState::new(&phys);
        Session {
            phys,
            residual,
            tenants: BTreeMap::new(),
            cache,
            counters: ServeCounters::default(),
            seq: 0,
            seed,
        }
    }

    /// The base physical topology.
    pub fn phys(&self) -> &PhysicalTopology {
        &self.phys
    }

    /// Current residual capacities.
    pub fn residual(&self) -> &ResidualState {
        &self.residual
    }

    /// The session cache (attach or detach trace sinks through
    /// `cache_mut().trace`).
    pub fn cache_mut(&mut self) -> &mut MapCache {
        &mut self.cache
    }

    /// Session-lifetime counters.
    pub fn counters(&self) -> ServeCounters {
        self.counters
    }

    /// Ids of the currently embedded tenants, in order.
    pub fn tenant_ids(&self) -> impl Iterator<Item = &str> {
        self.tenants.keys().map(String::as_str)
    }

    /// Number of requests processed so far.
    pub fn requests_processed(&self) -> u64 {
        self.seq
    }

    /// Attempts to admit `venv` under `id` using `mapper`. Rejections
    /// (duplicate id, mapper failure) leave the session untouched and are
    /// normal responses, not errors.
    pub fn apply(
        &mut self,
        id: &str,
        venv: VirtualEnvironment,
        mapper: &dyn Mapper,
    ) -> ApplyOutcome {
        let (seq, started) = self.begin_request(RequestKind::Apply, Some(id));
        let outcome = self.apply_inner(id, venv, mapper, seq);
        match &outcome {
            ApplyOutcome::Admitted(_) => self.counters.admitted += 1,
            ApplyOutcome::Rejected { .. } => self.counters.rejected += 1,
        }
        self.refresh_gauges();
        self.end_request(seq, true, started);
        outcome
    }

    fn apply_inner(
        &mut self,
        id: &str,
        venv: VirtualEnvironment,
        mapper: &dyn Mapper,
        seq: u64,
    ) -> ApplyOutcome {
        if self.tenants.contains_key(id) {
            return ApplyOutcome::Rejected {
                reason: format!("duplicate tenant id \"{id}\""),
            };
        }
        let derived = self.derived_topology();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ seq.wrapping_mul(SEQ_SEED_MIX));
        let outcome = match mapper.map_with_cache(&derived, &venv, &mut rng, &mut self.cache) {
            Ok(outcome) => outcome,
            Err(e) => {
                return ApplyOutcome::Rejected {
                    reason: e.to_string(),
                }
            }
        };
        debug_assert_eq!(
            validate_mapping(&derived, &venv, &outcome.mapping),
            Ok(()),
            "mapper returned an invalid embedding"
        );
        if let Err(e) = self.residual.apply_mapping(&venv, &outcome.mapping) {
            // Unreachable short of a mapper bug: the embedding was checked
            // against a topology built from these very residuals. Reject
            // and restore the canonical state rather than poisoning it.
            debug_assert!(false, "admitted embedding refused by residuals: {e}");
            self.resync();
            return ApplyOutcome::Rejected {
                reason: format!("residual commit refused: {e}"),
            };
        }
        let report = AdmitReport {
            guests: venv.guest_count() as u64,
            links: venv.link_count() as u64,
            hosts_used: outcome.mapping.hosts_used() as u64,
            routed_links: outcome.mapping.routed_link_count() as u64,
            intra_host_links: outcome.mapping.intra_host_link_count() as u64,
            objective: outcome.objective,
        };
        self.tenants.insert(
            id.to_string(),
            Tenant {
                venv,
                mapping: outcome.mapping,
                objective: outcome.objective,
            },
        );
        self.resync();
        ApplyOutcome::Admitted(report)
    }

    /// Tears down tenant `id`, releasing its guests' capacity and its
    /// routes' bandwidth.
    pub fn remove(&mut self, id: &str) -> Result<RemoveReport, ServeError> {
        let (seq, started) = self.begin_request(RequestKind::Remove, Some(id));
        let Some(tenant) = self.tenants.remove(id) else {
            self.end_request(seq, false, started);
            return Err(ServeError::UnknownTenant { id: id.to_string() });
        };
        // Incremental release first — this is the O(tenant) path whose
        // correctness the resync debug-assert then checks against the
        // canonical rebuild.
        self.residual.release_mapping(&tenant.venv, &tenant.mapping);
        self.resync();
        self.counters.removed += 1;
        self.refresh_gauges();
        let report = RemoveReport {
            guests: tenant.venv.guest_count() as u64,
            links: tenant.venv.link_count() as u64,
        };
        self.end_request(seq, true, started);
        Ok(report)
    }

    /// Reports cluster-wide state without mutating anything (beyond the
    /// request counter).
    pub fn status(&mut self) -> StatusReport {
        let (seq, started) = self.begin_request(RequestKind::Status, None);
        let report = self.status_report();
        self.end_request(seq, true, started);
        report
    }

    fn status_report(&self) -> StatusReport {
        let leak = match ResidualState::rebuilt(
            &self.phys,
            self.tenants.values().map(|t| (&t.venv, &t.mapping)),
        ) {
            Ok(canonical) => self.residual.divergence(&canonical),
            Err(_) => f64::INFINITY,
        };
        let mut capacity_proc = 0.0;
        let mut capacity_mem = 0u64;
        let mut capacity_stor = 0.0;
        for &h in self.phys.hosts() {
            capacity_proc += self.phys.effective_proc(h).value();
            capacity_mem += self.phys.effective_mem(h).value();
            capacity_stor += self.phys.effective_stor(h).value();
        }
        let capacity_bw: f64 = self.phys.graph().edges().map(|e| e.weight.bw.value()).sum();
        StatusReport {
            tenants: self.tenants.len() as u64,
            guests: self.counters.placed_guests,
            links: self
                .tenants
                .values()
                .map(|t| t.venv.link_count() as u64)
                .sum(),
            counters: self.counters,
            residual_proc: self.residual.proc_column().iter().sum(),
            capacity_proc,
            residual_mem: self.residual.mem_column().iter().sum(),
            capacity_mem,
            residual_stor: self.residual.stor_column().iter().sum(),
            capacity_stor,
            residual_bw: self
                .phys
                .graph()
                .edge_ids()
                .map(|e| self.residual.bw(e).value())
                .sum(),
            capacity_bw,
            leak,
            cluster_objective: ObjectiveAccumulator::new(self.residual.proc_column()).stddev(),
        }
    }

    /// Serializable state of the session — see [`Snapshot`].
    pub fn snapshot(&mut self) -> Snapshot {
        let (seq, started) = self.begin_request(RequestKind::Save, None);
        let snapshot = Snapshot {
            version: SNAPSHOT_VERSION,
            tenants: self
                .tenants
                .iter()
                .map(|(id, t)| TenantRecord {
                    id: id.clone(),
                    venv: t.venv.clone(),
                    mapping: t.mapping.clone(),
                    objective: t.objective,
                })
                .collect(),
            counters: self.counters,
        };
        self.end_request(seq, true, started);
        snapshot
    }

    /// Replaces the session's tenant set (and counters) from a snapshot.
    /// Every mapping is re-validated against the base topology and the
    /// residuals are rebuilt from scratch; a snapshot that fails either
    /// check is refused **atomically** — the session keeps its current
    /// state.
    pub fn restore(&mut self, snapshot: Snapshot) -> Result<u64, ServeError> {
        let (seq, started) = self.begin_request(RequestKind::Restore, None);
        let result = self.restore_inner(snapshot);
        self.end_request(seq, result.is_ok(), started);
        result
    }

    fn restore_inner(&mut self, snapshot: Snapshot) -> Result<u64, ServeError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(ServeError::CorruptSnapshot {
                detail: format!(
                    "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
                    snapshot.version
                ),
            });
        }
        let mut candidate: BTreeMap<String, Tenant> = BTreeMap::new();
        for record in snapshot.tenants {
            if let Err(violations) = validate_mapping(&self.phys, &record.venv, &record.mapping) {
                return Err(ServeError::CorruptSnapshot {
                    detail: format!(
                        "tenant \"{}\" fails validation: {}",
                        record.id,
                        violations
                            .first()
                            .map(|v| v.to_string())
                            .unwrap_or_else(|| "unknown violation".to_string())
                    ),
                });
            }
            if candidate
                .insert(
                    record.id.clone(),
                    Tenant {
                        venv: record.venv,
                        mapping: record.mapping,
                        objective: record.objective,
                    },
                )
                .is_some()
            {
                return Err(ServeError::CorruptSnapshot {
                    detail: format!("duplicate tenant id \"{}\"", record.id),
                });
            }
        }
        let residual = ResidualState::rebuilt(
            &self.phys,
            candidate.values().map(|t| (&t.venv, &t.mapping)),
        )
        .map_err(|e| ServeError::CorruptSnapshot {
            detail: format!("tenant set overcommits the cluster: {e}"),
        })?;
        let restored = candidate.len() as u64;
        self.tenants = candidate;
        self.residual = residual;
        self.counters = snapshot.counters;
        self.refresh_gauges();
        Ok(restored)
    }

    /// Rebuilds the base graph with every capacity replaced by its
    /// residual (latencies untouched) — what an incoming venv is embedded
    /// against. Node and edge insertion order mirror the base graph, so
    /// ids, host slots, and the latency fingerprint all carry over.
    fn derived_topology(&self) -> PhysicalTopology {
        let base = self.phys.graph();
        let mut g: Graph<PhysNode, LinkSpec> =
            Graph::with_capacity(base.node_count(), base.edge_count());
        for (id, node) in base.nodes() {
            let derived = match node {
                PhysNode::Host(_) => {
                    let slot = self
                        .residual
                        .slot_of(id)
                        .expect("every host has a residual slot");
                    PhysNode::Host(HostSpec::new(
                        Mips(self.residual.proc_column()[slot]),
                        MemMb(self.residual.mem_column()[slot]),
                        StorGb(self.residual.stor_column()[slot].max(0.0)),
                    ))
                }
                PhysNode::Switch => PhysNode::Switch,
            };
            let new_id = g.add_node(derived);
            debug_assert_eq!(new_id, id);
        }
        for e in base.edges() {
            let bw = Kbps(self.residual.bw(e.id).value().max(0.0));
            let new_id = g.add_edge(e.a, e.b, LinkSpec::new(bw, e.weight.lat));
            debug_assert_eq!(new_id, e.id);
        }
        let derived = PhysicalTopology::from_graph(g, VmmOverhead::NONE);
        debug_assert_eq!(derived.hosts(), self.phys.hosts());
        derived
    }

    /// Adopts the canonical from-scratch residual rebuild (see module
    /// docs), debug-asserting the incremental state agrees within the
    /// float drift budget.
    fn resync(&mut self) {
        match ResidualState::rebuilt(
            &self.phys,
            self.tenants.values().map(|t| (&t.venv, &t.mapping)),
        ) {
            Ok(canonical) => {
                debug_assert!(
                    self.residual.divergence(&canonical) <= self.residual.drift_tolerance(),
                    "incremental residuals drifted beyond tolerance: {} > {}",
                    self.residual.divergence(&canonical),
                    self.residual.drift_tolerance(),
                );
                self.residual = canonical;
            }
            Err(e) => {
                // Unreachable short of a bug: every tenant in the map was
                // admitted against these residuals. Keep the (correct
                // within drift) incremental state in release builds.
                debug_assert!(false, "canonical rebuild refused the tenant set: {e}");
            }
        }
    }

    fn refresh_gauges(&mut self) {
        self.counters.active_tenants = self.tenants.len() as u64;
        self.counters.placed_guests = self
            .tenants
            .values()
            .map(|t| t.venv.guest_count() as u64)
            .sum();
        self.counters.routed_links = self
            .tenants
            .values()
            .map(|t| t.mapping.routed_link_count() as u64)
            .sum();
    }

    fn begin_request(&mut self, kind: RequestKind, tenant: Option<&str>) -> (u64, Instant) {
        self.seq += 1;
        let seq = self.seq;
        let tenant = tenant.map(str::to_string);
        self.cache
            .trace
            .emit(|| TraceEvent::RequestStart { seq, kind, tenant });
        (seq, Instant::now())
    }

    fn end_request(&mut self, seq: u64, ok: bool, started: Instant) {
        let counters = self.counters;
        self.cache.trace.emit(|| TraceEvent::RequestEnd {
            seq,
            ok,
            elapsed_us: started.elapsed().as_micros() as u64,
            counters,
        });
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("hosts", &self.phys.host_count())
            .field("tenants", &self.tenants.len())
            .field("seq", &self.seq)
            .field("counters", &self.counters)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempering::{ParallelTempering, TemperingConfig};
    use crate::Hmn;
    use emumap_graph::generators;
    use emumap_model::{GuestSpec, Millis, VLinkSpec};

    fn phys() -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::torus2d(3, 4),
            std::iter::repeat(HostSpec::new(Mips(2000.0), MemMb(2048), StorGb(2000.0))),
            LinkSpec::new(Kbps(100_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    /// A chain of `n` modest guests.
    fn venv(n: usize, bw: f64) -> VirtualEnvironment {
        let mut v = VirtualEnvironment::new();
        let guests: Vec<_> = (0..n)
            .map(|_| v.add_guest(GuestSpec::new(Mips(100.0), MemMb(256), StorGb(100.0))))
            .collect();
        for pair in guests.windows(2) {
            v.add_link(pair[0], pair[1], VLinkSpec::new(Kbps(bw), Millis(60.0)));
        }
        v
    }

    #[test]
    fn apply_remove_lifecycle_reconciles_to_fresh() {
        let p = phys();
        let fresh = ResidualState::new(&p);
        let mut session = Session::new(p, 42);
        let hmn = Hmn::new();
        assert!(matches!(
            session.apply("a", venv(6, 500.0), &hmn),
            ApplyOutcome::Admitted(_)
        ));
        assert!(matches!(
            session.apply("b", venv(4, 250.0), &hmn),
            ApplyOutcome::Admitted(_)
        ));
        let status = session.status();
        assert_eq!(status.tenants, 2);
        assert_eq!(status.guests, 10);
        assert_eq!(status.counters.admitted, 2);
        assert_eq!(status.leak, 0.0, "canonical resync leaves zero leak");
        assert!(status.residual_proc < status.capacity_proc);

        let report = session.remove("a").unwrap();
        assert_eq!(report.guests, 6);
        session.remove("b").unwrap();
        assert_eq!(
            session.residual(),
            &fresh,
            "removing every tenant restores pristine residuals bit-for-bit"
        );
        let end = session.status();
        assert_eq!(end.counters.removed, 2);
        assert_eq!(end.counters.active_tenants, 0);
        assert_eq!(end.residual_mem, end.capacity_mem);
    }

    #[test]
    fn duplicate_and_infeasible_applies_reject_without_mutating() {
        let p = phys();
        let mut session = Session::new(p, 7);
        let hmn = Hmn::new();
        assert!(matches!(
            session.apply("t", venv(3, 100.0), &hmn),
            ApplyOutcome::Admitted(_)
        ));
        let before = session.residual().clone();
        match session.apply("t", venv(2, 100.0), &hmn) {
            ApplyOutcome::Rejected { reason } => {
                assert!(reason.contains("duplicate"), "{reason}")
            }
            other => panic!("expected rejection: {other:?}"),
        }
        // A guest bigger than any host.
        let mut huge = VirtualEnvironment::new();
        huge.add_guest(GuestSpec::new(Mips(1.0), MemMb(1 << 40), StorGb(1.0)));
        match session.apply("huge", huge, &hmn) {
            ApplyOutcome::Rejected { reason } => {
                assert!(!reason.is_empty());
            }
            other => panic!("expected rejection: {other:?}"),
        }
        assert_eq!(session.residual(), &before, "rejections leave state alone");
        assert_eq!(session.counters().rejected, 2);
        assert_eq!(session.counters().admitted, 1);
        assert!(matches!(
            session.remove("nope"),
            Err(ServeError::UnknownTenant { .. })
        ));
    }

    /// The same request stream against a cold cache and against a cache
    /// warmed by unrelated work must produce identical outcomes.
    #[test]
    fn warm_and_cold_caches_agree_bitwise() {
        let hmn = Hmn::new();
        let mut warm_cache = MapCache::new();
        {
            // Warm the cache on an unrelated one-shot run over the same
            // base topology shape.
            let mut rng = SmallRng::seed_from_u64(99);
            let _ = hmn.map_with_cache(&phys(), &venv(5, 300.0), &mut rng, &mut warm_cache);
        }
        let mut cold = Session::new(phys(), 1234);
        let mut warm = Session::with_cache(phys(), 1234, warm_cache);
        let stream: Vec<(&str, usize, f64)> =
            vec![("x", 6, 400.0), ("y", 3, 150.0), ("z", 8, 700.0)];
        for (id, n, bw) in stream {
            let a = cold.apply(id, venv(n, bw), &hmn);
            let b = warm.apply(id, venv(n, bw), &hmn);
            assert_eq!(a, b, "cache history changed an outcome for {id}");
        }
        cold.remove("y").unwrap();
        warm.remove("y").unwrap();
        assert_eq!(cold.residual(), warm.residual());
        assert_eq!(cold.status(), warm.status());
    }

    /// Thread count must not leak into outcomes when the mapper is the
    /// parallel-tempering annealer.
    #[test]
    fn tempering_thread_count_does_not_change_outcomes() {
        let mk = |threads| ParallelTempering {
            config: TemperingConfig {
                replicas: 4,
                rounds: 4,
                iterations_per_round: 10,
                threads,
                ..TemperingConfig::default()
            },
        };
        let mut one = Session::new(phys(), 5);
        let mut four = Session::new(phys(), 5);
        let a = one.apply("t", venv(5, 200.0), &mk(1));
        let b = four.apply("t", venv(5, 200.0), &mk(4));
        assert_eq!(a, b);
        assert_eq!(one.residual(), four.residual());
    }

    #[test]
    fn snapshot_restore_roundtrips_bitwise() {
        let hmn = Hmn::new();
        let mut session = Session::new(phys(), 11);
        session.apply("a", venv(4, 300.0), &hmn);
        session.apply("b", venv(6, 500.0), &hmn);
        session.remove("a").unwrap();
        let snap = session.snapshot();
        // Serde roundtrip through the JSONL snapshot format.
        let snap: Snapshot = serde_json::from_str(&serde_json::to_string(&snap).unwrap()).unwrap();

        let mut restored = Session::new(phys(), 11);
        assert_eq!(restored.restore(snap).unwrap(), 1);
        assert_eq!(restored.residual(), session.residual());
        assert_eq!(restored.counters(), session.counters());
        assert_eq!(
            restored.tenant_ids().collect::<Vec<_>>(),
            session.tenant_ids().collect::<Vec<_>>()
        );
        // The restored session continues deterministically: the next
        // apply sees identical residuals, so an identical derived
        // topology.
        let c1 = session.apply("c", venv(3, 100.0), &hmn);
        // Align request seq (restored processed restore instead of
        // apply+apply+remove+save; seq differs, so outcomes may differ
        // only through the per-request seed — pin them equal by catching
        // the session up).
        while restored.requests_processed() < session.requests_processed() {
            restored.status();
        }
        let c2 = restored.apply("c", venv(3, 100.0), &hmn);
        assert_eq!(c1, c2);
    }

    #[test]
    fn corrupt_snapshots_are_refused_atomically() {
        let hmn = Hmn::new();
        let mut session = Session::new(phys(), 3);
        session.apply("keep", venv(3, 100.0), &hmn);
        let good = session.snapshot();
        let residual_before = session.residual().clone();

        // Wrong version.
        let mut bad = good.clone();
        bad.version = 999;
        assert!(matches!(
            session.restore(bad),
            Err(ServeError::CorruptSnapshot { .. })
        ));

        // Mapping that fails Eq. 1 validation (placement truncated).
        let mut bad = good.clone();
        bad.tenants[0].mapping = Mapping::new(vec![], vec![]);
        assert!(matches!(
            session.restore(bad),
            Err(ServeError::CorruptSnapshot { .. })
        ));

        // Tenant set that overcommits memory: the same tenant twice under
        // different ids, scaled up to exceed capacity.
        let mut bad = good.clone();
        let mut dup = bad.tenants[0].clone();
        dup.id = "dup".to_string();
        bad.tenants.push(dup);
        let mut heavy = VirtualEnvironment::new();
        heavy.add_guest(GuestSpec::new(Mips(1.0), MemMb(2048), StorGb(1.0)));
        let host0 = session.phys().hosts()[0];
        let heavy_mapping = Mapping::new(vec![host0], vec![]);
        bad.tenants = (0..2)
            .map(|i| TenantRecord {
                id: format!("heavy{i}"),
                venv: heavy.clone(),
                mapping: heavy_mapping.clone(),
                objective: 0.0,
            })
            .collect();
        assert!(matches!(
            session.restore(bad),
            Err(ServeError::CorruptSnapshot { .. })
        ));

        assert_eq!(
            session.residual(),
            &residual_before,
            "failed restores must not touch state"
        );
        assert_eq!(session.tenant_ids().collect::<Vec<_>>(), vec!["keep"]);
    }

    /// Request spans bracket every request and carry monotone counters.
    #[test]
    fn request_spans_are_emitted_in_order() {
        use emumap_trace::{JsonlSink, Tracer};
        let mut cache = MapCache::new();
        cache.trace = Tracer::new(Box::new(JsonlSink::new(Vec::new())));
        let mut session = Session::with_cache(phys(), 8, cache);
        let hmn = Hmn::new();
        session.apply("a", venv(3, 100.0), &hmn);
        session.remove("a").unwrap();
        session.status();
        let sink = session.cache_mut().trace.take_sink().unwrap();
        drop(sink); // events were recorded; detailed shape is checked by
                    // the CLI round-trip tests and scripts/check_traces.py
        assert_eq!(session.requests_processed(), 3);
    }
}
