//! Mapper failure modes.

use emumap_model::{GuestId, VLinkId};
use serde::{Deserialize, Serialize};

/// Why a mapper could not produce a valid mapping.
///
/// The paper's heuristics fail hard rather than degrade: "If in some moment
/// no host supports an unassigned guest, the heuristic fails" (§4.1) and
/// "If in some moment a path for a virtual link cannot be found, the
/// heuristic fails" (§4.3). The Table 2 failure counts are counts of these
/// errors.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum MapError {
    /// The Hosting stage (or a random placement) could not find a host with
    /// enough memory/storage for this guest.
    HostingFailed {
        /// The guest that fit nowhere.
        guest: GuestId,
    },
    /// The Networking stage (or a baseline's DFS router) could not find a
    /// feasible path for this virtual link.
    NetworkingFailed {
        /// The link that could not be routed.
        link: VLinkId,
    },
    /// A retrying mapper (R, RA, HS) exhausted its retry budget.
    RetriesExhausted {
        /// How many complete attempts were made.
        attempts: usize,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::HostingFailed { guest } => {
                write!(f, "hosting failed: no host can receive guest {guest}")
            }
            MapError::NetworkingFailed { link } => {
                write!(
                    f,
                    "networking failed: no feasible path for virtual link {link}"
                )
            }
            MapError::RetriesExhausted { attempts } => {
                write!(f, "no valid mapping found after {attempts} attempts")
            }
        }
    }
}

impl std::error::Error for MapError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = MapError::HostingFailed {
            guest: GuestId::from_index(7),
        };
        assert!(format!("{e}").contains("n7"));
        let e = MapError::NetworkingFailed {
            link: VLinkId::from_index(3),
        };
        assert!(format!("{e}").contains("e3"));
        let e = MapError::RetriesExhausted { attempts: 100 };
        assert!(format!("{e}").contains("100"));
    }
}
