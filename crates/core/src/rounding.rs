//! The **randomized-rounding LP mapper** (`--mapper rr`).
//!
//! Rost & Schmid ("Virtual Network Embedding Approximations: Leveraging
//! Randomized Rounding") show the VNEP admits LP-relaxation +
//! randomized-rounding algorithms with provable quality. This module
//! adapts that recipe to the paper's Eq. 1–9 constraint system as a
//! third point in the quality/speed space between [`Hmn`](crate::Hmn)
//! and the exact oracle:
//!
//! 1. **Fractional solve** ([`RoundingConfig::lp_iterations`] rounds of a
//!    Garg–Könemann-style multiplicative-weights loop): every guest
//!    carries a distribution `x[g][·]` over its candidate hosts
//!    (initially uniform over hosts that can take it alone). Each round
//!    prices congestion — host prices grow with the expected
//!    worst-resource utilization `Σ_g x[g][h]·demand(g)/cap(h)`, edge
//!    prices with the expected bandwidth utilization of routing every
//!    virtual link along the priced-latency shortest path between its
//!    endpoints' mode (argmax) hosts — and every guest then shifts mass
//!    multiplicatively away from expensive hosts:
//!    `x[g][h] ∝ x[g][h]·exp(-η·cost(g,h))`, where `cost` charges the
//!    priced resource fit, the priced distance to each neighbor's mode
//!    host, and a hard penalty when the latency-shortest path to that
//!    mode already exceeds the link's Eq. 8 bound (read from the shared
//!    `ar[]` tables). The whole solve is deterministic: fixed iteration
//!    order, no RNG, and only cache-independent inputs.
//! 2. **Rounding** (seeded): sample each guest's host from `x[g][·]` by
//!    inverting the cumulative distribution at one uniform draw per
//!    guest. A sample that no longer fits the residual capacities is
//!    *repaired* to the feasible candidate with the largest fractional
//!    mass (counted in `repairs`); an attempt whose placement provably
//!    violates a latency bound (`ar[]` distance > Eq. 8 bound) is
//!    rejected wholesale and re-sampled, up to
//!    [`RoundingConfig::max_attempts`] times.
//! 3. **Repair/refine** with the existing pipeline stages: the paper's
//!    Migration stage balances the rounded placement (Eq. 10), and the
//!    modified 1-constrained A\*Prune routes every link.
//!
//! Scratch (the distribution matrix, price/load vectors, priced Dijkstra
//! tables) lives in [`MapCache::rounding`]; like every mapper the result
//! is bit-identical for any cache history (`warm == cold`).

use crate::astar_prune::AStarPruneConfig;
use crate::cache::{ArTables, MapCache, RoundingScratch};
use crate::error::MapError;
use crate::hmn::elapsed_us;
use crate::hosting::links_by_descending_bw;
use crate::mapper::{MapOutcome, MapStats, Mapper};
use crate::migration::{migration_stage, migration_stage_exhaustive, MigrationPolicy};
use crate::networking::networking_stage_with;
use crate::random::DEFAULT_MAX_ATTEMPTS;
use crate::state::PlacementState;
use emumap_graph::algo::dijkstra_csr;
use emumap_model::{Mapping, PhysicalTopology, VirtualEnvironment};
use emumap_trace::{Phase, PhaseCounters, TraceEvent};
use rand::{Rng, RngCore};
use std::time::Instant;

/// Feasibility slack when comparing latency lower bounds against Eq. 8
/// bounds (mirrors the validator's tolerance).
const LAT_EPSILON: f64 = 1e-9;
/// Cost added for a host whose latency lower bound to a neighbor's mode
/// host already violates the link's bound (or that is unreachable) —
/// large against the O(1)-scaled congestion terms, so mass drains fast.
const INFEASIBLE_PENALTY: f64 = 8.0;
/// Congestion loads are clamped here before entering a multiplicative
/// price update, bounding price growth per round.
const MAX_LOAD: f64 = 4.0;

/// Configuration of the randomized-rounding mapper.
/// [`RoundingConfig::default`] is the harness default behind
/// `--mapper rr`.
#[derive(Clone, Copy, Debug)]
pub struct RoundingConfig {
    /// Multiplicative-weights rounds of the fractional solve.
    pub lp_iterations: usize,
    /// Step size `η` of the guest-distribution update.
    pub step: f64,
    /// Price growth rate `ε`: prices multiply by `1 + ε·load` per round.
    pub price_growth: f64,
    /// Placement samples drawn before giving up
    /// ([`MapError::RetriesExhausted`]).
    pub max_attempts: usize,
    /// Which Migration refinement to run on the rounded placement.
    pub migration: MigrationPolicy,
    /// A\*Prune configuration for the Networking repair stage.
    pub astar: AStarPruneConfig,
}

impl Default for RoundingConfig {
    fn default() -> Self {
        RoundingConfig {
            lp_iterations: 16,
            step: 1.0,
            price_growth: 0.5,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            migration: MigrationPolicy::Paper,
            astar: AStarPruneConfig::default(),
        }
    }
}

/// The randomized-rounding LP mapper. See the module docs for the
/// three-stage pipeline.
#[derive(Clone, Copy, Debug, Default)]
pub struct RandomizedRounding {
    /// Configuration; default = the harness's `--mapper rr`.
    pub config: RoundingConfig,
}

impl RandomizedRounding {
    /// The default rounding mapper.
    pub fn new() -> Self {
        RandomizedRounding::default()
    }

    /// A rounding mapper with a custom configuration.
    pub fn with_config(config: RoundingConfig) -> Self {
        RandomizedRounding { config }
    }
}

/// Outcome of the seeded rounding loop.
struct RoundingRun {
    /// Samples drawn (1 = first sample passed every check).
    attempts: u64,
    /// Per-guest capacity repairs applied across all attempts.
    repairs: u64,
    /// Whether some attempt produced a feasible-looking placement.
    placed: bool,
}

/// Initializes `rs.frac` with a uniform distribution over each guest's
/// candidate hosts (hosts that can take the guest alone) and caches the
/// per-pair normalized worst-resource demand in `rs.fit_cost`. Errors
/// with the first guest that has no candidate host at all.
fn init_candidates(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    rs: &mut RoundingScratch,
) -> Result<(), MapError> {
    let hosts = phys.hosts();
    let (ng, nh) = (venv.guest_count(), hosts.len());
    rs.frac.reset(ng, nh, 0.0);
    rs.fit_cost.resize(ng * nh, 0.0);
    for (gi, g) in venv.guest_ids().enumerate() {
        let spec = venv.guest(g);
        let mut any = false;
        for (hi, &h) in hosts.iter().enumerate() {
            let mem = phys.effective_mem(h).value() as f64;
            let stor = phys.effective_stor(h).value();
            let proc = phys.effective_proc(h).value();
            let fits = spec.mem.value() as f64 <= mem && spec.stor.value() <= stor;
            // Normalized worst-resource demand: what fraction of the
            // host this guest consumes on its tightest axis.
            let util = |d: f64, cap: f64| if cap > 0.0 { d / cap } else { f64::INFINITY };
            rs.fit_cost[gi * nh + hi] = util(spec.proc.value(), proc)
                .max(util(spec.mem.value() as f64, mem))
                .max(util(spec.stor.value(), stor))
                .min(MAX_LOAD);
            if fits {
                rs.frac.row_mut(gi)[hi] = 1.0;
                any = true;
            }
        }
        if !any {
            return Err(MapError::HostingFailed { guest: g });
        }
        rs.frac.normalize_row(gi);
    }
    Ok(())
}

/// One full multiplicative-weights solve over `config.lp_iterations`
/// rounds. Deterministic and cache-independent; `topo` must already be
/// prepared for `phys`.
fn solve_fractional(
    config: &RoundingConfig,
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    topo: &mut ArTables,
    rs: &mut RoundingScratch,
) -> u64 {
    let graph = phys.graph();
    let hosts = phys.hosts();
    let (ng, nh) = (venv.guest_count(), hosts.len());
    let ne = graph.edge_count();

    rs.host_prices.resize(nh, 1.0);
    rs.edge_prices.resize(ne, 1.0);
    rs.edge_loads.resize(ne, 0.0);
    rs.modes.resize(ng, 0);
    rs.cost_row.resize(nh, 0.0);

    // Scale for the link-distance term: the largest virtual bandwidth.
    let bw_max = venv
        .link_ids()
        .map(|l| venv.link(l).bw.value())
        .fold(0.0f64, f64::max)
        .max(f64::MIN_POSITIVE);

    // Maps a dense host index to its row in `rs.priced` this round.
    let mut slot = vec![usize::MAX; nh];

    for _ in 0..config.lp_iterations {
        // Mode (argmax) host of every guest, used both as the routing
        // endpoint estimate and as the distance target below.
        for gi in 0..ng {
            rs.modes[gi] = rs.frac.argmax_row(gi).expect("non-empty candidate row");
        }

        // Priced-latency Dijkstra from every distinct mode host. Prices
        // are ≥ 1 and finite, so costs are valid; `dmax` is the largest
        // finite priced distance this round (distance normalizer).
        rs.priced.clear();
        slot.fill(usize::MAX);
        let mut dmax = f64::MIN_POSITIVE;
        for gi in 0..ng {
            let hi = rs.modes[gi];
            if slot[hi] != usize::MAX {
                continue;
            }
            let prices = &rs.edge_prices;
            let result = dijkstra_csr(graph, topo.csr(), hosts[hi], |e, link| {
                link.lat.value().max(LAT_EPSILON) * prices[e.index()]
            });
            dmax = result
                .distances()
                .iter()
                .copied()
                .filter(|d| d.is_finite())
                .fold(dmax, f64::max);
            slot[hi] = rs.priced.len();
            rs.priced.push((hosts[hi], result));
        }

        // Expected edge utilization: route each link's bandwidth along
        // the priced shortest path between its endpoints' mode hosts.
        rs.edge_loads.fill(0.0);
        for l in venv.link_ids() {
            let (a, b) = venv.link_endpoints(l);
            let (sa, sb) = (rs.modes[a.index()], rs.modes[b.index()]);
            if sa == sb {
                continue; // co-located in expectation: no physical path
            }
            let table = &rs.priced[slot[sa]].1;
            if let Some(edges) = table.edge_path_to(hosts[sb]) {
                let bw = venv.link(l).bw.value();
                for e in edges {
                    let cap = phys.link(e).bw.value();
                    if cap > 0.0 && cap.is_finite() {
                        rs.edge_loads[e.index()] += bw / cap;
                    }
                }
            }
        }

        // Expected host utilization from the full fractional matrix.
        rs.loads
            .accumulate(&rs.frac, venv.guest_ids().map(|g| venv.guest(g)));

        // Multiplicative price updates (clamped loads bound the growth).
        for (hi, &h) in hosts.iter().enumerate() {
            let u = rs
                .loads
                .max_utilization(
                    hi,
                    phys.effective_proc(h).value(),
                    phys.effective_mem(h).value() as f64,
                    phys.effective_stor(h).value(),
                )
                .min(MAX_LOAD);
            rs.host_prices[hi] *= 1.0 + config.price_growth * u;
        }
        let hp_max = rs.host_prices.iter().copied().fold(1.0f64, f64::max);
        for ei in 0..ne {
            rs.edge_prices[ei] *= 1.0 + config.price_growth * rs.edge_loads[ei].min(MAX_LOAD);
        }

        // Guest updates: shift mass away from priced-out hosts.
        for (gi, g) in venv.guest_ids().enumerate() {
            for hi in 0..nh {
                // Resource term: normalized demand, weighted by the
                // host's relative congestion price.
                rs.cost_row[hi] = rs.fit_cost[gi * nh + hi] * (rs.host_prices[hi] / hp_max);
            }
            for nb in venv.links_of(g) {
                if nb.node == g {
                    continue; // self-loops never need a physical path
                }
                let spec = venv.link(nb.edge);
                let bound = spec.lat.value();
                let bw_term = spec.bw.value() / bw_max;
                let om = rs.modes[nb.node.index()];
                let table = &rs.priced[slot[om]].1;
                let (ar, _) = topo.ar_and_csr(phys, hosts[om]);
                for (hi, cost) in rs.cost_row.iter_mut().enumerate() {
                    if hi == om {
                        continue; // co-location: free and always legal
                    }
                    let pd = table.distances()[hosts[hi].index()];
                    if !pd.is_finite() || ar[hosts[hi].index()] > bound + LAT_EPSILON {
                        *cost += INFEASIBLE_PENALTY;
                    } else {
                        *cost += (pd / dmax) * bw_term;
                    }
                }
            }
            let row = rs.frac.row_mut(gi);
            for (hi, w) in row.iter_mut().enumerate() {
                if *w > 0.0 {
                    *w *= (-config.step * rs.cost_row[hi]).exp();
                }
            }
            rs.frac.normalize_row(gi);
        }
    }
    config.lp_iterations as u64
}

/// The seeded rounding loop: sample placements from the fractional
/// solution until one passes the residual-capacity and latency
/// prechecks. On success `state` holds the complete placement.
fn round_placement(
    config: &RoundingConfig,
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    rng: &mut dyn RngCore,
    topo: &mut ArTables,
    rs: &mut RoundingScratch,
    state: &mut PlacementState<'_>,
) -> RoundingRun {
    let hosts = phys.hosts();
    let mut run = RoundingRun {
        attempts: 0,
        repairs: 0,
        placed: false,
    };
    'attempts: while run.attempts < config.max_attempts as u64 {
        run.attempts += 1;
        state.reset();
        rs.sampled.clear();
        for (gi, g) in venv.guest_ids().enumerate() {
            let unit: f64 = rng.gen();
            let mut hi = rs
                .frac
                .sample_row(gi, unit)
                .expect("candidate rows are non-empty");
            if !state.fits(g, hosts[hi]) {
                // Repair: the feasible candidate with the largest
                // fractional mass (smallest index on ties).
                let row = rs.frac.row(gi);
                let mut best: Option<(usize, f64)> = None;
                for (ci, &w) in row.iter().enumerate() {
                    if w > 0.0 && state.fits(g, hosts[ci]) && best.is_none_or(|(_, bw)| w > bw) {
                        best = Some((ci, w));
                    }
                }
                let Some((ci, _)) = best else {
                    continue 'attempts; // nothing fits: re-sample
                };
                hi = ci;
                run.repairs += 1;
            }
            state
                .assign(g, hosts[hi])
                .expect("fits() precedes every assign");
            rs.sampled.push(hosts[hi]);
        }
        // Sound latency precheck: if even the latency-shortest path
        // between two endpoint hosts exceeds the Eq. 8 bound, no router
        // can save this placement — reject before the expensive stages.
        for l in venv.link_ids() {
            let (a, b) = venv.link_endpoints(l);
            let (ha, hb) = (
                state.host_of(a).expect("complete placement"),
                state.host_of(b).expect("complete placement"),
            );
            if ha == hb {
                continue;
            }
            let (ar, _) = topo.ar_and_csr(phys, hb);
            if ar[ha.index()] > venv.link(l).lat.value() + LAT_EPSILON {
                continue 'attempts;
            }
        }
        run.placed = true;
        return run;
    }
    run
}

impl Mapper for RandomizedRounding {
    fn name(&self) -> &str {
        "RR"
    }

    fn map(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
    ) -> Result<MapOutcome, MapError> {
        self.map_with_cache(phys, venv, rng, &mut MapCache::new())
    }

    fn map_with_cache(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
        cache: &mut MapCache,
    ) -> Result<MapOutcome, MapError> {
        let start = Instant::now();
        let mut stats = MapStats::default();
        let mut state = PlacementState::new(phys, venv);
        cache.trace.emit(|| TraceEvent::MapStart {
            mapper: "RR".to_string(),
            guests: venv.guest_count() as u64,
            links: venv.link_count() as u64,
        });

        // Stage 1 (Hosting span): fractional solve + seeded rounding.
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Hosting,
        });
        let t = Instant::now();
        cache.topo.prepare(phys);
        cache.rounding.begin();
        let hosting_counters = |lp: u64, run: &RoundingRun| PhaseCounters {
            lp_iterations: lp,
            rounding_attempts: run.attempts,
            repairs: run.repairs,
            ..Default::default()
        };
        let close_failed = |cache: &mut MapCache, counters: PhaseCounters, t: Instant| {
            cache.trace.emit(|| TraceEvent::PhaseEnd {
                phase: Phase::Hosting,
                elapsed_us: elapsed_us(t),
                counters,
            });
            cache.trace.emit(|| TraceEvent::MapEnd {
                ok: false,
                objective: None,
                elapsed_us: elapsed_us(start),
            });
        };
        if let Err(e) = init_candidates(phys, venv, &mut cache.rounding) {
            close_failed(cache, PhaseCounters::default(), t);
            return Err(e);
        }
        let lp = solve_fractional(
            &self.config,
            phys,
            venv,
            &mut cache.topo,
            &mut cache.rounding,
        );
        let run = round_placement(
            &self.config,
            phys,
            venv,
            rng,
            &mut cache.topo,
            &mut cache.rounding,
            &mut state,
        );
        stats.attempts = run.attempts as usize;
        stats.lp_iterations = lp as usize;
        stats.rounding_attempts = run.attempts as usize;
        stats.repairs = run.repairs as usize;
        stats.placement_time = t.elapsed();
        if !run.placed {
            close_failed(cache, hosting_counters(lp, &run), t);
            return Err(MapError::RetriesExhausted {
                attempts: run.attempts as usize,
            });
        }
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Hosting,
            elapsed_us: elapsed_us(t),
            counters: hosting_counters(lp, &run),
        });

        // Stage 2 (Migration span): balance the rounded placement.
        if self.config.migration != MigrationPolicy::Off {
            cache.trace.emit(|| TraceEvent::PhaseStart {
                phase: Phase::Migration,
            });
            let t = Instant::now();
            let delta_evals_before = state.delta_evaluations();
            let full_evals_before = state.full_evaluations();
            let m = match self.config.migration {
                MigrationPolicy::Paper => migration_stage(&mut state),
                MigrationPolicy::Exhaustive => migration_stage_exhaustive(&mut state),
                MigrationPolicy::Off => unreachable!("guarded above"),
            };
            let delta_evaluations = state.delta_evaluations() - delta_evals_before;
            let full_evaluations = state.full_evaluations() - full_evals_before;
            stats.migrations = m.migrations;
            stats.migrations_rejected = m.rejected;
            stats.proposals_evaluated = m.proposals_evaluated;
            stats.delta_evaluations = delta_evaluations as usize;
            stats.full_evaluations = full_evaluations as usize;
            stats.migration_time = t.elapsed();
            cache.trace.emit(|| TraceEvent::PhaseEnd {
                phase: Phase::Migration,
                elapsed_us: elapsed_us(t),
                counters: PhaseCounters {
                    moves_accepted: m.migrations as u64,
                    moves_rejected: m.rejected as u64,
                    proposals_evaluated: m.proposals_evaluated as u64,
                    delta_evaluations,
                    full_evaluations,
                    ..Default::default()
                },
            });
        }

        // Stage 3 (Networking span): A*Prune routes every link.
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Networking,
        });
        let t = Instant::now();
        let links = links_by_descending_bw(venv);
        let reuses_before = cache.scratch.reuses();
        let net_result = networking_stage_with(&mut state, &links, &self.config.astar, cache);
        let (routes, net) = match net_result {
            Ok(ok) => ok,
            Err(e) => {
                cache.trace.emit(|| TraceEvent::PhaseEnd {
                    phase: Phase::Networking,
                    elapsed_us: elapsed_us(t),
                    counters: PhaseCounters::default(),
                });
                cache.trace.emit(|| TraceEvent::MapEnd {
                    ok: false,
                    objective: None,
                    elapsed_us: elapsed_us(start),
                });
                return Err(e);
            }
        };
        stats.networking_time = t.elapsed();
        stats.routed_links = net.routed_links;
        stats.intra_host_links = net.intra_host_links;
        stats.astar_expansions = net.search.expanded;
        stats.astar_pushed = net.search.pushed;
        stats.dijkstra_runs = net.dijkstra_runs;
        stats.ar_cache_hits = net.ar_cache_hits;
        stats.scratch_reuses = cache.scratch.reuses() - reuses_before;
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Networking,
            elapsed_us: elapsed_us(t),
            counters: PhaseCounters {
                astar_expansions: net.search.expanded as u64,
                astar_pushed: net.search.pushed as u64,
                dijkstra_runs: net.dijkstra_runs as u64,
                cache_hits: net.ar_cache_hits as u64,
                ..Default::default()
            },
        });

        let mapping = Mapping::new(state.into_placement(), routes);
        stats.total_time = start.elapsed();
        let outcome = MapOutcome::new(phys, venv, mapping, stats);
        cache.trace.emit(|| TraceEvent::MapEnd {
            ok: true,
            objective: Some(outcome.objective),
            elapsed_us: elapsed_us(start),
        });
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{
        validate_mapping, GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb,
        VLinkSpec, VmmOverhead,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn paper_like_phys() -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::torus2d(3, 4),
            std::iter::repeat(HostSpec::new(
                Mips(2000.0),
                MemMb::from_gb(2),
                StorGb(2000.0),
            )),
            LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn small_venv(guests: usize, links: &[(usize, usize)]) -> VirtualEnvironment {
        let mut venv = VirtualEnvironment::new();
        let ids: Vec<_> = (0..guests)
            .map(|i| {
                venv.add_guest(GuestSpec::new(
                    Mips(50.0 + i as f64),
                    MemMb(192),
                    StorGb(150.0),
                ))
            })
            .collect();
        for (k, &(a, b)) in links.iter().enumerate() {
            venv.add_link(
                ids[a],
                ids[b],
                VLinkSpec::new(Kbps(500.0 + 10.0 * k as f64), Millis(45.0)),
            );
        }
        venv
    }

    #[test]
    fn rr_produces_a_valid_mapping() {
        let phys = paper_like_phys();
        let venv = small_venv(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 0),
            ],
        );
        let mut rng = SmallRng::seed_from_u64(7);
        let outcome = RandomizedRounding::new()
            .map(&phys, &venv, &mut rng)
            .unwrap();
        assert_eq!(validate_mapping(&phys, &venv, &outcome.mapping), Ok(()));
        assert!(outcome.stats.rounding_attempts >= 1);
        assert_eq!(outcome.stats.lp_iterations, 16);
        assert_eq!(
            outcome.stats.routed_links + outcome.stats.intra_host_links,
            venv.link_count()
        );
    }

    #[test]
    fn rr_is_deterministic_per_seed_and_warm_cache_is_invisible() {
        let phys = paper_like_phys();
        let venv = small_venv(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let rr = RandomizedRounding::new();
        let cold = rr
            .map(&phys, &venv, &mut SmallRng::seed_from_u64(3))
            .unwrap();
        let again = rr
            .map(&phys, &venv, &mut SmallRng::seed_from_u64(3))
            .unwrap();
        assert_eq!(cold.mapping, again.mapping, "same seed, same mapping");
        let mut cache = MapCache::new();
        for _ in 0..3 {
            let warm = rr
                .map_with_cache(&phys, &venv, &mut SmallRng::seed_from_u64(3), &mut cache)
                .unwrap();
            assert_eq!(warm.mapping, cold.mapping, "cache history is invisible");
            assert_eq!(warm.objective, cold.objective);
        }
        let different = rr
            .map(&phys, &venv, &mut SmallRng::seed_from_u64(4))
            .unwrap();
        assert_eq!(
            validate_mapping(&phys, &venv, &different.mapping),
            Ok(()),
            "other seeds still map validly"
        );
    }

    #[test]
    fn rr_emits_bracketed_phase_spans_with_rounding_counters() {
        use emumap_trace::{EventSink, Tracer};
        use std::sync::{Arc, Mutex};

        struct Capture(Arc<Mutex<Vec<TraceEvent>>>);
        impl EventSink for Capture {
            fn record(&mut self, event: TraceEvent) {
                self.0.lock().unwrap().push(event);
            }
        }

        let phys = paper_like_phys();
        let venv = small_venv(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let captured = Arc::new(Mutex::new(Vec::new()));
        let mut cache = MapCache::new();
        cache.trace = Tracer::new(Box::new(Capture(Arc::clone(&captured))));
        RandomizedRounding::new()
            .map_with_cache(&phys, &venv, &mut SmallRng::seed_from_u64(1), &mut cache)
            .unwrap();
        let events = captured.lock().unwrap();
        assert!(
            matches!(events.first(), Some(TraceEvent::MapStart { mapper, .. }) if mapper == "RR")
        );
        assert!(matches!(
            events.last(),
            Some(TraceEvent::MapEnd { ok: true, .. })
        ));
        let hosting_end = events
            .iter()
            .find_map(|e| match e {
                TraceEvent::PhaseEnd {
                    phase: Phase::Hosting,
                    counters,
                    ..
                } => Some(*counters),
                _ => None,
            })
            .expect("hosting span closes");
        assert!(hosting_end.lp_iterations >= 1);
        assert!(hosting_end.rounding_attempts >= 1);
        let phases: Vec<Phase> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::PhaseStart { phase } => Some(*phase),
                _ => None,
            })
            .collect();
        assert_eq!(
            phases,
            vec![Phase::Hosting, Phase::Migration, Phase::Networking]
        );
    }

    #[test]
    fn rr_fails_cleanly_when_nothing_fits() {
        // One tiny host cannot take two fat guests.
        let phys = PhysicalTopology::from_shape(
            &generators::line(1),
            std::iter::once(HostSpec::new(Mips(1000.0), MemMb(256), StorGb(100.0))),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(200), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(200), StorGb(1.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(1.0), Millis(60.0)));
        let err = RandomizedRounding::new()
            .map(&phys, &venv, &mut SmallRng::seed_from_u64(1))
            .unwrap_err();
        assert!(matches!(err, MapError::RetriesExhausted { .. }));
    }

    #[test]
    fn rr_rejects_impossible_guests_before_solving() {
        // A guest too big for every host individually fails fast with
        // HostingFailed naming the guest.
        let phys = paper_like_phys();
        let mut venv = VirtualEnvironment::new();
        let big = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb::from_gb(64), StorGb(1.0)));
        let err = RandomizedRounding::new()
            .map(&phys, &venv, &mut SmallRng::seed_from_u64(1))
            .unwrap_err();
        assert_eq!(err, MapError::HostingFailed { guest: big });
    }

    #[test]
    fn fractional_mass_concentrates_on_feasible_hosts() {
        let phys = paper_like_phys();
        let venv = small_venv(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut cache = MapCache::new();
        cache.topo.prepare(&phys);
        cache.rounding.begin();
        init_candidates(&phys, &venv, &mut cache.rounding).unwrap();
        let config = RoundingConfig::default();
        solve_fractional(&config, &phys, &venv, &mut cache.topo, &mut cache.rounding);
        for gi in 0..venv.guest_count() {
            let row = cache.rounding.frac.row(gi);
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {gi} stays normalized: {sum}");
            assert!(row.iter().all(|&w| w >= 0.0 && w.is_finite()));
        }
    }
}
