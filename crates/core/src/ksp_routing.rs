//! K-shortest-paths routing — the classical virtual-network-embedding
//! alternative to A\*Prune.
//!
//! Canonical VNE systems (e.g. the ALEVIN framework's shortest-path-based
//! embeddings) route each virtual link by computing the `k`
//! latency-cheapest simple paths between the endpoint hosts and taking the
//! first with enough residual bandwidth. Compared to the paper's modified
//! A\*Prune this (a) optimizes latency instead of bottleneck bandwidth, so
//! it burns narrow short paths that later links may need, and (b) is
//! incomplete for small `k`: a feasible-but-latency-expensive path beyond
//! the k-th cheapest is never considered. Both effects are exercised in
//! tests; the strategy is provided for cross-framework comparison and as
//! another member for the §6 heuristic pool.

use crate::cache::MapCache;
use crate::error::MapError;
use crate::hosting::{hosting_stage, links_by_descending_bw};
use crate::mapper::{MapOutcome, MapStats, Mapper};
use crate::migration::migration_stage;
use crate::networking::NetworkingStats;
use crate::state::PlacementState;
use emumap_graph::algo::k_shortest_paths_csr;
use emumap_model::{Mapping, PhysicalTopology, Route, VLinkId, VirtualEnvironment};
use emumap_trace::{Phase, PhaseCounters, TraceEvent};
use rand::RngCore;
use std::time::Instant;

/// Routes `links` with Yen's K-cheapest-latency paths, committing
/// bandwidth into `state`. Returns the route table, or the first
/// unroutable link.
pub fn networking_stage_ksp(
    state: &mut PlacementState<'_>,
    links: &[VLinkId],
    k: usize,
) -> Result<(Vec<Route>, NetworkingStats), MapError> {
    networking_stage_ksp_with(state, links, k, &mut MapCache::new())
}

/// [`networking_stage_ksp`] with a caller-owned [`MapCache`].
///
/// The cache contributes its `ar[]` latency tables as an early-exit: the
/// Dijkstra distance is the minimum latency over *all* paths, so when it
/// already exceeds the link's bound no candidate from Yen's enumeration
/// can pass the `p.cost <= bound` filter and the (expensive) enumeration
/// is skipped. The accept/reject outcome per link is unchanged.
pub fn networking_stage_ksp_with(
    state: &mut PlacementState<'_>,
    links: &[VLinkId],
    k: usize,
    cache: &mut MapCache,
) -> Result<(Vec<Route>, NetworkingStats), MapError> {
    assert!(
        state.is_complete(),
        "networking requires a complete assignment"
    );
    assert!(k >= 1, "k must be at least 1");
    let venv = state.venv();
    let phys = state.phys();
    let mut routes = vec![Route::intra_host(); venv.link_count()];
    let mut stats = NetworkingStats::default();

    let MapCache { topo, trace, .. } = cache;
    topo.prepare(phys);
    let runs_before = topo.dijkstra_runs();
    let hits_before = topo.hits();

    for &l in links {
        let (vs, vd) = venv.link_endpoints(l);
        let hs = state.host_of(vs).expect("assignment complete");
        let hd = state.host_of(vd).expect("assignment complete");
        if hs == hd {
            stats.intra_host_links += 1;
            trace.emit(|| TraceEvent::LinkIntraHost {
                link: l.index() as u64,
            });
            continue;
        }
        let spec = *venv.link(l);
        let (ar, csr) = topo.ar_and_csr(phys, hd);
        if ar[hs.index()] > spec.lat.value() + 1e-9 {
            // The early-exit carries its own proof: the Dijkstra distance
            // is the best achievable latency over all paths.
            let best = ar[hs.index()];
            trace.emit(|| TraceEvent::LinkFailed {
                link: l.index() as u64,
                verdict: emumap_trace::LinkVerdict::LatencyInfeasible {
                    best_possible_ms: best,
                    bound_ms: spec.lat.value(),
                },
            });
            return Err(MapError::NetworkingFailed { link: l });
        }
        // Note: candidate paths are recomputed per link on the *static*
        // latency metric; feasibility is then checked against the current
        // residuals, so commitments by earlier links are respected. The
        // cached CSR snapshot spares Yen's algorithm an O(V + E) adjacency
        // rebuild per link.
        let candidates =
            k_shortest_paths_csr(phys.graph(), csr, hs, hd, k, |_, link| link.lat.value());
        let chosen = candidates.into_iter().find(|p| {
            p.cost <= spec.lat.value() + 1e-9 && state.residual().route_feasible(&p.edges, spec.bw)
        });
        let Some(path) = chosen else {
            // Diagnosis runs dijkstra + max-flow; only pay for it when
            // someone is listening.
            if trace.is_enabled() {
                let verdict =
                    crate::diagnostics::diagnose_route(phys, state.residual(), hs, hd, &spec);
                trace.emit(|| TraceEvent::LinkFailed {
                    link: l.index() as u64,
                    verdict: (&verdict).into(),
                });
            }
            return Err(MapError::NetworkingFailed { link: l });
        };
        trace.emit(|| TraceEvent::LinkRouted {
            link: l.index() as u64,
            hops: path.edges.len() as u64,
        });
        state.residual_mut().commit_route(&path.edges, spec.bw);
        routes[l.index()] = Route::new(path.edges);
        stats.routed_links += 1;
    }

    stats.dijkstra_runs = topo.dijkstra_runs() - runs_before;
    stats.ar_cache_hits = topo.hits() - hits_before;
    Ok((routes, stats))
}

/// HMN with the Networking stage replaced by K-shortest-paths routing.
#[derive(Clone, Copy, Debug)]
pub struct HmnKsp {
    /// Candidate paths per link (ALEVIN-style implementations typically
    /// use small k; default 4).
    pub k: usize,
}

impl Default for HmnKsp {
    fn default() -> Self {
        HmnKsp { k: 4 }
    }
}

impl Mapper for HmnKsp {
    fn name(&self) -> &str {
        "HMN-ksp"
    }

    fn map(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
    ) -> Result<MapOutcome, MapError> {
        self.map_with_cache(phys, venv, rng, &mut MapCache::new())
    }

    fn map_with_cache(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        _rng: &mut dyn RngCore,
        cache: &mut MapCache,
    ) -> Result<MapOutcome, MapError> {
        let start = Instant::now();
        let links = links_by_descending_bw(venv);
        let mut state = PlacementState::new(phys, venv);
        cache.trace.emit(|| TraceEvent::MapStart {
            mapper: "HMN-ksp".into(),
            guests: venv.guest_count() as u64,
            links: venv.link_count() as u64,
        });

        let t = Instant::now();
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Hosting,
        });
        let hosting = match hosting_stage(&mut state, &links) {
            Ok(h) => h,
            Err(e) => {
                // Close the open phase even on failure: trace consumers
                // rely on PhaseStart/PhaseEnd always being bracketed.
                cache.trace.emit(|| TraceEvent::PhaseEnd {
                    phase: Phase::Hosting,
                    elapsed_us: crate::hmn::elapsed_us(t),
                    counters: PhaseCounters::default(),
                });
                cache.trace.emit(|| TraceEvent::MapEnd {
                    ok: false,
                    objective: None,
                    elapsed_us: crate::hmn::elapsed_us(start),
                });
                return Err(e);
            }
        };
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Hosting,
            elapsed_us: crate::hmn::elapsed_us(t),
            counters: PhaseCounters {
                colocation_hits: hosting.colocation_hits as u64,
                first_fit_fallbacks: hosting.first_fit_fallbacks as u64,
                ..Default::default()
            },
        });
        let placement_time = t.elapsed();
        let t = Instant::now();
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Migration,
        });
        let migration = migration_stage(&mut state);
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Migration,
            elapsed_us: crate::hmn::elapsed_us(t),
            counters: PhaseCounters {
                moves_accepted: migration.migrations as u64,
                moves_rejected: migration.rejected as u64,
                ..Default::default()
            },
        });
        let migration_time = t.elapsed();
        let t = Instant::now();
        cache.trace.emit(|| TraceEvent::PhaseStart {
            phase: Phase::Networking,
        });
        let (routes, net) = match networking_stage_ksp_with(&mut state, &links, self.k, cache) {
            Ok(r) => r,
            Err(e) => {
                cache.trace.emit(|| TraceEvent::PhaseEnd {
                    phase: Phase::Networking,
                    elapsed_us: crate::hmn::elapsed_us(t),
                    counters: PhaseCounters::default(),
                });
                cache.trace.emit(|| TraceEvent::MapEnd {
                    ok: false,
                    objective: None,
                    elapsed_us: crate::hmn::elapsed_us(start),
                });
                return Err(e);
            }
        };
        cache.trace.emit(|| TraceEvent::PhaseEnd {
            phase: Phase::Networking,
            elapsed_us: crate::hmn::elapsed_us(t),
            counters: PhaseCounters {
                dijkstra_runs: net.dijkstra_runs as u64,
                cache_hits: net.ar_cache_hits as u64,
                ..Default::default()
            },
        });
        let stats = MapStats {
            attempts: 1,
            migrations: migration.migrations,
            migrations_rejected: migration.rejected,
            colocation_hits: hosting.colocation_hits,
            first_fit_fallbacks: hosting.first_fit_fallbacks,
            routed_links: net.routed_links,
            intra_host_links: net.intra_host_links,
            dijkstra_runs: net.dijkstra_runs,
            ar_cache_hits: net.ar_cache_hits,
            placement_time,
            migration_time,
            networking_time: t.elapsed(),
            total_time: start.elapsed(),
            ..Default::default()
        };
        let mapping = Mapping::new(state.into_placement(), routes);
        let outcome = MapOutcome::new(phys, venv, mapping, stats);
        cache.trace.emit(|| TraceEvent::MapEnd {
            ok: true,
            objective: Some(outcome.objective),
            elapsed_us: crate::hmn::elapsed_us(start),
        });
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{
        validate_mapping, GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb,
        VLinkSpec, VmmOverhead,
    };
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ksp_mapping_validates() {
        let phys = PhysicalTopology::from_shape(
            &generators::torus2d(3, 4),
            std::iter::repeat(HostSpec::new(
                Mips(2000.0),
                MemMb::from_gb(2),
                StorGb(2000.0),
            )),
            LinkSpec::new(Kbps::from_gbps(1.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let ids: Vec<_> = (0..10)
            .map(|_| venv.add_guest(GuestSpec::new(Mips(75.0), MemMb(192), StorGb(150.0))))
            .collect();
        for w in ids.windows(2) {
            venv.add_link(w[0], w[1], VLinkSpec::new(Kbps(750.0), Millis(45.0)));
        }
        let out = HmnKsp::default()
            .map(&phys, &venv, &mut SmallRng::seed_from_u64(1))
            .unwrap();
        assert_eq!(validate_mapping(&phys, &venv, &out.mapping), Ok(()));
    }

    /// The structural weakness vs. A*Prune: with k = 1, only the single
    /// latency-cheapest path is considered; if it lacks bandwidth the link
    /// fails even though a feasible detour exists. A*Prune (and larger k)
    /// find the detour.
    #[test]
    fn small_k_misses_detours_that_astar_finds() {
        // Diamond: direct edge (1 hop, narrow) vs detour (2 hops, wide).
        let mut g: emumap_graph::Graph<emumap_model::PhysNode, LinkSpec> =
            emumap_graph::Graph::new();
        let spec = HostSpec::new(Mips(1000.0), MemMb(512), StorGb(100.0));
        let a = g.add_node(emumap_model::PhysNode::Host(spec));
        let b = g.add_node(emumap_model::PhysNode::Host(spec));
        let c = g.add_node(emumap_model::PhysNode::Host(spec));
        g.add_edge(a, b, LinkSpec::new(Kbps(50.0), Millis(5.0))); // narrow direct
        g.add_edge(a, c, LinkSpec::new(Kbps(1000.0), Millis(5.0)));
        g.add_edge(c, b, LinkSpec::new(Kbps(1000.0), Millis(5.0)));
        let phys = PhysicalTopology::from_graph(g, VmmOverhead::NONE);

        let mut venv = VirtualEnvironment::new();
        // Guests too big to co-locate (memory 400 each on 512 MB hosts).
        let x = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(400), StorGb(1.0)));
        let y = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(400), StorGb(1.0)));
        venv.add_link(x, y, VLinkSpec::new(Kbps(200.0), Millis(60.0)));

        let k1 = HmnKsp { k: 1 }.map(&phys, &venv, &mut SmallRng::seed_from_u64(1));
        let k3 = HmnKsp { k: 3 }.map(&phys, &venv, &mut SmallRng::seed_from_u64(1));
        let astar = crate::Hmn::new().map(&phys, &venv, &mut SmallRng::seed_from_u64(1));

        // Hosting puts x and y on different hosts; whether the shortest
        // path is the narrow edge depends on which hosts — accept either
        // "k1 fails, k3 succeeds" or "all succeed via placement luck", but
        // A*Prune must never do worse than k = 3.
        assert!(k3.is_ok(), "k=3 sees the detour");
        assert!(astar.is_ok(), "A*Prune prefers the wide detour outright");
        if let (Ok(k3), Ok(astar)) = (k3, astar) {
            assert_eq!(validate_mapping(&phys, &venv, &k3.mapping), Ok(()));
            assert_eq!(validate_mapping(&phys, &venv, &astar.mapping), Ok(()));
        }
        // k=1 is allowed to fail; if it succeeds the route must be valid.
        if let Ok(out) = k1 {
            assert_eq!(validate_mapping(&phys, &venv, &out.mapping), Ok(()));
        }
    }

    #[test]
    fn ksp_respects_latency_bounds() {
        let phys = PhysicalTopology::from_shape(
            &generators::line(4),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(300), StorGb(100.0))),
            LinkSpec::new(Kbps(1000.0), Millis(10.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        // Can't co-locate (memory); end-to-end needs 30 ms but bound is 15.
        let x = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(200), StorGb(1.0)));
        let y = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(200), StorGb(1.0)));
        let z = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(200), StorGb(1.0)));
        venv.add_link(x, y, VLinkSpec::new(Kbps(10.0), Millis(15.0)));
        venv.add_link(y, z, VLinkSpec::new(Kbps(10.0), Millis(15.0)));
        let out = HmnKsp::default().map(&phys, &venv, &mut SmallRng::seed_from_u64(1));
        if let Ok(out) = out {
            for l in venv.link_ids() {
                let lat: f64 = out
                    .mapping
                    .route_of(l)
                    .edges()
                    .iter()
                    .map(|&e| phys.link(e).lat.value())
                    .sum();
                assert!(lat <= venv.link(l).lat.value() + 1e-9);
            }
        }
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn k_zero_is_rejected() {
        let phys = PhysicalTopology::from_shape(
            &generators::line(2),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let venv = VirtualEnvironment::new();
        let mut state = PlacementState::new(&phys, &venv);
        let _ = networking_stage_ksp(&mut state, &[], 0);
    }
}
