//! The heuristic pool sketched in the paper's future work (§6): "offer to
//! the emulator a pool of different heuristics that might be selected
//! according to the emulated scenario."

use crate::error::MapError;
use crate::mapper::{MapOutcome, Mapper};
use emumap_model::{PhysicalTopology, VirtualEnvironment};
use rand::RngCore;

/// How the pool combines its members.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PoolPolicy {
    /// Return the first member that succeeds (members ordered by
    /// preference). Cheapest; matches "fall back when HMN fails".
    #[default]
    FirstSuccess,
    /// Run every member and return the success with the lowest objective
    /// (Eq. 10). Most thorough; costs the sum of all members.
    BestObjective,
}

/// A pool of mappers combined under a [`PoolPolicy`].
pub struct HeuristicPool {
    name: String,
    members: Vec<Box<dyn Mapper>>,
    policy: PoolPolicy,
}

impl HeuristicPool {
    /// A pool over `members` (preference order matters for
    /// [`PoolPolicy::FirstSuccess`]).
    pub fn new(members: Vec<Box<dyn Mapper>>, policy: PoolPolicy) -> Self {
        assert!(
            !members.is_empty(),
            "a heuristic pool needs at least one member"
        );
        let name = format!(
            "pool[{}]",
            members
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>()
                .join("+")
        );
        HeuristicPool {
            name,
            members,
            policy,
        }
    }

    /// Member names in order.
    pub fn member_names(&self) -> Vec<&str> {
        self.members.iter().map(|m| m.name()).collect()
    }
}

impl Mapper for HeuristicPool {
    fn name(&self) -> &str {
        &self.name
    }

    fn map(
        &self,
        phys: &PhysicalTopology,
        venv: &VirtualEnvironment,
        rng: &mut dyn RngCore,
    ) -> Result<MapOutcome, MapError> {
        match self.policy {
            PoolPolicy::FirstSuccess => {
                let mut last_err = None;
                for m in &self.members {
                    match m.map(phys, venv, rng) {
                        Ok(out) => return Ok(out),
                        Err(e) => last_err = Some(e),
                    }
                }
                Err(last_err.expect("pool is non-empty"))
            }
            PoolPolicy::BestObjective => {
                let mut best: Option<MapOutcome> = None;
                let mut last_err = None;
                for m in &self.members {
                    match m.map(phys, venv, rng) {
                        Ok(out) => {
                            let better = best
                                .as_ref()
                                .map(|b| out.objective < b.objective)
                                .unwrap_or(true);
                            if better {
                                best = Some(out);
                            }
                        }
                        Err(e) => last_err = Some(e),
                    }
                }
                best.ok_or_else(|| last_err.expect("all members failed"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MapError;
    use crate::mapper::MapStats;
    use emumap_model::{GuestId, Mapping, Route};

    /// A mapper that always fails.
    struct AlwaysFails;
    impl Mapper for AlwaysFails {
        fn name(&self) -> &str {
            "fail"
        }
        fn map(
            &self,
            _phys: &PhysicalTopology,
            _venv: &VirtualEnvironment,
            _rng: &mut dyn RngCore,
        ) -> Result<MapOutcome, MapError> {
            Err(MapError::HostingFailed {
                guest: GuestId::from_index(0),
            })
        }
    }

    /// A mapper that places everything on one fixed host.
    struct FixedHost(usize);
    impl Mapper for FixedHost {
        fn name(&self) -> &str {
            "fixed"
        }
        fn map(
            &self,
            phys: &PhysicalTopology,
            venv: &VirtualEnvironment,
            _rng: &mut dyn RngCore,
        ) -> Result<MapOutcome, MapError> {
            let host = phys.hosts()[self.0];
            let mapping = Mapping::new(
                vec![host; venv.guest_count()],
                vec![Route::intra_host(); venv.link_count()],
            );
            Ok(MapOutcome::new(phys, venv, mapping, MapStats::default()))
        }
    }

    fn setup() -> (PhysicalTopology, VirtualEnvironment) {
        use emumap_graph::generators;
        use emumap_model::{
            GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb, VmmOverhead,
        };
        let phys = PhysicalTopology::from_shape(
            &generators::line(2),
            [
                HostSpec::new(Mips(1000.0), MemMb(4096), StorGb(100.0)),
                HostSpec::new(Mips(2000.0), MemMb(4096), StorGb(100.0)),
            ]
            .into_iter(),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        venv.add_guest(GuestSpec::new(Mips(500.0), MemMb(64), StorGb(1.0)));
        venv.add_guest(GuestSpec::new(Mips(500.0), MemMb(64), StorGb(1.0)));
        (phys, venv)
    }

    #[test]
    fn first_success_skips_failures() {
        let (phys, venv) = setup();
        let pool = HeuristicPool::new(
            vec![Box::new(AlwaysFails), Box::new(FixedHost(0))],
            PoolPolicy::FirstSuccess,
        );
        let out = pool
            .map(&phys, &venv, &mut rand::rngs::mock::StepRng::new(0, 1))
            .unwrap();
        assert_eq!(out.mapping.hosts_used(), 1);
        assert_eq!(pool.name(), "pool[fail+fixed]");
    }

    #[test]
    fn best_objective_picks_the_lower_stddev() {
        let (phys, venv) = setup();
        // Host 0 (1000 MIPS): all guests there -> residuals (0, 2000),
        // stddev 1000. Host 1 (2000 MIPS): residuals (1000, 1000) ->
        // stddev 0. BestObjective must choose host 1.
        let pool = HeuristicPool::new(
            vec![Box::new(FixedHost(0)), Box::new(FixedHost(1))],
            PoolPolicy::BestObjective,
        );
        let out = pool
            .map(&phys, &venv, &mut rand::rngs::mock::StepRng::new(0, 1))
            .unwrap();
        assert_eq!(out.objective, 0.0);
        assert_eq!(out.mapping.host_of(GuestId::from_index(0)), phys.hosts()[1]);
    }

    #[test]
    fn all_failures_surface_the_last_error() {
        let (phys, venv) = setup();
        for policy in [PoolPolicy::FirstSuccess, PoolPolicy::BestObjective] {
            let pool =
                HeuristicPool::new(vec![Box::new(AlwaysFails), Box::new(AlwaysFails)], policy);
            let err = pool
                .map(&phys, &venv, &mut rand::rngs::mock::StepRng::new(0, 1))
                .unwrap_err();
            assert!(matches!(err, MapError::HostingFailed { .. }));
        }
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_pool_panics() {
        let _ = HeuristicPool::new(vec![], PoolPolicy::FirstSuccess);
    }
}
