//! HMN stage 1 — **Hosting** (§4.1): a preliminary assignment of guests to
//! hosts driven by network affinity.
//!
//! Virtual links are processed in descending bandwidth order; wherever
//! possible both endpoints of a high-bandwidth link land on the same host,
//! so that the heaviest traffic never touches the physical network. The
//! host list is kept sorted by descending residual CPU, so the fullest CPUs
//! are preferred early (the balance itself is refined later by Migration).

use crate::error::MapError;
use crate::state::PlacementState;
use emumap_graph::NodeId;
use emumap_model::{GuestId, VLinkId, VirtualEnvironment};

/// How the Hosting stage attempts co-location of an unmapped link's
/// endpoint pair.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum HostingPolicy {
    /// §4.1 verbatim: co-location is only attempted on *the first host of
    /// the CPU-sorted list*; if the pair does not fit there, the guests
    /// are split — even when a later host could take both. (This is the
    /// quirk the `heuristic_pool` example exploits to make HMN fail.)
    #[default]
    Paper,
    /// §6-style fix: scan the CPU-sorted list for the first host that fits
    /// *both* guests before giving up on co-location. Strictly more
    /// links end up intra-host; costs one extra scan per unmapped pair.
    FirstFitColocation,
}

/// What the Hosting stage did, for observability: how often co-location
/// succeeded vs. how often placement fell back to a first-fit scan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HostingStats {
    /// Link-driven co-location decisions that landed guests together on
    /// one host (pair co-locations plus anchor pulls onto a mapped peer).
    pub colocation_hits: usize,
    /// Guests placed by a first-fit scan after co-location was impossible
    /// or inapplicable (split pairs, anchor fallbacks, self-loops,
    /// isolated leftovers).
    pub first_fit_fallbacks: usize,
}

/// Virtual links sorted by descending bandwidth demand (the paper's
/// processing order), ties broken by id for determinism.
pub fn links_by_descending_bw(venv: &VirtualEnvironment) -> Vec<VLinkId> {
    let mut links: Vec<VLinkId> = venv.link_ids().collect();
    links.sort_by(|&a, &b| {
        venv.link(b)
            .bw
            .partial_cmp(&venv.link(a).bw)
            .expect("bandwidths are finite")
            .then(a.cmp(&b))
    });
    links
}

/// Sorts `hosts` by descending residual CPU (ties by id). The paper re-sorts
/// after every assignment "considering the new CPU availabilities".
fn sort_hosts(hosts: &mut [NodeId], state: &PlacementState<'_>) {
    hosts.sort_by(|&a, &b| {
        state
            .residual()
            .proc(b)
            .partial_cmp(&state.residual().proc(a))
            .expect("CPU residuals are finite")
            .then(a.cmp(&b))
    });
}

/// The CPU-sorted host list the Hosting stage scans, maintained
/// incrementally. The paper re-sorts the whole list after every
/// assignment; since an assignment only ever *decreases* one host's
/// residual CPU, that host can only move later in the descending order,
/// so bubbling it rightward restores exactly the order a full sort would
/// produce (the id tie-break makes the order unique) in O(displacement)
/// instead of O(n log n) — the difference between minutes and seconds at
/// 10k hosts.
struct SortedHosts {
    order: Vec<NodeId>,
    /// Host slot (see [`emumap_model::ResidualState::slot_of`]) → index
    /// in `order`.
    pos: Vec<u32>,
}

impl SortedHosts {
    fn new(state: &PlacementState<'_>) -> Self {
        let mut order: Vec<NodeId> = state.phys().hosts().to_vec();
        sort_hosts(&mut order, state);
        let mut pos = vec![0u32; order.len()];
        for (i, &h) in order.iter().enumerate() {
            pos[state.residual().slot_of(h).expect("hosts have slots")] = i as u32;
        }
        SortedHosts { order, pos }
    }

    fn as_slice(&self) -> &[NodeId] {
        &self.order
    }

    /// Restores the invariant after `host`'s residual CPU decreased.
    fn reposition(&mut self, state: &PlacementState<'_>, host: NodeId) {
        let r = state.residual();
        let slot = r.slot_of(host).expect("hosts have slots");
        let mut i = self.pos[slot] as usize;
        let hp = r.proc(host).value();
        while i + 1 < self.order.len() {
            let next = self.order[i + 1];
            let np = r.proc(next).value();
            if hp > np || (hp == np && host < next) {
                break;
            }
            self.order.swap(i, i + 1);
            self.pos[r.slot_of(next).expect("hosts have slots")] = i as u32;
            i += 1;
        }
        self.pos[slot] = i as u32;
    }
}

/// First host in `hosts` (which is kept in descending-residual-CPU order)
/// that fits `guest`, or `None`. Deliberately *not* bitset-based: this
/// scan usually stops at the first few hosts, while
/// [`emumap_model::ResidualState::fill_feasible`] always pays the full
/// column pass (Greedy, which filters every candidate anyway, uses it).
fn first_fit(state: &PlacementState<'_>, hosts: &[NodeId], guest: GuestId) -> Option<NodeId> {
    hosts.iter().copied().find(|&h| state.fits(guest, h))
}

/// Runs the Hosting stage over `links` with the paper's co-location rule
/// (see [`hosting_stage_with`] for the policy knob). Mutates `state`; on
/// failure the state is left partially assigned (callers either abort or
/// reset). Returns co-location/fallback counts.
pub fn hosting_stage(
    state: &mut PlacementState<'_>,
    links: &[VLinkId],
) -> Result<HostingStats, MapError> {
    hosting_stage_with(state, links, HostingPolicy::Paper)
}

/// [`hosting_stage`] with an explicit [`HostingPolicy`].
pub fn hosting_stage_with(
    state: &mut PlacementState<'_>,
    links: &[VLinkId],
    policy: HostingPolicy,
) -> Result<HostingStats, MapError> {
    let venv = state.venv();
    let mut hosts = SortedHosts::new(state);
    let mut stats = HostingStats::default();

    for &l in links {
        let (vs, vd) = venv.link_endpoints(l);
        match (state.host_of(vs), state.host_of(vd)) {
            // Both endpoints already mapped: nothing to do.
            (Some(_), Some(_)) => continue,

            // Neither mapped: try to co-locate on the first (most CPU
            // available) host; otherwise place the most CPU-intensive
            // guest first-fit and the other one after it.
            (None, None) => {
                if vs == vd {
                    // Self-loop virtual link: place its single guest.
                    let h = first_fit(state, hosts.as_slice(), vs)
                        .ok_or(MapError::HostingFailed { guest: vs })?;
                    state.assign(vs, h).expect("first_fit verified capacity");
                    stats.first_fit_fallbacks += 1;
                    hosts.reposition(state, h);
                    continue;
                }
                let fits_both = |state: &PlacementState<'_>, host: NodeId| {
                    let (gs, gd) = (venv.guest(vs), venv.guest(vd));
                    let r = state.residual();
                    r.mem(host).value() >= gs.mem.value() + gd.mem.value()
                        && r.stor(host).value() >= gs.stor.value() + gd.stor.value()
                };
                let colocate_on = match policy {
                    HostingPolicy::Paper => {
                        let top = hosts.as_slice()[0];
                        fits_both(state, top).then_some(top)
                    }
                    HostingPolicy::FirstFitColocation => hosts
                        .as_slice()
                        .iter()
                        .copied()
                        .find(|&h| fits_both(state, h)),
                };
                if let Some(host) = colocate_on {
                    state.assign(vs, host).expect("combined fit verified");
                    state.assign(vd, host).expect("combined fit verified");
                    stats.colocation_hits += 1;
                    hosts.reposition(state, host);
                } else {
                    // "the most CPU-intensive guest is assigned to the
                    // first host in the list able to receive the guest"
                    let (g1, g2) = if venv.guest(vs).proc.value() >= venv.guest(vd).proc.value() {
                        (vs, vd)
                    } else {
                        (vd, vs)
                    };
                    let h1 = first_fit(state, hosts.as_slice(), g1)
                        .ok_or(MapError::HostingFailed { guest: g1 })?;
                    state.assign(g1, h1).expect("first_fit verified capacity");
                    hosts.reposition(state, h1);
                    let h2 = first_fit(state, hosts.as_slice(), g2)
                        .ok_or(MapError::HostingFailed { guest: g2 })?;
                    state.assign(g2, h2).expect("first_fit verified capacity");
                    stats.first_fit_fallbacks += 2;
                    hosts.reposition(state, h2);
                }
            }

            // Exactly one mapped: pull the unmapped guest onto its peer's
            // host, falling back to first-fit.
            (mapped, unmapped_side) => {
                let (anchor_host, free) = match (mapped, unmapped_side) {
                    (Some(h), None) => (h, vd),
                    (None, Some(h)) => (h, vs),
                    _ => unreachable!("remaining patterns handled above"),
                };
                let target = if state.fits(free, anchor_host) {
                    stats.colocation_hits += 1;
                    anchor_host
                } else {
                    stats.first_fit_fallbacks += 1;
                    first_fit(state, hosts.as_slice(), free)
                        .ok_or(MapError::HostingFailed { guest: free })?
                };
                state.assign(free, target).expect("fit verified");
                hosts.reposition(state, target);
            }
        }
    }

    // Guests untouched by any link (isolated nodes — the paper's generator
    // never produces them because it guarantees connectivity, but the
    // public API accepts arbitrary virtual environments): place them
    // most-CPU-intensive first, first-fit.
    let mut leftovers: Vec<GuestId> = venv
        .guest_ids()
        .filter(|&g| state.host_of(g).is_none())
        .collect();
    leftovers.sort_by(|&a, &b| {
        venv.guest(b)
            .proc
            .partial_cmp(&venv.guest(a).proc)
            .expect("CPU demands are finite")
            .then(a.cmp(&b))
    });
    for g in leftovers {
        let h =
            first_fit(state, hosts.as_slice(), g).ok_or(MapError::HostingFailed { guest: g })?;
        state.assign(g, h).expect("first_fit verified capacity");
        stats.first_fit_fallbacks += 1;
        hosts.reposition(state, h);
    }

    debug_assert!(state.is_complete());
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{
        GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, PhysicalTopology, StorGb,
        VLinkSpec, VmmOverhead,
    };

    fn phys_uniform(n: usize, mem_mb: u64) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::ring(n),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(mem_mb), StorGb(1000.0))),
            LinkSpec::new(Kbps(1_000_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn guest(mem: u64) -> GuestSpec {
        GuestSpec::new(Mips(50.0), MemMb(mem), StorGb(1.0))
    }

    fn link(bw: f64) -> VLinkSpec {
        VLinkSpec::new(Kbps(bw), Millis(60.0))
    }

    #[test]
    fn links_sorted_by_descending_bw_with_stable_ties() {
        let mut venv = VirtualEnvironment::new();
        let g: Vec<_> = (0..4).map(|_| venv.add_guest(guest(10))).collect();
        let l0 = venv.add_link(g[0], g[1], link(100.0));
        let l1 = venv.add_link(g[1], g[2], link(300.0));
        let l2 = venv.add_link(g[2], g[3], link(100.0));
        assert_eq!(links_by_descending_bw(&venv), vec![l1, l0, l2]);
    }

    #[test]
    fn high_bandwidth_endpoints_are_colocated() {
        let phys = phys_uniform(4, 1024);
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(guest(100));
        let b = venv.add_guest(guest(100));
        let c = venv.add_guest(guest(100));
        venv.add_link(a, b, link(1000.0)); // heavy: co-locate
        venv.add_link(b, c, link(1.0)); // light
        let mut st = PlacementState::new(&phys, &venv);
        hosting_stage(&mut st, &links_by_descending_bw(&venv)).unwrap();
        assert_eq!(st.host_of(a), st.host_of(b));
        // c joins b's host too (it fits), per the one-mapped rule.
        assert_eq!(st.host_of(c), st.host_of(b));
    }

    #[test]
    fn splits_pair_when_they_do_not_fit_together() {
        // Hosts hold 150 MB; two 100 MB guests cannot share one.
        let phys = phys_uniform(4, 150);
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(90.0), MemMb(100), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(100), StorGb(1.0)));
        venv.add_link(a, b, link(1000.0));
        let mut st = PlacementState::new(&phys, &venv);
        hosting_stage(&mut st, &links_by_descending_bw(&venv)).unwrap();
        assert_ne!(st.host_of(a), st.host_of(b));
        assert!(st.is_complete());
    }

    #[test]
    fn already_mapped_peer_attracts_unmapped_guest() {
        let phys = phys_uniform(4, 1024);
        let mut venv = VirtualEnvironment::new();
        let g: Vec<_> = (0..3).map(|_| venv.add_guest(guest(100))).collect();
        // Processing order: (g0,g1) first (heaviest), then (g1,g2).
        venv.add_link(g[0], g[1], link(500.0));
        venv.add_link(g[1], g[2], link(400.0));
        let mut st = PlacementState::new(&phys, &venv);
        hosting_stage(&mut st, &links_by_descending_bw(&venv)).unwrap();
        assert_eq!(st.host_of(g[2]), st.host_of(g[1]));
    }

    #[test]
    fn overflow_spills_to_next_host() {
        // Host memory 250 MB: holds two 100 MB guests but not three.
        let phys = phys_uniform(3, 250);
        let mut venv = VirtualEnvironment::new();
        let g: Vec<_> = (0..3).map(|_| venv.add_guest(guest(100))).collect();
        venv.add_link(g[0], g[1], link(900.0));
        venv.add_link(g[1], g[2], link(800.0));
        let mut st = PlacementState::new(&phys, &venv);
        hosting_stage(&mut st, &links_by_descending_bw(&venv)).unwrap();
        assert_eq!(st.host_of(g[0]), st.host_of(g[1]));
        assert_ne!(st.host_of(g[2]), st.host_of(g[1]));
    }

    #[test]
    fn fails_when_cluster_is_too_small() {
        let phys = phys_uniform(2, 100);
        let mut venv = VirtualEnvironment::new();
        let g: Vec<_> = (0..3).map(|_| venv.add_guest(guest(90))).collect();
        venv.add_link(g[0], g[1], link(10.0));
        venv.add_link(g[1], g[2], link(5.0));
        let mut st = PlacementState::new(&phys, &venv);
        let err = hosting_stage(&mut st, &links_by_descending_bw(&venv)).unwrap_err();
        assert!(matches!(err, MapError::HostingFailed { .. }));
    }

    #[test]
    fn isolated_guests_are_still_placed() {
        let phys = phys_uniform(3, 1024);
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(guest(100));
        let b = venv.add_guest(guest(100));
        let _isolated = venv.add_guest(guest(100));
        venv.add_link(a, b, link(10.0));
        let mut st = PlacementState::new(&phys, &venv);
        hosting_stage(&mut st, &links_by_descending_bw(&venv)).unwrap();
        assert!(st.is_complete());
    }

    #[test]
    fn hosting_stats_count_colocations_and_fallbacks() {
        // Colocated pair + anchor pull: two co-location hits, no fallbacks.
        let phys = phys_uniform(4, 1024);
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(guest(100));
        let b = venv.add_guest(guest(100));
        let c = venv.add_guest(guest(100));
        venv.add_link(a, b, link(1000.0));
        venv.add_link(b, c, link(1.0));
        let mut st = PlacementState::new(&phys, &venv);
        let stats = hosting_stage(&mut st, &links_by_descending_bw(&venv)).unwrap();
        assert_eq!(
            stats,
            HostingStats {
                colocation_hits: 2,
                first_fit_fallbacks: 0
            }
        );

        // Pair that cannot share a host: both guests placed first-fit.
        let phys = phys_uniform(4, 150);
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(90.0), MemMb(100), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(100), StorGb(1.0)));
        venv.add_link(a, b, link(1000.0));
        let mut st = PlacementState::new(&phys, &venv);
        let stats = hosting_stage(&mut st, &links_by_descending_bw(&venv)).unwrap();
        assert_eq!(
            stats,
            HostingStats {
                colocation_hits: 0,
                first_fit_fallbacks: 2
            }
        );
    }

    #[test]
    fn no_links_at_all_is_fine() {
        let phys = phys_uniform(3, 1024);
        let mut venv = VirtualEnvironment::new();
        for _ in 0..5 {
            venv.add_guest(guest(50));
        }
        let mut st = PlacementState::new(&phys, &venv);
        hosting_stage(&mut st, &[]).unwrap();
        assert!(st.is_complete());
    }

    #[test]
    fn self_loop_link_places_its_guest() {
        let phys = phys_uniform(3, 1024);
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(guest(100));
        venv.add_link(a, a, link(999.0));
        let mut st = PlacementState::new(&phys, &venv);
        hosting_stage(&mut st, &links_by_descending_bw(&venv)).unwrap();
        assert!(st.host_of(a).is_some());
    }

    #[test]
    fn incremental_reposition_matches_full_sort() {
        // Heterogeneous CPUs with deliberate ties so the id tie-break is
        // exercised; assignments walk hosts in a scattered order.
        let cpus = [700.0, 900.0, 700.0, 1200.0, 900.0, 500.0, 1200.0];
        let phys = PhysicalTopology::from_shape(
            &generators::ring(cpus.len()),
            cpus.iter()
                .map(|&c| HostSpec::new(Mips(c), MemMb(4096), StorGb(1000.0))),
            LinkSpec::new(Kbps(1_000_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let guests: Vec<_> = (0..20)
            .map(|i| venv.add_guest(GuestSpec::new(Mips(40.0 + i as f64), MemMb(8), StorGb(0.5))))
            .collect();
        let mut st = PlacementState::new(&phys, &venv);
        let mut inc = SortedHosts::new(&st);
        for (i, &g) in guests.iter().enumerate() {
            let h = phys.hosts()[(i * 5) % cpus.len()];
            st.assign(g, h).unwrap();
            inc.reposition(&st, h);
            let mut full: Vec<NodeId> = phys.hosts().to_vec();
            sort_hosts(&mut full, &st);
            assert_eq!(inc.as_slice(), full.as_slice(), "after assignment {i}");
        }
    }

    #[test]
    fn heterogeneous_hosts_fill_biggest_cpu_first() {
        let shape = generators::line(3);
        let phys = PhysicalTopology::from_shape(
            &shape,
            [
                HostSpec::new(Mips(1000.0), MemMb(4096), StorGb(1000.0)),
                HostSpec::new(Mips(3000.0), MemMb(4096), StorGb(1000.0)),
                HostSpec::new(Mips(2000.0), MemMb(4096), StorGb(1000.0)),
            ]
            .into_iter(),
            LinkSpec::new(Kbps(1_000_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(guest(100));
        let b = venv.add_guest(guest(100));
        venv.add_link(a, b, link(100.0));
        let mut st = PlacementState::new(&phys, &venv);
        hosting_stage(&mut st, &links_by_descending_bw(&venv)).unwrap();
        // Both go to the 3000 MIPS host (most available CPU).
        assert_eq!(st.host_of(a), Some(phys.hosts()[1]));
        assert_eq!(st.host_of(b), Some(phys.hosts()[1]));
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::state::PlacementState;
    use emumap_model::{
        GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, PhysicalTopology, StorGb,
        VLinkSpec, VirtualEnvironment, VmmOverhead,
    };

    /// The adversarial shape from the heuristic_pool example: the
    /// most-CPU-available host cannot take the pair, but a later host can.
    fn adversarial() -> (PhysicalTopology, VirtualEnvironment) {
        let shape = emumap_graph::generators::line(3);
        let phys = PhysicalTopology::from_shape(
            &shape,
            [
                HostSpec::new(Mips(3000.0), MemMb(300), StorGb(500.0)), // CPU-first, tiny mem
                HostSpec::new(Mips(1000.0), MemMb(2048), StorGb(500.0)),
                HostSpec::new(Mips(900.0), MemMb(2048), StorGb(500.0)),
            ]
            .into_iter(),
            LinkSpec::new(Kbps(2000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(200), StorGb(10.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(200), StorGb(10.0)));
        // 5 Mbps pair: only mappable intra-host (physical links are 2 Mbps).
        venv.add_link(a, b, VLinkSpec::new(Kbps(5000.0), Millis(60.0)));
        (phys, venv)
    }

    #[test]
    fn paper_policy_splits_the_pair() {
        let (phys, venv) = adversarial();
        let mut st = PlacementState::new(&phys, &venv);
        hosting_stage_with(
            &mut st,
            &links_by_descending_bw(&venv),
            HostingPolicy::Paper,
        )
        .unwrap();
        let a = emumap_model::GuestId::from_index(0);
        let b = emumap_model::GuestId::from_index(1);
        assert_ne!(
            st.host_of(a),
            st.host_of(b),
            "paper rule splits on the first host"
        );
    }

    #[test]
    fn first_fit_colocation_keeps_the_pair_together() {
        let (phys, venv) = adversarial();
        let mut st = PlacementState::new(&phys, &venv);
        hosting_stage_with(
            &mut st,
            &links_by_descending_bw(&venv),
            HostingPolicy::FirstFitColocation,
        )
        .unwrap();
        let a = emumap_model::GuestId::from_index(0);
        let b = emumap_model::GuestId::from_index(1);
        assert_eq!(st.host_of(a), st.host_of(b));
        // ... on the first host that fits both (host 1).
        assert_eq!(st.host_of(a), Some(phys.hosts()[1]));
    }

    #[test]
    fn fixed_policy_lets_hmn_map_the_pool_examples_instance() {
        use crate::hmn::{Hmn, HmnConfig};
        use crate::mapper::Mapper;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        let (phys, venv) = adversarial();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(
            Hmn::new().map(&phys, &venv, &mut rng).is_err(),
            "paper HMN fails: the split 5 Mbps link is unroutable"
        );
        // Migration would split the colocated pair again in this
        // degenerate 2-guest instance (as in the simulation_coupling
        // test), so pin it off: the policy under test is Hosting's.
        let fixed = Hmn::with_config(HmnConfig {
            hosting: HostingPolicy::FirstFitColocation,
            migration: crate::MigrationPolicy::Off,
            ..Default::default()
        });
        let out = fixed
            .map(&phys, &venv, &mut rng)
            .expect("first-fit colocation rescues the instance");
        assert_eq!(
            emumap_model::validate_mapping(&phys, &venv, &out.mapping),
            Ok(())
        );
    }
}
