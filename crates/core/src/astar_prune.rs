//! The modified 1-constrained A\*Prune path search (paper §4.3,
//! Algorithm 1), after Liu & Ramakrishnan (INFOCOM 2001).
//!
//! A\*Prune keeps a set of feasible partial paths and repeatedly expands the
//! most promising one. The paper's modification selects by **greatest
//! bottleneck bandwidth** ("the rationale ... is to keep the links with the
//! largest amount of bandwidth available to map the rest of the links") and
//! prunes with two tests:
//!
//! * *bandwidth*: an edge whose residual bandwidth is below the link's
//!   demand can never appear on a feasible path — drop it;
//! * *latency admissibility*: `ar[h]` is the unconstrained Dijkstra latency
//!   from `h` to the destination, an admissible lower bound, so any partial
//!   path with `accumulated + edge + ar[h] > bound` can never satisfy
//!   Eq. 8 — drop it. (The paper's pseudocode prints the test as
//!   `lat((d,h)) + ar[h] <= latency`; we include the accumulated latency of
//!   the partial path, without which the printed test would accept paths
//!   that already exceed the bound — the accumulated term is clearly
//!   intended, as A\*Prune's original definition uses the full
//!   `g + h`-style estimate.)
//!
//! Partial paths are stored in an arena (parent-pointer tree) so expanding
//! a path is O(1) in memory instead of cloning edge vectors.

use emumap_graph::{CsrAdjacency, EdgeId, NodeId};
use emumap_model::{Kbps, Millis, PhysicalTopology, ResidualState};
use std::collections::BinaryHeap;

/// Which quantity the search maximizes when choosing the next partial path
/// to expand. [`PathMetric::BottleneckBandwidth`] is the paper's choice;
/// [`PathMetric::HopCount`] is provided for the ablation bench (classic
/// shortest-path behaviour).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PathMetric {
    /// Prefer the partial path whose minimum residual edge bandwidth is
    /// largest (the paper's widest-path metric).
    #[default]
    BottleneckBandwidth,
    /// Prefer the partial path with the fewest hops (ablation).
    HopCount,
}

/// Tuning knobs for the search.
#[derive(Clone, Copy, Debug)]
pub struct AStarPruneConfig {
    /// Path-selection metric (paper: bottleneck bandwidth).
    pub metric: PathMetric,
    /// Use the Dijkstra latency lower bound `ar[]` for pruning (paper:
    /// yes). With `false`, pruning only checks the accumulated latency —
    /// still correct, explores more paths (ablation).
    pub use_latency_lower_bound: bool,
    /// Hard cap on expanded partial paths; exceeded means "no path found".
    /// A safety valve against pathological exponential blow-ups in dense
    /// graphs; the paper's 40-host clusters stay far below it.
    pub max_expansions: usize,
    /// Per-node Pareto dominance pruning (datacenter-scale accelerator):
    /// drop a candidate reaching a node with `(bottleneck, latency, hops)`
    /// all no better than a label already recorded there. On
    /// high-multiplicity fabrics (fat-trees), where the exhaustive search
    /// enumerates every loop-free path inside the latency bound, this keeps
    /// the frontier near-linear in the node count. It is a heuristic: the
    /// dominating label's extensions may be blocked by the loop check where
    /// the dominated one's were not, so in adversarial topologies a feasible
    /// path can be missed, and tie-breaking among equal-metric paths can
    /// differ from the exhaustive order. Paper-faithful runs leave it off
    /// (the default); the 10k-host scale bench switches it on.
    pub prune_dominated: bool,
}

impl Default for AStarPruneConfig {
    fn default() -> Self {
        AStarPruneConfig {
            metric: PathMetric::BottleneckBandwidth,
            use_latency_lower_bound: true,
            max_expansions: 1_000_000,
            prune_dominated: false,
        }
    }
}

/// Search statistics, surfaced for Figure 1 analysis and the ablation
/// benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Partial paths popped from the candidate set.
    pub expanded: usize,
    /// Partial paths pushed into the candidate set.
    pub pushed: usize,
    /// Candidates dropped by Pareto dominance pruning (0 unless
    /// [`AStarPruneConfig::prune_dominated`] is set).
    pub dominated: usize,
}

/// One arena slot: a partial path represented as a parent pointer.
#[derive(Debug)]
struct PathNode {
    parent: u32,
    /// Edge taken from the parent's end node (undefined for the root).
    edge: EdgeId,
    /// End node of this partial path.
    end: NodeId,
}

const ROOT: u32 = u32::MAX;

/// A candidate in the priority queue. `key` is built so that the
/// lexicographic max-order of `BinaryHeap` pops the best candidate first
/// under either metric.
#[derive(Debug)]
struct Candidate {
    key: [f64; 4],
    arena_index: u32,
    bottleneck: f64,
    latency: f64,
    hops: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        for (a, b) in self.key.iter().zip(other.key.iter()) {
            match a.total_cmp(b) {
                std::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        std::cmp::Ordering::Equal
    }
}

fn make_key(metric: PathMetric, bottleneck: f64, latency: f64, hops: u32, seq: u64) -> [f64; 4] {
    match metric {
        // Max bottleneck; among equals, min latency, then min hops, then
        // FIFO (earlier pushes first) for full determinism.
        PathMetric::BottleneckBandwidth => [bottleneck, -latency, -f64::from(hops), -(seq as f64)],
        PathMetric::HopCount => [-f64::from(hops), bottleneck, -latency, -(seq as f64)],
    }
}

/// Reusable buffers for [`astar_prune_with`]: the partial-path arena, the
/// candidate heap, and the on-path scratch.
///
/// One search of a paper-scale instance pushes thousands of arena nodes and
/// heap candidates; a mapping routes thousands of links, so a fresh
/// allocation per search puts the allocator squarely on the hot path.
/// Keeping one `RouteScratch` per worker amortizes those buffers across
/// every search of a trial (and across trials): after warm-up the search
/// itself allocates nothing but the returned edge sequence.
#[derive(Debug, Default)]
pub struct RouteScratch {
    arena: Vec<PathNode>,
    heap: BinaryHeap<Candidate>,
    on_path: Vec<NodeId>,
    /// Per-node Pareto labels `(bottleneck, latency, hops)` for dominance
    /// pruning; indexed by node, reset lazily via `touched`.
    labels: Vec<Vec<(f64, f64, u32)>>,
    touched: Vec<u32>,
    warm: bool,
    reuses: usize,
}

impl RouteScratch {
    /// Fresh, cold scratch.
    pub fn new() -> Self {
        RouteScratch::default()
    }

    /// Searches that ran on already-warm buffers (every use after the
    /// first). Surfaced in `MapStats::scratch_reuses`.
    pub fn reuses(&self) -> usize {
        self.reuses
    }

    /// Clears the buffers for a new search, keeping their capacity.
    fn begin(&mut self) {
        if self.warm {
            self.reuses += 1;
        }
        self.warm = true;
        self.arena.clear();
        self.heap.clear();
        self.on_path.clear();
        for &t in &self.touched {
            self.labels[t as usize].clear();
        }
        self.touched.clear();
    }
}

/// Finds a path from `origin` to `destination` with residual bandwidth
/// `>= demand` on every edge and total latency `<= latency_bound`,
/// maximizing the configured metric. Returns the edge sequence and search
/// statistics, or `None` if no feasible path exists (or the expansion cap
/// was hit).
///
/// `ar` must hold, for every node index, a lower bound on the latency from
/// that node to `destination` (`f64::INFINITY` for unreachable nodes) —
/// normally the output of [`emumap_graph::algo::dijkstra`] rooted at the
/// destination. Only consulted when
/// [`AStarPruneConfig::use_latency_lower_bound`] is set.
///
/// Convenience wrapper over [`astar_prune_with`] that builds a fresh
/// [`CsrAdjacency`] and [`RouteScratch`] per call; hot paths (the
/// Networking stage, the parallel runner) hold both in an
/// [`emumap-core::MapCache`](crate::MapCache) instead.
#[allow(clippy::too_many_arguments)] // mirrors the paper's Algorithm 1 signature
pub fn astar_prune(
    phys: &PhysicalTopology,
    residual: &ResidualState,
    origin: NodeId,
    destination: NodeId,
    demand: Kbps,
    latency_bound: Millis,
    ar: &[f64],
    config: &AStarPruneConfig,
) -> Option<(Vec<EdgeId>, SearchStats)> {
    let csr = phys.graph().to_csr();
    astar_prune_with(
        phys,
        residual,
        origin,
        destination,
        demand,
        latency_bound,
        ar,
        config,
        &csr,
        &mut RouteScratch::new(),
    )
}

/// [`astar_prune`] with caller-owned adjacency snapshot and scratch
/// buffers — the allocation-free entry point. Identical results to the
/// wrapper for any scratch state: buffers are cleared on entry, so the
/// search is a pure function of the other arguments.
#[allow(clippy::too_many_arguments)] // mirrors the paper's Algorithm 1 signature
pub fn astar_prune_with(
    phys: &PhysicalTopology,
    residual: &ResidualState,
    origin: NodeId,
    destination: NodeId,
    demand: Kbps,
    latency_bound: Millis,
    ar: &[f64],
    config: &AStarPruneConfig,
    csr: &CsrAdjacency,
    scratch: &mut RouteScratch,
) -> Option<(Vec<EdgeId>, SearchStats)> {
    let mut stats = SearchStats::default();
    if origin == destination {
        return Some((Vec::new(), stats));
    }
    let bound = latency_bound.value();
    let want = demand.value();

    // Root admissibility: if even the unconstrained latency from the origin
    // exceeds the bound, no path can exist.
    if config.use_latency_lower_bound && ar[origin.index()] > bound {
        return None;
    }

    scratch.begin();
    let RouteScratch {
        arena,
        heap,
        on_path,
        labels,
        touched,
        ..
    } = scratch;
    if config.prune_dominated && labels.len() < csr.node_count() {
        labels.resize(csr.node_count(), Vec::new());
    }
    arena.push(PathNode {
        parent: ROOT,
        edge: EdgeId::from_index(0),
        end: origin,
    });
    let mut seq: u64 = 0;
    heap.push(Candidate {
        key: make_key(config.metric, f64::INFINITY, 0.0, 0, seq),
        arena_index: 0,
        bottleneck: f64::INFINITY,
        latency: 0.0,
        hops: 0,
    });

    while let Some(best) = heap.pop() {
        stats.expanded += 1;
        if stats.expanded > config.max_expansions {
            return None;
        }
        let node = &arena[best.arena_index as usize];
        let d = node.end;
        if d == destination {
            // Reconstruct the edge sequence.
            let mut edges = Vec::with_capacity(best.hops as usize);
            let mut cur = best.arena_index;
            while arena[cur as usize].parent != ROOT {
                edges.push(arena[cur as usize].edge);
                cur = arena[cur as usize].parent;
            }
            edges.reverse();
            return Some((edges, stats));
        }

        // Collect the nodes already on this partial path (loop check,
        // Eq. 7).
        on_path.clear();
        let mut cur = best.arena_index;
        loop {
            on_path.push(arena[cur as usize].end);
            let p = arena[cur as usize].parent;
            if p == ROOT {
                break;
            }
            cur = p;
        }

        for &nb in csr.neighbors(d) {
            let h = nb.node;
            if on_path.contains(&h) {
                continue;
            }
            // Bandwidth pruning: "links whose available bandwidth are
            // smaller than the required bandwidth are also pruned."
            let avail = residual.bw(nb.edge).value();
            if avail < want {
                continue;
            }
            // Latency pruning with the admissible Dijkstra bound.
            let step = phys.link(nb.edge).lat.value();
            let acc = best.latency + step;
            let optimistic = if config.use_latency_lower_bound {
                ar[h.index()]
            } else {
                0.0
            };
            if acc + optimistic > bound + 1e-9 {
                continue;
            }
            let bottleneck = best.bottleneck.min(avail);
            let hops = best.hops + 1;
            if config.prune_dominated {
                let slot = &mut labels[h.index()];
                if slot
                    .iter()
                    .any(|&(b, l, k)| b >= bottleneck && l <= acc && k <= hops)
                {
                    stats.dominated += 1;
                    continue;
                }
                if slot.is_empty() {
                    touched.push(u32::try_from(h.index()).expect("node fits in u32"));
                }
                slot.retain(|&(b, l, k)| !(b <= bottleneck && l >= acc && k >= hops));
                slot.push((bottleneck, acc, hops));
            }
            let arena_index = u32::try_from(arena.len()).expect("arena fits in u32");
            arena.push(PathNode {
                parent: best.arena_index,
                edge: nb.edge,
                end: h,
            });
            seq += 1;
            stats.pushed += 1;
            heap.push(Candidate {
                key: make_key(config.metric, bottleneck, acc, hops, seq),
                arena_index,
                bottleneck,
                latency: acc,
                hops,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::algo::dijkstra;
    use emumap_graph::generators;
    use emumap_graph::Graph;
    use emumap_model::{HostSpec, LinkSpec, MemMb, Mips, PhysNode, StorGb, VmmOverhead};

    /// Physical topology from explicit edges `(a, b, bw, lat)`.
    fn phys_from_edges(n: usize, edges: &[(usize, usize, f64, f64)]) -> PhysicalTopology {
        let mut g: Graph<PhysNode, LinkSpec> = Graph::new();
        let ids: Vec<_> = (0..n)
            .map(|_| {
                g.add_node(PhysNode::Host(HostSpec::new(
                    Mips(1000.0),
                    MemMb(1024),
                    StorGb(100.0),
                )))
            })
            .collect();
        for &(a, b, bw, lat) in edges {
            g.add_edge(ids[a], ids[b], LinkSpec::new(Kbps(bw), Millis(lat)));
        }
        PhysicalTopology::from_graph(g, VmmOverhead::NONE)
    }

    fn ar_for(phys: &PhysicalTopology, dest: NodeId) -> Vec<f64> {
        dijkstra(phys.graph(), dest, |_, l| l.lat.value())
            .distances()
            .to_vec()
    }

    fn run(
        phys: &PhysicalTopology,
        from: usize,
        to: usize,
        demand: f64,
        bound: f64,
    ) -> Option<Vec<EdgeId>> {
        let residual = ResidualState::new(phys);
        let dest = phys.hosts()[to];
        let ar = ar_for(phys, dest);
        astar_prune(
            phys,
            &residual,
            phys.hosts()[from],
            dest,
            Kbps(demand),
            Millis(bound),
            &ar,
            &AStarPruneConfig::default(),
        )
        .map(|(p, _)| p)
    }

    #[test]
    fn reused_scratch_matches_fresh_search() {
        // Run a batch of distinct queries twice: once through the
        // allocate-per-call wrapper, once through one shared scratch + CSR.
        // Results must be bit-identical regardless of scratch history.
        let phys = phys_from_edges(
            5,
            &[
                (0, 1, 500.0, 5.0),
                (1, 2, 500.0, 5.0),
                (0, 2, 50.0, 5.0),
                (2, 3, 300.0, 2.0),
                (3, 4, 300.0, 2.0),
                (0, 4, 80.0, 30.0),
            ],
        );
        let residual = ResidualState::new(&phys);
        let csr = phys.graph().to_csr();
        let mut scratch = RouteScratch::new();
        let config = AStarPruneConfig::default();
        let queries = [
            (0usize, 2usize, 10.0, 100.0),
            (0, 4, 10.0, 100.0),
            (1, 3, 60.0, 50.0),
            (4, 0, 70.0, 40.0),
        ];
        for &(from, to, demand, bound) in &queries {
            let dest = phys.hosts()[to];
            let ar = ar_for(&phys, dest);
            let fresh = astar_prune(
                &phys,
                &residual,
                phys.hosts()[from],
                dest,
                Kbps(demand),
                Millis(bound),
                &ar,
                &config,
            );
            let reused = astar_prune_with(
                &phys,
                &residual,
                phys.hosts()[from],
                dest,
                Kbps(demand),
                Millis(bound),
                &ar,
                &config,
                &csr,
                &mut scratch,
            );
            assert_eq!(fresh, reused);
        }
        assert_eq!(scratch.reuses(), queries.len() - 1);
    }

    #[test]
    fn picks_widest_path_not_shortest() {
        // Two routes 0 -> 2: direct but narrow (bw 50), or via 1 and wide
        // (bw 500 each). Latency allows both.
        let phys = phys_from_edges(
            3,
            &[(0, 2, 50.0, 5.0), (0, 1, 500.0, 5.0), (1, 2, 500.0, 5.0)],
        );
        let path = run(&phys, 0, 2, 10.0, 100.0).unwrap();
        assert_eq!(path.len(), 2, "widest path goes via node 1");
    }

    #[test]
    fn latency_bound_forces_short_path() {
        // Same shape, but the bound only admits the direct edge.
        let phys = phys_from_edges(
            3,
            &[(0, 2, 50.0, 5.0), (0, 1, 500.0, 5.0), (1, 2, 500.0, 5.0)],
        );
        let path = run(&phys, 0, 2, 10.0, 5.0).unwrap();
        assert_eq!(path.len(), 1, "only the direct edge satisfies 5 ms");
    }

    #[test]
    fn bandwidth_pruning_rejects_narrow_edges() {
        let phys = phys_from_edges(
            3,
            &[(0, 2, 50.0, 5.0), (0, 1, 500.0, 5.0), (1, 2, 500.0, 5.0)],
        );
        // Demand 100 kbps rules out the direct 50 kbps edge.
        let path = run(&phys, 0, 2, 100.0, 100.0).unwrap();
        assert_eq!(path.len(), 2);
        // Demand 600 kbps rules out everything.
        assert!(run(&phys, 0, 2, 600.0, 100.0).is_none());
    }

    #[test]
    fn infeasible_latency_returns_none() {
        let phys = phys_from_edges(2, &[(0, 1, 100.0, 10.0)]);
        assert!(run(&phys, 0, 1, 1.0, 9.9).is_none());
        assert!(run(&phys, 0, 1, 1.0, 10.0).is_some());
    }

    #[test]
    fn same_node_is_empty_path() {
        let phys = phys_from_edges(2, &[(0, 1, 100.0, 10.0)]);
        let p = run(&phys, 0, 0, 1.0, 0.0).unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn respects_committed_bandwidth() {
        let phys = phys_from_edges(2, &[(0, 1, 100.0, 5.0)]);
        let mut residual = ResidualState::new(&phys);
        let e: Vec<_> = phys.graph().edge_ids().collect();
        residual.commit_route(&e, Kbps(60.0));
        let dest = phys.hosts()[1];
        let ar = ar_for(&phys, dest);
        // 50 kbps no longer fits the 40 kbps residual.
        assert!(astar_prune(
            &phys,
            &residual,
            phys.hosts()[0],
            dest,
            Kbps(50.0),
            Millis(100.0),
            &ar,
            &AStarPruneConfig::default(),
        )
        .is_none());
        // 30 kbps does.
        assert!(astar_prune(
            &phys,
            &residual,
            phys.hosts()[0],
            dest,
            Kbps(30.0),
            Millis(100.0),
            &ar,
            &AStarPruneConfig::default(),
        )
        .is_some());
    }

    #[test]
    fn path_is_loop_free_on_torus() {
        let shape = generators::torus2d(4, 4);
        let phys = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let residual = ResidualState::new(&phys);
        let (from, to) = (phys.hosts()[0], phys.hosts()[15]);
        let ar = ar_for(&phys, to);
        let (path, _) = astar_prune(
            &phys,
            &residual,
            from,
            to,
            Kbps(1.0),
            Millis(60.0),
            &ar,
            &AStarPruneConfig::default(),
        )
        .unwrap();
        // Walk the path, ensuring no repeated node and correct endpoints.
        let mut cur = from;
        let mut seen = vec![cur];
        for e in &path {
            cur = phys.graph().edge_ref(*e).other(cur);
            assert!(!seen.contains(&cur));
            seen.push(cur);
        }
        assert_eq!(cur, to);
    }

    #[test]
    fn hop_count_metric_finds_shortest() {
        let phys = phys_from_edges(
            3,
            &[(0, 2, 50.0, 5.0), (0, 1, 500.0, 5.0), (1, 2, 500.0, 5.0)],
        );
        let residual = ResidualState::new(&phys);
        let dest = phys.hosts()[2];
        let ar = ar_for(&phys, dest);
        let cfg = AStarPruneConfig {
            metric: PathMetric::HopCount,
            ..Default::default()
        };
        let (path, _) = astar_prune(
            &phys,
            &residual,
            phys.hosts()[0],
            dest,
            Kbps(10.0),
            Millis(100.0),
            &ar,
            &cfg,
        )
        .unwrap();
        assert_eq!(path.len(), 1, "hop-count metric takes the direct edge");
    }

    #[test]
    fn lower_bound_pruning_reduces_expansions() {
        let shape = generators::torus2d(5, 8);
        let phys = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(1_000_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let residual = ResidualState::new(&phys);
        let (from, to) = (phys.hosts()[0], phys.hosts()[22]);
        let ar = ar_for(&phys, to);
        let with_bound = AStarPruneConfig::default();
        let without_bound = AStarPruneConfig {
            use_latency_lower_bound: false,
            ..Default::default()
        };
        let (_, s1) = astar_prune(
            &phys,
            &residual,
            from,
            to,
            Kbps(1.0),
            Millis(30.0),
            &ar,
            &with_bound,
        )
        .unwrap();
        let (_, s2) = astar_prune(
            &phys,
            &residual,
            from,
            to,
            Kbps(1.0),
            Millis(30.0),
            &ar,
            &without_bound,
        )
        .unwrap();
        assert!(
            s1.expanded <= s2.expanded,
            "admissible pruning must not expand more ({} vs {})",
            s1.expanded,
            s2.expanded
        );
    }

    #[test]
    fn expansion_cap_is_enforced() {
        let shape = generators::torus2d(5, 8);
        let phys = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(1_000_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let residual = ResidualState::new(&phys);
        let (from, to) = (phys.hosts()[0], phys.hosts()[39]);
        let ar = ar_for(&phys, to);
        let cfg = AStarPruneConfig {
            max_expansions: 1,
            ..Default::default()
        };
        assert!(astar_prune(
            &phys,
            &residual,
            from,
            to,
            Kbps(1.0),
            Millis(60.0),
            &ar,
            &cfg,
        )
        .is_none());
    }

    #[test]
    fn deterministic_across_runs() {
        let shape = generators::torus2d(4, 5);
        let phys = PhysicalTopology::from_shape(
            &shape,
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let residual = ResidualState::new(&phys);
        let (from, to) = (phys.hosts()[1], phys.hosts()[18]);
        let ar = ar_for(&phys, to);
        let cfg = AStarPruneConfig::default();
        let a = astar_prune(
            &phys,
            &residual,
            from,
            to,
            Kbps(1.0),
            Millis(60.0),
            &ar,
            &cfg,
        );
        let b = astar_prune(
            &phys,
            &residual,
            from,
            to,
            Kbps(1.0),
            Millis(60.0),
            &ar,
            &cfg,
        );
        assert_eq!(a.map(|(p, _)| p), b.map(|(p, _)| p));
    }

    /// Sum of link latencies and minimum residual bandwidth along a path.
    fn path_cost(phys: &PhysicalTopology, residual: &ResidualState, path: &[EdgeId]) -> (f64, f64) {
        let lat = path.iter().map(|&e| phys.link(e).lat.value()).sum();
        let bw = path
            .iter()
            .map(|&e| residual.bw(e).value())
            .fold(f64::INFINITY, f64::min);
        (lat, bw)
    }

    #[test]
    fn dominance_pruning_preserves_widest_bottleneck() {
        // A torus has many equal-latency alternates, the worst case for the
        // exhaustive search. The pruned search must return a path with the
        // same bottleneck bandwidth and latency while expanding fewer
        // partial paths.
        let phys = PhysicalTopology::from_shape(
            &generators::torus2d(6, 6),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let residual = ResidualState::new(&phys);
        let pruned_cfg = AStarPruneConfig {
            prune_dominated: true,
            ..Default::default()
        };
        let exhaustive_cfg = AStarPruneConfig::default();
        for (from, to, bound) in [(0usize, 21usize, 60.0), (3, 32, 75.0), (7, 28, 90.0)] {
            let dest = phys.hosts()[to];
            let ar = ar_for(&phys, dest);
            let origin = phys.hosts()[from];
            let (full, full_stats) = astar_prune(
                &phys,
                &residual,
                origin,
                dest,
                Kbps(10.0),
                Millis(bound),
                &ar,
                &exhaustive_cfg,
            )
            .expect("exhaustive search finds a path");
            let (pruned, pruned_stats) = astar_prune(
                &phys,
                &residual,
                origin,
                dest,
                Kbps(10.0),
                Millis(bound),
                &ar,
                &pruned_cfg,
            )
            .expect("pruned search finds a path");
            assert_eq!(
                path_cost(&phys, &residual, &full),
                path_cost(&phys, &residual, &pruned),
            );
            assert!(pruned_stats.expanded <= full_stats.expanded);
            assert!(pruned_stats.dominated > 0, "torus must trigger pruning");
            assert_eq!(full_stats.dominated, 0, "exhaustive mode never prunes");
        }
    }

    #[test]
    fn dominance_pruning_scratch_reuse_is_pure() {
        // The per-node label store must reset between searches: a warm
        // scratch has to reproduce the fresh-scratch result exactly.
        let phys = PhysicalTopology::from_shape(
            &generators::torus2d(5, 5),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let residual = ResidualState::new(&phys);
        let cfg = AStarPruneConfig {
            prune_dominated: true,
            ..Default::default()
        };
        let csr = phys.graph().to_csr();
        let mut warm = RouteScratch::new();
        for (from, to, bound) in [(0usize, 12usize, 50.0), (4, 20, 60.0), (2, 17, 45.0)] {
            let dest = phys.hosts()[to];
            let ar = ar_for(&phys, dest);
            let origin = phys.hosts()[from];
            let fresh = astar_prune(
                &phys,
                &residual,
                origin,
                dest,
                Kbps(5.0),
                Millis(bound),
                &ar,
                &cfg,
            );
            let reused = astar_prune_with(
                &phys,
                &residual,
                origin,
                dest,
                Kbps(5.0),
                Millis(bound),
                &ar,
                &cfg,
                &csr,
                &mut warm,
            );
            assert_eq!(fresh, reused);
        }
    }
}
