//! Failure diagnostics: when a mapping attempt fails, tell the tester
//! *why* — and whether retrying could ever help.
//!
//! §5.2 closes with "HMN may fail in finding a mapping in scenarios in
//! which the requirements of the virtual system is too close to the
//! resource availability"; these helpers quantify "too close" for a
//! concrete failed link or guest, using max-flow cuts and latency
//! diameters as *proofs* of infeasibility where possible.

use emumap_graph::algo::{dijkstra, max_flow};
use emumap_graph::NodeId;
use emumap_model::{
    Kbps, MemMb, Millis, PhysicalTopology, ResidualState, VLinkSpec, VirtualEnvironment,
};
use serde::Serialize;

/// Why a virtual link could not be routed between two hosts.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum RouteVerdict {
    /// A feasible path may exist — the failure was heuristic (retries or a
    /// better placement could help).
    PossiblyRoutable,
    /// Even ignoring bandwidth, no path satisfies the latency bound:
    /// the *uncongested* shortest-latency path already exceeds it. No
    /// retry can fix this placement.
    LatencyInfeasible {
        /// Best achievable latency between the two hosts (ms).
        best_possible_ms: f64,
        /// The link's bound (ms).
        bound_ms: f64,
    },
    /// The residual max-flow between the hosts is below the demand: the
    /// remaining network physically cannot carry the link, wherever it is
    /// routed. (Latency ignored — this is a pure capacity cut.)
    BandwidthInfeasible {
        /// Residual max-flow between the hosts (kbps).
        max_flow_kbps: f64,
        /// The link's demand (kbps).
        demand_kbps: f64,
    },
}

impl From<&RouteVerdict> for emumap_trace::LinkVerdict {
    fn from(v: &RouteVerdict) -> Self {
        match *v {
            RouteVerdict::PossiblyRoutable => emumap_trace::LinkVerdict::PossiblyRoutable,
            RouteVerdict::LatencyInfeasible {
                best_possible_ms,
                bound_ms,
            } => emumap_trace::LinkVerdict::LatencyInfeasible {
                best_possible_ms,
                bound_ms,
            },
            RouteVerdict::BandwidthInfeasible {
                max_flow_kbps,
                demand_kbps,
            } => emumap_trace::LinkVerdict::BandwidthInfeasible {
                max_flow_kbps,
                demand_kbps,
            },
        }
    }
}

/// Diagnoses routability of a `spec`-shaped link between `from` and `to`
/// under the given residual bandwidths.
pub fn diagnose_route(
    phys: &PhysicalTopology,
    residual: &ResidualState,
    from: NodeId,
    to: NodeId,
    spec: &VLinkSpec,
) -> RouteVerdict {
    if from == to {
        return RouteVerdict::PossiblyRoutable; // intra-host always works
    }
    // Latency check on the *uncongested* network (admissible bound).
    let lat = dijkstra(phys.graph(), to, |_, l| l.lat.value());
    let best = lat.distance(from).unwrap_or(f64::INFINITY);
    if best > spec.lat.value() + 1e-9 {
        return RouteVerdict::LatencyInfeasible {
            best_possible_ms: best,
            bound_ms: spec.lat.value(),
        };
    }
    // Capacity cut on the residual network.
    let flow = residual_max_flow(phys, residual, from, to);
    if flow + 1e-9 < spec.bw.value() {
        return RouteVerdict::BandwidthInfeasible {
            max_flow_kbps: flow,
            demand_kbps: spec.bw.value(),
        };
    }
    RouteVerdict::PossiblyRoutable
}

/// Max-flow between two nodes using *residual* bandwidths as capacities.
pub fn residual_max_flow(
    phys: &PhysicalTopology,
    residual: &ResidualState,
    from: NodeId,
    to: NodeId,
) -> f64 {
    // Decorate a shadow graph whose edge payloads are the residual
    // bandwidths (max_flow reads capacities from payloads).
    let shadow = phys.graph().map_edges(|id, _| residual.bw(id).value());
    max_flow(&shadow, from, to, |c| *c)
}

/// Cluster-level feasibility summary for a virtual environment, printed by
/// the CLI when a mapping fails.
#[derive(Clone, Debug, Serialize)]
pub struct ClusterDiagnostics {
    /// Total guest memory demand vs. total effective host memory (MB).
    pub mem_demand_mb: u64,
    /// Total effective host memory (MB).
    pub mem_capacity_mb: u64,
    /// Total guest CPU demand (MIPS).
    pub proc_demand_mips: f64,
    /// Total effective host CPU (MIPS).
    pub proc_capacity_mips: f64,
    /// Worst-case host-pair latency on the uncongested network (ms).
    pub latency_diameter_ms: f64,
    /// Tightest virtual-link latency bound (ms).
    pub min_latency_bound_ms: f64,
    /// Total virtual bandwidth demand (kbps).
    pub bw_demand_kbps: f64,
    /// Total physical bandwidth capacity (kbps).
    pub bw_capacity_kbps: f64,
}

/// Computes the cluster-level summary.
pub fn cluster_diagnostics(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
) -> ClusterDiagnostics {
    let mem_capacity: MemMb = phys.hosts().iter().map(|&h| phys.effective_mem(h)).sum();
    let proc_capacity: f64 = phys
        .hosts()
        .iter()
        .map(|&h| phys.effective_proc(h).value())
        .sum();
    // Latency diameter restricted to host pairs.
    let mut diameter = 0.0f64;
    for &h in phys.hosts() {
        let d = dijkstra(phys.graph(), h, |_, l| l.lat.value());
        for &g in phys.hosts() {
            diameter = diameter.max(d.distance(g).unwrap_or(f64::INFINITY));
        }
    }
    let min_bound = venv
        .link_ids()
        .map(|l| venv.link(l).lat)
        .fold(Millis(f64::INFINITY), Millis::min);
    let bw_demand: Kbps = venv.link_ids().map(|l| venv.link(l).bw).sum();
    let bw_capacity: f64 = phys
        .graph()
        .edge_ids()
        .map(|e| phys.link(e).bw.value())
        .filter(|b| b.is_finite())
        .sum();

    ClusterDiagnostics {
        mem_demand_mb: venv.total_mem_demand().value(),
        mem_capacity_mb: mem_capacity.value(),
        proc_demand_mips: venv.total_proc_demand().value(),
        proc_capacity_mips: proc_capacity,
        latency_diameter_ms: diameter,
        min_latency_bound_ms: min_bound.value(),
        bw_demand_kbps: bw_demand.value(),
        bw_capacity_kbps: bw_capacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{GuestSpec, HostSpec, LinkSpec, Mips, StorGb, VmmOverhead};

    fn phys_line(n: usize, bw: f64, lat: f64) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::line(n),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(bw), Millis(lat)),
            VmmOverhead::NONE,
        )
    }

    #[test]
    fn latency_infeasibility_is_proven() {
        let p = phys_line(4, 1000.0, 10.0); // 3 hops = 30 ms end to end
        let r = ResidualState::new(&p);
        let spec = VLinkSpec::new(Kbps(1.0), Millis(25.0));
        let verdict = diagnose_route(&p, &r, p.hosts()[0], p.hosts()[3], &spec);
        assert_eq!(
            verdict,
            RouteVerdict::LatencyInfeasible {
                best_possible_ms: 30.0,
                bound_ms: 25.0
            }
        );
    }

    #[test]
    fn bandwidth_infeasibility_uses_the_cut() {
        // Ring of 4: two disjoint paths of 100 kbps each; a 250 kbps link
        // cannot be carried even split... (we don't split, but the verdict
        // uses max-flow = 200 as the generous upper bound).
        let p = PhysicalTopology::from_shape(
            &generators::ring(4),
            std::iter::repeat(HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0))),
            LinkSpec::new(Kbps(100.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let r = ResidualState::new(&p);
        let spec = VLinkSpec::new(Kbps(250.0), Millis(60.0));
        let verdict = diagnose_route(&p, &r, p.hosts()[0], p.hosts()[2], &spec);
        assert_eq!(
            verdict,
            RouteVerdict::BandwidthInfeasible {
                max_flow_kbps: 200.0,
                demand_kbps: 250.0
            }
        );
    }

    #[test]
    fn routable_links_are_possibly_routable() {
        let p = phys_line(3, 1000.0, 5.0);
        let r = ResidualState::new(&p);
        let spec = VLinkSpec::new(Kbps(500.0), Millis(60.0));
        assert_eq!(
            diagnose_route(&p, &r, p.hosts()[0], p.hosts()[2], &spec),
            RouteVerdict::PossiblyRoutable
        );
        // Intra-host is always fine.
        assert_eq!(
            diagnose_route(&p, &r, p.hosts()[0], p.hosts()[0], &spec),
            RouteVerdict::PossiblyRoutable
        );
    }

    #[test]
    fn residual_flow_reflects_commitments() {
        let p = phys_line(2, 100.0, 5.0);
        let mut r = ResidualState::new(&p);
        assert_eq!(residual_max_flow(&p, &r, p.hosts()[0], p.hosts()[1]), 100.0);
        let edges: Vec<_> = p.graph().edge_ids().collect();
        r.commit_route(&edges, Kbps(60.0));
        assert_eq!(residual_max_flow(&p, &r, p.hosts()[0], p.hosts()[1]), 40.0);
    }

    #[test]
    fn cluster_diagnostics_sums_are_correct() {
        let p = phys_line(3, 100.0, 5.0);
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(10.0), MemMb(100), StorGb(1.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(20.0), MemMb(200), StorGb(1.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(50.0), Millis(30.0)));
        let d = cluster_diagnostics(&p, &venv);
        assert_eq!(d.mem_demand_mb, 300);
        assert_eq!(d.mem_capacity_mb, 3 * 1024);
        assert_eq!(d.proc_demand_mips, 30.0);
        assert_eq!(d.proc_capacity_mips, 3000.0);
        assert_eq!(d.latency_diameter_ms, 10.0);
        assert_eq!(d.min_latency_bound_ms, 30.0);
        assert_eq!(d.bw_demand_kbps, 50.0);
        assert_eq!(d.bw_capacity_kbps, 200.0);
    }
}
