//! Mutable placement state shared by the Hosting and Migration stages and
//! by the random baselines.

use emumap_graph::NodeId;
use emumap_model::{
    GuestId, Kbps, ObjectiveAccumulator, PhysicalTopology, PlaceError, ResidualState,
    VirtualEnvironment,
};
use std::cell::Cell;

/// A partial guest→host assignment with residual bookkeeping.
///
/// Wraps a [`ResidualState`] and keeps the inverse index (which guests sit
/// on each host) so the Migration stage can enumerate migration candidates
/// without scanning every guest.
///
/// Every CPU-residual mutation funnels through [`assign`](Self::assign) /
/// [`unassign`](Self::unassign), which keep an [`ObjectiveAccumulator`] in
/// sync — so [`objective`](Self::objective) is O(1) and
/// [`objective_if_migrated`](Self::objective_if_migrated) evaluates a
/// hypothetical move in O(1) without touching the state. (The Networking
/// stage's [`residual_mut`](Self::residual_mut) access only commits route
/// *bandwidth*, which the objective never reads.)
pub struct PlacementState<'a> {
    phys: &'a PhysicalTopology,
    venv: &'a VirtualEnvironment,
    residual: ResidualState,
    assignment: Vec<Option<NodeId>>,
    /// node index -> guests placed there (hosts only; switches stay empty).
    guests_on: Vec<Vec<GuestId>>,
    assigned: usize,
    /// Running Σ/Σ² over the host residual-CPU vector (Eq. 10 in O(1)).
    acc: ObjectiveAccumulator,
    /// Reused buffer for the accumulator's periodic exact refresh.
    refresh_scratch: Vec<f64>,
    /// Hypothetical O(1)/O(degree) evaluations served without a full
    /// recompute (trace counter; `Cell` because probes take `&self`).
    delta_evals: Cell<u64>,
}

impl<'a> PlacementState<'a> {
    /// An empty assignment over fresh residuals.
    pub fn new(phys: &'a PhysicalTopology, venv: &'a VirtualEnvironment) -> Self {
        let residual = ResidualState::new(phys);
        let mut refresh_scratch = Vec::with_capacity(phys.host_count());
        residual.host_proc_residuals_into(phys, &mut refresh_scratch);
        let acc = ObjectiveAccumulator::new(&refresh_scratch);
        PlacementState {
            phys,
            venv,
            residual,
            assignment: vec![None; venv.guest_count()],
            guests_on: vec![Vec::new(); phys.graph().node_count()],
            assigned: 0,
            acc,
            refresh_scratch,
            delta_evals: Cell::new(0),
        }
    }

    /// The physical topology this state maps onto.
    pub fn phys(&self) -> &'a PhysicalTopology {
        self.phys
    }

    /// The virtual environment being mapped.
    pub fn venv(&self) -> &'a VirtualEnvironment {
        self.venv
    }

    /// Residual capacities under the current assignment.
    pub fn residual(&self) -> &ResidualState {
        &self.residual
    }

    /// Mutable residuals — used by the Networking stage to commit routes
    /// after placement is frozen.
    pub fn residual_mut(&mut self) -> &mut ResidualState {
        &mut self.residual
    }

    /// Host of `guest`, if assigned.
    pub fn host_of(&self, guest: GuestId) -> Option<NodeId> {
        self.assignment[guest.index()]
    }

    /// `true` once every guest has a host.
    pub fn is_complete(&self) -> bool {
        self.assigned == self.venv.guest_count()
    }

    /// Number of guests currently assigned.
    pub fn assigned_count(&self) -> usize {
        self.assigned
    }

    /// Guests currently placed on `host`.
    pub fn guests_on(&self, host: NodeId) -> &[GuestId] {
        &self.guests_on[host.index()]
    }

    /// `true` if `guest` fits on `host` under the hard constraints
    /// (Eqs. 2–3).
    pub fn fits(&self, guest: GuestId, host: NodeId) -> bool {
        self.residual.fits(self.venv.guest(guest), host)
    }

    /// Assigns `guest` to `host`.
    ///
    /// # Panics
    /// Panics if the guest is already assigned (mapper logic error).
    pub fn assign(&mut self, guest: GuestId, host: NodeId) -> Result<(), PlaceError> {
        assert!(
            self.assignment[guest.index()].is_none(),
            "guest {guest} is already assigned"
        );
        let before = self.residual.proc(host).value();
        self.residual
            .place(self.phys, self.venv.guest(guest), host)?;
        self.track_proc_change(host, before);
        self.assignment[guest.index()] = Some(host);
        self.guests_on[host.index()].push(guest);
        self.assigned += 1;
        Ok(())
    }

    /// Removes `guest` from its current host.
    ///
    /// # Panics
    /// Panics if the guest is not assigned.
    pub fn unassign(&mut self, guest: GuestId) {
        let host = self.assignment[guest.index()]
            .take()
            .unwrap_or_else(|| panic!("guest {guest} is not assigned"));
        let before = self.residual.proc(host).value();
        self.residual.remove(self.venv.guest(guest), host);
        self.track_proc_change(host, before);
        let list = &mut self.guests_on[host.index()];
        let pos = list
            .iter()
            .position(|&g| g == guest)
            .expect("inverse index consistent");
        list.swap_remove(pos);
        self.assigned -= 1;
    }

    /// Moves `guest` from its current host to `to`. Fails (leaving the
    /// state unchanged) if it does not fit.
    pub fn migrate(&mut self, guest: GuestId, to: NodeId) -> Result<(), PlaceError> {
        let from = self.assignment[guest.index()]
            .unwrap_or_else(|| panic!("guest {guest} is not assigned"));
        if from == to {
            return Ok(());
        }
        // Probe before mutating so failure is side-effect free.
        self.residual.check_fit(self.venv.guest(guest), to)?;
        self.unassign(guest);
        self.assign(guest, to).expect("probed fit cannot fail");
        Ok(())
    }

    /// Reports a CPU-residual change on `host` to the accumulator and runs
    /// the periodic exact refresh when due (drift control; see
    /// [`ObjectiveAccumulator`]).
    #[inline]
    fn track_proc_change(&mut self, host: NodeId, before: f64) {
        self.acc.apply(before, self.residual.proc(host).value());
        if self.acc.needs_refresh() {
            self.residual
                .host_proc_residuals_into(self.phys, &mut self.refresh_scratch);
            self.acc.refresh(&self.refresh_scratch);
        }
    }

    /// The load-balance factor (Eq. 10) of the current assignment. O(1) —
    /// served from the running accumulator.
    pub fn objective(&self) -> f64 {
        self.acc.stddev()
    }

    /// The load-balance factor *if* `guest` were migrated from its current
    /// host to `to`, without performing the migration. O(1): only the two
    /// affected residuals enter the accumulator's hypothetical view.
    /// `to == from` is an exact no-op (returns [`objective`](Self::objective)
    /// untouched by any ±vproc float wash).
    pub fn objective_if_migrated(&self, guest: GuestId, to: NodeId) -> f64 {
        let from = self.assignment[guest.index()].expect("guest is assigned");
        if to == from {
            return self.objective();
        }
        self.delta_evals.set(self.delta_evals.get() + 1);
        let vproc = self.venv.guest(guest).proc.value();
        let r_from = self.residual.proc(from).value();
        let r_to = self.residual.proc(to).value();
        self.acc
            .stddev_after([(r_from, r_from + vproc), (r_to, r_to - vproc)])
    }

    /// Hypothetical evaluations answered by the O(1)/O(degree) delta paths
    /// since construction ([`objective_if_migrated`](Self::
    /// objective_if_migrated) and [`inter_bandwidth_delta`](Self::
    /// inter_bandwidth_delta)).
    pub fn delta_evaluations(&self) -> u64 {
        self.delta_evals.get()
    }

    /// Full O(hosts) objective evaluations performed (the accumulator's
    /// initial build, periodic refreshes, and `reset` re-syncs).
    pub fn full_evaluations(&self) -> u64 {
        self.acc.rebuilds()
    }

    /// Total bandwidth of `guest`'s virtual links whose other endpoint is
    /// currently placed on the *same* host — the Migration stage picks the
    /// guest minimizing this, "in order to minimize utilization of physical
    /// links" (§4.2).
    ///
    /// Self-loop rule (shared with [`inter_host_bandwidth`](Self::
    /// inter_host_bandwidth)): a guest's link to itself is never routed and
    /// counts toward *neither* the co-located nor the inter-host total.
    pub fn co_located_bandwidth(&self, guest: GuestId) -> Kbps {
        let Some(host) = self.assignment[guest.index()] else {
            return Kbps::ZERO;
        };
        self.venv
            .links_of(guest)
            .iter()
            .filter(|nb| nb.node != guest) // ignore self-loops
            .filter(|nb| self.assignment[nb.node.index()] == Some(host))
            .map(|nb| self.venv.link(nb.edge).bw)
            .sum()
    }

    /// Total bandwidth of virtual links whose endpoints currently sit on
    /// different hosts — the communication cost the annealer's energy
    /// penalizes. O(links); the search loops keep it incrementally updated
    /// via [`inter_bandwidth_delta`](Self::inter_bandwidth_delta) instead
    /// of calling this per proposal. Links with an unassigned endpoint
    /// count as inter-host unless both endpoints are unassigned (matching
    /// `host_of(a) != host_of(b)`); self-loops never count.
    pub fn inter_host_bandwidth(&self) -> Kbps {
        let venv = self.venv;
        venv.link_ids()
            .filter_map(|l| {
                let (a, b) = venv.link_endpoints(l);
                (self.assignment[a.index()] != self.assignment[b.index()]).then(|| venv.link(l).bw)
            })
            .sum()
    }

    /// Change in [`inter_host_bandwidth`](Self::inter_host_bandwidth) *if*
    /// `guest` were migrated to `to`, without performing the migration.
    /// O(degree of `guest`) via the virtual environment's CSR adjacency.
    pub fn inter_bandwidth_delta(&self, guest: GuestId, to: NodeId) -> Kbps {
        let from = self.assignment[guest.index()].expect("guest is assigned");
        if to == from {
            return Kbps::ZERO;
        }
        self.delta_evals.set(self.delta_evals.get() + 1);
        let mut delta = 0.0;
        for nb in self.venv.links_of(guest) {
            if nb.node == guest {
                continue; // self-loops are never routed
            }
            let bw = self.venv.link(nb.edge).bw.value();
            let peer = self.assignment[nb.node.index()];
            if peer != Some(to) {
                delta += bw; // becomes (or stays) inter-host after the move
            }
            if peer != Some(from) {
                delta -= bw; // was inter-host before the move
            }
        }
        Kbps(delta)
    }

    /// Exchanges the hosts of two assigned guests, leaving the state
    /// unchanged if either direction violates the hard constraints. Both
    /// residual updates flow through the same assign/unassign pair as
    /// single moves, so the objective accumulator stays in sync.
    pub fn swap(&mut self, a: GuestId, b: GuestId) -> Result<(), PlaceError> {
        let host_a =
            self.assignment[a.index()].unwrap_or_else(|| panic!("guest {a} is not assigned"));
        let host_b =
            self.assignment[b.index()].unwrap_or_else(|| panic!("guest {b} is not assigned"));
        if a == b || host_a == host_b {
            return Ok(());
        }
        self.unassign(a);
        self.unassign(b);
        let restore = |state: &mut Self| {
            state.assign(a, host_a).expect("own slot still fits");
            state.assign(b, host_b).expect("own slot still fits");
        };
        if let Err(e) = self.assign(a, host_b) {
            restore(self);
            return Err(e);
        }
        if let Err(e) = self.assign(b, host_a) {
            self.unassign(a);
            restore(self);
            return Err(e);
        }
        Ok(())
    }

    /// Consumes the state, returning the dense placement table.
    ///
    /// # Panics
    /// Panics if any guest is unassigned.
    pub fn into_placement(self) -> Vec<NodeId> {
        self.assignment
            .into_iter()
            .enumerate()
            .map(|(i, h)| h.unwrap_or_else(|| panic!("guest n{i} left unassigned")))
            .collect()
    }

    /// Clears every assignment, restoring fresh residuals — used by the
    /// retrying baselines between attempts.
    pub fn reset(&mut self) {
        self.residual = ResidualState::new(self.phys);
        self.assignment.fill(None);
        for list in &mut self.guests_on {
            list.clear();
        }
        self.assigned = 0;
        self.residual
            .host_proc_residuals_into(self.phys, &mut self.refresh_scratch);
        self.acc.rebuild(&self.refresh_scratch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{
        GuestSpec, HostSpec, LinkSpec, MemMb, Millis, Mips, StorGb, VLinkSpec, VmmOverhead,
    };

    fn setup() -> (PhysicalTopology, VirtualEnvironment) {
        let phys = PhysicalTopology::from_shape(
            &generators::line(3),
            [
                HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0)),
                HostSpec::new(Mips(2000.0), MemMb(1024), StorGb(100.0)),
                HostSpec::new(Mips(3000.0), MemMb(512), StorGb(100.0)),
            ]
            .into_iter(),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(600), StorGb(10.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(200.0), MemMb(600), StorGb(10.0)));
        let c = venv.add_guest(GuestSpec::new(Mips(300.0), MemMb(300), StorGb(10.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(500.0), Millis(30.0)));
        venv.add_link(b, c, VLinkSpec::new(Kbps(200.0), Millis(30.0)));
        (phys, venv)
    }

    #[test]
    fn assign_unassign_roundtrip() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let g = GuestId::from_index(0);
        let h = phys.hosts()[0];
        assert!(!st.is_complete());
        st.assign(g, h).unwrap();
        assert_eq!(st.host_of(g), Some(h));
        assert_eq!(st.guests_on(h), &[g]);
        assert_eq!(st.assigned_count(), 1);
        assert_eq!(st.residual().proc(h), Mips(900.0));
        st.unassign(g);
        assert_eq!(st.host_of(g), None);
        assert!(st.guests_on(h).is_empty());
        assert_eq!(st.residual().proc(h), Mips(1000.0));
    }

    #[test]
    fn assign_respects_hard_constraints() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let a = GuestId::from_index(0);
        let b = GuestId::from_index(1);
        let h0 = phys.hosts()[0]; // 1024 MB
        st.assign(a, h0).unwrap(); // 600 MB used
        assert!(!st.fits(b, h0)); // another 600 MB won't fit
        assert!(st.assign(b, h0).is_err());
        // Failed assign leaves no trace.
        assert_eq!(st.host_of(b), None);
        assert_eq!(st.assigned_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn double_assign_panics() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let g = GuestId::from_index(0);
        st.assign(g, phys.hosts()[0]).unwrap();
        let _ = st.assign(g, phys.hosts()[1]);
    }

    #[test]
    fn migrate_moves_and_fails_cleanly() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let a = GuestId::from_index(0);
        let h = phys.hosts();
        st.assign(a, h[0]).unwrap();
        st.migrate(a, h[1]).unwrap();
        assert_eq!(st.host_of(a), Some(h[1]));
        assert_eq!(st.residual().proc(h[0]), Mips(1000.0));
        assert_eq!(st.residual().proc(h[1]), Mips(1900.0));
        // h[2] has only 512 MB; guest a needs 600 MB.
        assert!(st.migrate(a, h[2]).is_err());
        assert_eq!(
            st.host_of(a),
            Some(h[1]),
            "failed migration must not move the guest"
        );
    }

    #[test]
    fn migrate_to_same_host_is_noop() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let a = GuestId::from_index(0);
        st.assign(a, phys.hosts()[0]).unwrap();
        st.migrate(a, phys.hosts()[0]).unwrap();
        assert_eq!(st.host_of(a), Some(phys.hosts()[0]));
        assert_eq!(st.residual().proc(phys.hosts()[0]), Mips(900.0));
    }

    #[test]
    fn objective_if_migrated_matches_actual_migration() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let h = phys.hosts();
        // Guest memories are 600/600/300 MB against 1024/1024/512 MB hosts.
        for (i, &host) in [h[0], h[1], h[1]].iter().enumerate() {
            st.assign(GuestId::from_index(i), host).unwrap();
        }
        let g = GuestId::from_index(2); // the 300 MB guest fits h[2]
        let predicted = st.objective_if_migrated(g, h[2]);
        st.migrate(g, h[2]).unwrap();
        let actual = st.objective();
        assert!((predicted - actual).abs() < 1e-9);
    }

    #[test]
    fn co_located_bandwidth_counts_same_host_neighbors_only() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let h = phys.hosts();
        let (a, b, c) = (
            GuestId::from_index(0),
            GuestId::from_index(1),
            GuestId::from_index(2),
        );
        st.assign(a, h[0]).unwrap();
        st.assign(b, h[1]).unwrap();
        st.assign(c, h[1]).unwrap();
        // b links: a (500, different host) + c (200, same host).
        assert_eq!(st.co_located_bandwidth(b), Kbps(200.0));
        assert_eq!(st.co_located_bandwidth(a), Kbps::ZERO);
    }

    #[test]
    fn into_placement_and_reset() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let h = phys.hosts();
        for (i, &host) in [h[0], h[1], h[2]].iter().enumerate() {
            st.assign(GuestId::from_index(i), host).unwrap();
        }
        assert!(st.is_complete());
        st.reset();
        assert_eq!(st.assigned_count(), 0);
        assert_eq!(st.residual().proc(h[0]), Mips(1000.0));
        for (i, &host) in [h[1], h[0], h[2]].iter().enumerate() {
            st.assign(GuestId::from_index(i), host).unwrap();
        }
        let placement = st.into_placement();
        assert_eq!(placement, vec![h[1], h[0], h[2]]);
    }

    #[test]
    #[should_panic(expected = "left unassigned")]
    fn into_placement_panics_when_incomplete() {
        let (phys, venv) = setup();
        let st = PlacementState::new(&phys, &venv);
        let _ = st.into_placement();
    }

    #[test]
    fn objective_matches_full_recompute_through_mutations() {
        use emumap_model::objective::population_stddev;
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let h = phys.hosts();
        let check = |st: &PlacementState<'_>| {
            let exact = population_stddev(&st.residual().host_proc_residuals(&phys));
            assert!(
                (st.objective() - exact).abs() <= 1e-9 * (1.0 + exact),
                "{} vs {}",
                st.objective(),
                exact
            );
        };
        check(&st); // empty: uniform residuals
        for (i, &host) in [h[0], h[1], h[1]].iter().enumerate() {
            st.assign(GuestId::from_index(i), host).unwrap();
            check(&st);
        }
        st.migrate(GuestId::from_index(2), h[2]).unwrap();
        check(&st);
        st.unassign(GuestId::from_index(0));
        check(&st);
        st.reset();
        check(&st);
    }

    #[test]
    fn objective_if_migrated_to_same_host_is_exact_noop() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let g = GuestId::from_index(0);
        st.assign(g, phys.hosts()[0]).unwrap();
        // Bitwise equality, not tolerance: no ±vproc float round trip.
        assert_eq!(
            st.objective_if_migrated(g, phys.hosts()[0]).to_bits(),
            st.objective().to_bits()
        );
    }

    #[test]
    fn swap_exchanges_hosts() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let h = phys.hosts();
        let (a, c) = (GuestId::from_index(0), GuestId::from_index(2));
        st.assign(a, h[0]).unwrap();
        st.assign(c, h[1]).unwrap();
        st.swap(a, c).unwrap();
        assert_eq!(st.host_of(a), Some(h[1]));
        assert_eq!(st.host_of(c), Some(h[0]));
        assert_eq!(st.residual().proc(h[0]), Mips(700.0)); // 1000 - 300
        assert_eq!(st.residual().proc(h[1]), Mips(1900.0)); // 2000 - 100
    }

    #[test]
    fn failed_swap_restores_both_guests() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let h = phys.hosts();
        // Guest a needs 600 MB; host 2 has only 512 MB, so the swap with c
        // (on host 2) must fail and restore the original placement.
        let (a, c) = (GuestId::from_index(0), GuestId::from_index(2));
        st.assign(a, h[0]).unwrap();
        st.assign(c, h[2]).unwrap();
        assert!(st.swap(a, c).is_err());
        assert_eq!(st.host_of(a), Some(h[0]));
        assert_eq!(st.host_of(c), Some(h[2]));
        assert_eq!(st.residual().proc(h[0]), Mips(900.0));
        assert_eq!(st.residual().proc(h[2]), Mips(2700.0));
    }

    #[test]
    fn inter_host_bandwidth_counts_split_links() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let h = phys.hosts();
        let (a, b, c) = (
            GuestId::from_index(0),
            GuestId::from_index(1),
            GuestId::from_index(2),
        );
        st.assign(a, h[0]).unwrap();
        st.assign(b, h[1]).unwrap();
        st.assign(c, h[1]).unwrap();
        // a-b (500) is split; b-c (200) is co-located.
        assert_eq!(st.inter_host_bandwidth(), Kbps(500.0));
    }

    #[test]
    fn inter_bandwidth_delta_matches_full_rescan() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let h = phys.hosts();
        for (i, &host) in [h[0], h[1], h[1]].iter().enumerate() {
            st.assign(GuestId::from_index(i), host).unwrap();
        }
        let b = GuestId::from_index(1);
        for &dest in h {
            if !st.fits(b, dest) {
                continue;
            }
            let before = st.inter_host_bandwidth();
            let predicted = st.inter_bandwidth_delta(b, dest);
            let prev = st.host_of(b).unwrap();
            st.migrate(b, dest).unwrap();
            let actual = st.inter_host_bandwidth() - before;
            assert!(
                (predicted.value() - actual.value()).abs() < 1e-9,
                "dest {dest}: predicted {predicted:?}, actual {actual:?}"
            );
            st.migrate(b, prev).unwrap();
        }
        // Same-host "move" is an exact zero.
        assert_eq!(st.inter_bandwidth_delta(b, h[1]), Kbps::ZERO);
    }

    #[test]
    fn self_loops_count_toward_neither_bandwidth_total() {
        let (phys, mut venv) = setup();
        let a = GuestId::from_index(0);
        venv.add_link(a, a, VLinkSpec::new(Kbps(9999.0), Millis(1.0)));
        let mut st = PlacementState::new(&phys, &venv);
        let h = phys.hosts();
        for (i, &host) in [h[0], h[1], h[1]].iter().enumerate() {
            st.assign(GuestId::from_index(i), host).unwrap();
        }
        assert_eq!(st.co_located_bandwidth(a), Kbps::ZERO);
        assert_eq!(st.inter_host_bandwidth(), Kbps(500.0));
        // A move of the self-looped guest never changes the loop's term:
        // co-locating a with b only removes the 500 of the a-b link.
        assert_eq!(st.inter_bandwidth_delta(a, h[1]), Kbps(-500.0));
    }

    #[test]
    fn delta_and_full_evaluation_counters_advance() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let h = phys.hosts();
        assert_eq!(st.full_evaluations(), 1, "initial accumulator build");
        assert_eq!(st.delta_evaluations(), 0);
        st.assign(GuestId::from_index(0), h[0]).unwrap();
        let _ = st.objective_if_migrated(GuestId::from_index(0), h[1]);
        let _ = st.inter_bandwidth_delta(GuestId::from_index(0), h[1]);
        assert_eq!(st.delta_evaluations(), 2);
        // The exact-no-op guard does not spend a delta evaluation.
        let _ = st.objective_if_migrated(GuestId::from_index(0), h[0]);
        assert_eq!(st.delta_evaluations(), 2);
        st.reset();
        assert_eq!(st.full_evaluations(), 2, "reset re-syncs exactly once");
    }
}
