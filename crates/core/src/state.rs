//! Mutable placement state shared by the Hosting and Migration stages and
//! by the random baselines.

use emumap_graph::NodeId;
use emumap_model::objective::population_stddev;
use emumap_model::{
    GuestId, Kbps, PhysicalTopology, PlaceError, ResidualState, VirtualEnvironment,
};

/// A partial guest→host assignment with residual bookkeeping.
///
/// Wraps a [`ResidualState`] and keeps the inverse index (which guests sit
/// on each host) so the Migration stage can enumerate migration candidates
/// without scanning every guest.
pub struct PlacementState<'a> {
    phys: &'a PhysicalTopology,
    venv: &'a VirtualEnvironment,
    residual: ResidualState,
    assignment: Vec<Option<NodeId>>,
    /// node index -> guests placed there (hosts only; switches stay empty).
    guests_on: Vec<Vec<GuestId>>,
    assigned: usize,
}

impl<'a> PlacementState<'a> {
    /// An empty assignment over fresh residuals.
    pub fn new(phys: &'a PhysicalTopology, venv: &'a VirtualEnvironment) -> Self {
        PlacementState {
            phys,
            venv,
            residual: ResidualState::new(phys),
            assignment: vec![None; venv.guest_count()],
            guests_on: vec![Vec::new(); phys.graph().node_count()],
            assigned: 0,
        }
    }

    /// The physical topology this state maps onto.
    pub fn phys(&self) -> &'a PhysicalTopology {
        self.phys
    }

    /// The virtual environment being mapped.
    pub fn venv(&self) -> &'a VirtualEnvironment {
        self.venv
    }

    /// Residual capacities under the current assignment.
    pub fn residual(&self) -> &ResidualState {
        &self.residual
    }

    /// Mutable residuals — used by the Networking stage to commit routes
    /// after placement is frozen.
    pub fn residual_mut(&mut self) -> &mut ResidualState {
        &mut self.residual
    }

    /// Host of `guest`, if assigned.
    pub fn host_of(&self, guest: GuestId) -> Option<NodeId> {
        self.assignment[guest.index()]
    }

    /// `true` once every guest has a host.
    pub fn is_complete(&self) -> bool {
        self.assigned == self.venv.guest_count()
    }

    /// Number of guests currently assigned.
    pub fn assigned_count(&self) -> usize {
        self.assigned
    }

    /// Guests currently placed on `host`.
    pub fn guests_on(&self, host: NodeId) -> &[GuestId] {
        &self.guests_on[host.index()]
    }

    /// `true` if `guest` fits on `host` under the hard constraints
    /// (Eqs. 2–3).
    pub fn fits(&self, guest: GuestId, host: NodeId) -> bool {
        self.residual.fits(self.venv.guest(guest), host)
    }

    /// Assigns `guest` to `host`.
    ///
    /// # Panics
    /// Panics if the guest is already assigned (mapper logic error).
    pub fn assign(&mut self, guest: GuestId, host: NodeId) -> Result<(), PlaceError> {
        assert!(
            self.assignment[guest.index()].is_none(),
            "guest {guest} is already assigned"
        );
        self.residual
            .place(self.phys, self.venv.guest(guest), host)?;
        self.assignment[guest.index()] = Some(host);
        self.guests_on[host.index()].push(guest);
        self.assigned += 1;
        Ok(())
    }

    /// Removes `guest` from its current host.
    ///
    /// # Panics
    /// Panics if the guest is not assigned.
    pub fn unassign(&mut self, guest: GuestId) {
        let host = self.assignment[guest.index()]
            .take()
            .unwrap_or_else(|| panic!("guest {guest} is not assigned"));
        self.residual.remove(self.venv.guest(guest), host);
        let list = &mut self.guests_on[host.index()];
        let pos = list
            .iter()
            .position(|&g| g == guest)
            .expect("inverse index consistent");
        list.swap_remove(pos);
        self.assigned -= 1;
    }

    /// Moves `guest` from its current host to `to`. Fails (leaving the
    /// state unchanged) if it does not fit.
    pub fn migrate(&mut self, guest: GuestId, to: NodeId) -> Result<(), PlaceError> {
        let from = self.assignment[guest.index()]
            .unwrap_or_else(|| panic!("guest {guest} is not assigned"));
        if from == to {
            return Ok(());
        }
        // Probe before mutating so failure is side-effect free.
        self.residual.check_fit(self.venv.guest(guest), to)?;
        self.unassign(guest);
        self.assign(guest, to).expect("probed fit cannot fail");
        Ok(())
    }

    /// The load-balance factor (Eq. 10) of the current assignment.
    pub fn objective(&self) -> f64 {
        population_stddev(&self.residual.host_proc_residuals(self.phys))
    }

    /// The load-balance factor *if* `guest` were migrated from its current
    /// host to `to`, without performing the migration. O(hosts).
    pub fn objective_if_migrated(&self, guest: GuestId, to: NodeId) -> f64 {
        let from = self.assignment[guest.index()].expect("guest is assigned");
        let vproc = self.venv.guest(guest).proc.value();
        let mut rproc = self.residual.host_proc_residuals(self.phys);
        for (i, &h) in self.phys.hosts().iter().enumerate() {
            if h == from {
                rproc[i] += vproc;
            } else if h == to {
                rproc[i] -= vproc;
            }
        }
        population_stddev(&rproc)
    }

    /// Total bandwidth of `guest`'s virtual links whose other endpoint is
    /// currently placed on the *same* host — the Migration stage picks the
    /// guest minimizing this, "in order to minimize utilization of physical
    /// links" (§4.2).
    pub fn co_located_bandwidth(&self, guest: GuestId) -> Kbps {
        let Some(host) = self.assignment[guest.index()] else {
            return Kbps::ZERO;
        };
        self.venv
            .graph()
            .neighbors(guest)
            .filter(|nb| nb.node != guest) // ignore self-loops
            .filter(|nb| self.assignment[nb.node.index()] == Some(host))
            .map(|nb| self.venv.link(nb.edge).bw)
            .sum()
    }

    /// Consumes the state, returning the dense placement table.
    ///
    /// # Panics
    /// Panics if any guest is unassigned.
    pub fn into_placement(self) -> Vec<NodeId> {
        self.assignment
            .into_iter()
            .enumerate()
            .map(|(i, h)| h.unwrap_or_else(|| panic!("guest n{i} left unassigned")))
            .collect()
    }

    /// Clears every assignment, restoring fresh residuals — used by the
    /// retrying baselines between attempts.
    pub fn reset(&mut self) {
        self.residual = ResidualState::new(self.phys);
        self.assignment.fill(None);
        for list in &mut self.guests_on {
            list.clear();
        }
        self.assigned = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use emumap_graph::generators;
    use emumap_model::{
        GuestSpec, HostSpec, LinkSpec, MemMb, Millis, Mips, StorGb, VLinkSpec, VmmOverhead,
    };

    fn setup() -> (PhysicalTopology, VirtualEnvironment) {
        let phys = PhysicalTopology::from_shape(
            &generators::line(3),
            [
                HostSpec::new(Mips(1000.0), MemMb(1024), StorGb(100.0)),
                HostSpec::new(Mips(2000.0), MemMb(1024), StorGb(100.0)),
                HostSpec::new(Mips(3000.0), MemMb(512), StorGb(100.0)),
            ]
            .into_iter(),
            LinkSpec::new(Kbps(1000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        let mut venv = VirtualEnvironment::new();
        let a = venv.add_guest(GuestSpec::new(Mips(100.0), MemMb(600), StorGb(10.0)));
        let b = venv.add_guest(GuestSpec::new(Mips(200.0), MemMb(600), StorGb(10.0)));
        let c = venv.add_guest(GuestSpec::new(Mips(300.0), MemMb(300), StorGb(10.0)));
        venv.add_link(a, b, VLinkSpec::new(Kbps(500.0), Millis(30.0)));
        venv.add_link(b, c, VLinkSpec::new(Kbps(200.0), Millis(30.0)));
        (phys, venv)
    }

    #[test]
    fn assign_unassign_roundtrip() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let g = GuestId::from_index(0);
        let h = phys.hosts()[0];
        assert!(!st.is_complete());
        st.assign(g, h).unwrap();
        assert_eq!(st.host_of(g), Some(h));
        assert_eq!(st.guests_on(h), &[g]);
        assert_eq!(st.assigned_count(), 1);
        assert_eq!(st.residual().proc(h), Mips(900.0));
        st.unassign(g);
        assert_eq!(st.host_of(g), None);
        assert!(st.guests_on(h).is_empty());
        assert_eq!(st.residual().proc(h), Mips(1000.0));
    }

    #[test]
    fn assign_respects_hard_constraints() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let a = GuestId::from_index(0);
        let b = GuestId::from_index(1);
        let h0 = phys.hosts()[0]; // 1024 MB
        st.assign(a, h0).unwrap(); // 600 MB used
        assert!(!st.fits(b, h0)); // another 600 MB won't fit
        assert!(st.assign(b, h0).is_err());
        // Failed assign leaves no trace.
        assert_eq!(st.host_of(b), None);
        assert_eq!(st.assigned_count(), 1);
    }

    #[test]
    #[should_panic(expected = "already assigned")]
    fn double_assign_panics() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let g = GuestId::from_index(0);
        st.assign(g, phys.hosts()[0]).unwrap();
        let _ = st.assign(g, phys.hosts()[1]);
    }

    #[test]
    fn migrate_moves_and_fails_cleanly() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let a = GuestId::from_index(0);
        let h = phys.hosts();
        st.assign(a, h[0]).unwrap();
        st.migrate(a, h[1]).unwrap();
        assert_eq!(st.host_of(a), Some(h[1]));
        assert_eq!(st.residual().proc(h[0]), Mips(1000.0));
        assert_eq!(st.residual().proc(h[1]), Mips(1900.0));
        // h[2] has only 512 MB; guest a needs 600 MB.
        assert!(st.migrate(a, h[2]).is_err());
        assert_eq!(
            st.host_of(a),
            Some(h[1]),
            "failed migration must not move the guest"
        );
    }

    #[test]
    fn migrate_to_same_host_is_noop() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let a = GuestId::from_index(0);
        st.assign(a, phys.hosts()[0]).unwrap();
        st.migrate(a, phys.hosts()[0]).unwrap();
        assert_eq!(st.host_of(a), Some(phys.hosts()[0]));
        assert_eq!(st.residual().proc(phys.hosts()[0]), Mips(900.0));
    }

    #[test]
    fn objective_if_migrated_matches_actual_migration() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let h = phys.hosts();
        // Guest memories are 600/600/300 MB against 1024/1024/512 MB hosts.
        for (i, &host) in [h[0], h[1], h[1]].iter().enumerate() {
            st.assign(GuestId::from_index(i), host).unwrap();
        }
        let g = GuestId::from_index(2); // the 300 MB guest fits h[2]
        let predicted = st.objective_if_migrated(g, h[2]);
        st.migrate(g, h[2]).unwrap();
        let actual = st.objective();
        assert!((predicted - actual).abs() < 1e-9);
    }

    #[test]
    fn co_located_bandwidth_counts_same_host_neighbors_only() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let h = phys.hosts();
        let (a, b, c) = (
            GuestId::from_index(0),
            GuestId::from_index(1),
            GuestId::from_index(2),
        );
        st.assign(a, h[0]).unwrap();
        st.assign(b, h[1]).unwrap();
        st.assign(c, h[1]).unwrap();
        // b links: a (500, different host) + c (200, same host).
        assert_eq!(st.co_located_bandwidth(b), Kbps(200.0));
        assert_eq!(st.co_located_bandwidth(a), Kbps::ZERO);
    }

    #[test]
    fn into_placement_and_reset() {
        let (phys, venv) = setup();
        let mut st = PlacementState::new(&phys, &venv);
        let h = phys.hosts();
        for (i, &host) in [h[0], h[1], h[2]].iter().enumerate() {
            st.assign(GuestId::from_index(i), host).unwrap();
        }
        assert!(st.is_complete());
        st.reset();
        assert_eq!(st.assigned_count(), 0);
        assert_eq!(st.residual().proc(h[0]), Mips(1000.0));
        for (i, &host) in [h[1], h[0], h[2]].iter().enumerate() {
            st.assign(GuestId::from_index(i), host).unwrap();
        }
        let placement = st.into_placement();
        assert_eq!(placement, vec![h[1], h[0], h[2]]);
    }

    #[test]
    #[should_panic(expected = "left unassigned")]
    fn into_placement_panics_when_incomplete() {
        let (phys, venv) = setup();
        let st = PlacementState::new(&phys, &venv);
        let _ = st.into_placement();
    }
}
