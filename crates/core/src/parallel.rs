//! A generic deterministic work-fanning engine for independent trials.
//!
//! The experiment grids (Tables 2–3, Figure 1, the CLI `batch` command)
//! all share the same shape: N independent trials, each a pure function of
//! its seeds, whose results are aggregated afterwards. [`ParallelRunner`]
//! fans such trials across a crossbeam scoped-thread pool and returns the
//! results **in input order**, so aggregation code is identical for 1 and
//! 64 threads.
//!
//! Each worker owns one warm [`MapCache`] that it passes to every trial it
//! executes — this is what makes the pool faster than `run per trial in a
//! fresh thread`, not just parallel: the topology Dijkstra tables and the
//! routing scratch buffers amortize across every trial a worker touches.
//! Because the cache is semantically invisible (see `emumap_core::cache`),
//! trial results are bit-identical to a sequential run with any cache
//! sharing, which the determinism suite asserts.

use crate::cache::MapCache;
use crossbeam::queue::SegQueue;
use emumap_trace::{EventSink, Phase, TraceEvent, Tracer};
use parking_lot::Mutex;
use std::sync::Arc;

/// Wall-clock totals per pipeline phase, summed across every trial of a
/// [`ParallelRunner::run_tracked`] call. Timings are volatile (they vary
/// run to run), so these belong in reports, never in determinism checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Total microseconds spent in Hosting phase spans.
    pub hosting_us: u64,
    /// Total microseconds spent in Migration phase spans.
    pub migration_us: u64,
    /// Total microseconds spent in Networking phase spans.
    pub networking_us: u64,
    /// Total microseconds spent in Exact (branch-and-bound oracle) spans.
    pub exact_us: u64,
    /// Phase spans folded in (0 means the trials emitted no spans — e.g. a
    /// mapper without phase instrumentation).
    pub spans: u64,
}

impl PhaseTotals {
    /// Hosting total in seconds.
    pub fn hosting_s(&self) -> f64 {
        self.hosting_us as f64 / 1e6
    }

    /// Migration total in seconds.
    pub fn migration_s(&self) -> f64 {
        self.migration_us as f64 / 1e6
    }

    /// Networking total in seconds.
    pub fn networking_s(&self) -> f64 {
        self.networking_us as f64 / 1e6
    }

    /// Exact-oracle total in seconds.
    pub fn exact_s(&self) -> f64 {
        self.exact_us as f64 / 1e6
    }
}

/// Sink that folds `PhaseEnd` spans into a shared total and drops
/// everything else. Lock contention is negligible: one short lock per
/// phase span, three spans per mapped trial.
struct PhaseTotalsSink {
    totals: Arc<Mutex<PhaseTotals>>,
}

impl EventSink for PhaseTotalsSink {
    fn record(&mut self, event: TraceEvent) {
        if let TraceEvent::PhaseEnd {
            phase, elapsed_us, ..
        } = event
        {
            let mut t = self.totals.lock();
            match phase {
                Phase::Hosting => t.hosting_us += elapsed_us,
                Phase::Migration => t.migration_us += elapsed_us,
                Phase::Networking => t.networking_us += elapsed_us,
                Phase::Exact => t.exact_us += elapsed_us,
            }
            t.spans += 1;
        }
    }
}

/// A fixed-size worker pool executing independent trials in input order.
#[derive(Clone, Copy, Debug)]
pub struct ParallelRunner {
    threads: usize,
}

impl ParallelRunner {
    /// A runner with `threads` workers; `0` means one per available core.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        ParallelRunner { threads }
    }

    /// The resolved worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` once per item, fanning across the pool, and returns the
    /// results in the order of `items`.
    ///
    /// `f` receives the worker's private warm [`MapCache`]; it must be a
    /// pure function of the item (modulo the cache, which must not affect
    /// results), so the output is independent of the thread count and of
    /// which worker picked up which item.
    pub fn run<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T, &mut MapCache) -> R + Sync,
    {
        self.run_inner(items, f, None)
    }

    /// [`run`](Self::run), additionally collecting per-phase wall-clock
    /// totals from the pipeline's trace events.
    ///
    /// Each worker's cache gets a phase-folding tracer, so every mapper
    /// invoked through [`Mapper::map_with_cache`](crate::Mapper::
    /// map_with_cache) contributes its Hosting/Migration/Networking span
    /// timings to the returned [`PhaseTotals`]. Trials that replace the
    /// cache's tracer with their own sink opt out of the aggregation for
    /// that trial. Results are still deterministic; only the totals'
    /// timings vary run to run.
    pub fn run_tracked<T, R, F>(&self, items: Vec<T>, f: F) -> (Vec<R>, PhaseTotals)
    where
        T: Send,
        R: Send,
        F: Fn(T, &mut MapCache) -> R + Sync,
    {
        let totals = Arc::new(Mutex::new(PhaseTotals::default()));
        let results = self.run_inner(items, f, Some(&totals));
        let totals = *totals.lock();
        (results, totals)
    }

    /// Spawns exactly [`threads`](Self::threads) persistent workers, each
    /// with a private warm [`MapCache`], runs `f(worker_index, cache)`
    /// once per worker, and returns the results in worker order.
    ///
    /// This is the raw pool the epoch-parallel exact oracle builds its
    /// barrier engine on: unlike [`run`](Self::run) there is no work
    /// queue — each worker's closure runs for the whole engine lifetime
    /// and coordinates through shared state of the caller's choosing
    /// (barriers, locks). The worker index is stable, so per-worker
    /// result attribution is deterministic.
    pub fn run_workers<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, &mut MapCache) -> R + Sync,
    {
        let results: Vec<Mutex<Option<R>>> = (0..self.threads).map(|_| Mutex::new(None)).collect();
        crossbeam::scope(|scope| {
            for w in 0..self.threads {
                let results = &results;
                let f = &f;
                scope.spawn(move |_| {
                    let mut cache = MapCache::new();
                    let r = f(w, &mut cache);
                    *results[w].lock() = Some(r);
                });
            }
        })
        .expect("worker thread panicked");
        results
            .into_iter()
            .map(|m| m.into_inner().expect("every worker ran"))
            .collect()
    }

    fn run_inner<T, R, F>(
        &self,
        items: Vec<T>,
        f: F,
        totals: Option<&Arc<Mutex<PhaseTotals>>>,
    ) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T, &mut MapCache) -> R + Sync,
    {
        let n = items.len();
        let work: SegQueue<(usize, T)> = SegQueue::new();
        for pair in items.into_iter().enumerate() {
            work.push(pair);
        }
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

        crossbeam::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|_| {
                    let mut cache = MapCache::new();
                    if let Some(totals) = totals {
                        cache.trace = Tracer::new(Box::new(PhaseTotalsSink {
                            totals: Arc::clone(totals),
                        }));
                    }
                    while let Some((idx, item)) = work.pop() {
                        let r = f(item, &mut cache);
                        *results[idx].lock() = Some(r);
                    }
                });
            }
        })
        .expect("worker thread panicked");

        results
            .into_iter()
            .map(|m| m.into_inner().expect("every item was executed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let runner = ParallelRunner::new(4);
        let items: Vec<usize> = (0..100).collect();
        let out = runner.run(items, |i, _| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn zero_threads_resolves_to_available_cores() {
        let runner = ParallelRunner::new(0);
        assert!(runner.threads() >= 1);
        let out = runner.run(vec![1, 2, 3], |i, _| i + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let runner = ParallelRunner::new(2);
        let out: Vec<i32> = runner.run(Vec::<i32>::new(), |i, _| i);
        assert!(out.is_empty());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let runner = ParallelRunner::new(8);
        let out = runner.run(vec![7], |i, _| i);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn run_workers_returns_results_in_worker_order() {
        use std::sync::Barrier;
        let runner = ParallelRunner::new(3);
        // A barrier inside the closure proves all workers run
        // concurrently (a sequential fallback would deadlock).
        let barrier = Barrier::new(3);
        let out = runner.run_workers(|w, cache| {
            barrier.wait();
            assert!(!cache.trace.is_enabled());
            w * 10
        });
        assert_eq!(out, vec![0, 10, 20]);
    }

    #[test]
    fn run_tracked_folds_one_span_per_phase_per_trial() {
        use crate::{Hmn, Mapper};
        use emumap_workloads::{instantiate, ClusterSpec, Scenario, WorkloadKind};
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let scenario = Scenario {
            ratio: 2.5,
            density: 0.02,
            workload: WorkloadKind::HighLevel,
        };
        let inst = instantiate(
            &ClusterSpec::paper(),
            ClusterSpec::paper_torus(),
            &scenario,
            0,
            2009,
        );
        let runner = ParallelRunner::new(2);
        let trials: Vec<u64> = (0..4).collect();
        let (objectives, totals) = runner.run_tracked(trials, |seed, cache| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Hmn::new()
                .map_with_cache(&inst.phys, &inst.venv, &mut rng, cache)
                .map(|o| o.objective)
                .ok()
        });
        assert!(objectives.iter().all(Option::is_some));
        // HMN emits exactly one Hosting, Migration and Networking span per
        // trial; wall-clock magnitudes are volatile and not asserted.
        assert_eq!(totals.spans, 3 * 4);
    }

    #[test]
    fn run_without_tracking_keeps_the_tracer_disabled() {
        let runner = ParallelRunner::new(1);
        let enabled = runner.run(vec![()], |(), cache| cache.trace.is_enabled());
        assert_eq!(enabled, vec![false]);
    }
}
