//! **Lagrangian-decomposition lower bound** for the exact oracle.
//!
//! The water-filling bound of [`crate::exact`] relaxes *everything* except
//! the fixed total CPU demand: it lets demand split fractionally across
//! hosts and ignores memory, storage, bandwidth and latency entirely. That
//! is why it stalls around ten guests — on any instance where the hard
//! constraints (Eqs. 2–8) force imbalance, the bound stays far below the
//! incumbent and nothing prunes.
//!
//! This module dualizes those coupling constraints instead, in the spirit
//! of Lagrange-decomposition branch-and-bound for VM mapping (Wang,
//! Ben-Ameur & Ouorou): with per-host prices on memory (Eq. 2), storage
//! (Eq. 3) and the bandwidth *cut* around each host (implied by Eqs. 4–7),
//! the relaxation decomposes into **independent per-guest assignment
//! subproblems** — each unassigned guest picks its cheapest priced host
//! from a table built once per search node. Latency bounds (Eq. 8) enter
//! exactly, not dually: a host whose cached Dijkstra `ar[]` distance to an
//! already-placed peer exceeds the link's bound is simply removed from
//! that guest's table (the same "priced table lookup" the search's own
//! latency prune uses).
//!
//! **Objective linearization.** The Eq. 10 objective is the population
//! stddev of final residual CPU `x`, with `x_i = r_i − Σ_g d_g y_{gi}` and
//! a *fixed* final mean `μ = (Σr − D)/n`. Variance is convex in `x`, so
//! its tangent at any point `x̂` under-estimates it:
//!
//! ```text
//! Var(x) = (1/n) Σ x_i² − μ²  ≥  (1/n) Σ (2 x̂_i x_i − x̂_i²) − μ²
//! ```
//!
//! which is **linear in the assignment `y`** and therefore decomposes.
//! Taking `x̂` = the water-filling point makes the relaxation *at zero
//! multipliers and unrestricted tables* collapse exactly to the
//! water-filling bound — so the Lagrangian bound dominates it by
//! construction, and every restriction (latency-pruned tables) or positive
//! price can only tighten it further (see `DESIGN.md` §5.6 for the
//! admissibility argument).
//!
//! **Demand-density floors.** At high demand the water-filling point is
//! *flat* — the level sits below every residual — and a flat tangent is
//! placement-indifferent: no price can lift the dual above it. The cure
//! is a second, structural restriction folded into the tangent point:
//! every unassigned guest satisfies `d_g ≤ ρ_mem·mem_g` with
//! `ρ_mem = max_g d_g/mem_g` (resp. `ρ_stor`), so host `i` can absorb at
//! most `min(ρ_mem·m_i, ρ_stor·s_i)` CPU and its final residual is
//! floored at `r_i` minus that cap. Re-solving the completion over the
//! floored polytope (`floored_waterfill`) yields a bound that is never
//! weaker than plain water-filling, strictly stronger whenever
//! memory/storage pressure forces CPU imbalance, an *infeasibility
//! certificate* when the caps cannot absorb the demand — and a non-flat
//! tangent the ascent can actually price.
//!
//! **Tangent refresh.** The tangent inequality holds for *any* `x̂`, so
//! each ascent iteration re-linearizes at (a damped average towards) the
//! relaxed solution's residual point. Every `(x̂, λ, ν, β)` evaluation is
//! admissible; the reported bound is the max over all of them.
//!
//! **Multiplier warm-start.** Prices live in [`LagrangianScratch`] inside
//! `MapCache` and are *warm-started down the search tree*: a child node
//! starts its subgradient ascent from the parent's prices, which are
//! usually near-optimal one level deeper. They are reset at the start of
//! every solve, so results are bit-identical for any cache history and at
//! any thread count — the `MapCache` purity invariant.

use crate::cache::ArTables;
use crate::exact::EPSILON;
use emumap_graph::NodeId;
use emumap_model::{GuestId, PhysicalTopology, VirtualEnvironment};

/// Knobs of the subgradient ascent. All defaults are deliberately small:
/// every dual evaluation is a valid bound on its own, so a handful of
/// ascent steps per node (more at the root, where the bound is reused by
/// the whole tree) buys most of the tightening.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LagrangianConfig {
    /// Subgradient ascent steps at the root node (depth 0).
    pub root_iters: u32,
    /// Subgradient ascent steps at every deeper node (warm-started from
    /// the parent's multipliers).
    pub tree_iters: u32,
    /// Step-size scale `θ` of the Polyak rule
    /// `t = θ·(UB − dual)/‖subgradient‖²`, applied per price family.
    pub step: f64,
    /// Tangent-refresh mixing weight: each ascent iteration re-linearizes
    /// at `x̂ ← γ·(x̂ + x*)` where `x*` is the relaxed solution's residual
    /// point. The default `γ = 0.5` is the damped midpoint; any value
    /// keeps the bound admissible (the tangent inequality holds at every
    /// `x̂`), so the bench can sweep it without re-tuning correctness
    /// gates.
    pub tangent_damping: f64,
}

impl Default for LagrangianConfig {
    fn default() -> Self {
        LagrangianConfig {
            root_iters: 24,
            tree_iters: 4,
            step: 1.0,
            tangent_damping: 0.5,
        }
    }
}

/// Result of one bound computation at a search node.
#[derive(Clone, Copy, Debug)]
pub struct LagrangianBound {
    /// Admissible lower bound on the final Eq. 10 objective (stddev
    /// units). [`f64::INFINITY`] when some unassigned guest has no
    /// admissible host at all (an *exact* infeasibility certificate).
    pub bound: f64,
    /// Dual evaluations performed (≥ 1; surfaced as `subgradient_iters`).
    pub evaluations: u64,
}

/// A borrowed view of one branch-and-bound node: everything the bound
/// needs from the search state, with no ownership transferred.
pub struct NodeView<'a> {
    /// Host slots in `phys.hosts()` order.
    pub hosts: &'a [NodeId],
    /// Residual CPU per host slot.
    pub r_proc: &'a [f64],
    /// Residual memory per host slot.
    pub r_mem: &'a [u64],
    /// Residual storage per host slot.
    pub r_stor: &'a [f64],
    /// Guests not yet assigned at this node.
    pub unassigned: &'a [GuestId],
    /// Guest index → assigned host slot (placed guests only).
    pub slot_of: &'a [Option<usize>],
    /// Per guest index: `(peer guest index, tightest latency bound)`,
    /// as built by [`tightest_peer_bounds`].
    pub peers: &'a [Vec<(usize, f64)>],
    /// Current incumbent objective (stddev; `INFINITY` when none). Only
    /// steers the ascent step size — any value keeps the bound admissible.
    pub incumbent: f64,
    /// `true` at the search root (uses `root_iters` instead of
    /// `tree_iters`).
    pub at_root: bool,
    /// Apply the exact Eq. 8 latency restriction to the per-guest tables.
    pub use_latency: bool,
}

/// Scratch state of the Lagrangian bound, owned by `MapCache`.
///
/// The multiplier vectors double as the warm-start state *within* one
/// solve; [`prepare`](Self::prepare) resets them so nothing leaks across
/// solves. All other buffers are per-node work areas that keep their
/// capacity, so the steady-state bound computation allocates nothing.
#[derive(Debug, Default)]
pub struct LagrangianScratch {
    /// Memory prices `λ_i ≥ 0` (per host slot), warm-started down the tree.
    lambda_mem: Vec<f64>,
    /// Storage prices `ν_i ≥ 0`.
    nu_stor: Vec<f64>,
    /// Bandwidth-cut prices `β_i ≥ 0`.
    beta_bw: Vec<f64>,
    /// Static per-solve: total physical bandwidth incident to each host
    /// slot — the capacity of the cut isolating that host.
    cut_static: Vec<f64>,
    /// Static per-solve: graph node index → host slot (or `usize::MAX`).
    slot_of_node: Vec<usize>,
    /// Guest index → position in the node's unassigned list (sparse,
    /// reset after each node).
    uidx_of: Vec<usize>,
    /// Water-filling work buffer (descending residuals).
    sorted: Vec<f64>,
    /// The tangent point `x̂` (water-filling completion of `r_proc`).
    xhat: Vec<f64>,
    /// Per-node residual cut capacity: `cut_static − placed-placed usage`.
    cut_slack: Vec<f64>,
    /// Residual memory as `f64` (the dual's penalty term needs it).
    rmem_f: Vec<f64>,
    /// Priced tables: `unassigned × hosts` tangent costs, `INFINITY` on
    /// hosts excluded by the exact fit/latency restrictions.
    cost: Vec<f64>,
    /// Per unassigned guest: CPU demand, memory, storage, and total
    /// bandwidth to already-placed peers.
    gdem: Vec<f64>,
    gmem: Vec<f64>,
    gstor: Vec<f64>,
    peer_bw_sum: Vec<f64>,
    /// `(unassigned idx, placed peer's slot, link bw)` triples, sorted.
    peer_edges: Vec<(usize, usize, f64)>,
    /// CSR offsets into `peer_edges` per unassigned guest.
    peer_off: Vec<usize>,
    /// Argmin host per unassigned guest (subgradient support).
    choice: Vec<usize>,
    /// The relaxed solution's residual point (tangent-refresh support).
    xstar: Vec<f64>,
    /// Per-host residual floors from the demand-density caps.
    floors: Vec<f64>,
    grad_mem: Vec<f64>,
    grad_stor: Vec<f64>,
    grad_bw: Vec<f64>,
    warm: bool,
    reuses: usize,
}

impl LagrangianScratch {
    /// Fresh, cold scratch.
    pub fn new() -> Self {
        LagrangianScratch::default()
    }

    /// Bound computations that started on already-warm buffers (every
    /// solve after the first).
    pub fn reuses(&self) -> usize {
        self.reuses
    }

    /// Binds the scratch to one solve: sizes the buffers, computes the
    /// static cut capacities, and — crucially — **resets the multipliers**
    /// so the bound is a pure function of the instance, independent of
    /// cache history (warm-start only happens *within* a solve).
    pub fn prepare(&mut self, phys: &PhysicalTopology, hosts: &[NodeId], guest_count: usize) {
        if self.warm {
            self.reuses += 1;
        }
        self.warm = true;
        let n = hosts.len();
        self.lambda_mem.clear();
        self.lambda_mem.resize(n, 0.0);
        self.nu_stor.clear();
        self.nu_stor.resize(n, 0.0);
        self.beta_bw.clear();
        self.beta_bw.resize(n, 0.0);
        self.slot_of_node.clear();
        self.slot_of_node
            .resize(phys.graph().node_count(), usize::MAX);
        for (slot, &h) in hosts.iter().enumerate() {
            self.slot_of_node[h.index()] = slot;
        }
        self.cut_static.clear();
        self.cut_static.resize(n, 0.0);
        for e in phys.graph().edge_ids() {
            let (a, b) = phys.graph().endpoints(e);
            let bw = phys.link(e).bw.value();
            for node in [a, b] {
                let slot = self.slot_of_node[node.index()];
                if slot != usize::MAX {
                    self.cut_static[slot] += bw;
                }
            }
        }
        self.uidx_of.clear();
        self.uidx_of.resize(guest_count, usize::MAX);
    }

    /// Length of a packed multiplier snapshot for the prepared host
    /// count: three price families (λ, ν, β), one slot each per host.
    pub fn multiplier_len(&self) -> usize {
        3 * self.lambda_mem.len()
    }

    /// Packs the current multipliers (`λ ‖ ν ‖ β`) into `out`. This is
    /// the per-subtree warm-start handoff of the epoch-parallel oracle:
    /// captured right after a node's bound computation, a snapshot holds
    /// that node's post-ascent prices, which its children load before
    /// their own ascent — so a node's bound is a pure function of
    /// `(node, snapshot-at-entry)`, independent of which worker computed
    /// the siblings in between.
    pub fn save_multipliers(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend_from_slice(&self.lambda_mem);
        out.extend_from_slice(&self.nu_stor);
        out.extend_from_slice(&self.beta_bw);
    }

    /// Restores multipliers packed by
    /// [`save_multipliers`](Self::save_multipliers). `packed` must match
    /// the prepared host count ([`multiplier_len`](Self::multiplier_len)).
    pub fn load_multipliers(&mut self, packed: &[f64]) {
        let n = self.lambda_mem.len();
        assert_eq!(packed.len(), 3 * n, "packed multipliers match host count");
        self.lambda_mem.copy_from_slice(&packed[..n]);
        self.nu_stor.copy_from_slice(&packed[n..2 * n]);
        self.beta_bw.copy_from_slice(&packed[2 * n..]);
    }

    /// Zeroes the multipliers — the warm-start state of a node with no
    /// parent prices (the search root).
    pub fn reset_multipliers(&mut self) {
        for v in self
            .lambda_mem
            .iter_mut()
            .chain(self.nu_stor.iter_mut())
            .chain(self.beta_bw.iter_mut())
        {
            *v = 0.0;
        }
    }
}

/// Per guest index: `(peer guest index, tightest latency bound over all
/// links between the pair)`. Self-loops are skipped (always intra-host).
/// Shared by the oracle's latency prune and the bound's table restriction.
pub fn tightest_peer_bounds(venv: &VirtualEnvironment) -> Vec<Vec<(usize, f64)>> {
    let mut peers = vec![Vec::new(); venv.guest_count()];
    for l in venv.link_ids() {
        let (a, b) = venv.link_endpoints(l);
        if a == b {
            continue;
        }
        let lat = venv.link(l).lat.value();
        for (u, v) in [(a, b), (b, a)] {
            let list: &mut Vec<(usize, f64)> = &mut peers[u.index()];
            match list.iter_mut().find(|(p, _)| *p == v.index()) {
                Some(entry) => entry.1 = entry.1.min(lat),
                None => list.push((v.index(), lat)),
            }
        }
    }
    peers
}

/// Water-filling completion of `residuals` under total `demand`: the
/// point `x̂_i = min(r_i, L)` with the level `L` chosen so
/// `Σ x̂ = Σ r − demand`. Mirrors
/// [`residual_stddev_lower_bound`](crate::exact::residual_stddev_lower_bound)
/// but materializes the minimizer instead of only its stddev.
fn waterfill_point(residuals: &[f64], demand: f64, sorted: &mut Vec<f64>, xhat: &mut Vec<f64>) {
    let n = residuals.len();
    sorted.clear();
    sorted.extend_from_slice(residuals);
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite residuals"));
    let total: f64 = residuals.iter().sum();
    let target = total - demand;
    let mut level = f64::INFINITY;
    let mut prefix = 0.0;
    for k in 1..=n {
        prefix += sorted[k - 1];
        let suffix = total - prefix;
        let l = (target - suffix) / k as f64;
        let lo = if k < n { sorted[k] } else { f64::NEG_INFINITY };
        if l <= sorted[k - 1] + EPSILON && l >= lo - EPSILON {
            level = l;
            break;
        }
    }
    xhat.clear();
    xhat.extend(residuals.iter().map(|&r| r.min(level)));
}

/// Water-filling with per-host floors: minimizes `Σ x²` over
/// `{floor_i ≤ x_i ≤ r_i, Σ x = Σ r − demand}` via bisection on the
/// common level (`x_i = clamp(L, floor_i, r_i)`). Returns `false` when
/// the floors alone exceed the target — the per-host absorption caps
/// cannot swallow the remaining demand, so no completion exists.
///
/// The floors come from demand-density caps: every unassigned guest
/// satisfies `d_g ≤ ρ·mem_g` with `ρ = max_g d_g/mem_g`, so host `i`'s
/// CPU load is at most `ρ·m_i` and its final residual at least
/// `r_i − ρ·m_i` (and likewise for storage). The restricted polytope is
/// a subset of the plain water-filling polytope, so this bound is never
/// weaker than [`waterfill_point`]'s — and strictly stronger whenever a
/// floor is active, which is exactly when memory or storage pressure
/// forces CPU imbalance the plain bound cannot see.
fn floored_waterfill(residuals: &[f64], floors: &[f64], demand: f64, xhat: &mut Vec<f64>) -> bool {
    let total: f64 = residuals.iter().sum();
    let target = total - demand;
    let floor_sum: f64 = residuals
        .iter()
        .zip(floors)
        .map(|(&r, &f)| f.min(r).max(-1e18))
        .sum();
    if floor_sum > target + 1e-6 {
        return false;
    }
    let sum_at = |level: f64| -> f64 {
        residuals
            .iter()
            .zip(floors)
            .map(|(&r, &f)| level.max(f).min(r))
            .sum()
    };
    let mut lo = residuals.iter().cloned().fold(f64::INFINITY, f64::min) - demand.abs() - 1.0;
    let mut hi = residuals.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1.0;
    for _ in 0..128 {
        let mid = 0.5 * (lo + hi);
        if sum_at(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let level = 0.5 * (lo + hi);
    xhat.clear();
    xhat.extend(
        residuals
            .iter()
            .zip(floors)
            .map(|(&r, &f)| level.max(f).min(r)),
    );
    true
}

/// One dual evaluation: the relaxation's value at the given prices, with
/// each unassigned guest's argmin host recorded in `choice` (the
/// subgradient support). Returns the dual value in *variance* units.
#[allow(clippy::too_many_arguments)]
fn evaluate_dual(
    n: usize,
    c0: f64,
    cost: &[f64],
    gmem: &[f64],
    gstor: &[f64],
    peer_bw_sum: &[f64],
    peer_off: &[usize],
    peer_edges: &[(usize, usize, f64)],
    rmem_f: &[f64],
    r_stor: &[f64],
    cut_slack: &[f64],
    lambda: &[f64],
    nu: &[f64],
    beta: &[f64],
    choice: &mut Vec<usize>,
) -> f64 {
    choice.clear();
    let mut value = c0;
    for i in 0..n {
        value -= lambda[i] * rmem_f[i] + nu[i] * r_stor[i] + beta[i] * cut_slack[i];
    }
    let guests = gmem.len();
    for k in 0..guests {
        let row = &cost[k * n..(k + 1) * n];
        let bsum = peer_bw_sum[k];
        // Pass 1: the common priced cost over every admissible host. The
        // ascending scan with a strict `<` keeps the lowest-index argmin,
        // so ties break deterministically.
        let mut min = f64::INFINITY;
        let mut arg = usize::MAX;
        for (i, &c) in row.iter().enumerate() {
            if c.is_finite() {
                let v = c + lambda[i] * gmem[k] + nu[i] * gstor[k] + beta[i] * bsum;
                if v < min {
                    min = v;
                    arg = i;
                }
            }
        }
        // Pass 2: hosts holding a placed peer get a discount — co-locating
        // with the peer removes that link from *both* sides of the cut
        // (−2·β_j·w), and the peer-side surcharge S_g = Σ β_{j_p}·bw_p is
        // host-independent, so it is added once below.
        let mut s_g = 0.0;
        let mut idx = peer_off[k];
        while idx < peer_off[k + 1] {
            let j = peer_edges[idx].1;
            let mut w = 0.0;
            while idx < peer_off[k + 1] && peer_edges[idx].1 == j {
                w += peer_edges[idx].2;
                s_g += beta[j] * peer_edges[idx].2;
                idx += 1;
            }
            if row[j].is_finite() {
                let v = row[j] + lambda[j] * gmem[k] + nu[j] * gstor[k] + beta[j] * bsum
                    - 2.0 * beta[j] * w;
                if v < min {
                    min = v;
                    arg = j;
                }
            }
        }
        if !min.is_finite() {
            return f64::INFINITY;
        }
        value += min + s_g;
        choice.push(arg);
    }
    value
}

/// Computes the Lagrangian lower bound at one search node.
///
/// Runs one evaluation at zero prices (which reproduces the water-filling
/// bound, tightened by the exact per-guest host restrictions) and then —
/// when an incumbent exists to steer the step size — a short projected
/// subgradient ascent warm-started from the prices of the previously
/// bounded node. The returned bound is the **max over all evaluations**:
/// every dual value is admissible, so the ascent can only help.
pub fn lagrangian_bound(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    view: &NodeView<'_>,
    topo: &mut ArTables,
    scratch: &mut LagrangianScratch,
    config: &LagrangianConfig,
) -> LagrangianBound {
    let n = view.hosts.len();
    if n == 0 {
        return LagrangianBound {
            bound: 0.0,
            evaluations: 1,
        };
    }
    let un = view.unassigned.len();
    if un == 0 {
        // Leaf: the residuals are final and the "bound" is exact.
        let mean = view.r_proc.iter().sum::<f64>() / n as f64;
        let var = view
            .r_proc
            .iter()
            .map(|&r| (r - mean) * (r - mean))
            .sum::<f64>()
            / n as f64;
        return LagrangianBound {
            bound: var.sqrt().max(0.0),
            evaluations: 1,
        };
    }

    // Tangent point and the constant part of the linearized objective:
    // C0 = (1/n)(2 Σ x̂_i r_i − Σ x̂_i²) − μ².
    let demand: f64 = view
        .unassigned
        .iter()
        .map(|&g| venv.guest(g).proc.value())
        .sum();
    waterfill_point(view.r_proc, demand, &mut scratch.sorted, &mut scratch.xhat);

    // Demand-density floors: every unassigned guest's CPU is at most
    // `ρ_mem` per MB of memory (resp. `ρ_stor` per GB of storage), so a
    // host's CPU load cannot exceed `min(ρ_mem·m_i, ρ_stor·s_i)` and its
    // final residual cannot drop below `r_i` minus that cap. When a floor
    // cuts above the plain water-filling level (memory/storage pressure
    // forcing CPU imbalance), re-solve the completion on the restricted
    // polytope — never weaker, often strictly stronger, and it de-flattens
    // the tangent so the subgradient ascent has something to price.
    let (mut rho_mem, mut rho_stor) = (0.0f64, 0.0f64);
    for &g in view.unassigned {
        let spec = venv.guest(g);
        let d = spec.proc.value();
        if d <= 0.0 {
            continue;
        }
        let m = spec.mem.value() as f64;
        rho_mem = rho_mem.max(if m > 0.0 { d / m } else { f64::INFINITY });
        let s = spec.stor.value();
        rho_stor = rho_stor.max(if s > 0.0 { d / s } else { f64::INFINITY });
    }
    scratch.floors.clear();
    let mut any_floor = false;
    for i in 0..n {
        let cap_mem = if rho_mem.is_finite() {
            rho_mem * view.r_mem[i] as f64
        } else {
            f64::INFINITY
        };
        let cap_stor = if rho_stor.is_finite() {
            rho_stor * view.r_stor[i]
        } else {
            f64::INFINITY
        };
        let cap = cap_mem.min(cap_stor);
        let floor = if cap.is_finite() {
            view.r_proc[i] - cap
        } else {
            f64::NEG_INFINITY
        };
        any_floor |= floor > scratch.xhat[i] + EPSILON;
        scratch.floors.push(floor);
    }
    if any_floor && !floored_waterfill(view.r_proc, &scratch.floors, demand, &mut scratch.xhat) {
        // The per-host absorption caps cannot swallow the remaining
        // demand: no completion satisfies the memory/storage constraints.
        return LagrangianBound {
            bound: f64::INFINITY,
            evaluations: 1,
        };
    }

    let mean = (view.r_proc.iter().sum::<f64>() - demand) / n as f64;
    let mut c0 = -mean * mean;
    let mut tangent_var = 0.0;
    for i in 0..n {
        c0 +=
            (2.0 * scratch.xhat[i] * view.r_proc[i] - scratch.xhat[i] * scratch.xhat[i]) / n as f64;
        tangent_var += (scratch.xhat[i] - mean) * (scratch.xhat[i] - mean) / n as f64;
    }

    scratch.rmem_f.clear();
    scratch.rmem_f.extend(view.r_mem.iter().map(|&m| m as f64));

    // Residual cut capacities: static incident bandwidth minus what the
    // already-placed cross-host links consume, and the partial (placed ↔
    // unassigned) link list for the per-guest bandwidth terms.
    scratch.cut_slack.clear();
    scratch.cut_slack.extend_from_slice(&scratch.cut_static);
    for (k, &g) in view.unassigned.iter().enumerate() {
        scratch.uidx_of[g.index()] = k;
    }
    scratch.peer_edges.clear();
    for l in venv.link_ids() {
        let (a, b) = venv.link_endpoints(l);
        if a == b {
            continue;
        }
        let bw = venv.link(l).bw.value();
        let (sa, sb) = (view.slot_of[a.index()], view.slot_of[b.index()]);
        match (sa, sb) {
            (Some(i), Some(j)) => {
                if i != j {
                    scratch.cut_slack[i] -= bw;
                    scratch.cut_slack[j] -= bw;
                }
            }
            (Some(j), None) => {
                let k = scratch.uidx_of[b.index()];
                if k != usize::MAX {
                    scratch.peer_edges.push((k, j, bw));
                }
            }
            (None, Some(j)) => {
                let k = scratch.uidx_of[a.index()];
                if k != usize::MAX {
                    scratch.peer_edges.push((k, j, bw));
                }
            }
            (None, None) => {}
        }
    }
    scratch.peer_edges.sort_unstable_by_key(|&(k, j, _)| (k, j));
    scratch.peer_off.clear();
    scratch.peer_off.resize(un + 1, 0);
    for &(k, _, _) in &scratch.peer_edges {
        scratch.peer_off[k + 1] += 1;
    }
    for k in 0..un {
        scratch.peer_off[k + 1] += scratch.peer_off[k];
    }

    // Per-guest demand columns and the priced tables (the tangent cost,
    // with the exact fit/latency restrictions baked in as +∞).
    scratch.gdem.clear();
    scratch.gmem.clear();
    scratch.gstor.clear();
    scratch.peer_bw_sum.clear();
    scratch.cost.clear();
    scratch.cost.resize(un * n, 0.0);
    let mut infeasible = false;
    for (k, &g) in view.unassigned.iter().enumerate() {
        let spec = venv.guest(g);
        scratch.gdem.push(spec.proc.value());
        scratch.gmem.push(spec.mem.value() as f64);
        scratch.gstor.push(spec.stor.value());
        let row = &mut scratch.cost[k * n..(k + 1) * n];
        for (i, slot) in row.iter_mut().enumerate() {
            *slot = if view.r_mem[i] < spec.mem.value() || view.r_stor[i] < spec.stor.value() {
                f64::INFINITY
            } else {
                -(2.0 / n as f64) * spec.proc.value() * scratch.xhat[i]
            };
        }
        if view.use_latency {
            for &(peer, bound) in &view.peers[g.index()] {
                let Some(peer_slot) = view.slot_of[peer] else {
                    continue;
                };
                let peer_host = view.hosts[peer_slot];
                let (ar, _) = topo.ar_and_csr(phys, peer_host);
                for i in 0..n {
                    if view.hosts[i] != peer_host && ar[view.hosts[i].index()] > bound + EPSILON {
                        row[i] = f64::INFINITY;
                    }
                }
            }
        }
        if row.iter().all(|c| !c.is_finite()) {
            infeasible = true;
            break;
        }
        let slice = &scratch.peer_edges[scratch.peer_off[k]..scratch.peer_off[k + 1]];
        scratch
            .peer_bw_sum
            .push(slice.iter().map(|&(_, _, bw)| bw).sum());
    }
    // Sparse reset of the guest → unassigned-index map before any return.
    for &g in view.unassigned {
        scratch.uidx_of[g.index()] = usize::MAX;
    }
    if infeasible {
        // Some guest fits nowhere under the *exact* restrictions: no
        // completion of this node is feasible.
        return LagrangianBound {
            bound: f64::INFINITY,
            evaluations: 1,
        };
    }

    // Evaluation at zero prices: exactly the water-filling bound, plus
    // whatever the table restrictions add. The gradient buffers double as
    // the zero-price vectors here — they are rebuilt before every step.
    scratch.grad_mem.clear();
    scratch.grad_mem.resize(n, 0.0);
    scratch.grad_stor.clear();
    scratch.grad_stor.resize(n, 0.0);
    scratch.grad_bw.clear();
    scratch.grad_bw.resize(n, 0.0);
    let mut best = evaluate_dual(
        n,
        c0,
        &scratch.cost,
        &scratch.gmem,
        &scratch.gstor,
        &scratch.peer_bw_sum,
        &scratch.peer_off,
        &scratch.peer_edges,
        &scratch.rmem_f,
        view.r_stor,
        &scratch.cut_slack,
        &scratch.grad_mem,  // all-zero at this point
        &scratch.grad_stor, // all-zero
        &scratch.grad_bw,   // all-zero
        &mut scratch.choice,
    );
    let mut evaluations = 1u64;
    // The tangent point itself is the restricted polytope's minimizer, so
    // its variance is an admissible bound — and the strongest one here
    // whenever the zero-price relaxation underestimates it.
    if tangent_var > best {
        best = tangent_var;
    }

    // Subgradient ascent, warm-started from the previous node's prices.
    // Without an incumbent there is no Polyak step size — and the prices
    // are still at zero anyway — so the single evaluation above stands.
    if view.incumbent.is_finite() {
        let ub_var = view.incumbent * view.incumbent;
        let iters = if view.at_root {
            config.root_iters
        } else {
            config.tree_iters
        };
        for _ in 0..iters {
            let value = evaluate_dual(
                n,
                c0,
                &scratch.cost,
                &scratch.gmem,
                &scratch.gstor,
                &scratch.peer_bw_sum,
                &scratch.peer_off,
                &scratch.peer_edges,
                &scratch.rmem_f,
                view.r_stor,
                &scratch.cut_slack,
                &scratch.lambda_mem,
                &scratch.nu_stor,
                &scratch.beta_bw,
                &mut scratch.choice,
            );
            evaluations += 1;
            if value > best {
                best = value;
            }
            if value >= ub_var - 1e-12 {
                break; // the node will be pruned; no point tightening more
            }
            // Subgradients: per-slot usage under the argmin choices minus
            // the residual capacities.
            scratch.grad_mem.clear();
            scratch.grad_mem.resize(n, 0.0);
            scratch.grad_stor.clear();
            scratch.grad_stor.resize(n, 0.0);
            scratch.grad_bw.clear();
            scratch.grad_bw.resize(n, 0.0);
            for (k, &c) in scratch.choice.iter().enumerate() {
                scratch.grad_mem[c] += scratch.gmem[k];
                scratch.grad_stor[c] += scratch.gstor[k];
                for &(_, j, bw) in &scratch.peer_edges[scratch.peer_off[k]..scratch.peer_off[k + 1]]
                {
                    if j != c {
                        scratch.grad_bw[c] += bw;
                        scratch.grad_bw[j] += bw;
                    }
                }
            }
            for i in 0..n {
                scratch.grad_mem[i] -= scratch.rmem_f[i];
                scratch.grad_stor[i] -= view.r_stor[i];
                scratch.grad_bw[i] -= scratch.cut_slack[i];
            }
            // Tangent refresh: `x² ≥ 2x̂x − x̂²` holds for *any* x̂, so
            // re-linearize at the relaxed solution's residual point
            // (damped halfway). At high demand the water-filling point is
            // flat — the level sits below every residual, the linearized
            // objective is placement-indifferent, and no price can lift
            // the dual above it. The refreshed tangent reflects where the
            // priced relaxation actually concentrates load, which is what
            // lets the memory/storage/cut prices buy bound.
            scratch.xstar.clear();
            scratch.xstar.extend_from_slice(view.r_proc);
            for (k, &c) in scratch.choice.iter().enumerate() {
                scratch.xstar[c] -= scratch.gdem[k];
            }
            c0 = -mean * mean;
            for i in 0..n {
                scratch.xhat[i] = config.tangent_damping * (scratch.xhat[i] + scratch.xstar[i]);
                c0 += (2.0 * scratch.xhat[i] * view.r_proc[i] - scratch.xhat[i] * scratch.xhat[i])
                    / n as f64;
            }
            for (k, &d) in scratch.gdem.iter().enumerate() {
                let row = &mut scratch.cost[k * n..(k + 1) * n];
                for (i, slot) in row.iter_mut().enumerate() {
                    if slot.is_finite() {
                        *slot = -(2.0 / n as f64) * d * scratch.xhat[i];
                    }
                }
            }
            // Per-family Polyak steps: the three families mix units (MB,
            // GB, kbps), so a shared norm would drown the small ones.
            let gap = ub_var - value;
            for (grad, mult) in [
                (&scratch.grad_mem, &mut scratch.lambda_mem),
                (&scratch.grad_stor, &mut scratch.nu_stor),
                (&scratch.grad_bw, &mut scratch.beta_bw),
            ] {
                let norm2: f64 = grad.iter().map(|g| g * g).sum();
                if norm2 > 1e-18 {
                    let t = config.step * gap / norm2;
                    for i in 0..n {
                        mult[i] = (mult[i] + t * grad[i]).max(0.0);
                    }
                }
            }
        }
    }

    LagrangianBound {
        bound: best.max(0.0).sqrt(),
        evaluations,
    }
}

/// Standalone convenience for tests and the differential harness:
/// computes the bound at an arbitrary partial placement (guest index →
/// host slot), with multipliers reset first (no warm-start across calls),
/// so repeated calls on any shared scratch are bit-identical to fresh
/// ones.
pub fn lagrangian_bound_for_partial(
    phys: &PhysicalTopology,
    venv: &VirtualEnvironment,
    placement: &[Option<usize>],
    incumbent: f64,
    config: &LagrangianConfig,
    topo: &mut ArTables,
    scratch: &mut LagrangianScratch,
) -> LagrangianBound {
    assert_eq!(placement.len(), venv.guest_count(), "one slot per guest");
    let hosts: Vec<NodeId> = phys.hosts().to_vec();
    let mut r_proc: Vec<f64> = hosts
        .iter()
        .map(|&h| phys.effective_proc(h).value())
        .collect();
    let mut r_mem: Vec<u64> = hosts
        .iter()
        .map(|&h| phys.effective_mem(h).value())
        .collect();
    let mut r_stor: Vec<f64> = hosts
        .iter()
        .map(|&h| phys.effective_stor(h).value())
        .collect();
    let mut unassigned = Vec::new();
    for (g, slot) in placement.iter().enumerate() {
        let spec = venv.guest(GuestId::from_index(g));
        match slot {
            Some(s) => {
                r_proc[*s] -= spec.proc.value();
                r_mem[*s] -= spec.mem.value();
                r_stor[*s] -= spec.stor.value();
            }
            None => unassigned.push(GuestId::from_index(g)),
        }
    }
    let peers = tightest_peer_bounds(venv);
    topo.prepare(phys);
    scratch.prepare(phys, &hosts, venv.guest_count());
    let view = NodeView {
        hosts: &hosts,
        r_proc: &r_proc,
        r_mem: &r_mem,
        r_stor: &r_stor,
        unassigned: &unassigned,
        slot_of: placement,
        peers: &peers,
        incumbent,
        at_root: true,
        use_latency: true,
    };
    lagrangian_bound(phys, venv, &view, topo, scratch, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::residual_stddev_lower_bound;
    use emumap_graph::generators;
    use emumap_model::{
        GuestSpec, HostSpec, Kbps, LinkSpec, MemMb, Millis, Mips, StorGb, VLinkSpec, VmmOverhead,
    };

    fn phys_line(n: usize, mips: &[f64], mem: u64) -> PhysicalTopology {
        PhysicalTopology::from_shape(
            &generators::line(n),
            mips.iter()
                .map(|&m| HostSpec::new(Mips(m), MemMb(mem), StorGb(1000.0))),
            LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        )
    }

    fn chain_venv(specs: &[(f64, u64)], bw: f64, lat: f64) -> VirtualEnvironment {
        let mut venv = VirtualEnvironment::new();
        let ids: Vec<_> = specs
            .iter()
            .map(|&(proc, mem)| {
                venv.add_guest(GuestSpec::new(Mips(proc), MemMb(mem), StorGb(10.0)))
            })
            .collect();
        for pair in ids.windows(2) {
            venv.add_link(pair[0], pair[1], VLinkSpec::new(Kbps(bw), Millis(lat)));
        }
        venv
    }

    #[test]
    fn zero_price_evaluation_matches_waterfill_on_unrestricted_instances() {
        // Plenty of memory/storage, generous latency: the tables are
        // unrestricted, so the λ=0 evaluation must reproduce the
        // water-filling bound exactly (the dominance anchor).
        let phys = phys_line(3, &[3000.0, 2000.0, 1000.0], 4096);
        let venv = chain_venv(&[(400.0, 64), (300.0, 64), (200.0, 64)], 10.0, 1000.0);
        let placement = vec![None; 3];
        let wf = residual_stddev_lower_bound(&[3000.0, 2000.0, 1000.0], 900.0);
        let out = lagrangian_bound_for_partial(
            &phys,
            &venv,
            &placement,
            f64::INFINITY, // no incumbent: single zero-price evaluation
            &LagrangianConfig::default(),
            &mut ArTables::new(),
            &mut LagrangianScratch::new(),
        );
        assert!(
            (out.bound - wf).abs() < 1e-9,
            "lagrangian {} != waterfill {wf}",
            out.bound
        );
        assert_eq!(out.evaluations, 1);
    }

    #[test]
    fn density_floors_lift_a_flat_tangent_without_any_incumbent() {
        // High demand flattens the plain water-filling point (the level
        // sits at or below every residual), which blinds the tangent to
        // memory. The demand-density floors see it even in the single
        // zero-price evaluation: host 0 has nearly all the CPU but almost
        // no memory, so it can absorb at most ρ·128 = 256 MIPS of the
        // demand and keeps a residual of at least 4000 − 256 = 3744 —
        // far above the flat level of 1000 (where plain water-filling
        // reports a bound of zero).
        let phys = PhysicalTopology::from_shape(
            &generators::line(3),
            [
                HostSpec::new(Mips(4000.0), MemMb(128), StorGb(1000.0)),
                HostSpec::new(Mips(1000.0), MemMb(2048), StorGb(1000.0)),
                HostSpec::new(Mips(1000.0), MemMb(2048), StorGb(1000.0)),
            ]
            .into_iter(),
            LinkSpec::new(Kbps(10_000.0), Millis(5.0)),
            VmmOverhead::NONE,
        );
        // ρ = 500/250 = 2 MIPS/MB; 6 guests, 3000 MIPS total demand.
        let venv = chain_venv(
            &[
                (500.0, 250),
                (500.0, 250),
                (500.0, 250),
                (500.0, 250),
                (500.0, 250),
                (500.0, 250),
            ],
            10.0,
            1000.0,
        );
        let placement = vec![None; 6];
        let wf = residual_stddev_lower_bound(&[4000.0, 1000.0, 1000.0], 3000.0);
        let out = lagrangian_bound_for_partial(
            &phys,
            &venv,
            &placement,
            f64::INFINITY, // no incumbent: floors alone must do the work
            &LagrangianConfig::default(),
            &mut ArTables::new(),
            &mut LagrangianScratch::new(),
        );
        assert!(
            out.bound >= wf - 1e-9,
            "floored bound {} must dominate waterfill {wf}",
            out.bound
        );
        // Host 0's floor forces x̂ = [3744, −372, −372] against the flat
        // plain point [1000, 1000, 1000]: the bound jumps from 0 to well
        // over a thousand MIPS of stddev.
        assert!(
            out.bound > wf + 1000.0,
            "floors inactive: lagrangian {} vs waterfill {wf}",
            out.bound
        );
    }

    #[test]
    fn absorption_caps_certify_infeasibility_before_any_search() {
        // Two hosts with 150 MB of memory each; four 500-MIPS/100-MB
        // guests. Each guest fits either host individually (no all-∞
        // table row), but ρ = 5 MIPS/MB caps each host's CPU load at 750,
        // and 2 · 750 < 2000 of total demand: the density floors certify
        // that no completion exists.
        let phys = phys_line(2, &[3000.0, 3000.0], 150);
        let venv = chain_venv(
            &[(500.0, 100), (500.0, 100), (500.0, 100), (500.0, 100)],
            10.0,
            1000.0,
        );
        let placement = vec![None; 4];
        let out = lagrangian_bound_for_partial(
            &phys,
            &venv,
            &placement,
            f64::INFINITY,
            &LagrangianConfig::default(),
            &mut ArTables::new(),
            &mut LagrangianScratch::new(),
        );
        assert!(
            out.bound.is_infinite(),
            "absorption caps must certify infeasibility, got {}",
            out.bound
        );
    }

    #[test]
    fn memory_pressure_lifts_the_bound_above_waterfill() {
        // Host 0 has all the CPU but guests cannot all fit there: memory
        // admits exactly one 900 MB guest per 1024 MB host, so the true
        // optimum spreads one guest per host — far from the water-filling
        // fantasy of piling everything on host 0.
        let phys = phys_line(3, &[3000.0, 500.0, 500.0], 1024);
        let venv = chain_venv(&[(300.0, 900), (300.0, 900), (300.0, 900)], 10.0, 1000.0);
        let placement = vec![None; 3];
        let wf = residual_stddev_lower_bound(&[3000.0, 500.0, 500.0], 900.0);
        // Give the ascent a realistic incumbent: one guest per host.
        let incumbent = {
            let x = [2700.0_f64, 200.0, 200.0];
            let m = x.iter().sum::<f64>() / 3.0;
            (x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / 3.0).sqrt()
        };
        let out = lagrangian_bound_for_partial(
            &phys,
            &venv,
            &placement,
            incumbent,
            &LagrangianConfig::default(),
            &mut ArTables::new(),
            &mut LagrangianScratch::new(),
        );
        assert!(
            out.bound > wf + 1.0,
            "expected a real improvement: lagrangian {} vs waterfill {wf}",
            out.bound
        );
        assert!(
            out.bound <= incumbent + 1e-9,
            "bound {} must stay admissible vs feasible incumbent {incumbent}",
            out.bound
        );
        assert!(out.evaluations > 1);
    }

    #[test]
    fn empty_allowed_table_certifies_infeasibility() {
        // A 3000 MB guest fits no 1024 MB host: the bound must blow up to
        // +∞ (an exact infeasibility certificate), not report a number.
        let phys = phys_line(2, &[1000.0, 1000.0], 1024);
        let venv = chain_venv(&[(100.0, 3000)], 10.0, 1000.0);
        let out = lagrangian_bound_for_partial(
            &phys,
            &venv,
            &[None],
            f64::INFINITY,
            &LagrangianConfig::default(),
            &mut ArTables::new(),
            &mut LagrangianScratch::new(),
        );
        assert!(out.bound.is_infinite());
    }

    #[test]
    fn multiplier_handoff_reproduces_warm_started_bounds() {
        // The epoch-parallel oracle hands a node's post-ascent prices to
        // its children as a packed snapshot. A child bound computed after
        // load_multipliers must be bit-identical to one computed on the
        // scratch that ran the parent directly — whatever other work the
        // receiving scratch did in between.
        let phys = phys_line(3, &[3000.0, 500.0, 500.0], 1024);
        let venv = chain_venv(&[(300.0, 900), (300.0, 900), (300.0, 900)], 10.0, 40.0);
        let config = LagrangianConfig::default();
        let hosts: Vec<NodeId> = phys.hosts().to_vec();
        let peers = tightest_peer_bounds(&venv);
        let all: Vec<GuestId> = (0..3).map(GuestId::from_index).collect();
        let root = NodeView {
            hosts: &hosts,
            r_proc: &[3000.0, 500.0, 500.0],
            r_mem: &[1024, 1024, 1024],
            r_stor: &[1000.0, 1000.0, 1000.0],
            unassigned: &all,
            slot_of: &[None, None, None],
            peers: &peers,
            incumbent: 100.0,
            at_root: true,
            use_latency: true,
        };
        // Child node: guest 0 placed on slot 0.
        let child = NodeView {
            hosts: &hosts,
            r_proc: &[2700.0, 500.0, 500.0],
            r_mem: &[124, 1024, 1024],
            r_stor: &[990.0, 1000.0, 1000.0],
            unassigned: &all[1..],
            slot_of: &[Some(0), None, None],
            peers: &peers,
            incumbent: 100.0,
            at_root: false,
            use_latency: true,
        };

        // Scratch A runs parent then child directly (the sequential way).
        let mut topo_a = ArTables::new();
        topo_a.prepare(&phys);
        let mut a = LagrangianScratch::new();
        a.prepare(&phys, &hosts, venv.guest_count());
        let _ = lagrangian_bound(&phys, &venv, &root, &mut topo_a, &mut a, &config);
        let mut packed = Vec::new();
        a.save_multipliers(&mut packed);
        assert_eq!(packed.len(), a.multiplier_len());
        let direct = lagrangian_bound(&phys, &venv, &child, &mut topo_a, &mut a, &config);

        // Scratch B does unrelated work first, then loads the snapshot.
        let mut topo_b = ArTables::new();
        topo_b.prepare(&phys);
        let mut b = LagrangianScratch::new();
        b.prepare(&phys, &hosts, venv.guest_count());
        let other = NodeView {
            incumbent: 50.0,
            ..root
        };
        let _ = lagrangian_bound(&phys, &venv, &other, &mut topo_b, &mut b, &config);
        b.load_multipliers(&packed);
        let handed = lagrangian_bound(&phys, &venv, &child, &mut topo_b, &mut b, &config);
        assert_eq!(direct.bound.to_bits(), handed.bound.to_bits());
        assert_eq!(direct.evaluations, handed.evaluations);

        // And a save → reset → load cycle restores the exact prices.
        let mut again = Vec::new();
        b.save_multipliers(&mut again);
        b.reset_multipliers();
        let mut zeros = Vec::new();
        b.save_multipliers(&mut zeros);
        assert!(zeros.iter().all(|&v| v == 0.0));
        b.load_multipliers(&again);
        let mut back = Vec::new();
        b.save_multipliers(&mut back);
        assert_eq!(again, back);
    }

    #[test]
    fn shared_scratch_is_bit_identical_to_fresh_scratch() {
        // The multiplier reset in prepare() makes the bound a pure
        // function of the instance: a scratch warmed by a *different*
        // instance must produce bit-identical results.
        let phys_a = phys_line(3, &[3000.0, 500.0, 500.0], 1024);
        let venv_a = chain_venv(&[(300.0, 900), (300.0, 900), (300.0, 900)], 10.0, 40.0);
        let phys_b = phys_line(4, &[2000.0, 1500.0, 1000.0, 500.0], 2048);
        let venv_b = chain_venv(&[(400.0, 128), (200.0, 128)], 50.0, 12.0);
        let config = LagrangianConfig::default();

        let mut fresh_topo = ArTables::new();
        let mut fresh = LagrangianScratch::new();
        let expect = lagrangian_bound_for_partial(
            &phys_b,
            &venv_b,
            &[None, None],
            30.0,
            &config,
            &mut fresh_topo,
            &mut fresh,
        );

        let mut warm_topo = ArTables::new();
        let mut warm = LagrangianScratch::new();
        let _ = lagrangian_bound_for_partial(
            &phys_a,
            &venv_a,
            &[Some(0), None, None],
            100.0,
            &config,
            &mut warm_topo,
            &mut warm,
        );
        let got = lagrangian_bound_for_partial(
            &phys_b,
            &venv_b,
            &[None, None],
            30.0,
            &config,
            &mut warm_topo,
            &mut warm,
        );
        assert_eq!(expect.bound.to_bits(), got.bound.to_bits());
        assert_eq!(expect.evaluations, got.evaluations);
        assert!(warm.reuses() >= 1);
    }
}
