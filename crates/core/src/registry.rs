//! The **mapper registry** — the single place a mapper is registered.
//!
//! Every harness surface that enumerates mappers derives its list from
//! [`MAPPERS`]: the CLI's `--mapper` parsing and usage text, `batch
//! --mapper all`, the bench harness's `MapperKind`, `compare` tables,
//! and `serve`. Adding a mapper means adding **one** [`MapperEntry`]
//! here; every call site picks it up.
//!
//! ```
//! use emumap_core::{build_mapper, MapperConfig};
//! let rr = build_mapper("rr", &MapperConfig::default()).unwrap();
//! assert_eq!(rr.name(), "RR");
//! ```

use crate::annealing::Annealing;
use crate::consolidation::ConsolidatingHmn;
use crate::greedy::{BestFit, FirstFitDecreasing, WorstFit};
use crate::hmn::Hmn;
use crate::ksp_routing::HmnKsp;
use crate::mapper::Mapper;
use crate::pool::{HeuristicPool, PoolPolicy};
use crate::random::{HostingDfs, RandomAStar, RandomDfs, DEFAULT_MAX_ATTEMPTS};
use crate::rounding::RandomizedRounding;
use crate::tempering::ParallelTempering;

/// Shared knobs a registry constructor may consume. One struct (instead
/// of per-mapper argument lists) keeps the constructor signature uniform
/// so the whole family fits behind one `fn(&MapperConfig)` pointer.
#[derive(Clone, Copy, Debug)]
pub struct MapperConfig {
    /// Retry budget for the attempt-based mappers (R, RA, HS, RR).
    pub max_attempts: usize,
}

impl Default for MapperConfig {
    fn default() -> Self {
        MapperConfig {
            max_attempts: DEFAULT_MAX_ATTEMPTS,
        }
    }
}

/// One registered mapper: its CLI key, report label, a one-line doc
/// (the source of truth for README/usage tables), and a constructor.
pub struct MapperEntry {
    /// CLI key (`--mapper <key>`), lowercase.
    pub key: &'static str,
    /// Report label — exactly what [`Mapper::name`] returns.
    pub label: &'static str,
    /// One-line description, surfaced in docs and usage listings.
    pub doc: &'static str,
    /// Constructor from the shared config.
    pub build: fn(&MapperConfig) -> Box<dyn Mapper>,
}

impl MapperEntry {
    /// Position of this entry in [`MAPPERS`] — the stable per-mapper
    /// index harnesses fold into derived seeds.
    pub fn index(&self) -> usize {
        MAPPERS
            .iter()
            .position(|e| std::ptr::eq(e, self))
            .expect("entry comes from MAPPERS")
    }
}

/// The registry. THE single mapper-registration site in the workspace —
/// the paper's four mappers first (their positions are folded into
/// derived seeds, so the prefix order is load-bearing), then the
/// extensions in the order they were added.
pub static MAPPERS: &[MapperEntry] = &[
    MapperEntry {
        key: "hmn",
        label: "HMN",
        doc: "the paper's Hosting-Migration-Networking heuristic (deterministic)",
        build: |_| Box::new(Hmn::new()),
    },
    MapperEntry {
        key: "r",
        label: "R",
        doc: "random placement + naive DFS routing (paper baseline)",
        build: |c| {
            Box::new(RandomDfs {
                max_attempts: c.max_attempts,
            })
        },
    },
    MapperEntry {
        key: "ra",
        label: "RA",
        doc: "random placement + A*Prune routing (paper baseline)",
        build: |c| {
            Box::new(RandomAStar {
                max_attempts: c.max_attempts,
                ..Default::default()
            })
        },
    },
    MapperEntry {
        key: "hs",
        label: "HS",
        doc: "Hosting placement + naive DFS routing (paper baseline)",
        build: |c| {
            Box::new(HostingDfs {
                max_attempts: c.max_attempts,
            })
        },
    },
    MapperEntry {
        key: "ffd",
        label: "FFD",
        doc: "first-fit-decreasing bin packing + A*Prune routing",
        build: |_| Box::new(FirstFitDecreasing::default()),
    },
    MapperEntry {
        key: "bf",
        label: "BF",
        doc: "best-fit bin packing + A*Prune routing",
        build: |_| Box::new(BestFit::default()),
    },
    MapperEntry {
        key: "wf",
        label: "WF",
        doc: "worst-fit bin packing + A*Prune routing",
        build: |_| Box::new(WorstFit::default()),
    },
    MapperEntry {
        key: "consolidate",
        label: "HMN-consolidate",
        doc: "HMN + drain stage minimizing hosts used (future-work objective)",
        build: |_| Box::new(ConsolidatingHmn::default()),
    },
    MapperEntry {
        key: "ksp",
        label: "HMN-ksp",
        doc: "HMN placement + k-shortest-path routing ablation (k=4)",
        build: |_| Box::new(HmnKsp::default()),
    },
    MapperEntry {
        key: "sa",
        label: "SA",
        doc: "simulated-annealing placement refinement + A*Prune routing",
        build: |_| Box::new(Annealing::default()),
    },
    MapperEntry {
        key: "pt",
        label: "PT",
        doc: "parallel-tempering placement refinement + A*Prune routing",
        build: |_| Box::new(ParallelTempering::default()),
    },
    MapperEntry {
        key: "rr",
        label: "RR",
        doc: "randomized rounding of a multiplicative-weights fractional LP",
        build: |_| Box::new(RandomizedRounding::new()),
    },
    MapperEntry {
        key: "pool",
        label: "pool[HMN+RA+R]",
        doc: "first-success pool over HMN, RA, R (future-work combinator)",
        build: |c| {
            Box::new(HeuristicPool::new(
                vec![
                    Box::new(Hmn::new()),
                    Box::new(RandomAStar {
                        max_attempts: c.max_attempts,
                        ..Default::default()
                    }),
                    Box::new(RandomDfs {
                        max_attempts: c.max_attempts,
                    }),
                ],
                PoolPolicy::FirstSuccess,
            ))
        },
    },
];

/// Looks up a registry entry by CLI key.
pub fn find_mapper(key: &str) -> Option<&'static MapperEntry> {
    MAPPERS.iter().find(|e| e.key == key)
}

/// Constructs a mapper by CLI key; `None` for unknown keys.
pub fn build_mapper(key: &str, config: &MapperConfig) -> Option<Box<dyn Mapper>> {
    find_mapper(key).map(|e| (e.build)(config))
}

/// All CLI keys in registry order.
pub fn mapper_keys() -> impl Iterator<Item = &'static str> {
    MAPPERS.iter().map(|e| e.key)
}

/// `"hmn|r|ra|..."` — the usage-text enumeration of every key.
pub fn mapper_usage() -> String {
    mapper_keys().collect::<Vec<_>>().join("|")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registered_mapper_constructs_and_label_matches_name() {
        let config = MapperConfig::default();
        for entry in MAPPERS {
            let mapper = (entry.build)(&config);
            assert_eq!(
                mapper.name(),
                entry.label,
                "registry label for '{}' drifted from Mapper::name()",
                entry.key
            );
        }
    }

    #[test]
    fn keys_are_unique_lowercase_and_stable_for_the_paper_prefix() {
        let keys: Vec<_> = mapper_keys().collect();
        let mut deduped = keys.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(deduped.len(), keys.len(), "duplicate registry key");
        assert!(keys
            .iter()
            .all(|k| k.chars().all(|c| c.is_ascii_lowercase())));
        // Derived seeds fold the positional index; the paper-four prefix
        // must never move.
        assert_eq!(&keys[..4], &["hmn", "r", "ra", "hs"]);
    }

    #[test]
    fn index_recovers_registry_position() {
        for (i, entry) in MAPPERS.iter().enumerate() {
            assert_eq!(entry.index(), i);
        }
        assert_eq!(find_mapper("rr").unwrap().index(), 11);
    }

    #[test]
    fn lookup_and_usage_cover_the_registry() {
        assert!(find_mapper("nope").is_none());
        assert!(build_mapper("nope", &MapperConfig::default()).is_none());
        let usage = mapper_usage();
        for entry in MAPPERS {
            assert!(usage.contains(entry.key));
        }
    }

    #[test]
    fn mapper_trait_rustdoc_mentions_every_registered_label() {
        // Satellite guard: the `Mapper` trait docs went stale once (they
        // listed 4 of 11 mappers); keep them sourced from the registry.
        let rustdoc = include_str!("mapper.rs");
        for entry in MAPPERS {
            let type_hint = match entry.key {
                "hmn" => "Hmn",
                "r" => "RandomDfs",
                "ra" => "RandomAStar",
                "hs" => "HostingDfs",
                "ffd" => "FirstFitDecreasing",
                "bf" => "BestFit",
                "wf" => "WorstFit",
                "consolidate" => "ConsolidatingHmn",
                "ksp" => "HmnKsp",
                "sa" => "Annealing",
                "pt" => "ParallelTempering",
                "rr" => "RandomizedRounding",
                "pool" => "HeuristicPool",
                other => panic!("new mapper '{other}': extend this map and the trait docs"),
            };
            assert!(
                rustdoc.contains(type_hint),
                "mapper.rs rustdoc no longer mentions '{}' ({})",
                entry.label,
                entry.key
            );
        }
    }
}
